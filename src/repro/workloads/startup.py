"""Generator of size-controlled Wasm applications for the startup bench.

The paper (§VI-B) creates nine Wasm programs of 1-9 MB by unrolling
thousands of loop iterations; we do the same with the module builder:
many functions of straight-line arithmetic, replicated until the binary
reaches the requested size. The entry point executes a single instruction
chain and returns, exactly as the paper stops after the first
instruction to isolate startup cost.
"""

from __future__ import annotations

from repro.wasm import ModuleBuilder
from repro.wasm import opcodes as op
from repro.wasm.types import I32

#: Instructions per filler function; keeps generated AOT functions small
#: enough for CPython's compiler.
_CHUNK = 1500


def build_startup_app(target_bytes: int) -> bytes:
    """A module of roughly ``target_bytes`` with an ``entry`` export."""
    builder = ModuleBuilder()
    builder.add_memory(1)
    t_entry = builder.add_type([], [I32])

    entry = builder.add_function(t_entry)
    entry.i32_const(1)
    builder.export_function("entry", entry.index)

    # Each filler function encodes to roughly 6 bytes per const/add pair.
    filler_count = 0
    estimated = 200  # header + sections overhead
    while estimated < target_bytes:
        function = builder.add_function(t_entry)
        function.i32_const(0)
        for step in range(_CHUNK):
            function.i32_const((step * 2654435761) & 0x7FFFFFFF)
            function.emit(op.I32_ADD)
        filler_count += 1
        estimated += _CHUNK * 7 + 10
    return builder.build()
