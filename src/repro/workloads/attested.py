"""Generator for attested Wasm applications (WASI-RA clients).

Produces walc source — compiled to Wasm — for an application that runs
the full WASI-RA flow of paper Fig. 2: handshake with a verifier whose
identity key is hard-coded in the (measured) binary, evidence generation,
and retrieval of the secret blob into linear memory.
"""

from __future__ import annotations

from repro.walc import compile_source

#: Linear-memory layout of the generated application.
VERIFIER_KEY_ADDR = 1024
HOST_ADDR = 1152
ANCHOR_ADDR = 1216
SECRET_ADDR = 4096


def _byte_list(data: bytes) -> str:
    return ", ".join(str(b) for b in data)


def attested_app_source(verifier_key: bytes, host: str, port: int,
                        secret_capacity: int,
                        extra_functions: str = "") -> str:
    """walc source for a WASI-RA client.

    ``secret_capacity`` sizes both the receive buffer and the module
    memory; ``extra_functions`` lets workloads (e.g. the Genann macro
    benchmark) append their own code operating on the received secret at
    ``SECRET_ADDR``.
    """
    if len(verifier_key) != 65:
        raise ValueError("verifier key must be an uncompressed P-256 point")
    host_bytes = host.encode("utf-8")
    pages = max(2, (SECRET_ADDR + secret_capacity + 65535) // 65536 + 1)
    return f"""
memory {pages} max {max(pages, 1024)};

// The verifier's identity key: part of the measured code image, so the
// verifier detects any attempt to redirect the application (paper SIV).
data {VERIFIER_KEY_ADDR} ({_byte_list(verifier_key)});
data {HOST_ADDR} ({_byte_list(host_bytes)});

import fn watz.wasi_ra_net_handshake(a: i32, b: i32, c: i32, d: i32, e: i32, f: i32) -> i32;
import fn watz.wasi_ra_collect_quote(a: i32, b: i32) -> i32;
import fn watz.wasi_ra_dispose_quote(a: i32);
import fn watz.wasi_ra_net_send_quote(a: i32, b: i32) -> i32;
import fn watz.wasi_ra_net_receive_data(a: i32, b: i32, c: i32) -> i32;
import fn watz.wasi_ra_net_dispose(a: i32);

var secret_size: i32 = 0;

export fn ra_handshake() -> i32 {{
  return wasi_ra_net_handshake({HOST_ADDR}, {len(host_bytes)}, {port},
                               {VERIFIER_KEY_ADDR}, 65, {ANCHOR_ADDR});
}}

export fn ra_collect_quote() -> i32 {{
  return wasi_ra_collect_quote({ANCHOR_ADDR}, 32);
}}

export fn ra_send_quote(ctx: i32, quote: i32) -> i32 {{
  return wasi_ra_net_send_quote(ctx, quote);
}}

export fn ra_receive_data(ctx: i32) -> i32 {{
  var n: i32 = wasi_ra_net_receive_data(ctx, {SECRET_ADDR}, {secret_capacity});
  if (n >= 0) {{ secret_size = n; }}
  return n;
}}

export fn ra_dispose(ctx: i32, quote: i32) {{
  wasi_ra_dispose_quote(quote);
  wasi_ra_net_dispose(ctx);
}}

// One-shot flow: returns the secret size, or a negative errno.
export fn attest() -> i32 {{
  var ctx: i32 = ra_handshake();
  if (ctx < 0) {{ return ctx; }}
  var quote: i32 = ra_collect_quote();
  if (quote < 0) {{ return quote; }}
  var rc: i32 = ra_send_quote(ctx, quote);
  if (rc != 0) {{ return 0 - rc; }}
  var n: i32 = ra_receive_data(ctx);
  ra_dispose(ctx, quote);
  return n;
}}

export fn secret_length() -> i32 {{ return secret_size; }}

export fn secret_byte(i: i32) -> i32 {{
  if (i < 0 || i >= secret_size) {{ return -1; }}
  return load_u8({SECRET_ADDR} + i);
}}

export fn secret_checksum() -> i32 {{
  var sum: i32 = 0;
  for (var i: i32 = 0; i < secret_size; i = i + 1) {{
    sum = (sum + load_u8({SECRET_ADDR} + i)) % 65536;
  }}
  return sum;
}}
{extra_functions}
"""


def build_attested_app(verifier_key: bytes, host: str, port: int,
                       secret_capacity: int = 1 << 20,
                       extra_functions: str = "") -> bytes:
    """Compile the attested application to a Wasm binary."""
    return compile_source(
        attested_app_source(verifier_key, host, port, secret_capacity,
                            extra_functions)
    )
