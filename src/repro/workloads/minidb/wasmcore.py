"""The Wasm build of the database engine core, authored in walc.

The paper compiles SQLite itself to Wasm with WASI-SDK; offline we cannot
compile C, so the Wasm side of Fig. 6 is this walc storage engine doing
the *same logical row operations* per test (appends, index maintenance,
binary-search lookups, range scans, sort, group, join). Payload "text"
columns are modelled as derived integers, which preserves the
work-per-row profile without a string library.

The index is a two-level structure — a linked list of sorted blocks of at
most 128 entries with in-block binary search and block splitting — i.e. a
height-2 B-tree, matching the O(log n)-ish maintenance cost of the B-tree
used by the Python engine. ORDER BY uses bottom-up merge sort.
"""

from __future__ import annotations

from repro.walc import compile_source

CAPACITY = 8192
BLOCK = 128          # entries per index block
MAX_BLOCKS = CAPACITY * 2 // BLOCK + 4


def dbcore_source(capacity: int = CAPACITY) -> str:
    c = capacity
    nblocks = c * 2 // BLOCK + 4
    keys, vals, pay, alive = 0, 4 * c, 8 * c, 12 * c
    # Index block storage: each block owns a fixed slot of BLOCK entries.
    idx_keys = 16 * c
    idx_rows = idx_keys + 4 * nblocks * BLOCK
    blk_len = idx_rows + 4 * nblocks * BLOCK
    blk_next = blk_len + 4 * nblocks
    t2_keys = blk_next + 4 * nblocks
    t2_vals = t2_keys + 4 * c
    scratch = t2_vals + 4 * c
    scratch2 = scratch + 4 * c
    total_bytes = scratch2 + 4 * c + 4096
    pages = total_bytes // 65536 + 2
    return f"""
memory {pages} max {pages * 4};

var count: i32 = 0;
var indexed: i32 = 0;
var idx_head: i32 = -1;     // first index block, -1 when empty
var blk_alloc: i32 = 0;     // bump allocator over block slots
var t2_count: i32 = 0;

// Deterministic pseudo-random key stream (speedtest1 randomises too).
fn prng(seed: i32) -> i32 {{
  return ((seed * 1103515245 + 12345) >> 8) & 0x7fffff;
}}

fn blk_key(b: i32, i: i32) -> i32 {{
  return load_i32({idx_keys} + (b * {BLOCK} + i) * 4);
}}

fn blk_row(b: i32, i: i32) -> i32 {{
  return load_i32({idx_rows} + (b * {BLOCK} + i) * 4);
}}

fn blk_set(b: i32, i: i32, key: i32, row: i32) {{
  store_i32({idx_keys} + (b * {BLOCK} + i) * 4, key);
  store_i32({idx_rows} + (b * {BLOCK} + i) * 4, row);
}}

fn blk_count(b: i32) -> i32 {{
  return load_i32({blk_len} + b * 4);
}}

fn blk_set_count(b: i32, n: i32) {{
  store_i32({blk_len} + b * 4, n);
}}

fn blk_succ(b: i32) -> i32 {{
  return load_i32({blk_next} + b * 4);
}}

fn blk_set_succ(b: i32, s: i32) {{
  store_i32({blk_next} + b * 4, s);
}}

fn blk_new() -> i32 {{
  var b: i32 = blk_alloc;
  blk_alloc = blk_alloc + 1;
  if (b >= {nblocks}) {{ unreachable(); }}
  blk_set_count(b, 0);
  blk_set_succ(b, -1);
  return b;
}}

export fn idx_reset() {{
  idx_head = -1;
  blk_alloc = 0;
}}

// The block whose range covers `key` (the first block whose max >= key),
// or the last block.
fn idx_find_block(key: i32) -> i32 {{
  var b: i32 = idx_head;
  while (b >= 0) {{
    var n: i32 = blk_count(b);
    if (n > 0 && blk_key(b, n - 1) >= key) {{ return b; }}
    if (blk_succ(b) < 0) {{ return b; }}
    b = blk_succ(b);
  }}
  return b;
}}

// First in-block position with key >= target.
fn blk_lower_bound(b: i32, key: i32) -> i32 {{
  var lo: i32 = 0;
  var hi: i32 = blk_count(b);
  while (lo < hi) {{
    var mid: i32 = (lo + hi) / 2;
    if (blk_key(b, mid) < key) {{ lo = mid + 1; }}
    else {{ hi = mid; }}
  }}
  return lo;
}}

fn idx_insert(key: i32, row: i32) {{
  if (idx_head < 0) {{
    idx_head = blk_new();
  }}
  var b: i32 = idx_find_block(key);
  if (blk_count(b) == {BLOCK}) {{
    // Split: move the upper half into a fresh linked block.
    var s: i32 = blk_new();
    var half: i32 = {BLOCK} / 2;
    var src_k: i32 = {idx_keys} + (b * {BLOCK} + half) * 4;
    var src_r: i32 = {idx_rows} + (b * {BLOCK} + half) * 4;
    var dst_k: i32 = {idx_keys} + s * {BLOCK} * 4;
    var dst_r: i32 = {idx_rows} + s * {BLOCK} * 4;
    for (var i: i32 = 0; i < half; i = i + 1) {{
      store_i32(dst_k + i * 4, load_i32(src_k + i * 4));
      store_i32(dst_r + i * 4, load_i32(src_r + i * 4));
    }}
    blk_set_count(s, half);
    blk_set_count(b, half);
    blk_set_succ(s, blk_succ(b));
    blk_set_succ(b, s);
    if (key > blk_key(b, half - 1)) {{ b = s; }}
  }}
  // Inlined binary search + shift over the block's key/row slots.
  var base_k: i32 = {idx_keys} + b * {BLOCK} * 4;
  var base_r: i32 = {idx_rows} + b * {BLOCK} * 4;
  var n: i32 = blk_count(b);
  var lo: i32 = 0;
  var hi: i32 = n;
  while (lo < hi) {{
    var mid: i32 = (lo + hi) / 2;
    if (load_i32(base_k + mid * 4) < key) {{ lo = mid + 1; }}
    else {{ hi = mid; }}
  }}
  var i: i32 = n;
  while (i > lo) {{
    store_i32(base_k + i * 4, load_i32(base_k + (i - 1) * 4));
    store_i32(base_r + i * 4, load_i32(base_r + (i - 1) * 4));
    i = i - 1;
  }}
  store_i32(base_k + lo * 4, key);
  store_i32(base_r + lo * 4, row);
  blk_set_count(b, n + 1);
}}

fn idx_delete(key: i32, row: i32) {{
  var b: i32 = idx_head;
  while (b >= 0) {{
    var n: i32 = blk_count(b);
    var base_k: i32 = {idx_keys} + b * {BLOCK} * 4;
    var base_r: i32 = {idx_rows} + b * {BLOCK} * 4;
    if (n > 0 && load_i32(base_k + (n - 1) * 4) >= key) {{
      var lo: i32 = 0;
      var hi: i32 = n;
      while (lo < hi) {{
        var mid: i32 = (lo + hi) / 2;
        if (load_i32(base_k + mid * 4) < key) {{ lo = mid + 1; }}
        else {{ hi = mid; }}
      }}
      while (lo < n && load_i32(base_k + lo * 4) == key) {{
        if (load_i32(base_r + lo * 4) == row) {{
          for (var i: i32 = lo; i < n - 1; i = i + 1) {{
            store_i32(base_k + i * 4, load_i32(base_k + (i + 1) * 4));
            store_i32(base_r + i * 4, load_i32(base_r + (i + 1) * 4));
          }}
          blk_set_count(b, n - 1);
          return;
        }}
        lo = lo + 1;
      }}
      // Duplicates may spill into the next block.
    }}
    b = blk_succ(b);
  }}
}}

export fn reset() {{
  count = 0;
  indexed = 0;
  idx_reset();
}}

export fn set_indexed(flag: i32) {{
  indexed = flag;
  if (flag != 0 && idx_head < 0) {{
    idx_head = blk_new();
  }}
}}

export fn row_count() -> i32 {{ return count; }}

// Insert n rows with keys in [0, key_range); payload derives from the key
// the way speedtest1 derives its text column from the row number.
export fn insert_many(n: i32, key_range: i32) -> i32 {{
  var inserted: i32 = 0;
  for (var i: i32 = 0; i < n; i = i + 1) {{
    var key: i32 = prng(count + i) % key_range;
    var row: i32 = count + i;
    store_i32({keys} + row * 4, key);
    store_i32({vals} + row * 4, (key * 3 + 7) % 1000);
    store_i32({pay} + row * 4, prng(key));
    store_i32({alive} + row * 4, 1);
    if (indexed != 0) {{
      idx_insert(key, row);
    }}
    inserted = inserted + 1;
  }}
  count = count + n;
  return inserted;
}}

export fn build_index() -> i32 {{
  idx_reset();
  idx_head = blk_new();
  var n: i32 = 0;
  for (var row: i32 = 0; row < count; row = row + 1) {{
    if (load_i32({alive} + row * 4) != 0) {{
      idx_insert(load_i32({keys} + row * 4), row);
      n = n + 1;
    }}
  }}
  indexed = 1;
  return n;
}}

// Range count through the index (SELECT ... WHERE key BETWEEN lo AND hi).
export fn lookup_count(lo: i32, hi: i32) -> i32 {{
  var n: i32 = 0;
  var b: i32 = idx_find_block(lo);
  if (b < 0) {{ return 0; }}
  var pos: i32 = blk_lower_bound(b, lo);
  while (b >= 0) {{
    while (pos < blk_count(b)) {{
      if (blk_key(b, pos) > hi) {{ return n; }}
      if (load_i32({alive} + blk_row(b, pos) * 4) != 0) {{ n = n + 1; }}
      pos = pos + 1;
    }}
    b = blk_succ(b);
    pos = 0;
  }}
  return n;
}}

// Full-scan range count (no usable index).
export fn scan_count(lo: i32, hi: i32) -> i32 {{
  var n: i32 = 0;
  for (var row: i32 = 0; row < count; row = row + 1) {{
    if (load_i32({alive} + row * 4) != 0) {{
      var v: i32 = load_i32({vals} + row * 4);
      if (v >= lo && v <= hi) {{ n = n + 1; }}
    }}
  }}
  return n;
}}

// Text-compare surrogate: payload residue filter (LIKE 'pattern%').
export fn scan_like(mask: i32, residue: i32) -> i32 {{
  var n: i32 = 0;
  for (var row: i32 = 0; row < count; row = row + 1) {{
    if (load_i32({alive} + row * 4) != 0) {{
      if (remu(load_i32({pay} + row * 4), mask) == residue) {{ n = n + 1; }}
    }}
  }}
  return n;
}}

// Disjunctive filter (WHERE v = a OR v = b OR key < c).
export fn scan_or(a: i32, b: i32, limit_key: i32) -> i32 {{
  var n: i32 = 0;
  for (var row: i32 = 0; row < count; row = row + 1) {{
    if (load_i32({alive} + row * 4) != 0) {{
      var v: i32 = load_i32({vals} + row * 4);
      if (v == a || v == b || load_i32({keys} + row * 4) < limit_key) {{
        n = n + 1;
      }}
    }}
  }}
  return n;
}}

// m point lookups via the index (SELECT ... WHERE key = ?).
export fn select_eq_sum(m: i32, key_range: i32) -> i32 {{
  var total: i32 = 0;
  for (var i: i32 = 0; i < m; i = i + 1) {{
    var key: i32 = prng(i * 17 + 3) % key_range;
    var b: i32 = idx_find_block(key);
    if (b >= 0) {{
      var pos: i32 = blk_lower_bound(b, key);
      while (b >= 0) {{
        if (pos >= blk_count(b)) {{
          b = blk_succ(b);
          pos = 0;
          continue;
        }}
        if (blk_key(b, pos) != key) {{ break; }}
        var row: i32 = blk_row(b, pos);
        if (load_i32({alive} + row * 4) != 0) {{
          total = (total + load_i32({vals} + row * 4)) % 1000000;
        }}
        pos = pos + 1;
      }}
    }}
  }}
  return total;
}}

// Range update via full scan (UPDATE ... WHERE val BETWEEN, no index).
export fn update_scan(lo: i32, hi: i32, delta: i32) -> i32 {{
  var n: i32 = 0;
  for (var row: i32 = 0; row < count; row = row + 1) {{
    if (load_i32({alive} + row * 4) != 0) {{
      var v: i32 = load_i32({vals} + row * 4);
      if (v >= lo && v <= hi) {{
        store_i32({vals} + row * 4, v + delta);
        n = n + 1;
      }}
    }}
  }}
  return n;
}}

// Key update through the index: matching rows are collected first, then
// re-keyed with full index maintenance.
export fn update_indexed(lo: i32, hi: i32, delta: i32) -> i32 {{
  var n: i32 = 0;
  var b: i32 = idx_find_block(lo);
  if (b >= 0) {{
    var pos: i32 = blk_lower_bound(b, lo);
    while (b >= 0) {{
      while (pos < blk_count(b)) {{
        if (blk_key(b, pos) > hi) {{ b = -1; break; }}
        var row: i32 = blk_row(b, pos);
        if (load_i32({alive} + row * 4) != 0) {{
          store_i32({scratch} + n * 4, row);
          n = n + 1;
        }}
        pos = pos + 1;
      }}
      if (b < 0) {{ break; }}
      b = blk_succ(b);
      pos = 0;
    }}
  }}
  for (var i: i32 = 0; i < n; i = i + 1) {{
    var row: i32 = load_i32({scratch} + i * 4);
    var key: i32 = load_i32({keys} + row * 4);
    idx_delete(key, row);
    store_i32({keys} + row * 4, key + delta);
    idx_insert(key + delta, row);
  }}
  return n;
}}

// Range delete: tombstones plus index maintenance when indexed.
export fn delete_range(lo: i32, hi: i32) -> i32 {{
  var n: i32 = 0;
  for (var row: i32 = 0; row < count; row = row + 1) {{
    if (load_i32({alive} + row * 4) != 0) {{
      var key: i32 = load_i32({keys} + row * 4);
      if (key >= lo && key <= hi) {{
        store_i32({alive} + row * 4, 0);
        if (indexed != 0) {{
          idx_delete(key, row);
        }}
        n = n + 1;
      }}
    }}
  }}
  return n;
}}

// ORDER BY: bottom-up merge sort of live values, then a checksum pass.
export fn order_by_checksum() -> i32 {{
  var m: i32 = 0;
  for (var row: i32 = 0; row < count; row = row + 1) {{
    if (load_i32({alive} + row * 4) != 0) {{
      store_i32({scratch} + m * 4, load_i32({vals} + row * 4));
      m = m + 1;
    }}
  }}
  var src: i32 = {scratch};
  var dst: i32 = {scratch2};
  var width: i32 = 1;
  while (width < m) {{
    var lo: i32 = 0;
    while (lo < m) {{
      var mid: i32 = lo + width;
      if (mid > m) {{ mid = m; }}
      var hi: i32 = lo + 2 * width;
      if (hi > m) {{ hi = m; }}
      var i: i32 = lo;
      var j: i32 = mid;
      var k: i32 = lo;
      while (i < mid && j < hi) {{
        if (load_i32(src + i * 4) <= load_i32(src + j * 4)) {{
          store_i32(dst + k * 4, load_i32(src + i * 4));
          i = i + 1;
        }} else {{
          store_i32(dst + k * 4, load_i32(src + j * 4));
          j = j + 1;
        }}
        k = k + 1;
      }}
      while (i < mid) {{
        store_i32(dst + k * 4, load_i32(src + i * 4));
        i = i + 1;
        k = k + 1;
      }}
      while (j < hi) {{
        store_i32(dst + k * 4, load_i32(src + j * 4));
        j = j + 1;
        k = k + 1;
      }}
      lo = hi;
    }}
    var tmp: i32 = src;
    src = dst;
    dst = tmp;
    width = width * 2;
  }}
  var sum: i32 = 0;
  for (var i: i32 = 0; i < m; i = i + 1) {{
    sum = (sum * 31 + load_i32(src + i * 4)) & 0xffffff;
  }}
  return sum;
}}

// GROUP BY val % buckets with SUM aggregates.
export fn group_sum(buckets: i32) -> i32 {{
  for (var b: i32 = 0; b < buckets; b = b + 1) {{
    store_i32({scratch} + b * 4, 0);
  }}
  for (var row: i32 = 0; row < count; row = row + 1) {{
    if (load_i32({alive} + row * 4) != 0) {{
      var v: i32 = load_i32({vals} + row * 4);
      var b: i32 = remu(v, buckets);
      store_i32({scratch} + b * 4, load_i32({scratch} + b * 4) + v);
    }}
  }}
  var sum: i32 = 0;
  for (var b: i32 = 0; b < buckets; b = b + 1) {{
    sum = (sum * 31 + load_i32({scratch} + b * 4)) & 0xffffff;
  }}
  return sum;
}}

// Second table for joins: sorted keys so the join probe can binary search.
export fn fill_join_table(n: i32) {{
  for (var i: i32 = 0; i < n; i = i + 1) {{
    store_i32({t2_keys} + i * 4, i * 2);
    store_i32({t2_vals} + i * 4, (i * 11 + 5) % 997);
  }}
  t2_count = n;
}}

export fn join_sum() -> i32 {{
  var total: i32 = 0;
  for (var row: i32 = 0; row < count; row = row + 1) {{
    if (load_i32({alive} + row * 4) != 0) {{
      var key: i32 = load_i32({keys} + row * 4);
      var lo: i32 = 0;
      var hi: i32 = t2_count;
      while (lo < hi) {{
        var mid: i32 = (lo + hi) / 2;
        if (load_i32({t2_keys} + mid * 4) < key) {{ lo = mid + 1; }}
        else {{ hi = mid; }}
      }}
      if (lo < t2_count && load_i32({t2_keys} + lo * 4) == key) {{
        total = (total + load_i32({t2_vals} + lo * 4)) % 1000000;
      }}
    }}
  }}
  return total;
}}

export fn count_alive() -> i32 {{
  var n: i32 = 0;
  for (var row: i32 = 0; row < count; row = row + 1) {{
    if (load_i32({alive} + row * 4) != 0) {{ n = n + 1; }}
  }}
  return n;
}}

// MIN/MAX through the index: both ends, repeated m times.
export fn min_max_sum(m: i32) -> i32 {{
  var total: i32 = 0;
  for (var i: i32 = 0; i < m; i = i + 1) {{
    var b: i32 = idx_head;
    if (b >= 0 && blk_count(b) > 0) {{
      var mn: i32 = blk_key(b, 0);
      var last: i32 = b;
      while (blk_succ(last) >= 0) {{ last = blk_succ(last); }}
      var mx: i32 = blk_key(last, blk_count(last) - 1);
      total = (total + mn + mx) % 1000000;
    }}
  }}
  return total;
}}
"""


def compile_dbcore(capacity: int = CAPACITY) -> bytes:
    """Compile the storage-engine core to a Wasm binary."""
    return compile_source(dbcore_source(capacity))
