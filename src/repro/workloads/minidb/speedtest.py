"""The Speedtest1-like benchmark suite (paper Fig. 6).

Each numbered test exists in two forms doing the same logical work:

* ``sql_*`` — SQL statements against the Python engine (the "native
  SQLite" build);
* ``wasm_calls`` — a sequence of exported-function calls against the walc
  storage-engine core (the "SQLite compiled to Wasm" build).

Test numbers follow the paper's Fig. 6 row labels; the paper classifies
130-145, 160-170, 260, 310, 320, 410, 510, 520 as read-mostly and
100-120, 180, 190, 210, 290, 300, 400, 500 as write-heavy, and this suite
keeps that split. The ``--size 60%`` scaling of the paper is applied by
the harness through the ``scale`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from repro.workloads.minidb.engine import Connection, connect

Calls = List[Tuple[str, tuple]]

#: Deterministic key stream shared with the walc core.
def _prng(seed: int) -> int:
    return ((seed * 1103515245 + 12345) >> 8) & 0x7FFFFF


@dataclass(frozen=True)
class SpeedTest:
    number: int
    name: str
    kind: str  # "read" | "write"
    #: Untimed SQL preparation (schema + population).
    sql_setup: Callable[[Connection, int], None]
    #: The timed SQL body.
    sql_run: Callable[[Connection, int], None]
    #: Untimed Wasm preparation calls.
    wasm_setup: Callable[[int], Calls]
    #: The timed Wasm calls.
    wasm_run: Callable[[int], Calls]


ALL_TESTS: List[SpeedTest] = []


def _register(test: SpeedTest) -> None:
    ALL_TESTS.append(test)


def _create_t1(db: Connection, indexed: bool) -> None:
    db.execute("CREATE TABLE t1(a INTEGER, b INTEGER, c TEXT)")
    if indexed:
        db.execute("CREATE INDEX t1a ON t1(a)")


def _populate_t1(db: Connection, n: int, indexed: bool) -> None:
    _create_t1(db, indexed)
    db.execute("BEGIN")
    for i in range(n):
        key = _prng(i) % (n * 2)
        db.execute("INSERT INTO t1 VALUES (?, ?, ?)",
                   (key, (key * 3 + 7) % 1000, f"payload {key:07d}"))
    db.execute("COMMIT")


def _insert_sql(db: Connection, n: int, transaction: bool) -> None:
    if transaction:
        db.execute("BEGIN")
    for i in range(n):
        key = _prng(i) % (n * 2)
        db.execute("INSERT INTO t1 VALUES (?, ?, ?)",
                   (key, (key * 3 + 7) % 1000, f"payload {key:07d}"))
    if transaction:
        db.execute("COMMIT")


# --- 100: INSERTs into an unindexed table --------------------------------------

_register(SpeedTest(
    100, "INSERTs into unindexed table", "write",
    sql_setup=lambda db, n: _create_t1(db, indexed=False),
    sql_run=lambda db, n: _insert_sql(db, n, transaction=False),
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (0,))],
    wasm_run=lambda n: [("insert_many", (n, n * 2))],
))

# --- 110: INSERTs inside a transaction ------------------------------------------

_register(SpeedTest(
    110, "INSERTs inside a transaction", "write",
    sql_setup=lambda db, n: _create_t1(db, indexed=False),
    sql_run=lambda db, n: _insert_sql(db, n, transaction=True),
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (0,))],
    wasm_run=lambda n: [("insert_many", (n, n * 2))],
))

# --- 120: INSERTs into an indexed table ------------------------------------------

_register(SpeedTest(
    120, "INSERTs into indexed table", "write",
    sql_setup=lambda db, n: _create_t1(db, indexed=True),
    sql_run=lambda db, n: _insert_sql(db, n, transaction=True),
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (1,))],
    wasm_run=lambda n: [("insert_many", (n, n * 2))],
))


# --- 130: range SELECTs without index --------------------------------------------

def _sql_130(db: Connection, n: int) -> None:
    reps = max(4, n // 100)
    for i in range(reps):
        low = (i * 29) % 900
        db.execute(
            "SELECT COUNT(*), SUM(b) FROM t1 WHERE b BETWEEN ? AND ?",
            (low, low + 50),
        )


_register(SpeedTest(
    130, "range SELECTs without index", "read",
    sql_setup=lambda db, n: _populate_t1(db, n, indexed=False),
    sql_run=_sql_130,
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (0,)),
                          ("insert_many", (n, n * 2))],
    wasm_run=lambda n: [("scan_count", ((i * 29) % 900, (i * 29) % 900 + 50))
                        for i in range(max(4, n // 100))],
))


# --- 140: text-compare SELECTs ----------------------------------------------------

def _sql_140(db: Connection, n: int) -> None:
    reps = max(4, n // 100)
    for i in range(reps):
        db.execute("SELECT COUNT(*) FROM t1 WHERE c LIKE ?",
                   (f"payload %{i % 10}",))


_register(SpeedTest(
    140, "text-compare SELECTs", "read",
    sql_setup=lambda db, n: _populate_t1(db, n, indexed=False),
    sql_run=_sql_140,
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (0,)),
                          ("insert_many", (n, n * 2))],
    wasm_run=lambda n: [("scan_like", (10, i % 10))
                        for i in range(max(4, n // 100))],
))


# --- 145: SELECTs with OR terms -----------------------------------------------------

def _sql_145(db: Connection, n: int) -> None:
    reps = max(4, n // 200)
    for i in range(reps):
        db.execute(
            "SELECT COUNT(*) FROM t1 WHERE b = ? OR b = ? OR a < ?",
            (i % 1000, (i * 7) % 1000, 50),
        )


_register(SpeedTest(
    145, "SELECTs with OR terms", "read",
    sql_setup=lambda db, n: _populate_t1(db, n, indexed=False),
    sql_run=_sql_145,
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (0,)),
                          ("insert_many", (n, n * 2))],
    wasm_run=lambda n: [("scan_or", (i % 1000, (i * 7) % 1000, 50))
                        for i in range(max(4, n // 200))],
))


# --- 160: point SELECTs via index ----------------------------------------------------

def _sql_160(db: Connection, n: int) -> None:
    reps = max(10, n)
    for i in range(reps):
        db.execute("SELECT b FROM t1 WHERE a = ?",
                   (_prng(i * 17 + 3) % (n * 2),))


_register(SpeedTest(
    160, "point SELECTs via index", "read",
    sql_setup=lambda db, n: _populate_t1(db, n, indexed=True),
    sql_run=_sql_160,
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (1,)),
                          ("insert_many", (n, n * 2))],
    wasm_run=lambda n: [("select_eq_sum", (max(10, n), n * 2))],
))


# --- 161: point SELECTs via unique index ----------------------------------------------

def _setup_161(db: Connection, n: int) -> None:
    db.execute("CREATE TABLE t1(a INTEGER PRIMARY KEY, b INTEGER, c TEXT)")
    db.execute("BEGIN")
    for i in range(n):
        db.execute("INSERT INTO t1 VALUES (?, ?, ?)",
                   (i, (i * 3 + 7) % 1000, f"payload {i:07d}"))
    db.execute("COMMIT")


def _sql_161(db: Connection, n: int) -> None:
    for i in range(max(10, n)):
        db.execute("SELECT b FROM t1 WHERE a = ?", (_prng(i) % n,))


_register(SpeedTest(
    161, "point SELECTs via unique index", "read",
    sql_setup=_setup_161,
    sql_run=_sql_161,
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (1,)),
                          ("insert_many", (n, n * 2))],
    wasm_run=lambda n: [("select_eq_sum", (max(10, n), n * 2))],
))


# --- 170: range SELECTs via index ------------------------------------------------------

def _sql_170(db: Connection, n: int) -> None:
    reps = max(10, n // 10)
    for i in range(reps):
        low = (i * 37) % (n * 2)
        db.execute("SELECT COUNT(*) FROM t1 WHERE a BETWEEN ? AND ?",
                   (low, low + 100))


_register(SpeedTest(
    170, "range SELECTs via index", "read",
    sql_setup=lambda db, n: _populate_t1(db, n, indexed=True),
    sql_run=_sql_170,
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (1,)),
                          ("insert_many", (n, n * 2))],
    wasm_run=lambda n: [("lookup_count", ((i * 37) % (n * 2),
                                          (i * 37) % (n * 2) + 100))
                        for i in range(max(10, n // 10))],
))


# --- 180: CREATE INDEX ---------------------------------------------------------------

_register(SpeedTest(
    180, "CREATE INDEX", "write",
    sql_setup=lambda db, n: _populate_t1(db, n, indexed=False),
    sql_run=lambda db, n: db.execute("CREATE INDEX t1a ON t1(a)"),
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (0,)),
                          ("insert_many", (n, n * 2))],
    wasm_run=lambda n: [("build_index", ())],
))


# --- 190: range DELETEs without index ---------------------------------------------------

def _sql_190(db: Connection, n: int) -> None:
    for i in range(10):
        low = i * (n // 5)
        db.execute("DELETE FROM t1 WHERE a BETWEEN ? AND ?",
                   (low, low + n // 10))


_register(SpeedTest(
    190, "range DELETEs without index", "write",
    sql_setup=lambda db, n: _populate_t1(db, n, indexed=False),
    sql_run=_sql_190,
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (0,)),
                          ("insert_many", (n, n * 2))],
    wasm_run=lambda n: [("delete_range", (i * (n // 5), i * (n // 5) + n // 10))
                        for i in range(10)],
))


# --- 210: range DELETEs with index -------------------------------------------------------

_register(SpeedTest(
    210, "range DELETEs with index", "write",
    sql_setup=lambda db, n: _populate_t1(db, n, indexed=True),
    sql_run=_sql_190,
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (1,)),
                          ("insert_many", (n, n * 2))],
    wasm_run=lambda n: [("delete_range", (i * (n // 5), i * (n // 5) + n // 10))
                        for i in range(10)],
))


# --- 260: ORDER BY ------------------------------------------------------------------------

_register(SpeedTest(
    260, "ORDER BY full table", "read",
    sql_setup=lambda db, n: _populate_t1(db, n, indexed=False),
    sql_run=lambda db, n: db.execute("SELECT b FROM t1 ORDER BY b"),
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (0,)),
                          ("insert_many", (n, n * 2))],
    wasm_run=lambda n: [("order_by_checksum", ())],
))


# --- 290: range UPDATEs without index ---------------------------------------------------------

def _sql_290(db: Connection, n: int) -> None:
    for i in range(10):
        low = (i * 97) % 900
        db.execute("UPDATE t1 SET b = b + 1 WHERE b BETWEEN ? AND ?",
                   (low, low + 50))


_register(SpeedTest(
    290, "range UPDATEs without index", "write",
    sql_setup=lambda db, n: _populate_t1(db, n, indexed=False),
    sql_run=_sql_290,
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (0,)),
                          ("insert_many", (n, n * 2))],
    wasm_run=lambda n: [("update_scan", ((i * 97) % 900, (i * 97) % 900 + 50, 1))
                        for i in range(10)],
))


# --- 300: key UPDATEs with index ------------------------------------------------------------------

def _sql_300(db: Connection, n: int) -> None:
    for i in range(10):
        low = (i * 211) % (n * 2)
        db.execute("UPDATE t1 SET a = a + ? WHERE a BETWEEN ? AND ?",
                   (n * 4, low, low + n // 20))


_register(SpeedTest(
    300, "key UPDATEs with index", "write",
    sql_setup=lambda db, n: _populate_t1(db, n, indexed=True),
    sql_run=_sql_300,
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (1,)),
                          ("insert_many", (n, n * 2))],
    wasm_run=lambda n: [("update_indexed", ((i * 211) % (n * 2),
                                            (i * 211) % (n * 2) + n // 20,
                                            n * 4))
                        for i in range(10)],
))


# --- 310: GROUP BY ---------------------------------------------------------------------------------

_register(SpeedTest(
    310, "GROUP BY aggregate", "read",
    sql_setup=lambda db, n: _populate_t1(db, n, indexed=False),
    sql_run=lambda db, n: db.execute(
        "SELECT b % 32, COUNT(*), SUM(b) FROM t1 GROUP BY b % 32"),
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (0,)),
                          ("insert_many", (n, n * 2))],
    wasm_run=lambda n: [("group_sum", (32,))],
))


# --- 320: JOIN --------------------------------------------------------------------------------------

def _setup_320(db: Connection, n: int) -> None:
    _populate_t1(db, n, indexed=False)
    db.execute("CREATE TABLE t2(x INTEGER PRIMARY KEY, y INTEGER)")
    db.execute("BEGIN")
    for i in range(n):
        db.execute("INSERT INTO t2 VALUES (?, ?)", (i * 2, (i * 11 + 5) % 997))
    db.execute("COMMIT")


_register(SpeedTest(
    320, "indexed JOIN", "read",
    sql_setup=_setup_320,
    sql_run=lambda db, n: db.execute(
        "SELECT COUNT(*), SUM(t2.y) FROM t1 JOIN t2 ON t2.x = t1.a"),
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (0,)),
                          ("insert_many", (n, n * 2)),
                          ("fill_join_table", (n,))],
    wasm_run=lambda n: [("join_sum", ())],
))


# --- 400: full-table UPDATE ----------------------------------------------------------------------------

_register(SpeedTest(
    400, "full-table UPDATE", "write",
    sql_setup=lambda db, n: _populate_t1(db, n, indexed=False),
    sql_run=lambda db, n: db.execute("UPDATE t1 SET b = b + 1"),
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (0,)),
                          ("insert_many", (n, n * 2))],
    wasm_run=lambda n: [("update_scan", (-1, 1 << 30, 1))],
))


# --- 410: SELECT with IN list ----------------------------------------------------------------------------

def _sql_410(db: Connection, n: int) -> None:
    reps = max(4, n // 200)
    for i in range(reps):
        db.execute(
            "SELECT COUNT(*) FROM t1 WHERE b IN (?, ?, ?, ?)",
            (i % 1000, (i * 3) % 1000, (i * 7) % 1000, (i * 13) % 1000),
        )


_register(SpeedTest(
    410, "SELECTs with IN list", "read",
    sql_setup=lambda db, n: _populate_t1(db, n, indexed=False),
    sql_run=_sql_410,
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (0,)),
                          ("insert_many", (n, n * 2))],
    wasm_run=lambda n: [("scan_or", (i % 1000, (i * 3) % 1000, 0))
                        for i in range(max(4, n // 200))],
))


# --- 500: DROP TABLE and repopulate --------------------------------------------------------------------------

def _sql_500(db: Connection, n: int) -> None:
    db.execute("DROP TABLE t1")
    _create_t1(db, indexed=False)
    _insert_sql(db, n // 2, transaction=True)


_register(SpeedTest(
    500, "DROP TABLE and repopulate", "write",
    sql_setup=lambda db, n: _populate_t1(db, n, indexed=False),
    sql_run=_sql_500,
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (0,)),
                          ("insert_many", (n, n * 2))],
    wasm_run=lambda n: [("reset", ()), ("set_indexed", (0,)),
                        ("insert_many", (n // 2, n))],
))


# --- 510: COUNT(*) scans -----------------------------------------------------------------------------------------

def _sql_510(db: Connection, n: int) -> None:
    for _ in range(10):
        db.execute("SELECT COUNT(*) FROM t1 WHERE b >= 0")


_register(SpeedTest(
    510, "COUNT(*) full scans", "read",
    sql_setup=lambda db, n: _populate_t1(db, n, indexed=False),
    sql_run=_sql_510,
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (0,)),
                          ("insert_many", (n, n * 2))],
    wasm_run=lambda n: [("count_alive", ())] * 10,
))


# --- 520: MIN/MAX via index -------------------------------------------------------------------------------------------

def _sql_520(db: Connection, n: int) -> None:
    for _ in range(max(10, n // 5)):
        db.execute("SELECT MIN(a), MAX(a) FROM t1 WHERE a BETWEEN ? AND ?",
                   (0, 1 << 30))


_register(SpeedTest(
    520, "MIN/MAX via index", "read",
    sql_setup=lambda db, n: _populate_t1(db, n, indexed=True),
    sql_run=_sql_520,
    wasm_setup=lambda n: [("reset", ()), ("set_indexed", (1,)),
                          ("insert_many", (n, n * 2))],
    wasm_run=lambda n: [("min_max_sum", (max(10, n // 5),))],
))


READ_TESTS = tuple(t.number for t in ALL_TESTS if t.kind == "read")
WRITE_TESTS = tuple(t.number for t in ALL_TESTS if t.kind == "write")


def run_sql_test(test: SpeedTest, scale: int) -> "Connection":
    """Run one test against a fresh Python engine (setup untimed upstream)."""
    db = connect()
    test.sql_setup(db, scale)
    test.sql_run(db, scale)
    return db
