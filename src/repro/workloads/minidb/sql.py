"""SQL front end of the mini database: lexer, AST, parser.

Covers the dialect the Speedtest1-like suite needs: CREATE/DROP TABLE,
CREATE [UNIQUE] INDEX, INSERT, SELECT (joins, WHERE, GROUP BY, ORDER BY,
LIMIT, aggregates, LIKE, IN, BETWEEN), UPDATE, DELETE and transactions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.errors import SqlError

_KEYWORDS = {
    "select", "from", "where", "insert", "into", "values", "update", "set",
    "delete", "create", "drop", "table", "index", "unique", "on", "and",
    "or", "not", "like", "in", "between", "is", "null", "order", "by",
    "group", "limit", "asc", "desc", "join", "inner", "as", "integer",
    "real", "text", "primary", "key", "begin", "commit", "rollback",
    "count", "sum", "avg", "min", "max", "distinct", "having",
}


@dataclass(frozen=True)
class Token:
    kind: str  # "kw" | "name" | "num" | "str" | "op" | "eof"
    text: str
    value: Any = None


def tokenize(sql: str) -> List[Token]:
    tokens: List[Token] = []
    position = 0
    size = len(sql)
    while position < size:
        char = sql[position]
        if char.isspace():
            position += 1
            continue
        if char == "-" and sql.startswith("--", position):
            end = sql.find("\n", position)
            position = size if end == -1 else end
            continue
        if char.isdigit() or (char == "." and position + 1 < size
                              and sql[position + 1].isdigit()):
            start = position
            seen_dot = False
            while position < size and (sql[position].isdigit()
                                       or (sql[position] == "." and not seen_dot)):
                if sql[position] == ".":
                    seen_dot = True
                position += 1
            text = sql[start:position]
            value = float(text) if seen_dot else int(text)
            tokens.append(Token("num", text, value))
            continue
        if char == "'":
            position += 1
            chunks = []
            while True:
                if position >= size:
                    raise SqlError("unterminated string literal")
                if sql[position] == "'":
                    if position + 1 < size and sql[position + 1] == "'":
                        chunks.append("'")
                        position += 2
                        continue
                    position += 1
                    break
                chunks.append(sql[position])
                position += 1
            text = "".join(chunks)
            tokens.append(Token("str", text, text))
            continue
        if char.isalpha() or char == "_":
            start = position
            while position < size and (sql[position].isalnum()
                                       or sql[position] == "_"):
                position += 1
            text = sql[start:position]
            lowered = text.lower()
            if lowered in _KEYWORDS:
                tokens.append(Token("kw", lowered))
            else:
                tokens.append(Token("name", text))
            continue
        for operator in ("<>", "<=", ">=", "!=", "==", "(", ")", ",", "*",
                         "=", "<", ">", "+", "-", "/", ".", ";", "%", "?"):
            if sql.startswith(operator, position):
                tokens.append(Token("op", operator))
                position += len(operator)
                break
        else:
            raise SqlError(f"unexpected character {char!r} in SQL")
    tokens.append(Token("eof", ""))
    return tokens


# -- AST -------------------------------------------------------------------


@dataclass
class Literal:
    value: Any


@dataclass
class Parameter:
    """A ``?`` placeholder, bound at execution time (prepared statements)."""

    index: int


@dataclass
class ColumnRef:
    table: Optional[str]
    name: str


@dataclass
class Star:
    pass


@dataclass
class BinaryOp:
    operator: str
    left: Any
    right: Any


@dataclass
class UnaryOp:
    operator: str
    operand: Any


@dataclass
class LikeOp:
    operand: Any
    pattern: Any
    negated: bool = False


@dataclass
class InOp:
    operand: Any
    options: List[Any] = field(default_factory=list)
    negated: bool = False


@dataclass
class BetweenOp:
    operand: Any
    low: Any
    high: Any
    negated: bool = False


@dataclass
class IsNullOp:
    operand: Any
    negated: bool = False


@dataclass
class Aggregate:
    func: str  # count | sum | avg | min | max
    argument: Any  # expression or Star for COUNT(*)
    distinct: bool = False


@dataclass
class SelectItem:
    expr: Any
    alias: Optional[str] = None


@dataclass
class JoinClause:
    table: str
    alias: Optional[str]
    condition: Any


@dataclass
class Select:
    items: List[SelectItem]
    table: Optional[str] = None
    alias: Optional[str] = None
    joins: List[JoinClause] = field(default_factory=list)
    where: Any = None
    group_by: List[Any] = field(default_factory=list)
    having: Any = None
    order_by: List[Tuple[Any, bool]] = field(default_factory=list)  # (expr, desc)
    limit: Optional[int] = None


@dataclass
class ColumnDef:
    name: str
    type: str
    primary_key: bool = False


@dataclass
class CreateTable:
    name: str
    columns: List[ColumnDef]


@dataclass
class CreateIndex:
    name: str
    table: str
    column: str
    unique: bool = False


@dataclass
class DropTable:
    name: str


@dataclass
class DropIndex:
    name: str


@dataclass
class Insert:
    table: str
    columns: Optional[List[str]]
    rows: List[List[Any]]  # rows of expressions


@dataclass
class Update:
    table: str
    assignments: List[Tuple[str, Any]]
    where: Any = None


@dataclass
class Delete:
    table: str
    where: Any = None


@dataclass
class Begin:
    pass


@dataclass
class Commit:
    pass


@dataclass
class Rollback:
    pass


# -- parser -------------------------------------------------------------------


class Parser:
    def __init__(self, sql: str) -> None:
        self.tokens = tokenize(sql)
        self.position = 0
        self.parameter_count = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.current
        if token.kind == kind and (text is None or token.text == text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._accept(kind, text)
        if token is None:
            raise SqlError(
                f"expected {text or kind}, found {self.current.text!r}"
            )
        return token

    def _name(self) -> str:
        token = self.current
        if token.kind == "name":
            return self._advance().text
        # Unreserved keywords usable as identifiers.
        if token.kind == "kw" and token.text in ("key", "index", "count"):
            return self._advance().text
        raise SqlError(f"expected a name, found {token.text!r}")

    # -- statements ------------------------------------------------------------

    def parse_statement(self):
        token = self.current
        if token.kind != "kw":
            raise SqlError(f"expected a statement, found {token.text!r}")
        statement = {
            "select": self._select,
            "insert": self._insert,
            "update": self._update,
            "delete": self._delete,
            "create": self._create,
            "drop": self._drop,
            "begin": lambda: (self._advance(), Begin())[1],
            "commit": lambda: (self._advance(), Commit())[1],
            "rollback": lambda: (self._advance(), Rollback())[1],
        }.get(token.text)
        if statement is None:
            raise SqlError(f"unsupported statement {token.text!r}")
        result = statement()
        self._accept("op", ";")
        if self.current.kind != "eof":
            raise SqlError(f"trailing tokens after statement: "
                           f"{self.current.text!r}")
        return result

    def _create(self):
        self._expect("kw", "create")
        unique = bool(self._accept("kw", "unique"))
        if self._accept("kw", "table"):
            if unique:
                raise SqlError("UNIQUE applies to indices, not tables")
            name = self._name()
            self._expect("op", "(")
            columns = []
            while True:
                col_name = self._name()
                type_token = self.current
                if type_token.kind == "kw" and type_token.text in (
                        "integer", "real", "text"):
                    self._advance()
                    col_type = type_token.text
                else:
                    col_type = "integer"
                primary = False
                if self._accept("kw", "primary"):
                    self._expect("kw", "key")
                    primary = True
                columns.append(ColumnDef(col_name, col_type, primary))
                if self._accept("op", ")"):
                    break
                self._expect("op", ",")
            return CreateTable(name, columns)
        self._expect("kw", "index")
        index_name = self._name()
        self._expect("kw", "on")
        table = self._name()
        self._expect("op", "(")
        column = self._name()
        self._expect("op", ")")
        return CreateIndex(index_name, table, column, unique)

    def _drop(self):
        self._expect("kw", "drop")
        if self._accept("kw", "table"):
            return DropTable(self._name())
        self._expect("kw", "index")
        return DropIndex(self._name())

    def _insert(self):
        self._expect("kw", "insert")
        self._expect("kw", "into")
        table = self._name()
        columns = None
        if self._accept("op", "("):
            columns = []
            while True:
                columns.append(self._name())
                if self._accept("op", ")"):
                    break
                self._expect("op", ",")
        self._expect("kw", "values")
        rows = []
        while True:
            self._expect("op", "(")
            row = []
            while True:
                row.append(self._expression())
                if self._accept("op", ")"):
                    break
                self._expect("op", ",")
            rows.append(row)
            if not self._accept("op", ","):
                break
        return Insert(table, columns, rows)

    def _update(self):
        self._expect("kw", "update")
        table = self._name()
        self._expect("kw", "set")
        assignments = []
        while True:
            column = self._name()
            self._expect("op", "=")
            assignments.append((column, self._expression()))
            if not self._accept("op", ","):
                break
        where = None
        if self._accept("kw", "where"):
            where = self._expression()
        return Update(table, assignments, where)

    def _delete(self):
        self._expect("kw", "delete")
        self._expect("kw", "from")
        table = self._name()
        where = None
        if self._accept("kw", "where"):
            where = self._expression()
        return Delete(table, where)

    def _select(self):
        self._expect("kw", "select")
        items = []
        while True:
            if self._accept("op", "*"):
                items.append(SelectItem(Star()))
            else:
                expr = self._expression()
                alias = None
                if self._accept("kw", "as"):
                    alias = self._name()
                items.append(SelectItem(expr, alias))
            if not self._accept("op", ","):
                break
        select = Select(items)
        if self._accept("kw", "from"):
            select.table = self._name()
            if self.current.kind == "name":
                select.alias = self._advance().text
            while self._accept("kw", "join") or (
                    self._accept("kw", "inner") and self._expect("kw", "join")):
                table = self._name()
                alias = None
                if self.current.kind == "name":
                    alias = self._advance().text
                self._expect("kw", "on")
                condition = self._expression()
                select.joins.append(JoinClause(table, alias, condition))
        if self._accept("kw", "where"):
            select.where = self._expression()
        if self._accept("kw", "group"):
            self._expect("kw", "by")
            while True:
                select.group_by.append(self._expression())
                if not self._accept("op", ","):
                    break
            if self._accept("kw", "having"):
                select.having = self._expression()
        if self._accept("kw", "order"):
            self._expect("kw", "by")
            while True:
                expr = self._expression()
                descending = False
                if self._accept("kw", "desc"):
                    descending = True
                else:
                    self._accept("kw", "asc")
                select.order_by.append((expr, descending))
                if not self._accept("op", ","):
                    break
        if self._accept("kw", "limit"):
            token = self._expect("num")
            select.limit = int(token.value)
        return select

    # -- expressions (precedence climbing) ----------------------------------------

    def _expression(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self._accept("kw", "or"):
            left = BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self):
        left = self._not_expr()
        while self._accept("kw", "and"):
            left = BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self):
        if self._accept("kw", "not"):
            return UnaryOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self):
        left = self._additive()
        token = self.current
        if token.kind == "op" and token.text in ("=", "==", "<>", "!=", "<",
                                                 "<=", ">", ">="):
            self._advance()
            operator = {"==": "=", "!=": "<>"}.get(token.text, token.text)
            return BinaryOp(operator, left, self._additive())
        negated = False
        if token.kind == "kw" and token.text == "not":
            lookahead = self.tokens[self.position + 1]
            if lookahead.kind == "kw" and lookahead.text in (
                    "like", "in", "between"):
                self._advance()
                negated = True
                token = self.current
        if token.kind == "kw" and token.text == "like":
            self._advance()
            return LikeOp(left, self._additive(), negated)
        if token.kind == "kw" and token.text == "in":
            self._advance()
            self._expect("op", "(")
            options = []
            while True:
                options.append(self._expression())
                if self._accept("op", ")"):
                    break
                self._expect("op", ",")
            return InOp(left, options, negated)
        if token.kind == "kw" and token.text == "between":
            self._advance()
            low = self._additive()
            self._expect("kw", "and")
            return BetweenOp(left, low, self._additive(), negated)
        if token.kind == "kw" and token.text == "is":
            self._advance()
            is_negated = bool(self._accept("kw", "not"))
            self._expect("kw", "null")
            return IsNullOp(left, is_negated)
        return left

    def _additive(self):
        left = self._multiplicative()
        while True:
            token = self.current
            if token.kind == "op" and token.text in ("+", "-"):
                self._advance()
                left = BinaryOp(token.text, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self):
        left = self._unary()
        while True:
            token = self.current
            if token.kind == "op" and token.text in ("*", "/", "%"):
                self._advance()
                left = BinaryOp(token.text, left, self._unary())
            else:
                return left

    def _unary(self):
        if self._accept("op", "-"):
            return UnaryOp("-", self._unary())
        return self._primary()

    def _primary(self):
        token = self.current
        if token.kind == "op" and token.text == "?":
            self._advance()
            parameter = Parameter(self.parameter_count)
            self.parameter_count += 1
            return parameter
        if token.kind == "num" or token.kind == "str":
            self._advance()
            return Literal(token.value)
        if token.kind == "kw" and token.text == "null":
            self._advance()
            return Literal(None)
        if token.kind == "kw" and token.text in ("count", "sum", "avg",
                                                 "min", "max"):
            func = self._advance().text
            self._expect("op", "(")
            distinct = bool(self._accept("kw", "distinct"))
            if self._accept("op", "*"):
                argument = Star()
            else:
                argument = self._expression()
            self._expect("op", ")")
            return Aggregate(func, argument, distinct)
        if token.kind == "name":
            name = self._advance().text
            if self._accept("op", "."):
                return ColumnRef(name, self._name())
            return ColumnRef(None, name)
        if self._accept("op", "("):
            expr = self._expression()
            self._expect("op", ")")
            return expr
        raise SqlError(f"unexpected token {token.text!r} in expression")


def parse(sql: str):
    """Parse one SQL statement."""
    return Parser(sql).parse_statement()
