"""A B-tree, the index structure of the mini database.

SQLite stores both tables and indices as B-trees; this module provides the
same substrate for :mod:`repro.workloads.minidb`. Keys are Python values
ordered with SQLite-like semantics (None < numbers < text); values are row
identifiers. Duplicate keys are supported unless the tree is unique.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import SqlError

ORDER = 32  # max children per interior node
_MAX_KEYS = ORDER - 1
_MIN_KEYS = _MAX_KEYS // 2


def key_rank(value: Any) -> Tuple[int, Any]:
    """Total order over SQL values: NULL < numeric < text."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    raise SqlError(f"unorderable value {value!r}")


class _Node:
    __slots__ = ("keys", "values", "children", "leaf")

    def __init__(self, leaf: bool) -> None:
        self.keys: List[Tuple] = []    # (rank, rowid) pairs for ordering
        self.values: List[Tuple[Any, int]] = []  # (key, rowid)
        self.children: List["_Node"] = []
        self.leaf = leaf


class BTree:
    """A B-tree mapping (key, rowid) pairs, ordered by key then rowid."""

    def __init__(self, unique: bool = False) -> None:
        self._root = _Node(leaf=True)
        self.unique = unique
        self.size = 0

    # Composite ordering key: rowid breaks ties among duplicates.
    @staticmethod
    def _composite(key: Any, rowid: int) -> Tuple:
        return (key_rank(key), rowid)

    # -- insertion -------------------------------------------------------------

    def insert(self, key: Any, rowid: int) -> None:
        if self.unique and self.contains_key(key):
            raise SqlError(f"UNIQUE constraint violated for key {key!r}")
        root = self._root
        if len(root.keys) == _MAX_KEYS:
            new_root = _Node(leaf=False)
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
        self._insert_nonfull(self._root, key, rowid)
        self.size += 1

    def _split_child(self, parent: _Node, index: int) -> None:
        child = parent.children[index]
        sibling = _Node(leaf=child.leaf)
        middle = _MAX_KEYS // 2
        parent.keys.insert(index, child.keys[middle])
        parent.values.insert(index, child.values[middle])
        sibling.keys = child.keys[middle + 1 :]
        sibling.values = child.values[middle + 1 :]
        child.keys = child.keys[:middle]
        child.values = child.values[:middle]
        if not child.leaf:
            sibling.children = child.children[middle + 1 :]
            child.children = child.children[: middle + 1]
        parent.children.insert(index + 1, sibling)

    def _insert_nonfull(self, node: _Node, key: Any, rowid: int) -> None:
        composite = self._composite(key, rowid)
        while True:
            index = _bisect(node.keys, composite)
            if node.leaf:
                node.keys.insert(index, composite)
                node.values.insert(index, (key, rowid))
                return
            child = node.children[index]
            if len(child.keys) == _MAX_KEYS:
                self._split_child(node, index)
                if composite > node.keys[index]:
                    index += 1
                child = node.children[index]
            node = child

    # -- deletion ---------------------------------------------------------------

    def delete(self, key: Any, rowid: int) -> bool:
        """Remove one (key, rowid) entry; returns whether it existed."""
        removed = self._delete(self._root, self._composite(key, rowid))
        if removed:
            self.size -= 1
            if not self._root.leaf and not self._root.keys:
                self._root = self._root.children[0]
        return removed

    def _delete(self, node: _Node, composite: Tuple) -> bool:
        index = _bisect(node.keys, composite)
        if index < len(node.keys) and node.keys[index] == composite:
            if node.leaf:
                node.keys.pop(index)
                node.values.pop(index)
                return True
            # Replace by predecessor from the left subtree.
            predecessor = node.children[index]
            while not predecessor.leaf:
                predecessor = predecessor.children[-1]
            node.keys[index] = predecessor.keys[-1]
            node.values[index] = predecessor.values[-1]
            removed = self._delete(node.children[index], predecessor.keys[-1])
            self._rebalance(node, index)
            return removed
        if node.leaf:
            return False
        removed = self._delete(node.children[index], composite)
        self._rebalance(node, index)
        return removed

    def _rebalance(self, parent: _Node, index: int) -> None:
        child = parent.children[index]
        if len(child.keys) >= _MIN_KEYS:
            return
        # Borrow from the left sibling.
        if index > 0 and len(parent.children[index - 1].keys) > _MIN_KEYS:
            left = parent.children[index - 1]
            child.keys.insert(0, parent.keys[index - 1])
            child.values.insert(0, parent.values[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            parent.values[index - 1] = left.values.pop()
            if not child.leaf:
                child.children.insert(0, left.children.pop())
            return
        # Borrow from the right sibling.
        if (index < len(parent.children) - 1
                and len(parent.children[index + 1].keys) > _MIN_KEYS):
            right = parent.children[index + 1]
            child.keys.append(parent.keys[index])
            child.values.append(parent.values[index])
            parent.keys[index] = right.keys.pop(0)
            parent.values[index] = right.values.pop(0)
            if not child.leaf:
                child.children.append(right.children.pop(0))
            return
        # Merge with a sibling.
        if index > 0:
            left_index = index - 1
        else:
            left_index = index
        left = parent.children[left_index]
        right = parent.children[left_index + 1]
        left.keys.append(parent.keys.pop(left_index))
        left.values.append(parent.values.pop(left_index))
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        left.children.extend(right.children)
        parent.children.pop(left_index + 1)

    # -- lookup ----------------------------------------------------------------

    def contains_key(self, key: Any) -> bool:
        for _ in self.scan_key(key):
            return True
        return False

    def scan_key(self, key: Any) -> Iterator[int]:
        """Row ids of all entries with exactly ``key``."""
        rank = key_rank(key)
        yield from (rowid for entry_key, rowid
                    in self._scan(rank, rank, True, True)
                    if True)

    def scan_range(self, low: Any, high: Any,
                   include_low: bool = True,
                   include_high: bool = True) -> Iterator[Tuple[Any, int]]:
        """(key, rowid) pairs with low <= key <= high (None = unbounded)."""
        low_rank = key_rank(low) if low is not None else None
        high_rank = key_rank(high) if high is not None else None
        yield from self._scan(low_rank, high_rank, include_low, include_high)

    def _scan(self, low_rank, high_rank, include_low, include_high):
        stack: List[Tuple[_Node, int]] = []
        node = self._root
        # Descend to the first candidate.
        while True:
            if low_rank is None:
                index = 0
            else:
                index = _bisect(node.keys, (low_rank, -1))
            stack.append((node, index))
            if node.leaf:
                break
            node = node.children[index]
        while stack:
            node, index = stack.pop()
            if node.leaf:
                for position in range(index, len(node.keys)):
                    entry = node.values[position]
                    if not self._in_range(node.keys[position][0],
                                          low_rank, high_rank,
                                          include_low, include_high):
                        if high_rank is not None \
                                and node.keys[position][0] > high_rank:
                            return
                        continue
                    yield entry
            else:
                if index < len(node.keys):
                    rank = node.keys[index][0]
                    if high_rank is not None and rank > high_rank:
                        if self._in_range(rank, low_rank, high_rank,
                                          include_low, include_high):
                            yield node.values[index]
                        return
                    if self._in_range(rank, low_rank, high_rank,
                                      include_low, include_high):
                        yield node.values[index]
                    stack.append((node, index + 1))
                    child = node.children[index + 1]
                    while True:
                        stack.append((child, 0))
                        if child.leaf:
                            break
                        child = child.children[0]
                    # Re-enter the loop from the new leaf.
                    continue

    @staticmethod
    def _in_range(rank, low_rank, high_rank, include_low, include_high) -> bool:
        if low_rank is not None:
            if rank < low_rank:
                return False
            if rank == low_rank and not include_low:
                return False
        if high_rank is not None:
            if rank > high_rank:
                return False
            if rank == high_rank and not include_high:
                return False
        return True

    def items(self) -> Iterator[Tuple[Any, int]]:
        """All (key, rowid) pairs in key order."""
        yield from self._scan(None, None, True, True)

    def min_key(self) -> Optional[Any]:
        for key, _rowid in self.items():
            return key
        return None

    def max_key(self) -> Optional[Any]:
        node = self._root
        while not node.leaf:
            node = node.children[-1]
        if not node.values:
            return None
        return node.values[-1][0]


def _bisect(keys: List[Tuple], composite: Tuple) -> int:
    low, high = 0, len(keys)
    while low < high:
        middle = (low + high) // 2
        if keys[middle] < composite:
            low = middle + 1
        else:
            high = middle
    return low
