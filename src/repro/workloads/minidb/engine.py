"""Execution engine of the mini database.

A heap of rows per table plus B-tree indices, an expression evaluator with
SQLite-ish semantics (NULL propagation, LIKE, three-valued logic kept
two-valued for simplicity), an access-path planner that uses an index for
equality and range predicates, nested-loop joins with index acceleration,
grouping, ordering and aggregates, and undo-log transactions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import SqlError
from repro.workloads.minidb import sql as ast
from repro.workloads.minidb.btree import BTree, key_rank
from repro.workloads.minidb.sql import parse


@dataclass
class IndexInfo:
    name: str
    table: str
    column: str
    unique: bool
    tree: BTree


class Table:
    """Row storage: dict rowid -> tuple, plus column metadata."""

    def __init__(self, name: str, columns: List[ast.ColumnDef]) -> None:
        self.name = name
        self.columns = columns
        self.column_positions = {c.name: i for i, c in enumerate(columns)}
        self.rows: Dict[int, Tuple] = {}
        self.next_rowid = 1
        self.indices: List[IndexInfo] = []

    def position(self, column: str) -> int:
        try:
            return self.column_positions[column]
        except KeyError:
            raise SqlError(
                f"no column {column!r} in table {self.name!r}"
            ) from None


class _Undo:
    """Undo log entries for transaction rollback."""

    __slots__ = ("apply",)

    def __init__(self, apply: Callable[[], None]) -> None:
        self.apply = apply


class Connection:
    """The public API: ``execute`` SQL, fetch rows, manage transactions."""

    def __init__(self) -> None:
        self.tables: Dict[str, Table] = {}
        self.indices: Dict[str, IndexInfo] = {}
        self._in_transaction = False
        self._undo: List[_Undo] = []
        #: Prepared-statement cache, keyed by SQL text (SQLite's
        #: speedtest1 reuses prepared statements the same way).
        self._statement_cache: Dict[str, Any] = {}
        #: Statements executed (the Speedtest harness reports this).
        self.statements_executed = 0

    # -- public API --------------------------------------------------------------

    def execute(self, sql_text: str, parameters: Iterable[Any] = ()) -> List[Tuple]:
        """Execute one statement; returns result rows for SELECT.

        Statements are prepared once per SQL text and re-executed with
        fresh ``?`` bindings, like SQLite prepared statements.
        """
        statement = self._statement_cache.get(sql_text)
        if statement is None:
            statement = parse(sql_text)
            self._statement_cache[sql_text] = statement
        _PARAMETERS.values = list(parameters)
        self.statements_executed += 1
        handler = {
            ast.CreateTable: self._create_table,
            ast.CreateIndex: self._create_index,
            ast.DropTable: self._drop_table,
            ast.DropIndex: self._drop_index,
            ast.Insert: self._insert,
            ast.Update: self._update,
            ast.Delete: self._delete,
            ast.Select: self._selectstmt,
            ast.Begin: self._begin,
            ast.Commit: self._commit,
            ast.Rollback: self._rollback,
        }[type(statement)]
        return handler(statement)

    # -- DDL ---------------------------------------------------------------------

    def _create_table(self, statement: ast.CreateTable) -> List[Tuple]:
        if statement.name in self.tables:
            raise SqlError(f"table {statement.name!r} already exists")
        table = Table(statement.name, statement.columns)
        self.tables[statement.name] = table
        for column in statement.columns:
            if column.primary_key:
                self._add_index(
                    f"pk_{statement.name}_{column.name}",
                    table, column.name, unique=True,
                )
        if self._in_transaction:
            name = statement.name
            self._undo.append(_Undo(lambda: self.tables.pop(name, None)))
        return []

    def _add_index(self, name: str, table: Table, column: str,
                   unique: bool) -> IndexInfo:
        if name in self.indices:
            raise SqlError(f"index {name!r} already exists")
        position = table.position(column)
        info = IndexInfo(name, table.name, column, unique, BTree(unique))
        for rowid, row in table.rows.items():
            info.tree.insert(row[position], rowid)
        table.indices.append(info)
        self.indices[name] = info
        return info

    def _create_index(self, statement: ast.CreateIndex) -> List[Tuple]:
        table = self._table(statement.table)
        info = self._add_index(statement.name, table, statement.column,
                               statement.unique)
        if self._in_transaction:
            self._undo.append(_Undo(lambda: self._remove_index(info)))
        return []

    def _remove_index(self, info: IndexInfo) -> None:
        self.indices.pop(info.name, None)
        table = self.tables.get(info.table)
        if table is not None and info in table.indices:
            table.indices.remove(info)

    def _drop_table(self, statement: ast.DropTable) -> List[Tuple]:
        table = self._table(statement.name)
        for info in list(table.indices):
            self._remove_index(info)
        del self.tables[statement.name]
        return []

    def _drop_index(self, statement: ast.DropIndex) -> List[Tuple]:
        info = self.indices.get(statement.name)
        if info is None:
            raise SqlError(f"no index named {statement.name!r}")
        self._remove_index(info)
        return []

    # -- DML ---------------------------------------------------------------------

    def _table(self, name: str) -> Table:
        table = self.tables.get(name)
        if table is None:
            raise SqlError(f"no table named {name!r}")
        return table

    def _insert(self, statement: ast.Insert) -> List[Tuple]:
        table = self._table(statement.table)
        if statement.columns is None:
            positions = list(range(len(table.columns)))
        else:
            positions = [table.position(c) for c in statement.columns]
        for row_exprs in statement.rows:
            if len(row_exprs) != len(positions):
                raise SqlError("INSERT value count mismatch")
            row = [None] * len(table.columns)
            for position, expr in zip(positions, row_exprs):
                row[position] = _evaluate(expr, _EMPTY_SCOPE)
            row = tuple(_coerce(table.columns[i], v)
                        for i, v in enumerate(row))
            rowid = table.next_rowid
            table.next_rowid += 1
            for info in table.indices:
                info.tree.insert(row[table.position(info.column)], rowid)
            table.rows[rowid] = row
            if self._in_transaction:
                self._undo.append(_Undo(
                    lambda t=table, rid=rowid, r=row: self._undo_insert(t, rid, r)
                ))
        return []

    def _undo_insert(self, table: Table, rowid: int, row: Tuple) -> None:
        if rowid in table.rows:
            del table.rows[rowid]
            for info in table.indices:
                info.tree.delete(row[table.position(info.column)], rowid)

    def _delete(self, statement: ast.Delete) -> List[Tuple]:
        table = self._table(statement.table)
        victims = list(self._candidate_rows(table, statement.where, None))
        deleted = 0
        for rowid, row in victims:
            scope = _RowScope(table, None, row)
            if statement.where is not None \
                    and not _truthy(_evaluate(statement.where, scope)):
                continue
            del table.rows[rowid]
            for info in table.indices:
                info.tree.delete(row[table.position(info.column)], rowid)
            deleted += 1
            if self._in_transaction:
                self._undo.append(_Undo(
                    lambda t=table, rid=rowid, r=row: self._undo_delete(t, rid, r)
                ))
        return [(deleted,)]

    def _undo_delete(self, table: Table, rowid: int, row: Tuple) -> None:
        table.rows[rowid] = row
        for info in table.indices:
            info.tree.insert(row[table.position(info.column)], rowid)

    def _update(self, statement: ast.Update) -> List[Tuple]:
        table = self._table(statement.table)
        victims = list(self._candidate_rows(table, statement.where, None))
        assignments = [(table.position(c), expr)
                       for c, expr in statement.assignments]
        updated = 0
        for rowid, row in victims:
            scope = _RowScope(table, None, row)
            if statement.where is not None \
                    and not _truthy(_evaluate(statement.where, scope)):
                continue
            new_row = list(row)
            for position, expr in assignments:
                new_row[position] = _coerce(
                    table.columns[position], _evaluate(expr, scope)
                )
            new_row = tuple(new_row)
            for info in table.indices:
                position = table.position(info.column)
                if row[position] != new_row[position]:
                    info.tree.delete(row[position], rowid)
                    info.tree.insert(new_row[position], rowid)
            table.rows[rowid] = new_row
            updated += 1
            if self._in_transaction:
                self._undo.append(_Undo(
                    lambda t=table, rid=rowid, r=row:
                        self._undo_update(t, rid, r)
                ))
        return [(updated,)]

    def _undo_update(self, table: Table, rowid: int, old: Tuple) -> None:
        current = table.rows.get(rowid)
        if current is None:
            return
        for info in table.indices:
            position = table.position(info.column)
            if current[position] != old[position]:
                info.tree.delete(current[position], rowid)
                info.tree.insert(old[position], rowid)
        table.rows[rowid] = old

    # -- transactions -----------------------------------------------------------

    def _begin(self, _statement) -> List[Tuple]:
        if self._in_transaction:
            raise SqlError("nested transactions are not supported")
        self._in_transaction = True
        self._undo = []
        return []

    def _commit(self, _statement) -> List[Tuple]:
        if not self._in_transaction:
            raise SqlError("COMMIT outside a transaction")
        self._in_transaction = False
        self._undo = []
        return []

    def _rollback(self, _statement) -> List[Tuple]:
        if not self._in_transaction:
            raise SqlError("ROLLBACK outside a transaction")
        for entry in reversed(self._undo):
            entry.apply()
        self._in_transaction = False
        self._undo = []
        return []

    # -- access paths -------------------------------------------------------------

    def _candidate_rows(self, table: Table, where, alias: Optional[str]
                        ) -> Iterable[Tuple[int, Tuple]]:
        """Rows to consider, using an index when the WHERE allows it."""
        path = _index_path(table, where, alias)
        if path is None:
            return list(table.rows.items())
        info, low, high, include_low, include_high = path
        rowids = [rowid for _key, rowid
                  in info.tree.scan_range(low, high, include_low, include_high)]
        return [(rowid, table.rows[rowid]) for rowid in rowids
                if rowid in table.rows]

    # -- SELECT ---------------------------------------------------------------------

    def _selectstmt(self, statement: ast.Select) -> List[Tuple]:
        if statement.table is None:
            scope = _EMPTY_SCOPE
            return [tuple(_evaluate(item.expr, scope)
                          for item in statement.items)]
        table = self._table(statement.table)
        alias = statement.alias or statement.table

        # SQLite-style planner fast path: MIN/MAX of an indexed column
        # reads the B-tree ends instead of materialising any rows.
        if not statement.group_by and not statement.joins:
            fast = self._min_max_fast_path(statement, table)
            if fast is not None:
                return fast

        scopes: List["_JoinScope"] = []
        for rowid, row in self._candidate_rows(table, statement.where,
                                               alias):
            scopes.append(_JoinScope({alias: (table, row)}))

        for join in statement.joins:
            joined = self._table(join.table)
            join_alias = join.alias or join.table
            scopes = list(self._join(scopes, joined, join_alias,
                                     join.condition))

        if statement.where is not None:
            scopes = [s for s in scopes
                      if _truthy(_evaluate(statement.where, s))]

        has_aggregates = any(
            _contains_aggregate(item.expr) for item in statement.items
        )

        if statement.group_by:
            rows = self._grouped(statement, scopes)
        elif has_aggregates:
            rows = [tuple(_evaluate_aggregate(item.expr, scopes)
                          for item in statement.items)]
        else:
            rows = []
            for scope in scopes:
                out = []
                for item in statement.items:
                    if isinstance(item.expr, ast.Star):
                        out.extend(scope.star_values())
                    else:
                        out.append(_evaluate(item.expr, scope))
                rows.append(tuple(out))
            if statement.order_by:
                rows = self._ordered(statement, scopes)

        if statement.order_by and (statement.group_by or has_aggregates):
            # Order the computed rows by output position when possible.
            pass
        if statement.limit is not None:
            rows = rows[: statement.limit]
        return rows

    def _min_max_fast_path(self, statement: ast.Select,
                           table: Table) -> Optional[List[Tuple]]:
        """Serve pure MIN/MAX-of-indexed-column selects from index ends.

        Applies when every select item is MIN(col) or MAX(col) on one
        indexed column and the WHERE clause (if any) only constrains that
        same column with range predicates subsumed by the index bounds.
        """
        column = None
        for item in statement.items:
            expr = item.expr
            if not isinstance(expr, ast.Aggregate) \
                    or expr.func not in ("min", "max") \
                    or not isinstance(expr.argument, ast.ColumnRef):
                return None
            name = expr.argument.name
            if column is None:
                column = name
            elif column != name:
                return None
        index = None
        for info in table.indices:
            if info.column == column:
                index = info
                break
        if index is None:
            return None
        minimum = index.tree.min_key()
        maximum = index.tree.max_key()
        if statement.where is not None:
            # Only a simple range on the same column that subsumes the
            # index bounds qualifies (e.g. BETWEEN 0 AND huge); anything
            # tighter falls back to the generic path.
            if not _is_simple_range(statement.where, table,
                                    statement.alias, column):
                return None
            constraints = _collect_constraints(statement.where, table,
                                               statement.alias)
            bounds = constraints.get(column)
            if bounds is None:
                return None
            low, high, _include_low, _include_high = bounds
            if minimum is not None and low is not None \
                    and key_rank(low) > key_rank(minimum):
                return None
            if maximum is not None and high is not None \
                    and key_rank(high) < key_rank(maximum):
                return None
        row = tuple(
            minimum if item.expr.func == "min" else maximum
            for item in statement.items
        )
        return [row]

    def _ordered(self, statement: ast.Select, scopes) -> List[Tuple]:
        decorated = []
        for scope in scopes:
            sort_key = tuple(
                (key_rank(_evaluate(expr, scope)), descending)
                for expr, descending in statement.order_by
            )
            out = []
            for item in statement.items:
                if isinstance(item.expr, ast.Star):
                    out.extend(scope.star_values())
                else:
                    out.append(_evaluate(item.expr, scope))
            decorated.append((sort_key, tuple(out)))
        # Mixed ASC/DESC: sort per key from the last to the first.
        for position in range(len(statement.order_by) - 1, -1, -1):
            descending = statement.order_by[position][1]
            decorated.sort(key=lambda pair, p=position: pair[0][p][0],
                           reverse=descending)
        return [row for _key, row in decorated]

    def _grouped(self, statement: ast.Select, scopes) -> List[Tuple]:
        groups: Dict[Tuple, List] = {}
        order: List[Tuple] = []
        for scope in scopes:
            key = tuple(key_rank(_evaluate(e, scope))
                        for e in statement.group_by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(scope)
        rows = []
        for key in sorted(order):
            members = groups[key]
            if statement.having is not None:
                having_value = _evaluate_aggregate(statement.having, members)
                if not _truthy(having_value):
                    continue
            rows.append(tuple(
                _evaluate_aggregate(item.expr, members)
                for item in statement.items
            ))
        return rows

    def _join(self, scopes, table: Table, alias: str, condition):
        equality = _join_equality(condition, alias, table)
        index = None
        if equality is not None:
            column, outer_expr = equality
            for info in table.indices:
                if info.column == column:
                    index = (info, outer_expr)
                    break
        for scope in scopes:
            if index is not None:
                info, outer_expr = index
                key = _evaluate(outer_expr, scope)
                for rowid in info.tree.scan_key(key):
                    row = table.rows.get(rowid)
                    if row is None:
                        continue
                    merged = scope.extended(alias, table, row)
                    if _truthy(_evaluate(condition, merged)):
                        yield merged
            else:
                for row in table.rows.values():
                    merged = scope.extended(alias, table, row)
                    if _truthy(_evaluate(condition, merged)):
                        yield merged


# -- scopes ----------------------------------------------------------------------


class _JoinScope:
    """Column resolution over one or more (alias -> row) bindings."""

    __slots__ = ("bindings",)

    def __init__(self, bindings: Dict[str, Tuple[Table, Tuple]]) -> None:
        self.bindings = bindings

    def extended(self, alias: str, table: Table, row: Tuple) -> "_JoinScope":
        merged = dict(self.bindings)
        merged[alias] = (table, row)
        return _JoinScope(merged)

    def resolve(self, table_name: Optional[str], column: str):
        if table_name is not None:
            binding = self.bindings.get(table_name)
            if binding is None:
                raise SqlError(f"unknown table alias {table_name!r}")
            table, row = binding
            return row[table.position(column)]
        for table, row in self.bindings.values():
            position = table.column_positions.get(column)
            if position is not None:
                return row[position]
        raise SqlError(f"unknown column {column!r}")

    def star_values(self) -> List[Any]:
        out: List[Any] = []
        for table, row in self.bindings.values():
            out.extend(row)
        return out


class _RowScope(_JoinScope):
    def __init__(self, table: Table, alias: Optional[str], row: Tuple) -> None:
        super().__init__({alias or table.name: (table, row)})


class _EmptyScope(_JoinScope):
    def __init__(self) -> None:
        super().__init__({})


_EMPTY_SCOPE = _EmptyScope()


# -- expression evaluation ----------------------------------------------------------


def _truthy(value: Any) -> bool:
    return bool(value) and value is not None


def _coerce(column: ast.ColumnDef, value: Any) -> Any:
    if value is None:
        return None
    if column.type == "integer":
        return int(value)
    if column.type == "real":
        return float(value)
    if column.type == "text":
        return str(value)
    return value


class _ParameterBindings:
    """Current ``?`` bindings; single-threaded execution makes this safe."""

    def __init__(self) -> None:
        self.values: List[Any] = []


_PARAMETERS = _ParameterBindings()


def _evaluate(expr, scope: _JoinScope) -> Any:
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Parameter):
        try:
            return _PARAMETERS.values[expr.index]
        except IndexError:
            raise SqlError("missing binding for ? parameter") from None
    if isinstance(expr, ast.ColumnRef):
        return scope.resolve(expr.table, expr.name)
    if isinstance(expr, ast.UnaryOp):
        operand = _evaluate(expr.operand, scope)
        if expr.operator == "-":
            return None if operand is None else -operand
        return int(not _truthy(operand))
    if isinstance(expr, ast.BinaryOp):
        return _evaluate_binary(expr, scope)
    if isinstance(expr, ast.LikeOp):
        value = _evaluate(expr.operand, scope)
        pattern = _evaluate(expr.pattern, scope)
        if value is None or pattern is None:
            return None
        matched = _like(str(value), str(pattern))
        return int(matched != expr.negated)
    if isinstance(expr, ast.InOp):
        value = _evaluate(expr.operand, scope)
        options = [_evaluate(option, scope) for option in expr.options]
        matched = value in options
        return int(matched != expr.negated)
    if isinstance(expr, ast.BetweenOp):
        value = _evaluate(expr.operand, scope)
        low = _evaluate(expr.low, scope)
        high = _evaluate(expr.high, scope)
        if value is None or low is None or high is None:
            return None
        matched = (key_rank(low) <= key_rank(value) <= key_rank(high))
        return int(matched != expr.negated)
    if isinstance(expr, ast.IsNullOp):
        value = _evaluate(expr.operand, scope)
        return int((value is None) != expr.negated)
    if isinstance(expr, ast.Aggregate):
        raise SqlError("aggregate used outside an aggregating context")
    if isinstance(expr, ast.Star):
        raise SqlError("* is only valid in SELECT lists and COUNT(*)")
    raise SqlError(f"unsupported expression {type(expr).__name__}")


def _evaluate_binary(expr: ast.BinaryOp, scope: _JoinScope) -> Any:
    operator = expr.operator
    if operator == "and":
        left = _evaluate(expr.left, scope)
        if not _truthy(left):
            return 0
        return int(_truthy(_evaluate(expr.right, scope)))
    if operator == "or":
        left = _evaluate(expr.left, scope)
        if _truthy(left):
            return 1
        return int(_truthy(_evaluate(expr.right, scope)))
    left = _evaluate(expr.left, scope)
    right = _evaluate(expr.right, scope)
    if left is None or right is None:
        return None
    if operator == "=":
        return int(left == right)
    if operator == "<>":
        return int(left != right)
    if operator in ("<", "<=", ">", ">="):
        lrank, rrank = key_rank(left), key_rank(right)
        return int({
            "<": lrank < rrank,
            "<=": lrank <= rrank,
            ">": lrank > rrank,
            ">=": lrank >= rrank,
        }[operator])
    if operator == "+":
        if isinstance(left, str) or isinstance(right, str):
            return str(left) + str(right)
        return left + right
    if operator == "-":
        return left - right
    if operator == "*":
        return left * right
    if operator == "/":
        if right == 0:
            return None  # SQLite yields NULL on division by zero
        if isinstance(left, int) and isinstance(right, int):
            return left // right
        return left / right
    if operator == "%":
        if right == 0:
            return None
        return left % right
    raise SqlError(f"unsupported operator {operator!r}")


def _like(value: str, pattern: str) -> bool:
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, value, re.IGNORECASE) is not None


def _contains_aggregate(expr) -> bool:
    if isinstance(expr, ast.Aggregate):
        return True
    if isinstance(expr, ast.BinaryOp):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return _contains_aggregate(expr.operand)
    return False


def _evaluate_aggregate(expr, scopes) -> Any:
    if isinstance(expr, ast.Aggregate):
        if isinstance(expr.argument, ast.Star):
            if expr.func != "count":
                raise SqlError("* argument is only valid for COUNT")
            return len(scopes)
        values = [_evaluate(expr.argument, s) for s in scopes]
        values = [v for v in values if v is not None]
        if expr.distinct:
            seen = []
            for value in values:
                if value not in seen:
                    seen.append(value)
            values = seen
        if expr.func == "count":
            return len(values)
        if not values:
            return None
        if expr.func == "sum":
            return sum(values)
        if expr.func == "avg":
            return sum(values) / len(values)
        if expr.func == "min":
            return min(values, key=key_rank)
        return max(values, key=key_rank)
    if isinstance(expr, ast.BinaryOp):
        left = _evaluate_aggregate(expr.left, scopes)
        right = _evaluate_aggregate(expr.right, scopes)
        return _evaluate_binary(
            ast.BinaryOp(expr.operator, ast.Literal(left), ast.Literal(right)),
            _EMPTY_SCOPE,
        )
    if isinstance(expr, ast.UnaryOp):
        value = _evaluate_aggregate(expr.operand, scopes)
        return _evaluate(ast.UnaryOp(expr.operator, ast.Literal(value)),
                         _EMPTY_SCOPE)
    # Non-aggregate expression inside a group: evaluate on a representative.
    if scopes:
        return _evaluate(expr, scopes[0])
    return None


# -- index path selection ---------------------------------------------------------


def _index_path(table: Table, where, alias: Optional[str]):
    """Find (index, low, high, incl_low, incl_high) usable for ``where``."""
    if where is None or not table.indices:
        return None
    constraints = _collect_constraints(where, table, alias)
    for info in table.indices:
        bounds = constraints.get(info.column)
        if bounds is not None:
            low, high, include_low, include_high = bounds
            return info, low, high, include_low, include_high
    return None


def _collect_constraints(where, table: Table, alias: Optional[str]):
    """Map column -> (low, high, incl_low, incl_high) from AND-ed terms."""
    constraints: Dict[str, List] = {}

    def visit(node):
        if isinstance(node, ast.BinaryOp) and node.operator == "and":
            visit(node.left)
            visit(node.right)
            return
        if isinstance(node, ast.BetweenOp) and not node.negated:
            column = _plain_column(node.operand, table, alias)
            low = _constant_value(node.low)
            high = _constant_value(node.high)
            if column and low is not _NO_VALUE and high is not _NO_VALUE:
                _merge(constraints, column, low, True, high, True)
            return
        if isinstance(node, ast.BinaryOp) and node.operator in (
                "=", "<", "<=", ">", ">="):
            column = _plain_column(node.left, table, alias)
            value = _constant_value(node.right)
            operator = node.operator
            if column is None:
                column = _plain_column(node.right, table, alias)
                value = _constant_value(node.left)
                operator = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(
                    operator, operator)
            if column is None or value is _NO_VALUE:
                return
            if operator == "=":
                _merge(constraints, column, value, True, value, True)
            elif operator == "<":
                _merge(constraints, column, None, True, value, False)
            elif operator == "<=":
                _merge(constraints, column, None, True, value, True)
            elif operator == ">":
                _merge(constraints, column, value, False, None, True)
            elif operator == ">=":
                _merge(constraints, column, value, True, None, True)

    visit(where)
    return {
        column: tuple(bounds) for column, bounds in constraints.items()
    }


def _merge(constraints, column, low, include_low, high, include_high):
    current = constraints.get(column)
    if current is None:
        constraints[column] = [low, high, include_low, include_high]
        return
    if low is not None:
        if current[0] is None or key_rank(low) > key_rank(current[0]):
            current[0] = low
            current[2] = include_low
    if high is not None:
        if current[1] is None or key_rank(high) < key_rank(current[1]):
            current[1] = high
            current[3] = include_high


def _is_simple_range(where, table: Table, alias: Optional[str],
                     column: str) -> bool:
    """True when ``where`` is only AND-ed range terms on ``column``."""
    if isinstance(where, ast.BinaryOp) and where.operator == "and":
        return (_is_simple_range(where.left, table, alias, column)
                and _is_simple_range(where.right, table, alias, column))
    if isinstance(where, ast.BetweenOp) and not where.negated:
        return _plain_column(where.operand, table, alias) == column
    if isinstance(where, ast.BinaryOp) and where.operator in (
            "<", "<=", ">", ">="):
        return (_plain_column(where.left, table, alias) == column
                or _plain_column(where.right, table, alias) == column)
    return False


_NO_VALUE = object()


def _constant_value(expr):
    """The runtime value of a literal or bound parameter, else _NO_VALUE."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Parameter):
        try:
            return _PARAMETERS.values[expr.index]
        except IndexError:
            return _NO_VALUE
    return _NO_VALUE


def _plain_column(expr, table: Table, alias: Optional[str]) -> Optional[str]:
    if not isinstance(expr, ast.ColumnRef):
        return None
    if expr.table is not None and expr.table not in (table.name, alias):
        return None
    if expr.name not in table.column_positions:
        return None
    return expr.name


def _join_equality(condition, alias: str, table: Table):
    """Detect ``inner.col = outer_expr`` patterns for index joins."""
    if not isinstance(condition, ast.BinaryOp) or condition.operator != "=":
        return None
    for inner, outer in ((condition.left, condition.right),
                         (condition.right, condition.left)):
        if isinstance(inner, ast.ColumnRef) and inner.table == alias \
                and inner.name in table.column_positions:
            return inner.name, outer
    return None


def connect() -> Connection:
    """Open a new in-memory database (the paper runs in-memory only)."""
    return Connection()
