"""Synthetic datasets for the macro benchmarks.

The paper trains Genann on the UCI Iris dataset (150 records, 4 features,
3 classes, 4.45 kB) replicated up to 1 MB. The UCI file is not available
offline, so we generate an *Iris-like* dataset: three Gaussian classes in
4 dimensions around the canonical species means, 50 records per class,
from a deterministic PRNG — identical record layout and identical code
paths through the training loop (DESIGN.md substitution table).
"""

from __future__ import annotations

import math
import struct
from typing import List, Tuple

Record = Tuple[Tuple[float, float, float, float], int]

#: Class means close to the published per-species feature means.
_CLASS_MEANS = (
    (5.0, 3.4, 1.5, 0.2),   # setosa-like
    (5.9, 2.8, 4.3, 1.3),   # versicolor-like
    (6.6, 3.0, 5.6, 2.0),   # virginica-like
)
_CLASS_STD = (0.35, 0.30, 0.45, 0.20)

RECORDS_PER_CLASS = 50
RECORD_STRUCT = struct.Struct("<4di")  # 4 features + label = 36 bytes
RECORD_SIZE = RECORD_STRUCT.size


class _Prng:
    """A small deterministic generator (xorshift) with a Box–Muller tail."""

    def __init__(self, seed: int) -> None:
        self._state = seed & 0xFFFFFFFF or 1
        self._spare = None

    def uniform(self) -> float:
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._state = x
        return x / 4294967296.0

    def gaussian(self) -> float:
        if self._spare is not None:
            value = self._spare
            self._spare = None
            return value
        u1 = max(self.uniform(), 1e-12)
        u2 = self.uniform()
        radius = math.sqrt(-2.0 * math.log(u1))
        self._spare = radius * math.sin(2.0 * math.pi * u2)
        return radius * math.cos(2.0 * math.pi * u2)


def iris_like_records(seed: int = 42) -> List[Record]:
    """150 records: 50 per class, deterministic for a given seed."""
    prng = _Prng(seed)
    records: List[Record] = []
    for label, means in enumerate(_CLASS_MEANS):
        for _ in range(RECORDS_PER_CLASS):
            features = tuple(
                round(max(0.1, mean + _CLASS_STD[i] * prng.gaussian()), 2)
                for i, mean in enumerate(means)
            )
            records.append((features, label))
    return records


def encode_records(records: List[Record]) -> bytes:
    """Binary encoding consumed by both the Python and walc ANNs."""
    return b"".join(
        RECORD_STRUCT.pack(*features, label) for features, label in records
    )


def decode_records(payload: bytes) -> List[Record]:
    if len(payload) % RECORD_SIZE:
        raise ValueError("payload is not a whole number of records")
    records = []
    for offset in range(0, len(payload), RECORD_SIZE):
        *features, label = RECORD_STRUCT.unpack_from(payload, offset)
        records.append((tuple(features), label))
    return records


def dataset_of_size(target_bytes: int, seed: int = 42) -> bytes:
    """Replicate the base dataset up to ~``target_bytes`` (paper §VI-F)."""
    base = encode_records(iris_like_records(seed))
    copies = max(1, target_bytes // len(base))
    blob = base * copies
    remainder = target_bytes - len(blob)
    if remainder >= RECORD_SIZE:
        blob += base[: (remainder // RECORD_SIZE) * RECORD_SIZE]
    return blob
