"""The Wasm build of the Genann benchmark, authored in walc.

Generates the ANN functions (4-4-3 topology, sigmoid, backprop) operating
on records laid out in linear memory — the layout of
:mod:`repro.workloads.datasets` (4 little-endian f64 features + one i32
label = 36 bytes). Composed with the WASI-RA client skeleton
(:mod:`repro.workloads.attested`) the records arrive through the secure
channel; the normal-world baseline reads them from a regular file
through the WASI file system (``ann_load_file``).

The LCG weight initialisation and the range-reduced exp mirror the Python
build exactly, so the two produce bit-identical weights after training.
"""

from __future__ import annotations

from repro.walc import compile_source
from repro.workloads.attested import SECRET_ADDR, attested_app_source
from repro.workloads.polybench.kernels_medley import _EXP_WALC

INPUTS = 4
HIDDEN = 4
OUTPUTS = 3
TOTAL_WEIGHTS = (INPUTS + 1) * HIDDEN + (HIDDEN + 1) * OUTPUTS
RECORD_SIZE = 36


DATASET_FILENAME = "iris.bin"


def ann_functions(data_addr: int, data_capacity: int) -> str:
    """walc source for the ANN, with the dataset at ``data_addr``."""
    weights = (data_addr + data_capacity + 63) & ~63
    hidden_out = weights + TOTAL_WEIGHTS * 8
    output = hidden_out + HIDDEN * 8
    hidden_offset = (INPUTS + 1) * HIDDEN
    filename_bytes = ", ".join(str(b) for b in DATASET_FILENAME.encode())
    return f"""
data 480 ({filename_bytes});  // the dataset file name

import fn wasi_snapshot_preview1.path_open(a: i32, b: i32, c: i32, d: i32,
                                           e: i32, f: i64, g: i64, h: i32,
                                           i: i32) -> i32;
import fn wasi_snapshot_preview1.fd_read(a: i32, b: i32, c: i32, d: i32) -> i32;
import fn wasi_snapshot_preview1.fd_close(a: i32) -> i32;

// The WAMR-baseline path of Fig. 8: the dataset "is fetched from a
// regular file" — read it through WASI into the data area.
export fn ann_load_file() -> i32 {{
  var rc: i32 = path_open(3, 0, 480, {len(DATASET_FILENAME.encode())}, 0,
                          0L, 0L, 0, 64);
  if (rc != 0) {{ return 0 - rc; }}
  var fd: i32 = load_i32(64);
  var total: i32 = 0;
  while (total < {data_capacity}) {{
    store_i32(0, {data_addr} + total);   // iov base
    store_i32(4, 65536);                  // iov len
    rc = fd_read(fd, 0, 1, 16);
    if (rc != 0) {{ fd_close(fd); return 0 - rc; }}
    var n: i32 = load_i32(16);
    if (n == 0) {{ break; }}
    total = total + n;
  }}
  fd_close(fd);
  return total;
}}
{_EXP_WALC}

fn sigmoid(x: f64) -> f64 {{
  if (x < -45.0) {{ return 0.0; }}
  if (x > 45.0) {{ return 1.0; }}
  return 1.0 / (1.0 + exp_shared(0.0 - x));
}}

export fn ann_init(seed: i32) {{
  var state: i32 = seed & 0x7fffffff;
  if (state == 0) {{ state = 1; }}
  for (var w: i32 = 0; w < {TOTAL_WEIGHTS}; w = w + 1) {{
    state = (state * 1103515245 + 12345) & 0x7fffffff;
    store_f64({weights} + w * 8,
              ((((state >> 8) % 10000) as f64) / 10000.0) - 0.5);
  }}
}}

fn ann_run(rec: i32) {{
  var pos: i32 = 0;
  for (var h: i32 = 0; h < {HIDDEN}; h = h + 1) {{
    var total: f64 = load_f64({weights} + pos * 8) * (0.0 - 1.0);
    pos = pos + 1;
    for (var i: i32 = 0; i < {INPUTS}; i = i + 1) {{
      total = total + load_f64({weights} + pos * 8) * load_f64(rec + i * 8);
      pos = pos + 1;
    }}
    store_f64({hidden_out} + h * 8, sigmoid(total));
  }}
  for (var o: i32 = 0; o < {OUTPUTS}; o = o + 1) {{
    var total: f64 = load_f64({weights} + pos * 8) * (0.0 - 1.0);
    pos = pos + 1;
    for (var h: i32 = 0; h < {HIDDEN}; h = h + 1) {{
      total = total + load_f64({weights} + pos * 8)
                    * load_f64({hidden_out} + h * 8);
      pos = pos + 1;
    }}
    store_f64({output} + o * 8, sigmoid(total));
  }}
}}

fn ann_train_one(rec: i32, label: i32, rate: f64) {{
  ann_run(rec);
  // Output deltas (desired is one-hot at `label`).
  var od0: f64 = 0.0;
  var od1: f64 = 0.0;
  var od2: f64 = 0.0;
  for (var o: i32 = 0; o < {OUTPUTS}; o = o + 1) {{
    var out: f64 = load_f64({output} + o * 8);
    var desired: f64 = 0.0;
    if (o == label) {{ desired = 1.0; }}
    var delta: f64 = (desired - out) * out * (1.0 - out);
    if (o == 0) {{ od0 = delta; }}
    if (o == 1) {{ od1 = delta; }}
    if (o == 2) {{ od2 = delta; }}
  }}
  // Hidden deltas.
  for (var h: i32 = 0; h < {HIDDEN}; h = h + 1) {{
    var acc: f64 = 0.0;
    for (var o: i32 = 0; o < {OUTPUTS}; o = o + 1) {{
      var w: f64 = load_f64({weights}
                            + ({hidden_offset} + o * ({HIDDEN} + 1) + 1 + h) * 8);
      var delta: f64 = od0;
      if (o == 1) {{ delta = od1; }}
      if (o == 2) {{ delta = od2; }}
      acc = acc + delta * w;
    }}
    var ho: f64 = load_f64({hidden_out} + h * 8);
    store_f64({output} + ({OUTPUTS} + h) * 8, ho * (1.0 - ho) * acc);
  }}
  // Output-layer update.
  var pos: i32 = {hidden_offset};
  for (var o: i32 = 0; o < {OUTPUTS}; o = o + 1) {{
    var delta: f64 = od0;
    if (o == 1) {{ delta = od1; }}
    if (o == 2) {{ delta = od2; }}
    store_f64({weights} + pos * 8,
              load_f64({weights} + pos * 8) + delta * rate * (0.0 - 1.0));
    pos = pos + 1;
    for (var h: i32 = 0; h < {HIDDEN}; h = h + 1) {{
      store_f64({weights} + pos * 8,
                load_f64({weights} + pos * 8)
                + delta * rate * load_f64({hidden_out} + h * 8));
      pos = pos + 1;
    }}
  }}
  // Hidden-layer update.
  pos = 0;
  for (var h: i32 = 0; h < {HIDDEN}; h = h + 1) {{
    var hdelta: f64 = load_f64({output} + ({OUTPUTS} + h) * 8);
    store_f64({weights} + pos * 8,
              load_f64({weights} + pos * 8) + hdelta * rate * (0.0 - 1.0));
    pos = pos + 1;
    for (var i: i32 = 0; i < {INPUTS}; i = i + 1) {{
      store_f64({weights} + pos * 8,
                load_f64({weights} + pos * 8)
                + hdelta * rate * load_f64(rec + i * 8));
      pos = pos + 1;
    }}
  }}
}}

// Train `epochs` passes over `n` records located at the data area.
export fn ann_train(n: i32, epochs: i32, rate: f64) -> i32 {{
  var trained: i32 = 0;
  for (var e: i32 = 0; e < epochs; e = e + 1) {{
    for (var r: i32 = 0; r < n; r = r + 1) {{
      var rec: i32 = {data_addr} + r * {RECORD_SIZE};
      ann_train_one(rec, load_i32(rec + 32), rate);
      trained = trained + 1;
    }}
  }}
  return trained;
}}

export fn ann_accuracy(n: i32) -> i32 {{
  var correct: i32 = 0;
  for (var r: i32 = 0; r < n; r = r + 1) {{
    var rec: i32 = {data_addr} + r * {RECORD_SIZE};
    ann_run(rec);
    var best: i32 = 0;
    var best_v: f64 = load_f64({output});
    for (var o: i32 = 1; o < {OUTPUTS}; o = o + 1) {{
      if (load_f64({output} + o * 8) > best_v) {{
        best = o;
        best_v = load_f64({output} + o * 8);
      }}
    }}
    if (best == load_i32(rec + 32)) {{ correct = correct + 1; }}
  }}
  return correct;
}}

export fn ann_weight_checksum() -> f64 {{
  var sum: f64 = 0.0;
  for (var w: i32 = 0; w < {TOTAL_WEIGHTS}; w = w + 1) {{
    sum = sum + load_f64({weights} + w * 8);
  }}
  return sum;
}}
"""


def build_standalone_ann(data_capacity: int = 1 << 20,
                         data_addr: int = SECRET_ADDR) -> bytes:
    """ANN module without the RA client (the WAMR-baseline build)."""
    pages = (data_addr + data_capacity + 4096 + 65535) // 65536 + 1
    source = f"memory {pages} max {max(pages, 64)};\n" + ann_functions(
        data_addr, data_capacity
    )
    return compile_source(source)


def build_attested_ann(verifier_key: bytes, host: str, port: int,
                       data_capacity: int = 1 << 20) -> bytes:
    """The paper's end-to-end app: WASI-RA client + ANN (Fig. 8, WaTZ)."""
    return compile_source(
        attested_app_source(
            verifier_key, host, port, data_capacity,
            extra_functions=ann_functions(SECRET_ADDR, data_capacity),
        )
    )
