"""A Genann-like feedforward neural network (the native build).

Mirrors genann.c: fully connected layers, sigmoid activations,
plain backpropagation, flat weight array. The paper's benchmark topology
is 4 inputs, one hidden layer of 4 neurons, 3 outputs (one per class).

The sigmoid uses the same range-reduced exp as the walc build
(:mod:`repro.workloads.polybench.kernels_medley`), keeping the two
implementations bit-comparable for the equivalence tests.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.workloads.datasets import Record
from repro.workloads.polybench.kernels_medley import _exp_shared


def _sigmoid(x: float) -> float:
    if x < -45.0:
        return 0.0
    if x > 45.0:
        return 1.0
    return 1.0 / (1.0 + _exp_shared(0.0 - x))


class Genann:
    """genann(inputs, hidden_layers=1, hidden, outputs) with sigmoid."""

    def __init__(self, inputs: int, hidden: int, outputs: int,
                 seed: int = 1) -> None:
        self.inputs = inputs
        self.hidden = hidden
        self.outputs = outputs
        self.total_weights = (inputs + 1) * hidden + (hidden + 1) * outputs
        # genann_randomize: weights in [-0.5, 0.5) from rand(); we use a
        # deterministic LCG matched by the walc build.
        state = seed & 0x7FFFFFFF or 1
        weights = []
        for _ in range(self.total_weights):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            weights.append(((state >> 8) % 10000) / 10000.0 - 0.5)
        self.weights: List[float] = weights
        self.hidden_out = [0.0] * hidden
        self.output = [0.0] * outputs

    # -- forward -------------------------------------------------------------

    def run(self, inputs: Sequence[float]) -> List[float]:
        w = self.weights
        position = 0
        for h in range(self.hidden):
            total = w[position] * -1.0  # bias
            position += 1
            for i in range(self.inputs):
                total = total + w[position] * inputs[i]
                position += 1
            self.hidden_out[h] = _sigmoid(total)
        for o in range(self.outputs):
            total = w[position] * -1.0
            position += 1
            for h in range(self.hidden):
                total = total + w[position] * self.hidden_out[h]
                position += 1
            self.output[o] = _sigmoid(total)
        return list(self.output)

    # -- backprop -------------------------------------------------------------

    def train(self, inputs: Sequence[float], desired: Sequence[float],
              rate: float) -> None:
        self.run(inputs)
        # Output deltas: sigmoid derivative times error.
        output_delta = [
            (desired[o] - self.output[o])
            * self.output[o] * (1.0 - self.output[o])
            for o in range(self.outputs)
        ]
        # Hidden deltas.
        hidden_offset = (self.inputs + 1) * self.hidden
        hidden_delta = []
        for h in range(self.hidden):
            accumulated = 0.0
            for o in range(self.outputs):
                weight = self.weights[
                    hidden_offset + o * (self.hidden + 1) + 1 + h
                ]
                accumulated = accumulated + output_delta[o] * weight
            hidden_delta.append(
                self.hidden_out[h] * (1.0 - self.hidden_out[h]) * accumulated
            )
        # Output-layer weight update.
        position = hidden_offset
        for o in range(self.outputs):
            self.weights[position] = (
                self.weights[position] + output_delta[o] * rate * -1.0
            )
            position += 1
            for h in range(self.hidden):
                self.weights[position] = (
                    self.weights[position]
                    + output_delta[o] * rate * self.hidden_out[h]
                )
                position += 1
        # Hidden-layer weight update.
        position = 0
        for h in range(self.hidden):
            self.weights[position] = (
                self.weights[position] + hidden_delta[h] * rate * -1.0
            )
            position += 1
            for i in range(self.inputs):
                self.weights[position] = (
                    self.weights[position] + hidden_delta[h] * rate * inputs[i]
                )
                position += 1


def train_classifier(records: List[Record], epochs: int = 1,
                     rate: float = 0.5, seed: int = 1) -> Genann:
    """The paper's benchmark loop: train a 4-4-3 classifier on the records."""
    network = Genann(4, 4, 3, seed)
    for _ in range(epochs):
        for features, label in records:
            desired = [0.0, 0.0, 0.0]
            desired[label] = 1.0
            network.train(features, desired, rate)
    return network


def accuracy(network: Genann, records: List[Record]) -> float:
    correct = 0
    for features, label in records:
        output = network.run(features)
        prediction = max(range(len(output)), key=output.__getitem__)
        if prediction == label:
            correct += 1
    return correct / len(records)
