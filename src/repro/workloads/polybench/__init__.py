"""The PolyBench/C suite (v4.2-equivalent) in walc and pure Python.

Importing this package registers all 30 kernels of the paper's Fig. 5:

* datamining: correlation, covariance
* blas: gemm, gemver, gesummv, symm, syr2k, syrk, trmm, 2mm, 3mm
* kernels: atax, bicg, doitgen, mvt
* solvers: cholesky, durbin, gramschmidt, lu, ludcmp, trisolv
* medley: deriche, floyd-warshall, nussinov
* stencils: adi, fdtd-2d, heat-3d, jacobi-1d, jacobi-2d, seidel-2d
"""

from repro.workloads.polybench.base import DOUBLE, Kernel, REGISTRY
# Importing the kernel modules populates the registry.
from repro.workloads.polybench import (  # noqa: F401
    kernels_datamining,
    kernels_linalg,
    kernels_medley,
    kernels_solvers,
    kernels_stencils,
)

EXPECTED_KERNEL_COUNT = 30


def all_kernels():
    """All registered kernels, in a stable order."""
    return [REGISTRY[name] for name in sorted(REGISTRY)]


def get_kernel(name: str) -> Kernel:
    return REGISTRY[name]


__all__ = [
    "Kernel",
    "REGISTRY",
    "DOUBLE",
    "all_kernels",
    "get_kernel",
    "EXPECTED_KERNEL_COUNT",
]
