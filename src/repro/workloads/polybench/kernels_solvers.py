"""PolyBench linear-algebra solvers.

cholesky, durbin, gramschmidt, lu, ludcmp, trisolv.
"""

from __future__ import annotations

import math

from repro.workloads.polybench.base import DOUBLE, Kernel, pages_for, register


def _spd_init_walc(a: int, n: int, b: int) -> str:
    """walc code making A (at ``a``) positive definite via A = B.B^T."""
    nf = float(n)
    return f"""
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j <= i; j = j + 1) {{
      store_f64({b} + (i * {n} + j) * 8, ((0.0 - ((j % {n}) as f64)) / {nf}) + 1.0);
    }}
    for (var j: i32 = i + 1; j < {n}; j = j + 1) {{
      store_f64({b} + (i * {n} + j) * 8, 0.0);
    }}
    store_f64({b} + (i * {n} + i) * 8, 1.0);
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      var t: f64 = 0.0;
      for (var k: i32 = 0; k < {n}; k = k + 1) {{
        t = t + load_f64({b} + (i * {n} + k) * 8) * load_f64({b} + (j * {n} + k) * 8);
      }}
      store_f64({a} + (i * {n} + j) * 8, t);
    }}
  }}
"""


def _spd_init_native(n: int):
    b = [0.0] * (n * n)
    for i in range(n):
        for j in range(i + 1):
            b[i * n + j] = (0.0 - (j % n)) / n + 1.0
        for j in range(i + 1, n):
            b[i * n + j] = 0.0
        b[i * n + i] = 1.0
    a = [0.0] * (n * n)
    for i in range(n):
        for j in range(n):
            t = 0.0
            for k in range(n):
                t = t + b[i * n + k] * b[j * n + k]
            a[i * n + j] = t
    return a


def _cholesky_source(n: int) -> str:
    a, b = 0, n * n * DOUBLE
    return f"""
memory {pages_for(2 * n * n)};
export fn run() -> f64 {{
{_spd_init_walc(a, n, b)}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < i; j = j + 1) {{
      for (var k: i32 = 0; k < j; k = k + 1) {{
        store_f64({a} + (i * {n} + j) * 8,
                  load_f64({a} + (i * {n} + j) * 8)
                  - load_f64({a} + (i * {n} + k) * 8)
                  * load_f64({a} + (j * {n} + k) * 8));
      }}
      store_f64({a} + (i * {n} + j) * 8,
                load_f64({a} + (i * {n} + j) * 8) / load_f64({a} + (j * {n} + j) * 8));
    }}
    for (var k: i32 = 0; k < i; k = k + 1) {{
      store_f64({a} + (i * {n} + i) * 8,
                load_f64({a} + (i * {n} + i) * 8)
                - load_f64({a} + (i * {n} + k) * 8) * load_f64({a} + (i * {n} + k) * 8));
    }}
    store_f64({a} + (i * {n} + i) * 8, sqrt(load_f64({a} + (i * {n} + i) * 8)));
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j <= i; j = j + 1) {{
      sum = sum + load_f64({a} + (i * {n} + j) * 8);
    }}
  }}
  return sum;
}}
"""


def _cholesky_native(n: int) -> float:
    a = _spd_init_native(n)
    for i in range(n):
        for j in range(i):
            for k in range(j):
                a[i * n + j] = a[i * n + j] - a[i * n + k] * a[j * n + k]
            a[i * n + j] = a[i * n + j] / a[j * n + j]
        for k in range(i):
            a[i * n + i] = a[i * n + i] - a[i * n + k] * a[i * n + k]
        a[i * n + i] = math.sqrt(a[i * n + i])
    total = 0.0
    for i in range(n):
        for j in range(i + 1):
            total = total + a[i * n + j]
    return total


register(Kernel("cholesky", "solvers", _cholesky_source, _cholesky_native, 26))


def _durbin_source(n: int) -> str:
    r, y, z = 0, n * DOUBLE, 2 * n * DOUBLE
    return f"""
memory {pages_for(3 * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    store_f64({r} + i * 8, ({n} + 1 - i) as f64);
  }}
  store_f64({y}, 0.0 - load_f64({r}));
  var beta: f64 = 1.0;
  var alpha: f64 = 0.0 - load_f64({r});
  for (var k: i32 = 1; k < {n}; k = k + 1) {{
    beta = (1.0 - alpha * alpha) * beta;
    var s: f64 = 0.0;
    for (var i: i32 = 0; i < k; i = i + 1) {{
      s = s + load_f64({r} + (k - i - 1) * 8) * load_f64({y} + i * 8);
    }}
    alpha = 0.0 - (load_f64({r} + k * 8) + s) / beta;
    for (var i: i32 = 0; i < k; i = i + 1) {{
      store_f64({z} + i * 8,
                load_f64({y} + i * 8) + alpha * load_f64({y} + (k - i - 1) * 8));
    }}
    for (var i: i32 = 0; i < k; i = i + 1) {{
      store_f64({y} + i * 8, load_f64({z} + i * 8));
    }}
    store_f64({y} + k * 8, alpha);
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{ sum = sum + load_f64({y} + i * 8); }}
  return sum;
}}
"""


def _durbin_native(n: int) -> float:
    r = [float(n + 1 - i) for i in range(n)]
    y = [0.0] * n
    z = [0.0] * n
    y[0] = 0.0 - r[0]
    beta = 1.0
    alpha = 0.0 - r[0]
    for k in range(1, n):
        beta = (1.0 - alpha * alpha) * beta
        s = 0.0
        for i in range(k):
            s = s + r[k - i - 1] * y[i]
        alpha = 0.0 - (r[k] + s) / beta
        for i in range(k):
            z[i] = y[i] + alpha * y[k - i - 1]
        for i in range(k):
            y[i] = z[i]
        y[k] = alpha
    total = 0.0
    for i in range(n):
        total = total + y[i]
    return total


register(Kernel("durbin", "solvers", _durbin_source, _durbin_native, 120))


def _gramschmidt_source(n: int) -> str:
    a, r, q = 0, n * n * DOUBLE, 2 * n * n * DOUBLE
    nf = float(n)
    return f"""
memory {pages_for(3 * n * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({a} + (i * {n} + j) * 8,
                ((((i * j) % {n}) as f64) / {nf}) * 100.0 + 10.0);
      store_f64({r} + (i * {n} + j) * 8, 0.0);
      store_f64({q} + (i * {n} + j) * 8, 0.0);
    }}
  }}
  for (var k: i32 = 0; k < {n}; k = k + 1) {{
    var nrm: f64 = 0.0;
    for (var i: i32 = 0; i < {n}; i = i + 1) {{
      nrm = nrm + load_f64({a} + (i * {n} + k) * 8) * load_f64({a} + (i * {n} + k) * 8);
    }}
    store_f64({r} + (k * {n} + k) * 8, sqrt(nrm));
    for (var i: i32 = 0; i < {n}; i = i + 1) {{
      store_f64({q} + (i * {n} + k) * 8,
                load_f64({a} + (i * {n} + k) * 8) / load_f64({r} + (k * {n} + k) * 8));
    }}
    for (var j: i32 = k + 1; j < {n}; j = j + 1) {{
      var t: f64 = 0.0;
      for (var i: i32 = 0; i < {n}; i = i + 1) {{
        t = t + load_f64({q} + (i * {n} + k) * 8) * load_f64({a} + (i * {n} + j) * 8);
      }}
      store_f64({r} + (k * {n} + j) * 8, t);
      for (var i: i32 = 0; i < {n}; i = i + 1) {{
        store_f64({a} + (i * {n} + j) * 8,
                  load_f64({a} + (i * {n} + j) * 8)
                  - load_f64({q} + (i * {n} + k) * 8) * t);
      }}
    }}
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      sum = sum + load_f64({r} + (i * {n} + j) * 8) + load_f64({q} + (i * {n} + j) * 8);
    }}
  }}
  return sum;
}}
"""


def _gramschmidt_native(n: int) -> float:
    a = [((i * j) % n) / n * 100.0 + 10.0 for i in range(n) for j in range(n)]
    r = [0.0] * (n * n)
    q = [0.0] * (n * n)
    for k in range(n):
        nrm = 0.0
        for i in range(n):
            nrm = nrm + a[i * n + k] * a[i * n + k]
        r[k * n + k] = math.sqrt(nrm)
        for i in range(n):
            q[i * n + k] = a[i * n + k] / r[k * n + k]
        for j in range(k + 1, n):
            t = 0.0
            for i in range(n):
                t = t + q[i * n + k] * a[i * n + j]
            r[k * n + j] = t
            for i in range(n):
                a[i * n + j] = a[i * n + j] - q[i * n + k] * t
    total = 0.0
    for i in range(n):
        for j in range(n):
            total = total + r[i * n + j] + q[i * n + j]
    return total


register(Kernel("gramschmidt", "solvers", _gramschmidt_source,
                _gramschmidt_native, 26))


def _lu_source(n: int) -> str:
    a, b = 0, n * n * DOUBLE
    return f"""
memory {pages_for(2 * n * n)};
export fn run() -> f64 {{
{_spd_init_walc(a, n, b)}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < i; j = j + 1) {{
      for (var k: i32 = 0; k < j; k = k + 1) {{
        store_f64({a} + (i * {n} + j) * 8,
                  load_f64({a} + (i * {n} + j) * 8)
                  - load_f64({a} + (i * {n} + k) * 8) * load_f64({a} + (k * {n} + j) * 8));
      }}
      store_f64({a} + (i * {n} + j) * 8,
                load_f64({a} + (i * {n} + j) * 8) / load_f64({a} + (j * {n} + j) * 8));
    }}
    for (var j: i32 = i; j < {n}; j = j + 1) {{
      for (var k: i32 = 0; k < i; k = k + 1) {{
        store_f64({a} + (i * {n} + j) * 8,
                  load_f64({a} + (i * {n} + j) * 8)
                  - load_f64({a} + (i * {n} + k) * 8) * load_f64({a} + (k * {n} + j) * 8));
      }}
    }}
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      sum = sum + load_f64({a} + (i * {n} + j) * 8);
    }}
  }}
  return sum;
}}
"""


def _lu_native(n: int) -> float:
    a = _spd_init_native(n)
    for i in range(n):
        for j in range(i):
            for k in range(j):
                a[i * n + j] = a[i * n + j] - a[i * n + k] * a[k * n + j]
            a[i * n + j] = a[i * n + j] / a[j * n + j]
        for j in range(i, n):
            for k in range(i):
                a[i * n + j] = a[i * n + j] - a[i * n + k] * a[k * n + j]
    total = 0.0
    for value in a:
        total = total + value
    return total


register(Kernel("lu", "solvers", _lu_source, _lu_native, 26))


def _ludcmp_source(n: int) -> str:
    a, bmat = 0, n * n * DOUBLE
    b, x, y = ((2 * n * n + k * n) * DOUBLE for k in range(3))
    nf = float(n)
    return f"""
memory {pages_for(2 * n * n + 3 * n)};
export fn run() -> f64 {{
{_spd_init_walc(a, n, bmat)}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    store_f64({b} + i * 8, ((i + 1) as f64) / {nf} / 2.0 + 4.0);
    store_f64({x} + i * 8, 0.0);
    store_f64({y} + i * 8, 0.0);
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < i; j = j + 1) {{
      var w: f64 = load_f64({a} + (i * {n} + j) * 8);
      for (var k: i32 = 0; k < j; k = k + 1) {{
        w = w - load_f64({a} + (i * {n} + k) * 8) * load_f64({a} + (k * {n} + j) * 8);
      }}
      store_f64({a} + (i * {n} + j) * 8, w / load_f64({a} + (j * {n} + j) * 8));
    }}
    for (var j: i32 = i; j < {n}; j = j + 1) {{
      var w: f64 = load_f64({a} + (i * {n} + j) * 8);
      for (var k: i32 = 0; k < i; k = k + 1) {{
        w = w - load_f64({a} + (i * {n} + k) * 8) * load_f64({a} + (k * {n} + j) * 8);
      }}
      store_f64({a} + (i * {n} + j) * 8, w);
    }}
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    var w: f64 = load_f64({b} + i * 8);
    for (var j: i32 = 0; j < i; j = j + 1) {{
      w = w - load_f64({a} + (i * {n} + j) * 8) * load_f64({y} + j * 8);
    }}
    store_f64({y} + i * 8, w);
  }}
  for (var i: i32 = {n} - 1; i >= 0; i = i - 1) {{
    var w: f64 = load_f64({y} + i * 8);
    for (var j: i32 = i + 1; j < {n}; j = j + 1) {{
      w = w - load_f64({a} + (i * {n} + j) * 8) * load_f64({x} + j * 8);
    }}
    store_f64({x} + i * 8, w / load_f64({a} + (i * {n} + i) * 8));
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{ sum = sum + load_f64({x} + i * 8); }}
  return sum;
}}
"""


def _ludcmp_native(n: int) -> float:
    a = _spd_init_native(n)
    b = [(i + 1) / n / 2.0 + 4.0 for i in range(n)]
    x = [0.0] * n
    y = [0.0] * n
    for i in range(n):
        for j in range(i):
            w = a[i * n + j]
            for k in range(j):
                w = w - a[i * n + k] * a[k * n + j]
            a[i * n + j] = w / a[j * n + j]
        for j in range(i, n):
            w = a[i * n + j]
            for k in range(i):
                w = w - a[i * n + k] * a[k * n + j]
            a[i * n + j] = w
    for i in range(n):
        w = b[i]
        for j in range(i):
            w = w - a[i * n + j] * y[j]
        y[i] = w
    for i in range(n - 1, -1, -1):
        w = y[i]
        for j in range(i + 1, n):
            w = w - a[i * n + j] * x[j]
        x[i] = w / a[i * n + i]
    total = 0.0
    for i in range(n):
        total = total + x[i]
    return total


register(Kernel("ludcmp", "solvers", _ludcmp_source, _ludcmp_native, 26))


def _trisolv_source(n: int) -> str:
    l, x, b = 0, n * n * DOUBLE, (n * n + n) * DOUBLE
    nf = float(n)
    return f"""
memory {pages_for(n * n + 2 * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    store_f64({x} + i * 8, 0.0 - 999.0);
    store_f64({b} + i * 8, i as f64);
    for (var j: i32 = 0; j <= i; j = j + 1) {{
      store_f64({l} + (i * {n} + j) * 8,
                (((i + {n} - j + 1) as f64) * 2.0) / {nf});
    }}
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    var w: f64 = load_f64({b} + i * 8);
    for (var j: i32 = 0; j < i; j = j + 1) {{
      w = w - load_f64({l} + (i * {n} + j) * 8) * load_f64({x} + j * 8);
    }}
    store_f64({x} + i * 8, w / load_f64({l} + (i * {n} + i) * 8));
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{ sum = sum + load_f64({x} + i * 8); }}
  return sum;
}}
"""


def _trisolv_native(n: int) -> float:
    l = [0.0] * (n * n)
    x = [-999.0] * n
    b = [float(i) for i in range(n)]
    for i in range(n):
        for j in range(i + 1):
            l[i * n + j] = (i + n - j + 1) * 2.0 / n
    for i in range(n):
        w = b[i]
        for j in range(i):
            w = w - l[i * n + j] * x[j]
        x[i] = w / l[i * n + i]
    total = 0.0
    for i in range(n):
        total = total + x[i]
    return total


register(Kernel("trisolv", "solvers", _trisolv_source, _trisolv_native, 100))
