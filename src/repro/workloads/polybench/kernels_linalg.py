"""PolyBench linear-algebra kernels (BLAS and kernels groups).

gemm, 2mm, 3mm, atax, bicg, mvt, gemver, gesummv, doitgen, symm, syr2k,
syrk, trmm — each as a walc source generator plus a mirrored pure-Python
native implementation returning the same checksum.
"""

from __future__ import annotations

from repro.workloads.polybench.base import DOUBLE, Kernel, pages_for, register


def _gemm_source(n: int) -> str:
    a, b, c = 0, n * n * DOUBLE, 2 * n * n * DOUBLE
    nf = float(n)
    return f"""
memory {pages_for(3 * n * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({a} + (i * {n} + j) * 8, (((i * j + 1) % {n}) as f64) / {nf});
      store_f64({b} + (i * {n} + j) * 8, (((i * (j + 1)) % {n}) as f64) / {nf});
      store_f64({c} + (i * {n} + j) * 8, (((i * (j + 2)) % {n}) as f64) / {nf});
    }}
  }}
  var alpha: f64 = 1.5;
  var beta: f64 = 1.2;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({c} + (i * {n} + j) * 8, load_f64({c} + (i * {n} + j) * 8) * beta);
      for (var k: i32 = 0; k < {n}; k = k + 1) {{
        store_f64({c} + (i * {n} + j) * 8,
                  load_f64({c} + (i * {n} + j) * 8)
                  + alpha * load_f64({a} + (i * {n} + k) * 8)
                          * load_f64({b} + (k * {n} + j) * 8));
      }}
    }}
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      sum = sum + load_f64({c} + (i * {n} + j) * 8);
    }}
  }}
  return sum;
}}
"""


def _gemm_native(n: int) -> float:
    a = [((i * j + 1) % n) / n for i in range(n) for j in range(n)]
    b = [((i * (j + 1)) % n) / n for i in range(n) for j in range(n)]
    c = [((i * (j + 2)) % n) / n for i in range(n) for j in range(n)]
    alpha, beta = 1.5, 1.2
    for i in range(n):
        for j in range(n):
            c[i * n + j] = c[i * n + j] * beta
            for k in range(n):
                c[i * n + j] = c[i * n + j] + alpha * a[i * n + k] * b[k * n + j]
    return sum_mirror(c)


def sum_mirror(values) -> float:
    """Left-to-right accumulation, matching the walc checksum loops."""
    total = 0.0
    for value in values:
        total = total + value
    return total


register(Kernel("gemm", "blas", _gemm_source, _gemm_native, 28))


def _two_mm_source(n: int) -> str:
    a, b, c, d, tmp = (k * n * n * DOUBLE for k in range(5))
    nf = float(n)
    return f"""
memory {pages_for(5 * n * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({a} + (i * {n} + j) * 8, (((i * j + 1) % {n}) as f64) / {nf});
      store_f64({b} + (i * {n} + j) * 8, (((i * (j + 1)) % {n}) as f64) / {nf});
      store_f64({c} + (i * {n} + j) * 8, (((i * (j + 3) + 1) % {n}) as f64) / {nf});
      store_f64({d} + (i * {n} + j) * 8, (((i * (j + 2)) % {n}) as f64) / {nf});
    }}
  }}
  var alpha: f64 = 1.5;
  var beta: f64 = 1.2;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({tmp} + (i * {n} + j) * 8, 0.0);
      for (var k: i32 = 0; k < {n}; k = k + 1) {{
        store_f64({tmp} + (i * {n} + j) * 8,
                  load_f64({tmp} + (i * {n} + j) * 8)
                  + alpha * load_f64({a} + (i * {n} + k) * 8)
                          * load_f64({b} + (k * {n} + j) * 8));
      }}
    }}
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({d} + (i * {n} + j) * 8, load_f64({d} + (i * {n} + j) * 8) * beta);
      for (var k: i32 = 0; k < {n}; k = k + 1) {{
        store_f64({d} + (i * {n} + j) * 8,
                  load_f64({d} + (i * {n} + j) * 8)
                  + load_f64({tmp} + (i * {n} + k) * 8)
                  * load_f64({c} + (k * {n} + j) * 8));
      }}
    }}
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      sum = sum + load_f64({d} + (i * {n} + j) * 8);
    }}
  }}
  return sum;
}}
"""


def _two_mm_native(n: int) -> float:
    a = [((i * j + 1) % n) / n for i in range(n) for j in range(n)]
    b = [((i * (j + 1)) % n) / n for i in range(n) for j in range(n)]
    c = [((i * (j + 3) + 1) % n) / n for i in range(n) for j in range(n)]
    d = [((i * (j + 2)) % n) / n for i in range(n) for j in range(n)]
    tmp = [0.0] * (n * n)
    alpha, beta = 1.5, 1.2
    for i in range(n):
        for j in range(n):
            tmp[i * n + j] = 0.0
            for k in range(n):
                tmp[i * n + j] = tmp[i * n + j] + alpha * a[i * n + k] * b[k * n + j]
    for i in range(n):
        for j in range(n):
            d[i * n + j] = d[i * n + j] * beta
            for k in range(n):
                d[i * n + j] = d[i * n + j] + tmp[i * n + k] * c[k * n + j]
    return sum_mirror(d)


register(Kernel("2mm", "blas", _two_mm_source, _two_mm_native, 24))


def _three_mm_source(n: int) -> str:
    a, b, c, d, e, f, g = (k * n * n * DOUBLE for k in range(7))
    nf = float(n)
    return f"""
memory {pages_for(7 * n * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({a} + (i * {n} + j) * 8, ((((i * j + 1) % {n}) as f64)) / (5.0 * {nf}));
      store_f64({b} + (i * {n} + j) * 8, ((((i * (j + 1) + 2) % {n}) as f64)) / (5.0 * {nf}));
      store_f64({c} + (i * {n} + j) * 8, ((((i * (j + 3)) % {n}) as f64)) / (5.0 * {nf}));
      store_f64({d} + (i * {n} + j) * 8, ((((i * (j + 2) + 2) % {n}) as f64)) / (5.0 * {nf}));
    }}
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({e} + (i * {n} + j) * 8, 0.0);
      for (var k: i32 = 0; k < {n}; k = k + 1) {{
        store_f64({e} + (i * {n} + j) * 8,
                  load_f64({e} + (i * {n} + j) * 8)
                  + load_f64({a} + (i * {n} + k) * 8) * load_f64({b} + (k * {n} + j) * 8));
      }}
    }}
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({f} + (i * {n} + j) * 8, 0.0);
      for (var k: i32 = 0; k < {n}; k = k + 1) {{
        store_f64({f} + (i * {n} + j) * 8,
                  load_f64({f} + (i * {n} + j) * 8)
                  + load_f64({c} + (i * {n} + k) * 8) * load_f64({d} + (k * {n} + j) * 8));
      }}
    }}
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({g} + (i * {n} + j) * 8, 0.0);
      for (var k: i32 = 0; k < {n}; k = k + 1) {{
        store_f64({g} + (i * {n} + j) * 8,
                  load_f64({g} + (i * {n} + j) * 8)
                  + load_f64({e} + (i * {n} + k) * 8) * load_f64({f} + (k * {n} + j) * 8));
      }}
    }}
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      sum = sum + load_f64({g} + (i * {n} + j) * 8);
    }}
  }}
  return sum;
}}
"""


def _three_mm_native(n: int) -> float:
    a = [((i * j + 1) % n) / (5.0 * n) for i in range(n) for j in range(n)]
    b = [((i * (j + 1) + 2) % n) / (5.0 * n) for i in range(n) for j in range(n)]
    c = [((i * (j + 3)) % n) / (5.0 * n) for i in range(n) for j in range(n)]
    d = [((i * (j + 2) + 2) % n) / (5.0 * n) for i in range(n) for j in range(n)]
    e = [0.0] * (n * n)
    f = [0.0] * (n * n)
    g = [0.0] * (n * n)
    for i in range(n):
        for j in range(n):
            e[i * n + j] = 0.0
            for k in range(n):
                e[i * n + j] = e[i * n + j] + a[i * n + k] * b[k * n + j]
    for i in range(n):
        for j in range(n):
            f[i * n + j] = 0.0
            for k in range(n):
                f[i * n + j] = f[i * n + j] + c[i * n + k] * d[k * n + j]
    for i in range(n):
        for j in range(n):
            g[i * n + j] = 0.0
            for k in range(n):
                g[i * n + j] = g[i * n + j] + e[i * n + k] * f[k * n + j]
    return sum_mirror(g)


register(Kernel("3mm", "blas", _three_mm_source, _three_mm_native, 22))


def _atax_source(n: int) -> str:
    a, x, y, tmp = 0, n * n * DOUBLE, (n * n + n) * DOUBLE, (n * n + 2 * n) * DOUBLE
    nf = float(n)
    return f"""
memory {pages_for(n * n + 3 * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    store_f64({x} + i * 8, 1.0 + (i as f64) / {nf});
    store_f64({y} + i * 8, 0.0);
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({a} + (i * {n} + j) * 8, (((i + j) % {n}) as f64) / (5.0 * {nf}));
    }}
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    var t: f64 = 0.0;
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      t = t + load_f64({a} + (i * {n} + j) * 8) * load_f64({x} + j * 8);
    }}
    store_f64({tmp} + i * 8, t);
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({y} + j * 8,
                load_f64({y} + j * 8) + load_f64({a} + (i * {n} + j) * 8) * t);
    }}
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{ sum = sum + load_f64({y} + i * 8); }}
  return sum;
}}
"""


def _atax_native(n: int) -> float:
    a = [((i + j) % n) / (5.0 * n) for i in range(n) for j in range(n)]
    x = [1.0 + i / n for i in range(n)]
    y = [0.0] * n
    for i in range(n):
        t = 0.0
        for j in range(n):
            t = t + a[i * n + j] * x[j]
        for j in range(n):
            y[j] = y[j] + a[i * n + j] * t
    return sum_mirror(y)


register(Kernel("atax", "kernels", _atax_source, _atax_native, 80))


def _bicg_source(n: int) -> str:
    a = 0
    s, q, p, r = ((n * n + k * n) * DOUBLE for k in range(4))
    nf = float(n)
    return f"""
memory {pages_for(n * n + 4 * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    store_f64({p} + i * 8, ((i % {n}) as f64) / {nf});
    store_f64({r} + i * 8, ((i % {n}) as f64) / {nf} + 1.0);
    store_f64({s} + i * 8, 0.0);
    store_f64({q} + i * 8, 0.0);
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({a} + (i * {n} + j) * 8, (((i * (j + 1)) % {n}) as f64) / {nf});
    }}
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    var ri: f64 = load_f64({r} + i * 8);
    var qi: f64 = 0.0;
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({s} + j * 8,
                load_f64({s} + j * 8) + ri * load_f64({a} + (i * {n} + j) * 8));
      qi = qi + load_f64({a} + (i * {n} + j) * 8) * load_f64({p} + j * 8);
    }}
    store_f64({q} + i * 8, qi);
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    sum = sum + load_f64({s} + i * 8) + load_f64({q} + i * 8);
  }}
  return sum;
}}
"""


def _bicg_native(n: int) -> float:
    a = [((i * (j + 1)) % n) / n for i in range(n) for j in range(n)]
    p = [(i % n) / n for i in range(n)]
    r = [(i % n) / n + 1.0 for i in range(n)]
    s = [0.0] * n
    q = [0.0] * n
    for i in range(n):
        ri = r[i]
        qi = 0.0
        for j in range(n):
            s[j] = s[j] + ri * a[i * n + j]
            qi = qi + a[i * n + j] * p[j]
        q[i] = qi
    total = 0.0
    for i in range(n):
        total = total + s[i] + q[i]
    return total


register(Kernel("bicg", "kernels", _bicg_source, _bicg_native, 80))


def _mvt_source(n: int) -> str:
    a = 0
    x1, x2, y1, y2 = ((n * n + k * n) * DOUBLE for k in range(4))
    nf = float(n)
    return f"""
memory {pages_for(n * n + 4 * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    store_f64({x1} + i * 8, ((i % {n}) as f64) / {nf});
    store_f64({x2} + i * 8, (((i + 1) % {n}) as f64) / {nf});
    store_f64({y1} + i * 8, (((i + 3) % {n}) as f64) / {nf});
    store_f64({y2} + i * 8, (((i + 4) % {n}) as f64) / {nf});
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({a} + (i * {n} + j) * 8, (((i * j) % {n}) as f64) / {nf});
    }}
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    var t: f64 = load_f64({x1} + i * 8);
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      t = t + load_f64({a} + (i * {n} + j) * 8) * load_f64({y1} + j * 8);
    }}
    store_f64({x1} + i * 8, t);
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    var t: f64 = load_f64({x2} + i * 8);
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      t = t + load_f64({a} + (j * {n} + i) * 8) * load_f64({y2} + j * 8);
    }}
    store_f64({x2} + i * 8, t);
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    sum = sum + load_f64({x1} + i * 8) + load_f64({x2} + i * 8);
  }}
  return sum;
}}
"""


def _mvt_native(n: int) -> float:
    a = [((i * j) % n) / n for i in range(n) for j in range(n)]
    x1 = [(i % n) / n for i in range(n)]
    x2 = [((i + 1) % n) / n for i in range(n)]
    y1 = [((i + 3) % n) / n for i in range(n)]
    y2 = [((i + 4) % n) / n for i in range(n)]
    for i in range(n):
        t = x1[i]
        for j in range(n):
            t = t + a[i * n + j] * y1[j]
        x1[i] = t
    for i in range(n):
        t = x2[i]
        for j in range(n):
            t = t + a[j * n + i] * y2[j]
        x2[i] = t
    total = 0.0
    for i in range(n):
        total = total + x1[i] + x2[i]
    return total


register(Kernel("mvt", "kernels", _mvt_source, _mvt_native, 80))


def _gemver_source(n: int) -> str:
    a = 0
    u1, v1, u2, v2, w, x, y, z = ((n * n + k * n) * DOUBLE for k in range(8))
    nf = float(n)
    return f"""
memory {pages_for(n * n + 8 * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    var fi: f64 = i as f64;
    store_f64({u1} + i * 8, fi);
    store_f64({u2} + i * 8, ((fi + 1.0) / {nf}) / 2.0);
    store_f64({v1} + i * 8, ((fi + 1.0) / {nf}) / 4.0);
    store_f64({v2} + i * 8, ((fi + 1.0) / {nf}) / 6.0);
    store_f64({y} + i * 8, ((fi + 1.0) / {nf}) / 8.0);
    store_f64({z} + i * 8, ((fi + 1.0) / {nf}) / 9.0);
    store_f64({x} + i * 8, 0.0);
    store_f64({w} + i * 8, 0.0);
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({a} + (i * {n} + j) * 8, (((i * j) % {n}) as f64) / {nf});
    }}
  }}
  var alpha: f64 = 1.5;
  var beta: f64 = 1.2;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({a} + (i * {n} + j) * 8,
                load_f64({a} + (i * {n} + j) * 8)
                + load_f64({u1} + i * 8) * load_f64({v1} + j * 8)
                + load_f64({u2} + i * 8) * load_f64({v2} + j * 8));
    }}
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({x} + i * 8,
                load_f64({x} + i * 8)
                + beta * load_f64({a} + (j * {n} + i) * 8) * load_f64({y} + j * 8));
    }}
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    store_f64({x} + i * 8, load_f64({x} + i * 8) + load_f64({z} + i * 8));
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({w} + i * 8,
                load_f64({w} + i * 8)
                + alpha * load_f64({a} + (i * {n} + j) * 8) * load_f64({x} + j * 8));
    }}
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{ sum = sum + load_f64({w} + i * 8); }}
  return sum;
}}
"""


def _gemver_native(n: int) -> float:
    a = [((i * j) % n) / n for i in range(n) for j in range(n)]
    u1 = [float(i) for i in range(n)]
    u2 = [((i + 1.0) / n) / 2.0 for i in range(n)]
    v1 = [((i + 1.0) / n) / 4.0 for i in range(n)]
    v2 = [((i + 1.0) / n) / 6.0 for i in range(n)]
    y = [((i + 1.0) / n) / 8.0 for i in range(n)]
    z = [((i + 1.0) / n) / 9.0 for i in range(n)]
    x = [0.0] * n
    w = [0.0] * n
    alpha, beta = 1.5, 1.2
    for i in range(n):
        for j in range(n):
            a[i * n + j] = a[i * n + j] + u1[i] * v1[j] + u2[i] * v2[j]
    for i in range(n):
        for j in range(n):
            x[i] = x[i] + beta * a[j * n + i] * y[j]
    for i in range(n):
        x[i] = x[i] + z[i]
    for i in range(n):
        for j in range(n):
            w[i] = w[i] + alpha * a[i * n + j] * x[j]
    return sum_mirror(w)


register(Kernel("gemver", "blas", _gemver_source, _gemver_native, 60))


def _gesummv_source(n: int) -> str:
    a, b = 0, n * n * DOUBLE
    x, y, tmp = ((2 * n * n + k * n) * DOUBLE for k in range(3))
    nf = float(n)
    return f"""
memory {pages_for(2 * n * n + 3 * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    store_f64({x} + i * 8, ((i % {n}) as f64) / {nf});
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({a} + (i * {n} + j) * 8, (((i * j + 1) % {n}) as f64) / {nf});
      store_f64({b} + (i * {n} + j) * 8, (((i * j + 2) % {n}) as f64) / {nf});
    }}
  }}
  var alpha: f64 = 1.5;
  var beta: f64 = 1.2;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    var t: f64 = 0.0;
    var yv: f64 = 0.0;
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      t = t + load_f64({a} + (i * {n} + j) * 8) * load_f64({x} + j * 8);
      yv = yv + load_f64({b} + (i * {n} + j) * 8) * load_f64({x} + j * 8);
    }}
    store_f64({tmp} + i * 8, t);
    store_f64({y} + i * 8, alpha * t + beta * yv);
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{ sum = sum + load_f64({y} + i * 8); }}
  return sum;
}}
"""


def _gesummv_native(n: int) -> float:
    a = [((i * j + 1) % n) / n for i in range(n) for j in range(n)]
    b = [((i * j + 2) % n) / n for i in range(n) for j in range(n)]
    x = [(i % n) / n for i in range(n)]
    y = [0.0] * n
    alpha, beta = 1.5, 1.2
    for i in range(n):
        t = 0.0
        yv = 0.0
        for j in range(n):
            t = t + a[i * n + j] * x[j]
            yv = yv + b[i * n + j] * x[j]
        y[i] = alpha * t + beta * yv
    return sum_mirror(y)


register(Kernel("gesummv", "blas", _gesummv_source, _gesummv_native, 70))


def _doitgen_source(n: int) -> str:
    # A[r][q][p], C4[p][s], sum[p] with r=q=p=s=n.
    a = 0
    c4 = n * n * n * DOUBLE
    acc = (n * n * n + n * n) * DOUBLE
    nf = float(n)
    return f"""
memory {pages_for(n * n * n + n * n + n)};
export fn run() -> f64 {{
  for (var r: i32 = 0; r < {n}; r = r + 1) {{
    for (var q: i32 = 0; q < {n}; q = q + 1) {{
      for (var p: i32 = 0; p < {n}; p = p + 1) {{
        store_f64({a} + ((r * {n} + q) * {n} + p) * 8,
                  ((((r * q + p) % {n}) as f64)) / {nf});
      }}
    }}
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({c4} + (i * {n} + j) * 8, (((i * j % {n}) as f64)) / {nf});
    }}
  }}
  for (var r: i32 = 0; r < {n}; r = r + 1) {{
    for (var q: i32 = 0; q < {n}; q = q + 1) {{
      for (var p: i32 = 0; p < {n}; p = p + 1) {{
        var t: f64 = 0.0;
        for (var s: i32 = 0; s < {n}; s = s + 1) {{
          t = t + load_f64({a} + ((r * {n} + q) * {n} + s) * 8)
                * load_f64({c4} + (s * {n} + p) * 8);
        }}
        store_f64({acc} + p * 8, t);
      }}
      for (var p: i32 = 0; p < {n}; p = p + 1) {{
        store_f64({a} + ((r * {n} + q) * {n} + p) * 8, load_f64({acc} + p * 8));
      }}
    }}
  }}
  var sum: f64 = 0.0;
  for (var r: i32 = 0; r < {n}; r = r + 1) {{
    for (var q: i32 = 0; q < {n}; q = q + 1) {{
      for (var p: i32 = 0; p < {n}; p = p + 1) {{
        sum = sum + load_f64({a} + ((r * {n} + q) * {n} + p) * 8);
      }}
    }}
  }}
  return sum;
}}
"""


def _doitgen_native(n: int) -> float:
    a = [((r * q + p) % n) / n
         for r in range(n) for q in range(n) for p in range(n)]
    c4 = [(i * j % n) / n for i in range(n) for j in range(n)]
    acc = [0.0] * n
    for r in range(n):
        for q in range(n):
            for p in range(n):
                t = 0.0
                for s in range(n):
                    t = t + a[(r * n + q) * n + s] * c4[s * n + p]
                acc[p] = t
            for p in range(n):
                a[(r * n + q) * n + p] = acc[p]
    return sum_mirror(a)


register(Kernel("doitgen", "kernels", _doitgen_source, _doitgen_native, 14))


def _symm_source(n: int) -> str:
    a, b, c = 0, n * n * DOUBLE, 2 * n * n * DOUBLE
    nf = float(n)
    return f"""
memory {pages_for(3 * n * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({a} + (i * {n} + j) * 8, (((i + j) % 100) as f64) / {nf});
      store_f64({b} + (i * {n} + j) * 8, ((({n} + i - j) % 100) as f64) / {nf});
      store_f64({c} + (i * {n} + j) * 8, (((i + j) % 100) as f64) / {nf});
    }}
  }}
  var alpha: f64 = 1.5;
  var beta: f64 = 1.2;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      var temp2: f64 = 0.0;
      for (var k: i32 = 0; k < i; k = k + 1) {{
        store_f64({c} + (k * {n} + j) * 8,
                  load_f64({c} + (k * {n} + j) * 8)
                  + alpha * load_f64({b} + (i * {n} + j) * 8)
                          * load_f64({a} + (i * {n} + k) * 8));
        temp2 = temp2 + load_f64({b} + (k * {n} + j) * 8)
                      * load_f64({a} + (i * {n} + k) * 8);
      }}
      store_f64({c} + (i * {n} + j) * 8,
                beta * load_f64({c} + (i * {n} + j) * 8)
                + alpha * load_f64({b} + (i * {n} + j) * 8)
                        * load_f64({a} + (i * {n} + i) * 8)
                + alpha * temp2);
    }}
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      sum = sum + load_f64({c} + (i * {n} + j) * 8);
    }}
  }}
  return sum;
}}
"""


def _symm_native(n: int) -> float:
    a = [((i + j) % 100) / n for i in range(n) for j in range(n)]
    b = [((n + i - j) % 100) / n for i in range(n) for j in range(n)]
    c = [((i + j) % 100) / n for i in range(n) for j in range(n)]
    alpha, beta = 1.5, 1.2
    for i in range(n):
        for j in range(n):
            temp2 = 0.0
            for k in range(i):
                c[k * n + j] = c[k * n + j] + alpha * b[i * n + j] * a[i * n + k]
                temp2 = temp2 + b[k * n + j] * a[i * n + k]
            c[i * n + j] = (beta * c[i * n + j]
                            + alpha * b[i * n + j] * a[i * n + i]
                            + alpha * temp2)
    return sum_mirror(c)


register(Kernel("symm", "blas", _symm_source, _symm_native, 30))


def _syrk_source(n: int) -> str:
    a, c = 0, n * n * DOUBLE
    nf = float(n)
    return f"""
memory {pages_for(2 * n * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({a} + (i * {n} + j) * 8, (((i * j + 1) % {n}) as f64) / {nf});
      store_f64({c} + (i * {n} + j) * 8, (((i * j + 2) % {n}) as f64) / {nf});
    }}
  }}
  var alpha: f64 = 1.5;
  var beta: f64 = 1.2;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j <= i; j = j + 1) {{
      store_f64({c} + (i * {n} + j) * 8, load_f64({c} + (i * {n} + j) * 8) * beta);
    }}
    for (var k: i32 = 0; k < {n}; k = k + 1) {{
      for (var j: i32 = 0; j <= i; j = j + 1) {{
        store_f64({c} + (i * {n} + j) * 8,
                  load_f64({c} + (i * {n} + j) * 8)
                  + alpha * load_f64({a} + (i * {n} + k) * 8)
                          * load_f64({a} + (j * {n} + k) * 8));
      }}
    }}
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      sum = sum + load_f64({c} + (i * {n} + j) * 8);
    }}
  }}
  return sum;
}}
"""


def _syrk_native(n: int) -> float:
    a = [((i * j + 1) % n) / n for i in range(n) for j in range(n)]
    c = [((i * j + 2) % n) / n for i in range(n) for j in range(n)]
    alpha, beta = 1.5, 1.2
    for i in range(n):
        for j in range(i + 1):
            c[i * n + j] = c[i * n + j] * beta
        for k in range(n):
            for j in range(i + 1):
                c[i * n + j] = c[i * n + j] + alpha * a[i * n + k] * a[j * n + k]
    return sum_mirror(c)


register(Kernel("syrk", "blas", _syrk_source, _syrk_native, 30))


def _syr2k_source(n: int) -> str:
    a, b, c = 0, n * n * DOUBLE, 2 * n * n * DOUBLE
    nf = float(n)
    return f"""
memory {pages_for(3 * n * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({a} + (i * {n} + j) * 8, (((i * j + 1) % {n}) as f64) / {nf});
      store_f64({b} + (i * {n} + j) * 8, (((i * j + 2) % {n}) as f64) / {nf});
      store_f64({c} + (i * {n} + j) * 8, (((i * j + 3) % {n}) as f64) / {nf});
    }}
  }}
  var alpha: f64 = 1.5;
  var beta: f64 = 1.2;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j <= i; j = j + 1) {{
      store_f64({c} + (i * {n} + j) * 8, load_f64({c} + (i * {n} + j) * 8) * beta);
    }}
    for (var k: i32 = 0; k < {n}; k = k + 1) {{
      for (var j: i32 = 0; j <= i; j = j + 1) {{
        store_f64({c} + (i * {n} + j) * 8,
                  load_f64({c} + (i * {n} + j) * 8)
                  + load_f64({a} + (j * {n} + k) * 8) * alpha
                    * load_f64({b} + (i * {n} + k) * 8)
                  + load_f64({b} + (j * {n} + k) * 8) * alpha
                    * load_f64({a} + (i * {n} + k) * 8));
      }}
    }}
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      sum = sum + load_f64({c} + (i * {n} + j) * 8);
    }}
  }}
  return sum;
}}
"""


def _syr2k_native(n: int) -> float:
    a = [((i * j + 1) % n) / n for i in range(n) for j in range(n)]
    b = [((i * j + 2) % n) / n for i in range(n) for j in range(n)]
    c = [((i * j + 3) % n) / n for i in range(n) for j in range(n)]
    alpha, beta = 1.5, 1.2
    for i in range(n):
        for j in range(i + 1):
            c[i * n + j] = c[i * n + j] * beta
        for k in range(n):
            for j in range(i + 1):
                c[i * n + j] = (c[i * n + j]
                                + a[j * n + k] * alpha * b[i * n + k]
                                + b[j * n + k] * alpha * a[i * n + k])
    return sum_mirror(c)


register(Kernel("syr2k", "blas", _syr2k_source, _syr2k_native, 26))


def _trmm_source(n: int) -> str:
    a, b = 0, n * n * DOUBLE
    nf = float(n)
    return f"""
memory {pages_for(2 * n * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({a} + (i * {n} + j) * 8, (((i * j) % {n}) as f64) / {nf});
      store_f64({b} + (i * {n} + j) * 8, ((({n} + i - j) % {n}) as f64) / {nf});
    }}
  }}
  var alpha: f64 = 1.5;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      for (var k: i32 = i + 1; k < {n}; k = k + 1) {{
        store_f64({b} + (i * {n} + j) * 8,
                  load_f64({b} + (i * {n} + j) * 8)
                  + load_f64({a} + (k * {n} + i) * 8)
                  * load_f64({b} + (k * {n} + j) * 8));
      }}
      store_f64({b} + (i * {n} + j) * 8, alpha * load_f64({b} + (i * {n} + j) * 8));
    }}
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      sum = sum + load_f64({b} + (i * {n} + j) * 8);
    }}
  }}
  return sum;
}}
"""


def _trmm_native(n: int) -> float:
    a = [((i * j) % n) / n for i in range(n) for j in range(n)]
    b = [((n + i - j) % n) / n for i in range(n) for j in range(n)]
    alpha = 1.5
    for i in range(n):
        for j in range(n):
            for k in range(i + 1, n):
                b[i * n + j] = b[i * n + j] + a[k * n + i] * b[k * n + j]
            b[i * n + j] = alpha * b[i * n + j]
    return sum_mirror(b)


register(Kernel("trmm", "blas", _trmm_source, _trmm_native, 30))
