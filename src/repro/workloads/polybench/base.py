"""Common infrastructure for the PolyBench/C kernel suite.

Each kernel exists twice, mirroring the paper's methodology: a walc
implementation compiled to Wasm (the WASI-SDK build) and a pure-Python
implementation (the native GCC build). Both follow the same loop structure
and the same PolyBench initialisation formulas, and both return a checksum
over the output arrays — identical IEEE-754 operation order means the two
must agree bit-for-bit, which doubles as an engine-correctness test.

Problem sizes are scaled-down "medium" datasets so the pure-Python Wasm
engine completes in milliseconds; Fig. 5 reports ratios, which are what
the scaling preserves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

DOUBLE = 8  # sizeof(f64)


@dataclass(frozen=True)
class Kernel:
    """One PolyBench kernel in its two implementations."""

    name: str
    category: str
    #: walc source; ``run()`` must be exported and return the checksum.
    walc_source: Callable[[int], str]
    #: Pure-Python reference with identical operation order.
    native: Callable[[int], float]
    #: Scaled-down default problem size.
    default_size: int
    #: Heap pages the Wasm module needs at the default size.
    pages: Callable[[int], int] = None  # type: ignore[assignment]


REGISTRY: Dict[str, Kernel] = {}


def register(kernel: Kernel) -> Kernel:
    if kernel.name in REGISTRY:
        raise ValueError(f"duplicate kernel {kernel.name}")
    REGISTRY[kernel.name] = kernel
    return kernel


def pages_for(total_doubles: int, scratch: int = 4096) -> int:
    """Memory pages needed for ``total_doubles`` f64 slots plus scratch."""
    return (total_doubles * DOUBLE + scratch + 65535) // 65536 + 1
