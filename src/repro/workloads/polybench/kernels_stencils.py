"""PolyBench stencil kernels: adi, fdtd-2d, heat-3d, jacobi-1d,
jacobi-2d, seidel-2d.

Each takes (time steps, grid size) folded into one ``size`` parameter:
``tsteps = max(2, size // 5)`` keeps the paper's medium-dataset shape of
tens of time steps over a moderate grid.
"""

from __future__ import annotations

from repro.workloads.polybench.base import DOUBLE, Kernel, pages_for, register


def _tsteps(n: int) -> int:
    return max(2, n // 5)


def _jacobi_1d_source(n: int) -> str:
    a, b = 0, n * DOUBLE
    steps = _tsteps(n)
    nf = float(n)
    return f"""
memory {pages_for(2 * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    store_f64({a} + i * 8, ((i as f64) + 2.0) / {nf});
    store_f64({b} + i * 8, ((i as f64) + 3.0) / {nf});
  }}
  for (var t: i32 = 0; t < {steps}; t = t + 1) {{
    for (var i: i32 = 1; i < {n} - 1; i = i + 1) {{
      store_f64({b} + i * 8,
                0.33333 * (load_f64({a} + (i - 1) * 8)
                           + load_f64({a} + i * 8)
                           + load_f64({a} + (i + 1) * 8)));
    }}
    for (var i: i32 = 1; i < {n} - 1; i = i + 1) {{
      store_f64({a} + i * 8,
                0.33333 * (load_f64({b} + (i - 1) * 8)
                           + load_f64({b} + i * 8)
                           + load_f64({b} + (i + 1) * 8)));
    }}
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{ sum = sum + load_f64({a} + i * 8); }}
  return sum;
}}
"""


def _jacobi_1d_native(n: int) -> float:
    steps = _tsteps(n)
    a = [(i + 2.0) / n for i in range(n)]
    b = [(i + 3.0) / n for i in range(n)]
    for _t in range(steps):
        for i in range(1, n - 1):
            b[i] = 0.33333 * (a[i - 1] + a[i] + a[i + 1])
        for i in range(1, n - 1):
            a[i] = 0.33333 * (b[i - 1] + b[i] + b[i + 1])
    total = 0.0
    for value in a:
        total = total + value
    return total


register(Kernel("jacobi-1d", "stencils", _jacobi_1d_source,
                _jacobi_1d_native, 400))


def _jacobi_2d_source(n: int) -> str:
    a, b = 0, n * n * DOUBLE
    steps = _tsteps(n)
    nf = float(n)
    return f"""
memory {pages_for(2 * n * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({a} + (i * {n} + j) * 8, ((i as f64) * ((j as f64) + 2.0)) / {nf});
      store_f64({b} + (i * {n} + j) * 8, ((i as f64) * ((j as f64) + 3.0)) / {nf});
    }}
  }}
  for (var t: i32 = 0; t < {steps}; t = t + 1) {{
    for (var i: i32 = 1; i < {n} - 1; i = i + 1) {{
      for (var j: i32 = 1; j < {n} - 1; j = j + 1) {{
        store_f64({b} + (i * {n} + j) * 8,
                  0.2 * (load_f64({a} + (i * {n} + j) * 8)
                         + load_f64({a} + (i * {n} + j - 1) * 8)
                         + load_f64({a} + (i * {n} + j + 1) * 8)
                         + load_f64({a} + ((i + 1) * {n} + j) * 8)
                         + load_f64({a} + ((i - 1) * {n} + j) * 8)));
      }}
    }}
    for (var i: i32 = 1; i < {n} - 1; i = i + 1) {{
      for (var j: i32 = 1; j < {n} - 1; j = j + 1) {{
        store_f64({a} + (i * {n} + j) * 8,
                  0.2 * (load_f64({b} + (i * {n} + j) * 8)
                         + load_f64({b} + (i * {n} + j - 1) * 8)
                         + load_f64({b} + (i * {n} + j + 1) * 8)
                         + load_f64({b} + ((i + 1) * {n} + j) * 8)
                         + load_f64({b} + ((i - 1) * {n} + j) * 8)));
      }}
    }}
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      sum = sum + load_f64({a} + (i * {n} + j) * 8);
    }}
  }}
  return sum;
}}
"""


def _jacobi_2d_native(n: int) -> float:
    steps = _tsteps(n)
    a = [i * (j + 2.0) / n for i in range(n) for j in range(n)]
    b = [i * (j + 3.0) / n for i in range(n) for j in range(n)]
    for _t in range(steps):
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                b[i * n + j] = 0.2 * (a[i * n + j] + a[i * n + j - 1]
                                      + a[i * n + j + 1]
                                      + a[(i + 1) * n + j]
                                      + a[(i - 1) * n + j])
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                a[i * n + j] = 0.2 * (b[i * n + j] + b[i * n + j - 1]
                                      + b[i * n + j + 1]
                                      + b[(i + 1) * n + j]
                                      + b[(i - 1) * n + j])
    total = 0.0
    for value in a:
        total = total + value
    return total


register(Kernel("jacobi-2d", "stencils", _jacobi_2d_source,
                _jacobi_2d_native, 36))


def _seidel_2d_source(n: int) -> str:
    a = 0
    steps = _tsteps(n)
    nf = float(n)
    return f"""
memory {pages_for(n * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({a} + (i * {n} + j) * 8,
                ((i as f64) * ((j as f64) + 2.0) + 2.0) / {nf});
    }}
  }}
  for (var t: i32 = 0; t < {steps}; t = t + 1) {{
    for (var i: i32 = 1; i < {n} - 1; i = i + 1) {{
      for (var j: i32 = 1; j < {n} - 1; j = j + 1) {{
        store_f64({a} + (i * {n} + j) * 8,
                  (load_f64({a} + ((i - 1) * {n} + j - 1) * 8)
                   + load_f64({a} + ((i - 1) * {n} + j) * 8)
                   + load_f64({a} + ((i - 1) * {n} + j + 1) * 8)
                   + load_f64({a} + (i * {n} + j - 1) * 8)
                   + load_f64({a} + (i * {n} + j) * 8)
                   + load_f64({a} + (i * {n} + j + 1) * 8)
                   + load_f64({a} + ((i + 1) * {n} + j - 1) * 8)
                   + load_f64({a} + ((i + 1) * {n} + j) * 8)
                   + load_f64({a} + ((i + 1) * {n} + j + 1) * 8)) / 9.0);
      }}
    }}
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      sum = sum + load_f64({a} + (i * {n} + j) * 8);
    }}
  }}
  return sum;
}}
"""


def _seidel_2d_native(n: int) -> float:
    steps = _tsteps(n)
    a = [(i * (j + 2.0) + 2.0) / n for i in range(n) for j in range(n)]
    for _t in range(steps):
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                a[i * n + j] = (a[(i - 1) * n + j - 1] + a[(i - 1) * n + j]
                                + a[(i - 1) * n + j + 1] + a[i * n + j - 1]
                                + a[i * n + j] + a[i * n + j + 1]
                                + a[(i + 1) * n + j - 1] + a[(i + 1) * n + j]
                                + a[(i + 1) * n + j + 1]) / 9.0
    total = 0.0
    for value in a:
        total = total + value
    return total


register(Kernel("seidel-2d", "stencils", _seidel_2d_source,
                _seidel_2d_native, 36))


def _fdtd_2d_source(n: int) -> str:
    ex, ey, hz, fict = (0, n * n * DOUBLE, 2 * n * n * DOUBLE,
                        3 * n * n * DOUBLE)
    steps = _tsteps(n)
    nf = float(n)
    return f"""
memory {pages_for(3 * n * n + n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {steps}; i = i + 1) {{
    store_f64({fict} + i * 8, i as f64);
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({ex} + (i * {n} + j) * 8, ((i as f64) * ((j as f64) + 1.0)) / {nf});
      store_f64({ey} + (i * {n} + j) * 8, ((i as f64) * ((j as f64) + 2.0)) / {nf});
      store_f64({hz} + (i * {n} + j) * 8, ((i as f64) * ((j as f64) + 3.0)) / {nf});
    }}
  }}
  for (var t: i32 = 0; t < {steps}; t = t + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({ey} + j * 8, load_f64({fict} + t * 8));
    }}
    for (var i: i32 = 1; i < {n}; i = i + 1) {{
      for (var j: i32 = 0; j < {n}; j = j + 1) {{
        store_f64({ey} + (i * {n} + j) * 8,
                  load_f64({ey} + (i * {n} + j) * 8)
                  - 0.5 * (load_f64({hz} + (i * {n} + j) * 8)
                           - load_f64({hz} + ((i - 1) * {n} + j) * 8)));
      }}
    }}
    for (var i: i32 = 0; i < {n}; i = i + 1) {{
      for (var j: i32 = 1; j < {n}; j = j + 1) {{
        store_f64({ex} + (i * {n} + j) * 8,
                  load_f64({ex} + (i * {n} + j) * 8)
                  - 0.5 * (load_f64({hz} + (i * {n} + j) * 8)
                           - load_f64({hz} + (i * {n} + j - 1) * 8)));
      }}
    }}
    for (var i: i32 = 0; i < {n} - 1; i = i + 1) {{
      for (var j: i32 = 0; j < {n} - 1; j = j + 1) {{
        store_f64({hz} + (i * {n} + j) * 8,
                  load_f64({hz} + (i * {n} + j) * 8)
                  - 0.7 * (load_f64({ex} + (i * {n} + j + 1) * 8)
                           - load_f64({ex} + (i * {n} + j) * 8)
                           + load_f64({ey} + ((i + 1) * {n} + j) * 8)
                           - load_f64({ey} + (i * {n} + j) * 8)));
      }}
    }}
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      sum = sum + load_f64({hz} + (i * {n} + j) * 8);
    }}
  }}
  return sum;
}}
"""


def _fdtd_2d_native(n: int) -> float:
    steps = _tsteps(n)
    ex = [i * (j + 1.0) / n for i in range(n) for j in range(n)]
    ey = [i * (j + 2.0) / n for i in range(n) for j in range(n)]
    hz = [i * (j + 3.0) / n for i in range(n) for j in range(n)]
    fict = [float(i) for i in range(steps)]
    for t in range(steps):
        for j in range(n):
            ey[j] = fict[t]
        for i in range(1, n):
            for j in range(n):
                ey[i * n + j] = ey[i * n + j] - 0.5 * (hz[i * n + j]
                                                       - hz[(i - 1) * n + j])
        for i in range(n):
            for j in range(1, n):
                ex[i * n + j] = ex[i * n + j] - 0.5 * (hz[i * n + j]
                                                       - hz[i * n + j - 1])
        for i in range(n - 1):
            for j in range(n - 1):
                hz[i * n + j] = hz[i * n + j] - 0.7 * (
                    ex[i * n + j + 1] - ex[i * n + j]
                    + ey[(i + 1) * n + j] - ey[i * n + j])
    total = 0.0
    for value in hz:
        total = total + value
    return total


register(Kernel("fdtd-2d", "stencils", _fdtd_2d_source, _fdtd_2d_native, 36))


def _heat_3d_source(n: int) -> str:
    a, b = 0, n * n * n * DOUBLE
    steps = _tsteps(n)
    nf = float(n)
    return f"""
memory {pages_for(2 * n * n * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      for (var k: i32 = 0; k < {n}; k = k + 1) {{
        var v: f64 = ((i + j + ({n} - k)) as f64) * 10.0 / {nf};
        store_f64({a} + ((i * {n} + j) * {n} + k) * 8, v);
        store_f64({b} + ((i * {n} + j) * {n} + k) * 8, v);
      }}
    }}
  }}
  for (var t: i32 = 1; t <= {steps}; t = t + 1) {{
    for (var i: i32 = 1; i < {n} - 1; i = i + 1) {{
      for (var j: i32 = 1; j < {n} - 1; j = j + 1) {{
        for (var k: i32 = 1; k < {n} - 1; k = k + 1) {{
          store_f64({b} + ((i * {n} + j) * {n} + k) * 8,
              0.125 * (load_f64({a} + (((i + 1) * {n} + j) * {n} + k) * 8)
                       - 2.0 * load_f64({a} + ((i * {n} + j) * {n} + k) * 8)
                       + load_f64({a} + (((i - 1) * {n} + j) * {n} + k) * 8))
            + 0.125 * (load_f64({a} + ((i * {n} + j + 1) * {n} + k) * 8)
                       - 2.0 * load_f64({a} + ((i * {n} + j) * {n} + k) * 8)
                       + load_f64({a} + ((i * {n} + j - 1) * {n} + k) * 8))
            + 0.125 * (load_f64({a} + ((i * {n} + j) * {n} + k + 1) * 8)
                       - 2.0 * load_f64({a} + ((i * {n} + j) * {n} + k) * 8)
                       + load_f64({a} + ((i * {n} + j) * {n} + k - 1) * 8))
            + load_f64({a} + ((i * {n} + j) * {n} + k) * 8));
        }}
      }}
    }}
    for (var i: i32 = 1; i < {n} - 1; i = i + 1) {{
      for (var j: i32 = 1; j < {n} - 1; j = j + 1) {{
        for (var k: i32 = 1; k < {n} - 1; k = k + 1) {{
          store_f64({a} + ((i * {n} + j) * {n} + k) * 8,
              0.125 * (load_f64({b} + (((i + 1) * {n} + j) * {n} + k) * 8)
                       - 2.0 * load_f64({b} + ((i * {n} + j) * {n} + k) * 8)
                       + load_f64({b} + (((i - 1) * {n} + j) * {n} + k) * 8))
            + 0.125 * (load_f64({b} + ((i * {n} + j + 1) * {n} + k) * 8)
                       - 2.0 * load_f64({b} + ((i * {n} + j) * {n} + k) * 8)
                       + load_f64({b} + ((i * {n} + j - 1) * {n} + k) * 8))
            + 0.125 * (load_f64({b} + ((i * {n} + j) * {n} + k + 1) * 8)
                       - 2.0 * load_f64({b} + ((i * {n} + j) * {n} + k) * 8)
                       + load_f64({b} + ((i * {n} + j) * {n} + k - 1) * 8))
            + load_f64({b} + ((i * {n} + j) * {n} + k) * 8));
        }}
      }}
    }}
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      for (var k: i32 = 0; k < {n}; k = k + 1) {{
        sum = sum + load_f64({a} + ((i * {n} + j) * {n} + k) * 8);
      }}
    }}
  }}
  return sum;
}}
"""


def _heat_3d_native(n: int) -> float:
    steps = _tsteps(n)
    a = [0.0] * (n * n * n)
    b = [0.0] * (n * n * n)
    for i in range(n):
        for j in range(n):
            for k in range(n):
                v = (i + j + (n - k)) * 10.0 / n
                a[(i * n + j) * n + k] = v
                b[(i * n + j) * n + k] = v
    for _t in range(1, steps + 1):
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                for k in range(1, n - 1):
                    b[(i * n + j) * n + k] = (
                        0.125 * (a[((i + 1) * n + j) * n + k]
                                 - 2.0 * a[(i * n + j) * n + k]
                                 + a[((i - 1) * n + j) * n + k])
                        + 0.125 * (a[(i * n + j + 1) * n + k]
                                   - 2.0 * a[(i * n + j) * n + k]
                                   + a[(i * n + j - 1) * n + k])
                        + 0.125 * (a[(i * n + j) * n + k + 1]
                                   - 2.0 * a[(i * n + j) * n + k]
                                   + a[(i * n + j) * n + k - 1])
                        + a[(i * n + j) * n + k])
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                for k in range(1, n - 1):
                    a[(i * n + j) * n + k] = (
                        0.125 * (b[((i + 1) * n + j) * n + k]
                                 - 2.0 * b[(i * n + j) * n + k]
                                 + b[((i - 1) * n + j) * n + k])
                        + 0.125 * (b[(i * n + j + 1) * n + k]
                                   - 2.0 * b[(i * n + j) * n + k]
                                   + b[(i * n + j - 1) * n + k])
                        + 0.125 * (b[(i * n + j) * n + k + 1]
                                   - 2.0 * b[(i * n + j) * n + k]
                                   + b[(i * n + j) * n + k - 1])
                        + b[(i * n + j) * n + k])
    total = 0.0
    for value in a:
        total = total + value
    return total


register(Kernel("heat-3d", "stencils", _heat_3d_source, _heat_3d_native, 12))


def _adi_source(n: int) -> str:
    u, v, p, q = (k * n * n * DOUBLE for k in range(4))
    steps = _tsteps(n)
    nf = float(n)
    return f"""
memory {pages_for(4 * n * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({u} + (i * {n} + j) * 8, ((i as f64) + ({n} - j) as f64) * 10.0 / {nf});
      store_f64({v} + (i * {n} + j) * 8, 0.0);
      store_f64({p} + (i * {n} + j) * 8, 0.0);
      store_f64({q} + (i * {n} + j) * 8, 0.0);
    }}
  }}
  var dx: f64 = 1.0 / {nf};
  var dy: f64 = 1.0 / {nf};
  var dt: f64 = 1.0 / ({steps} as f64);
  var b1: f64 = 2.0;
  var b2: f64 = 1.0;
  var mul1: f64 = b1 * dt / (dx * dx);
  var mul2: f64 = b2 * dt / (dy * dy);
  var a: f64 = 0.0 - mul1 / 2.0;
  var b: f64 = 1.0 + mul1;
  var c: f64 = a;
  var d: f64 = 0.0 - mul2 / 2.0;
  var e: f64 = 1.0 + mul2;
  var f: f64 = d;
  for (var t: i32 = 1; t <= {steps}; t = t + 1) {{
    for (var i: i32 = 1; i < {n} - 1; i = i + 1) {{
      store_f64({v} + (0 * {n} + i) * 8, 1.0);
      store_f64({p} + (i * {n} + 0) * 8, 0.0);
      store_f64({q} + (i * {n} + 0) * 8, load_f64({v} + (0 * {n} + i) * 8));
      for (var j: i32 = 1; j < {n} - 1; j = j + 1) {{
        store_f64({p} + (i * {n} + j) * 8,
                  (0.0 - c) / (a * load_f64({p} + (i * {n} + j - 1) * 8) + b));
        store_f64({q} + (i * {n} + j) * 8,
                  ((0.0 - d) * load_f64({u} + (j * {n} + i - 1) * 8)
                   + (1.0 + 2.0 * d) * load_f64({u} + (j * {n} + i) * 8)
                   - f * load_f64({u} + (j * {n} + i + 1) * 8)
                   - a * load_f64({q} + (i * {n} + j - 1) * 8))
                  / (a * load_f64({p} + (i * {n} + j - 1) * 8) + b));
      }}
      store_f64({v} + (({n} - 1) * {n} + i) * 8, 1.0);
      for (var j: i32 = {n} - 2; j >= 1; j = j - 1) {{
        store_f64({v} + (j * {n} + i) * 8,
                  load_f64({p} + (i * {n} + j) * 8)
                  * load_f64({v} + ((j + 1) * {n} + i) * 8)
                  + load_f64({q} + (i * {n} + j) * 8));
      }}
    }}
    for (var i: i32 = 1; i < {n} - 1; i = i + 1) {{
      store_f64({u} + (i * {n} + 0) * 8, 1.0);
      store_f64({p} + (i * {n} + 0) * 8, 0.0);
      store_f64({q} + (i * {n} + 0) * 8, load_f64({u} + (i * {n} + 0) * 8));
      for (var j: i32 = 1; j < {n} - 1; j = j + 1) {{
        store_f64({p} + (i * {n} + j) * 8,
                  (0.0 - f) / (d * load_f64({p} + (i * {n} + j - 1) * 8) + e));
        store_f64({q} + (i * {n} + j) * 8,
                  ((0.0 - a) * load_f64({v} + ((i - 1) * {n} + j) * 8)
                   + (1.0 + 2.0 * a) * load_f64({v} + (i * {n} + j) * 8)
                   - c * load_f64({v} + ((i + 1) * {n} + j) * 8)
                   - d * load_f64({q} + (i * {n} + j - 1) * 8))
                  / (d * load_f64({p} + (i * {n} + j - 1) * 8) + e));
      }}
      store_f64({u} + (i * {n} + {n} - 1) * 8, 1.0);
      for (var j: i32 = {n} - 2; j >= 1; j = j - 1) {{
        store_f64({u} + (i * {n} + j) * 8,
                  load_f64({p} + (i * {n} + j) * 8)
                  * load_f64({u} + (i * {n} + j + 1) * 8)
                  + load_f64({q} + (i * {n} + j) * 8));
      }}
    }}
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      sum = sum + load_f64({u} + (i * {n} + j) * 8);
    }}
  }}
  return sum;
}}
"""


def _adi_native(n: int) -> float:
    steps = _tsteps(n)
    u = [(i + (n - j)) * 10.0 / n for i in range(n) for j in range(n)]
    v = [0.0] * (n * n)
    p = [0.0] * (n * n)
    q = [0.0] * (n * n)
    dx = 1.0 / n
    dy = 1.0 / n
    dt = 1.0 / float(steps)
    b1, b2 = 2.0, 1.0
    mul1 = b1 * dt / (dx * dx)
    mul2 = b2 * dt / (dy * dy)
    a = 0.0 - mul1 / 2.0
    b = 1.0 + mul1
    c = a
    d = 0.0 - mul2 / 2.0
    e = 1.0 + mul2
    f = d
    for _t in range(1, steps + 1):
        for i in range(1, n - 1):
            v[0 * n + i] = 1.0
            p[i * n + 0] = 0.0
            q[i * n + 0] = v[0 * n + i]
            for j in range(1, n - 1):
                p[i * n + j] = (0.0 - c) / (a * p[i * n + j - 1] + b)
                q[i * n + j] = ((0.0 - d) * u[j * n + i - 1]
                                + (1.0 + 2.0 * d) * u[j * n + i]
                                - f * u[j * n + i + 1]
                                - a * q[i * n + j - 1]) \
                    / (a * p[i * n + j - 1] + b)
            v[(n - 1) * n + i] = 1.0
            for j in range(n - 2, 0, -1):
                v[j * n + i] = p[i * n + j] * v[(j + 1) * n + i] + q[i * n + j]
        for i in range(1, n - 1):
            u[i * n + 0] = 1.0
            p[i * n + 0] = 0.0
            q[i * n + 0] = u[i * n + 0]
            for j in range(1, n - 1):
                p[i * n + j] = (0.0 - f) / (d * p[i * n + j - 1] + e)
                q[i * n + j] = ((0.0 - a) * v[(i - 1) * n + j]
                                + (1.0 + 2.0 * a) * v[i * n + j]
                                - c * v[(i + 1) * n + j]
                                - d * q[i * n + j - 1]) \
                    / (d * p[i * n + j - 1] + e)
            u[i * n + n - 1] = 1.0
            for j in range(n - 2, 0, -1):
                u[i * n + j] = p[i * n + j] * u[i * n + j + 1] + q[i * n + j]
    total = 0.0
    for value in u:
        total = total + value
    return total


register(Kernel("adi", "stencils", _adi_source, _adi_native, 24))
