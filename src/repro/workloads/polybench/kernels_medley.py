"""PolyBench medley kernels: deriche, floyd-warshall, nussinov.

deriche needs ``exp``; Wasm has no transcendental opcodes and WASI-SDK
links libm into the module, so here both implementations share the *same*
range-reduction + Taylor algorithm (in walc and in Python) — keeping the
bit-for-bit checksum equality the suite relies on.
"""

from __future__ import annotations

from repro.workloads.polybench.base import DOUBLE, Kernel, pages_for, register

# exp(x) by range reduction around ln 2 and an 11-term Taylor tail,
# mirrored exactly in walc below.
_LN2 = 0.6931471805599453


def _exp_shared(x: float) -> float:
    k = int(x / _LN2)
    r = x - (k * 1.0) * _LN2
    term = 1.0
    total = 1.0
    i = 1
    while i <= 11:
        term = term * r / (i * 1.0)
        total = total + term
        i = i + 1
    scale = 1.0
    if k >= 0:
        j = 0
        while j < k:
            scale = scale * 2.0
            j = j + 1
    else:
        j = 0
        while j > k:
            scale = scale / 2.0
            j = j - 1
    return total * scale


_EXP_WALC = f"""
fn exp_shared(x: f64) -> f64 {{
  var k: i32 = (x / {_LN2!r}) as i32;
  var r: f64 = x - ((k as f64) * {_LN2!r});
  var term: f64 = 1.0;
  var total: f64 = 1.0;
  for (var i: i32 = 1; i <= 11; i = i + 1) {{
    term = term * r / (i as f64);
    total = total + term;
  }}
  var scale: f64 = 1.0;
  if (k >= 0) {{
    for (var j: i32 = 0; j < k; j = j + 1) {{ scale = scale * 2.0; }}
  }} else {{
    for (var j: i32 = 0; j > k; j = j - 1) {{ scale = scale / 2.0; }}
  }}
  return total * scale;
}}
"""


def _deriche_source(n: int) -> str:
    # Square image W = H = n; arrays: img_in, img_out, y1, y2.
    img_in, img_out, y1, y2 = (k * n * n * DOUBLE for k in range(4))
    return f"""
memory {pages_for(4 * n * n)};
{_EXP_WALC}
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({img_in} + (i * {n} + j) * 8,
                (((313 * i + 991 * j) % 65536) as f64) / 65535.0);
    }}
  }}
  var alpha: f64 = 0.25;
  var k: f64 = (1.0 - exp_shared(0.0 - alpha)) * (1.0 - exp_shared(0.0 - alpha))
             / (1.0 + 2.0 * alpha * exp_shared(0.0 - alpha)
                - exp_shared(0.0 - 2.0 * alpha));
  var a1: f64 = k;
  var a5: f64 = k;
  var a2: f64 = k * exp_shared(0.0 - alpha) * (alpha - 1.0);
  var a6: f64 = a2;
  var a3: f64 = k * exp_shared(0.0 - alpha) * (alpha + 1.0);
  var a7: f64 = a3;
  var a4: f64 = 0.0 - k * exp_shared(0.0 - 2.0 * alpha);
  var a8: f64 = a4;
  var b1: f64 = 2.0 * exp_shared(0.0 - alpha);
  var b2: f64 = 0.0 - exp_shared(0.0 - 2.0 * alpha);
  var c1: f64 = 1.0;
  var c2: f64 = 1.0;

  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    var ym1: f64 = 0.0;
    var ym2: f64 = 0.0;
    var xm1: f64 = 0.0;
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      var x: f64 = load_f64({img_in} + (i * {n} + j) * 8);
      var y: f64 = a1 * x + a2 * xm1 + b1 * ym1 + b2 * ym2;
      store_f64({y1} + (i * {n} + j) * 8, y);
      xm1 = x;
      ym2 = ym1;
      ym1 = y;
    }}
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    var yp1: f64 = 0.0;
    var yp2: f64 = 0.0;
    var xp1: f64 = 0.0;
    var xp2: f64 = 0.0;
    for (var j: i32 = {n} - 1; j >= 0; j = j - 1) {{
      var x: f64 = load_f64({img_in} + (i * {n} + j) * 8);
      var y: f64 = a3 * xp1 + a4 * xp2 + b1 * yp1 + b2 * yp2;
      store_f64({y2} + (i * {n} + j) * 8, y);
      xp2 = xp1;
      xp1 = x;
      yp2 = yp1;
      yp1 = y;
    }}
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({img_out} + (i * {n} + j) * 8,
                c1 * (load_f64({y1} + (i * {n} + j) * 8)
                      + load_f64({y2} + (i * {n} + j) * 8)));
    }}
  }}
  for (var j: i32 = 0; j < {n}; j = j + 1) {{
    var tm1: f64 = 0.0;
    var ym1: f64 = 0.0;
    var ym2: f64 = 0.0;
    for (var i: i32 = 0; i < {n}; i = i + 1) {{
      var t: f64 = load_f64({img_out} + (i * {n} + j) * 8);
      var y: f64 = a5 * t + a6 * tm1 + b1 * ym1 + b2 * ym2;
      store_f64({y1} + (i * {n} + j) * 8, y);
      tm1 = t;
      ym2 = ym1;
      ym1 = y;
    }}
  }}
  for (var j: i32 = 0; j < {n}; j = j + 1) {{
    var tp1: f64 = 0.0;
    var tp2: f64 = 0.0;
    var yp1: f64 = 0.0;
    var yp2: f64 = 0.0;
    for (var i: i32 = {n} - 1; i >= 0; i = i - 1) {{
      var t: f64 = load_f64({img_out} + (i * {n} + j) * 8);
      var y: f64 = a7 * tp1 + a8 * tp2 + b1 * yp1 + b2 * yp2;
      store_f64({y2} + (i * {n} + j) * 8, y);
      tp2 = tp1;
      tp1 = t;
      yp2 = yp1;
      yp1 = y;
    }}
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      sum = sum + c2 * (load_f64({y1} + (i * {n} + j) * 8)
                        + load_f64({y2} + (i * {n} + j) * 8));
    }}
  }}
  return sum;
}}
"""


def _deriche_native(n: int) -> float:
    exp = _exp_shared
    img_in = [((313 * i + 991 * j) % 65536) / 65535.0
              for i in range(n) for j in range(n)]
    img_out = [0.0] * (n * n)
    y1 = [0.0] * (n * n)
    y2 = [0.0] * (n * n)
    alpha = 0.25
    k = ((1.0 - exp(0.0 - alpha)) * (1.0 - exp(0.0 - alpha))
         / (1.0 + 2.0 * alpha * exp(0.0 - alpha) - exp(0.0 - 2.0 * alpha)))
    a1 = a5 = k
    a2 = a6 = k * exp(0.0 - alpha) * (alpha - 1.0)
    a3 = a7 = k * exp(0.0 - alpha) * (alpha + 1.0)
    a4 = a8 = 0.0 - k * exp(0.0 - 2.0 * alpha)
    b1 = 2.0 * exp(0.0 - alpha)
    b2 = 0.0 - exp(0.0 - 2.0 * alpha)
    c1 = c2 = 1.0
    for i in range(n):
        ym1 = ym2 = xm1 = 0.0
        for j in range(n):
            x = img_in[i * n + j]
            y = a1 * x + a2 * xm1 + b1 * ym1 + b2 * ym2
            y1[i * n + j] = y
            xm1 = x
            ym2 = ym1
            ym1 = y
    for i in range(n):
        yp1 = yp2 = xp1 = xp2 = 0.0
        for j in range(n - 1, -1, -1):
            x = img_in[i * n + j]
            y = a3 * xp1 + a4 * xp2 + b1 * yp1 + b2 * yp2
            y2[i * n + j] = y
            xp2 = xp1
            xp1 = x
            yp2 = yp1
            yp1 = y
    for i in range(n):
        for j in range(n):
            img_out[i * n + j] = c1 * (y1[i * n + j] + y2[i * n + j])
    for j in range(n):
        tm1 = ym1 = ym2 = 0.0
        for i in range(n):
            t = img_out[i * n + j]
            y = a5 * t + a6 * tm1 + b1 * ym1 + b2 * ym2
            y1[i * n + j] = y
            tm1 = t
            ym2 = ym1
            ym1 = y
    for j in range(n):
        tp1 = tp2 = yp1 = yp2 = 0.0
        for i in range(n - 1, -1, -1):
            t = img_out[i * n + j]
            y = a7 * tp1 + a8 * tp2 + b1 * yp1 + b2 * yp2
            y2[i * n + j] = y
            tp2 = tp1
            tp1 = t
            yp2 = yp1
            yp1 = y
    total = 0.0
    for i in range(n):
        for j in range(n):
            total = total + c2 * (y1[i * n + j] + y2[i * n + j])
    return total


register(Kernel("deriche", "medley", _deriche_source, _deriche_native, 48))


def _floyd_warshall_source(n: int) -> str:
    path = 0
    return f"""
memory {pages_for(n * n // 2 + 1)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      var v: i32 = (i * j) % 7 + 1;
      if ((i + j) % 13 == 0 || (i + j) % 7 == 0 || (i + j) % 11 == 0) {{
        v = 999;
      }}
      store_i32({path} + (i * {n} + j) * 4, v);
    }}
  }}
  for (var k: i32 = 0; k < {n}; k = k + 1) {{
    for (var i: i32 = 0; i < {n}; i = i + 1) {{
      for (var j: i32 = 0; j < {n}; j = j + 1) {{
        var direct: i32 = load_i32({path} + (i * {n} + j) * 4);
        var via: i32 = load_i32({path} + (i * {n} + k) * 4)
                     + load_i32({path} + (k * {n} + j) * 4);
        if (via < direct) {{
          store_i32({path} + (i * {n} + j) * 4, via);
        }}
      }}
    }}
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      sum = sum + (load_i32({path} + (i * {n} + j) * 4) as f64);
    }}
  }}
  return sum;
}}
"""


def _floyd_warshall_native(n: int) -> float:
    path = [0] * (n * n)
    for i in range(n):
        for j in range(n):
            v = (i * j) % 7 + 1
            if (i + j) % 13 == 0 or (i + j) % 7 == 0 or (i + j) % 11 == 0:
                v = 999
            path[i * n + j] = v
    for k in range(n):
        for i in range(n):
            for j in range(n):
                via = path[i * n + k] + path[k * n + j]
                if via < path[i * n + j]:
                    path[i * n + j] = via
    total = 0.0
    for value in path:
        total = total + float(value)
    return total


register(Kernel("floyd-warshall", "medley", _floyd_warshall_source,
                _floyd_warshall_native, 30))


def _nussinov_source(n: int) -> str:
    # seq (bases 0..3) as i32, table as i32.
    seq, table = 0, n * 4
    return f"""
memory {pages_for(n * n // 2 + n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    store_i32({seq} + i * 4, (i + 1) % 4);
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_i32({table} + (i * {n} + j) * 4, 0);
    }}
  }}
  for (var i: i32 = {n} - 1; i >= 0; i = i - 1) {{
    for (var j: i32 = i + 1; j < {n}; j = j + 1) {{
      if (j - 1 >= 0) {{
        var left: i32 = load_i32({table} + (i * {n} + j - 1) * 4);
        if (left > load_i32({table} + (i * {n} + j) * 4)) {{
          store_i32({table} + (i * {n} + j) * 4, left);
        }}
      }}
      if (i + 1 < {n}) {{
        var down: i32 = load_i32({table} + ((i + 1) * {n} + j) * 4);
        if (down > load_i32({table} + (i * {n} + j) * 4)) {{
          store_i32({table} + (i * {n} + j) * 4, down);
        }}
      }}
      if (j - 1 >= 0 && i + 1 < {n}) {{
        var diag: i32 = load_i32({table} + ((i + 1) * {n} + j - 1) * 4);
        if (i < j - 1) {{
          var match: i32 = 0;
          if (load_i32({seq} + i * 4) + load_i32({seq} + j * 4) == 3) {{
            match = 1;
          }}
          diag = diag + match;
        }}
        if (diag > load_i32({table} + (i * {n} + j) * 4)) {{
          store_i32({table} + (i * {n} + j) * 4, diag);
        }}
      }}
      for (var k: i32 = i + 1; k < j; k = k + 1) {{
        var split: i32 = load_i32({table} + (i * {n} + k) * 4)
                       + load_i32({table} + ((k + 1) * {n} + j) * 4);
        if (split > load_i32({table} + (i * {n} + j) * 4)) {{
          store_i32({table} + (i * {n} + j) * 4, split);
        }}
      }}
    }}
  }}
  return load_i32({table} + ({n} - 1) * 4) as f64;
}}
"""


def _nussinov_native(n: int) -> float:
    seq = [(i + 1) % 4 for i in range(n)]
    table = [0] * (n * n)
    for i in range(n - 1, -1, -1):
        for j in range(i + 1, n):
            if j - 1 >= 0:
                left = table[i * n + j - 1]
                if left > table[i * n + j]:
                    table[i * n + j] = left
            if i + 1 < n:
                down = table[(i + 1) * n + j]
                if down > table[i * n + j]:
                    table[i * n + j] = down
            if j - 1 >= 0 and i + 1 < n:
                diag = table[(i + 1) * n + j - 1]
                if i < j - 1:
                    diag = diag + (1 if seq[i] + seq[j] == 3 else 0)
                if diag > table[i * n + j]:
                    table[i * n + j] = diag
            for k in range(i + 1, j):
                split = table[i * n + k] + table[(k + 1) * n + j]
                if split > table[i * n + j]:
                    table[i * n + j] = split
    return float(table[0 * n + (n - 1)])


register(Kernel("nussinov", "medley", _nussinov_source, _nussinov_native, 32))
