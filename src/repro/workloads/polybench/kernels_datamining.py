"""PolyBench data-mining kernels: correlation, covariance."""

from __future__ import annotations

import math

from repro.workloads.polybench.base import DOUBLE, Kernel, pages_for, register


def _covariance_source(n: int) -> str:
    data, cov, mean = 0, n * n * DOUBLE, 2 * n * n * DOUBLE
    nf = float(n)
    return f"""
memory {pages_for(2 * n * n + n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({data} + (i * {n} + j) * 8, ((i * j) as f64) / {nf});
    }}
  }}
  var float_n: f64 = {nf};
  for (var j: i32 = 0; j < {n}; j = j + 1) {{
    var m: f64 = 0.0;
    for (var i: i32 = 0; i < {n}; i = i + 1) {{
      m = m + load_f64({data} + (i * {n} + j) * 8);
    }}
    store_f64({mean} + j * 8, m / float_n);
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({data} + (i * {n} + j) * 8,
                load_f64({data} + (i * {n} + j) * 8) - load_f64({mean} + j * 8));
    }}
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = i; j < {n}; j = j + 1) {{
      var c: f64 = 0.0;
      for (var k: i32 = 0; k < {n}; k = k + 1) {{
        c = c + load_f64({data} + (k * {n} + i) * 8)
              * load_f64({data} + (k * {n} + j) * 8);
      }}
      c = c / (float_n - 1.0);
      store_f64({cov} + (i * {n} + j) * 8, c);
      store_f64({cov} + (j * {n} + i) * 8, c);
    }}
  }}
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      sum = sum + load_f64({cov} + (i * {n} + j) * 8);
    }}
  }}
  return sum;
}}
"""


def _covariance_native(n: int) -> float:
    data = [(i * j) / n for i in range(n) for j in range(n)]
    cov = [0.0] * (n * n)
    mean = [0.0] * n
    float_n = float(n)
    for j in range(n):
        m = 0.0
        for i in range(n):
            m = m + data[i * n + j]
        mean[j] = m / float_n
    for i in range(n):
        for j in range(n):
            data[i * n + j] = data[i * n + j] - mean[j]
    for i in range(n):
        for j in range(i, n):
            c = 0.0
            for k in range(n):
                c = c + data[k * n + i] * data[k * n + j]
            c = c / (float_n - 1.0)
            cov[i * n + j] = c
            cov[j * n + i] = c
    total = 0.0
    for value in cov:
        total = total + value
    return total


register(Kernel("covariance", "datamining", _covariance_source,
                _covariance_native, 30))


def _correlation_source(n: int) -> str:
    data, corr = 0, n * n * DOUBLE
    mean, stddev = 2 * n * n * DOUBLE, (2 * n * n + n) * DOUBLE
    nf = float(n)
    return f"""
memory {pages_for(2 * n * n + 2 * n)};
export fn run() -> f64 {{
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      store_f64({data} + (i * {n} + j) * 8, ((i * j) as f64) / {nf} + (i as f64));
    }}
  }}
  var float_n: f64 = {nf};
  var eps: f64 = 0.1;
  for (var j: i32 = 0; j < {n}; j = j + 1) {{
    var m: f64 = 0.0;
    for (var i: i32 = 0; i < {n}; i = i + 1) {{
      m = m + load_f64({data} + (i * {n} + j) * 8);
    }}
    m = m / float_n;
    store_f64({mean} + j * 8, m);
    var sd: f64 = 0.0;
    for (var i: i32 = 0; i < {n}; i = i + 1) {{
      var d: f64 = load_f64({data} + (i * {n} + j) * 8) - m;
      sd = sd + d * d;
    }}
    sd = sqrt(sd / float_n);
    if (sd <= eps) {{ sd = 1.0; }}
    store_f64({stddev} + j * 8, sd);
  }}
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      var v: f64 = load_f64({data} + (i * {n} + j) * 8) - load_f64({mean} + j * 8);
      v = v / (sqrt(float_n) * load_f64({stddev} + j * 8));
      store_f64({data} + (i * {n} + j) * 8, v);
    }}
  }}
  for (var i: i32 = 0; i < {n} - 1; i = i + 1) {{
    store_f64({corr} + (i * {n} + i) * 8, 1.0);
    for (var j: i32 = i + 1; j < {n}; j = j + 1) {{
      var c: f64 = 0.0;
      for (var k: i32 = 0; k < {n}; k = k + 1) {{
        c = c + load_f64({data} + (k * {n} + i) * 8)
              * load_f64({data} + (k * {n} + j) * 8);
      }}
      store_f64({corr} + (i * {n} + j) * 8, c);
      store_f64({corr} + (j * {n} + i) * 8, c);
    }}
  }}
  store_f64({corr} + (({n} - 1) * {n} + {n} - 1) * 8, 1.0);
  var sum: f64 = 0.0;
  for (var i: i32 = 0; i < {n}; i = i + 1) {{
    for (var j: i32 = 0; j < {n}; j = j + 1) {{
      sum = sum + load_f64({corr} + (i * {n} + j) * 8);
    }}
  }}
  return sum;
}}
"""


def _correlation_native(n: int) -> float:
    data = [(i * j) / n + float(i) for i in range(n) for j in range(n)]
    corr = [0.0] * (n * n)
    mean = [0.0] * n
    stddev = [0.0] * n
    float_n = float(n)
    eps = 0.1
    for j in range(n):
        m = 0.0
        for i in range(n):
            m = m + data[i * n + j]
        m = m / float_n
        mean[j] = m
        sd = 0.0
        for i in range(n):
            d = data[i * n + j] - m
            sd = sd + d * d
        sd = math.sqrt(sd / float_n)
        if sd <= eps:
            sd = 1.0
        stddev[j] = sd
    for i in range(n):
        for j in range(n):
            v = data[i * n + j] - mean[j]
            v = v / (math.sqrt(float_n) * stddev[j])
            data[i * n + j] = v
    for i in range(n - 1):
        corr[i * n + i] = 1.0
        for j in range(i + 1, n):
            c = 0.0
            for k in range(n):
                c = c + data[k * n + i] * data[k * n + j]
            corr[i * n + j] = c
            corr[j * n + i] = c
    corr[(n - 1) * n + n - 1] = 1.0
    total = 0.0
    for value in corr:
        total = total + value
    return total


register(Kernel("correlation", "datamining", _correlation_source,
                _correlation_native, 30))
