"""repro.obs — cross-world tracing, profiling and replay.

The observability subsystem: a dual-clock :class:`Tracer` (virtual
SimClock nanoseconds + wall ``perf_counter`` seconds, never mixed),
instrumentation hooks threaded through ``hw``/``optee``/``wasi``/
``core``/``fleet`` (all no-ops until a tracer is attached), Chrome
``trace_event``/flame exporters, a span-only :class:`TraceAnalyzer`, and
host-call record/replay for standalone deterministic Wasm benchmarks.
"""

from repro.obs.analysis import PhaseRow, TraceAnalyzer, UNATTRIBUTED
from repro.obs.export import (
    flame_summary,
    folded_stacks,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.record import (
    HostCall,
    HostCallLog,
    ReplayMismatch,
    record_host_calls,
    replay_imports,
    replay_run,
)
from repro.obs.profile import (
    PROFILE_SPAN,
    extract_profile,
    profiles_from_spans,
)
from repro.obs.tracer import Span, Tracer, TracingRecorder

__all__ = [
    "HostCall",
    "HostCallLog",
    "PROFILE_SPAN",
    "PhaseRow",
    "ReplayMismatch",
    "Span",
    "extract_profile",
    "profiles_from_spans",
    "TraceAnalyzer",
    "Tracer",
    "TracingRecorder",
    "UNATTRIBUTED",
    "flame_summary",
    "folded_stacks",
    "record_host_calls",
    "replay_imports",
    "replay_run",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
