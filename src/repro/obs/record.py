"""Host-call recording and deterministic replay (Wasm-R3 style).

A Wasm execution inside WaTZ is deterministic *except* for what crosses
the host boundary: WASI and WASI-RA calls read clocks, randomness and
sockets. Recording every host call — arguments, results, and the bytes
the host wrote into linear memory — therefore captures the execution's
entire environment. Replaying the log against the interpreter reproduces
the run bit-for-bit with no TEE, no device and no network: a standalone
deterministic benchmark of pure Wasm execution (Baek et al., Wasm-R3,
OOPSLA 2024 use the same observation to snapshot real workloads).

The recorder wraps an import namespace; the replayer rebuilds one from a
log. Logs serialise to JSON so ``bench_results/`` artifacts double as
portable benchmark inputs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError, TrapError
from repro.wasi.api import ProcExit
from repro.wasm.runtime import HostFunction, Imports
from repro.wasm.types import FuncType, ValType


class ReplayMismatch(ReproError):
    """The replayed execution diverged from the recorded one."""


@dataclass
class HostCall:
    """One recorded host-boundary crossing."""

    module: str
    name: str
    args: Tuple[object, ...]
    result: object = None
    #: Bytes the host wrote into linear memory: (address, payload).
    writes: List[Tuple[int, bytes]] = field(default_factory=list)
    #: Recorded exceptional outcome: ("ProcExit", code) or
    #: ("TrapError", message); None for a normal return.
    raised: Optional[Tuple[str, object]] = None


def _signature_json(func_type: FuncType) -> Dict[str, List[str]]:
    return {"params": [t.mnemonic for t in func_type.params],
            "results": [t.mnemonic for t in func_type.results]}


def _signature_from_json(blob: Dict[str, List[str]]) -> FuncType:
    lookup = {t.mnemonic: t for t in ValType}
    return FuncType(tuple(lookup[p] for p in blob["params"]),
                    tuple(lookup[r] for r in blob["results"]))


class HostCallLog:
    """An ordered host-call trace plus the declared import surface."""

    def __init__(self) -> None:
        self.calls: List[HostCall] = []
        #: module -> name -> FuncType for every import the original run
        #: linked, so a replay namespace satisfies the same link checks.
        self.declared: Dict[str, Dict[str, FuncType]] = {}

    def __len__(self) -> int:
        return len(self.calls)

    # -- serialisation -----------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "declared": {
                module: {name: _signature_json(sig)
                         for name, sig in names.items()}
                for module, names in self.declared.items()
            },
            "calls": [{
                "module": call.module,
                "name": call.name,
                "args": list(call.args),
                "result": list(call.result)
                if isinstance(call.result, tuple) else call.result,
                "result_is_tuple": isinstance(call.result, tuple),
                "writes": [[address, payload.hex()]
                           for address, payload in call.writes],
                "raised": list(call.raised) if call.raised else None,
            } for call in self.calls],
        }, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "HostCallLog":
        blob = json.loads(text)
        log = cls()
        log.declared = {
            module: {name: _signature_from_json(sig)
                     for name, sig in names.items()}
            for module, names in blob["declared"].items()
        }
        for entry in blob["calls"]:
            result = entry["result"]
            if entry.get("result_is_tuple") and isinstance(result, list):
                result = tuple(result)
            raised = entry.get("raised")
            log.calls.append(HostCall(
                module=entry["module"],
                name=entry["name"],
                args=tuple(entry["args"]),
                result=result,
                writes=[(address, bytes.fromhex(payload))
                        for address, payload in entry["writes"]],
                raised=(raised[0], raised[1]) if raised else None,
            ))
        return log


def record_host_calls(imports: Imports,
                      log: Optional[HostCallLog] = None
                      ) -> Tuple[Imports, HostCallLog]:
    """Wrap an import namespace so every call lands in ``log``.

    Memory writes performed by the host are captured by shadowing the
    memory's ``write`` method for the duration of the call — the bytes
    still land in linear memory, and the log keeps a copy.
    """
    log = log or HostCallLog()
    wrapped: Imports = {}
    for module, names in imports.items():
        log.declared.setdefault(module, {})
        wrapped_names: Dict[str, HostFunction] = {}
        for name, host in names.items():
            log.declared[module][name] = host.func_type
            wrapped_names[name] = HostFunction(
                host.func_type,
                _recording_fn(module, name, host, log),
                name,
            )
        wrapped[module] = wrapped_names
    return wrapped, log


def _recording_fn(module: str, name: str, host: HostFunction,
                  log: HostCallLog):
    def call(instance, *args):
        record = HostCall(module=module, name=name, args=tuple(args))
        memory = instance.memory
        if memory is not None:
            original_write = memory.write

            def spy_write(address: int, payload: bytes) -> None:
                original_write(address, payload)
                record.writes.append((address, bytes(payload)))

            memory.write = spy_write  # instance attr shadows the method
        try:
            result = host.fn(instance, *args)
        except ProcExit as exit_request:
            record.raised = ("ProcExit", exit_request.code)
            log.calls.append(record)
            raise
        except TrapError as trap:
            record.raised = ("TrapError", str(trap))
            log.calls.append(record)
            raise
        finally:
            if memory is not None:
                del memory.write
        record.result = result
        log.calls.append(record)
        return result

    return call


def replay_imports(log: HostCallLog, check_args: bool = True) -> Imports:
    """Build an import namespace that replays ``log`` instead of a host.

    Calls must arrive in recorded order with the recorded arguments
    (divergence raises :class:`ReplayMismatch`); each replayed call
    re-applies the recorded memory writes and returns the recorded
    result, so the guest observes an environment identical to the
    original run's.
    """
    cursor = {"index": 0}

    def replaying_fn(module: str, name: str):
        def call(instance, *args):
            index = cursor["index"]
            if index >= len(log.calls):
                raise ReplayMismatch(
                    f"{module}.{name} called after the recorded log "
                    f"({len(log.calls)} calls) was exhausted")
            record = log.calls[index]
            cursor["index"] = index + 1
            if (record.module, record.name) != (module, name):
                raise ReplayMismatch(
                    f"call #{index}: recorded {record.module}.{record.name}, "
                    f"replay invoked {module}.{name}")
            if check_args and tuple(args) != record.args:
                raise ReplayMismatch(
                    f"call #{index} ({name}): recorded args {record.args}, "
                    f"replay passed {tuple(args)}")
            for address, payload in record.writes:
                instance.memory.write(address, payload)
            if record.raised is not None:
                kind, detail = record.raised
                if kind == "ProcExit":
                    raise ProcExit(int(detail))
                raise TrapError(str(detail))
            return record.result

        return call

    return {
        module: {
            name: HostFunction(sig, replaying_fn(module, name), name)
            for name, sig in names.items()
        }
        for module, names in log.declared.items()
    }


def replay_run(bytecode: bytes, log: HostCallLog, function: str,
               args: Sequence[object] = (), check_args: bool = True):
    """Replay a recorded execution against the interpreter, standalone.

    Returns the invoked function's result (or the recorded exit code if
    the run ended in ``proc_exit``). Each call replays from the start of
    the log, so it can be repeated as a deterministic benchmark body.
    """
    from repro.wasm.interpreter import Interpreter

    instance = Interpreter().instantiate(
        bytecode, replay_imports(log, check_args=check_args))
    try:
        return instance.invoke(function, *args)
    except ProcExit as exit_request:
        return exit_request.code
