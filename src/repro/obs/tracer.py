"""The cross-world tracer: nested spans stamped with both clocks.

Every span records *two* durations, one per time source, and never mixes
them (DESIGN.md, "Clock discipline"):

* **virtual nanoseconds** from the board's :class:`~repro.hw.clock.SimClock`
  — architectural latencies (world transitions, driver round-trips, WASI
  dispatch) that only exist on hardware;
* **wall seconds** from ``time.perf_counter`` — genuine computation done
  by this repo's code (crypto, Wasm execution, appraisal logic).

Spans nest per thread; the tracer keeps a bounded flight-recorder ring
buffer (oldest spans fall off) and is safe for concurrent emit from the
gateway's worker threads. Instrumentation sites throughout the stack hold
an ``Optional[Tracer]`` and skip *all* of this when it is ``None`` — the
hot path stays one attribute test.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterator, List, Optional

from repro.core.protocol import CostRecorder

#: Worlds a span can be attributed to (mirrors repro.hw.caam.World values,
#: without importing hardware into the observability layer).
NORMAL = "normal"
SECURE = "secure"


@dataclass
class Span:
    """One completed region of work, stamped with both clocks."""

    span_id: int
    parent_id: Optional[int]
    name: str
    #: "normal" / "secure" / "" when the world is not meaningful.
    world: str
    #: Verifier TA lane index (fleet gateway), or None.
    lane: Optional[int]
    start_wall_s: float
    end_wall_s: float
    start_sim_ns: int
    end_sim_ns: int
    thread_id: int
    thread_name: str
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def wall_s(self) -> float:
        return self.end_wall_s - self.start_wall_s

    @property
    def sim_ns(self) -> int:
        return self.end_sim_ns - self.start_sim_ns


class Tracer:
    """Thread-safe dual-clock tracer with a bounded ring buffer.

    ``sim_now`` must be a *pure* read of the virtual clock (for a board,
    ``soc.clock.now_ns`` — never ``soc.read_monotonic_ns``, which charges
    the cross-world fetch cost and would perturb what it measures).
    """

    def __init__(self, sim_now: Optional[Callable[[], int]] = None,
                 capacity: int = 65536,
                 wall_now: Callable[[], float] = time.perf_counter) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self._sim_now = sim_now or (lambda: 0)
        self._wall_now = wall_now
        self._buffer: Deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._next_id = 1
        self._emitted = 0
        self._stacks = threading.local()

    # -- span lifecycle ---------------------------------------------------------

    def _stack(self) -> List[int]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    @contextmanager
    def span(self, name: str, world: str = "", lane: Optional[int] = None,
             **attrs: object) -> Iterator[Span]:
        """Open a nested span; it is recorded when the block exits."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        parent_id = stack[-1] if stack else None
        thread = threading.current_thread()
        record = Span(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            world=world,
            lane=lane,
            start_wall_s=self._wall_now(),
            end_wall_s=0.0,
            start_sim_ns=self._sim_now(),
            end_sim_ns=0,
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            attrs=dict(attrs),
        )
        stack.append(span_id)
        try:
            yield record
        finally:
            stack.pop()
            record.end_wall_s = self._wall_now()
            record.end_sim_ns = self._sim_now()
            with self._lock:
                self._buffer.append(record)
                self._emitted += 1

    def instant(self, name: str, world: str = "", **attrs: object) -> Span:
        """Emit a zero-duration marker span."""
        with self.span(name, world=world, **attrs) as record:
            pass
        return record

    # -- access -----------------------------------------------------------------

    @property
    def emitted(self) -> int:
        """Total spans ever emitted (including ones the ring dropped)."""
        with self._lock:
            return self._emitted

    @property
    def dropped(self) -> int:
        """Spans pushed out of the flight recorder by newer ones."""
        with self._lock:
            return self._emitted - len(self._buffer)

    def spans(self) -> List[Span]:
        """A snapshot of the ring buffer, oldest first."""
        with self._lock:
            return list(self._buffer)

    def drain(self) -> List[Span]:
        """Return the buffered spans and clear the ring."""
        with self._lock:
            spans = list(self._buffer)
            self._buffer.clear()
            return spans

    def recorder(self) -> "TracingRecorder":
        """A protocol :class:`CostRecorder` that mirrors phases as spans."""
        return TracingRecorder(self)


class TracingRecorder(CostRecorder):
    """A :class:`CostRecorder` that also emits ``crypto.*`` spans.

    Attester/verifier wrap every cryptographic phase through their
    recorder (Table III); routing one of these through them makes the
    same phases show up in the trace without touching protocol code.
    """

    def __init__(self, tracer: Tracer) -> None:
        super().__init__()
        self._tracer = tracer

    @contextmanager
    def phase(self, message: str, category: str) -> Iterator[None]:
        with self._tracer.span(f"crypto.{category}", message=message):
            with super().phase(message, category):
                yield
