"""Recover AOT profiles from trace span streams.

:func:`repro.wasm.pgo.profile_module` publishes every finished profile as
a ``wasm.profile`` instant span whose attrs carry the module's content
key and the profile's canonical JSON. That makes the trace itself the
transport: a production run traced with :class:`repro.obs.Tracer` leaves
behind everything the profile-guided tier needs, and this module turns
the span soup back into :class:`~repro.wasm.pgo.Profile` objects —
merging multiple observation windows of the same module into one profile
(counters add; observed-constant globals survive only when every window
agrees, exactly :func:`~repro.wasm.pgo.merge_profiles` semantics).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.wasm.pgo import Profile, ProfileError, merge_profiles

#: Span name under which profiles travel inside a trace.
PROFILE_SPAN = "wasm.profile"

__all__ = ["PROFILE_SPAN", "extract_profile", "profiles_from_spans"]


def profiles_from_spans(spans: Iterable) -> Dict[str, Profile]:
    """All profiles recoverable from ``spans``, keyed by module content
    key, with repeated observations of one module merged in span order.

    Spans that are not ``wasm.profile`` instants are skipped; a
    ``wasm.profile`` span with a malformed payload raises
    :class:`~repro.wasm.pgo.ProfileError` (a trace that *claims* to carry
    a profile but doesn't is corrupt, not ignorable).
    """
    buckets: Dict[str, list] = {}
    for span in spans:
        if getattr(span, "name", None) != PROFILE_SPAN:
            continue
        attrs = getattr(span, "attrs", None) or {}
        payload = attrs.get("profile")
        if payload is None:
            raise ProfileError("wasm.profile span carries no profile attr")
        profile = Profile.coerce(payload)
        key = attrs.get("module_key") or profile.module_key
        buckets.setdefault(key, []).append(profile)
    return {
        key: bucket[0] if len(bucket) == 1 else merge_profiles(bucket)
        for key, bucket in buckets.items()
    }


def extract_profile(spans: Iterable,
                    module_key: Optional[str] = None) -> Optional[Profile]:
    """The (merged) profile for one module from a span stream.

    With ``module_key=None`` the stream must contain profiles for at most
    one module — the common single-workload trace — and that profile is
    returned; ambiguity raises :class:`~repro.wasm.pgo.ProfileError`.
    Returns None when the stream holds no profile for the module.
    """
    profiles = profiles_from_spans(spans)
    if module_key is not None:
        return profiles.get(module_key)
    if not profiles:
        return None
    if len(profiles) > 1:
        raise ProfileError(
            f"trace carries profiles for {len(profiles)} modules; "
            "pass module_key to choose one")
    return next(iter(profiles.values()))
