"""Trace exporters: Chrome ``trace_event`` JSON and text flame views.

The JSON exporter emits the subset of the Trace Event Format that
``chrome://tracing`` and Perfetto load directly: complete events
(``ph: "X"``) with microsecond ``ts``/``dur``, plus ``M`` metadata events
naming processes and threads. One export uses exactly one clock — virtual
SimClock nanoseconds or wall ``perf_counter`` seconds — never both on the
same timeline (DESIGN.md, "Clock discipline"); the other clock's duration
rides along in ``args`` for inspection.

:func:`validate_chrome_trace` is the schema gate CI runs on benchmark
artifacts: it rejects anything Perfetto's importer would choke on
(missing ``ph``/``ts``, negative or non-finite durations, unknown phase
codes) before the file is shipped.
"""

from __future__ import annotations

import json
import math
from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.obs.tracer import Span

#: Phase codes this exporter emits; the validator additionally accepts
#: the other single-event phases Perfetto understands.
_EMITTED_PHASES = ("X", "M")
_KNOWN_PHASES = frozenset("XBEiIMCbnePNODSTFsft")

#: Args fields where the *other* clock's duration is preserved.
WALL_ARG = "wall_us"
SIM_ARG = "sim_ns"

_CLOCKS = ("wall", "sim")


def _timestamps_us(span: Span, clock: str) -> Tuple[float, float]:
    if clock == "wall":
        return span.start_wall_s * 1e6, span.wall_s * 1e6
    return span.start_sim_ns / 1e3, span.sim_ns / 1e3


def to_chrome_trace(spans: Sequence[Span], clock: str = "wall",
                    process_name: str = "watz-repro") -> Dict[str, object]:
    """Render spans as a Trace Event Format object (one clock only)."""
    if clock not in _CLOCKS:
        raise ValueError(f"clock must be one of {_CLOCKS}, got {clock!r}")
    events: List[Dict[str, object]] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
        "args": {"name": process_name},
    }]
    origin_us = None
    thread_names: Dict[int, str] = {}
    for span in spans:
        start_us, _ = _timestamps_us(span, clock)
        if origin_us is None or start_us < origin_us:
            origin_us = start_us
        thread_names.setdefault(span.thread_id, span.thread_name)
    for tid, name in sorted(thread_names.items()):
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": name},
        })
    origin_us = origin_us or 0.0
    for span in spans:
        start_us, dur_us = _timestamps_us(span, clock)
        args: Dict[str, object] = dict(span.attrs)
        if span.world:
            args["world"] = span.world
        if span.lane is not None:
            args["lane"] = span.lane
        if clock == "wall":
            args[SIM_ARG] = span.sim_ns
        else:
            args[WALL_ARG] = span.wall_s * 1e6
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": start_us - origin_us,
            "dur": max(0.0, dur_us),
            "pid": 1,
            "tid": span.thread_id,
            "cat": span.name.split(".", 1)[0],
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": clock},
    }


def validate_chrome_trace(trace: object) -> None:
    """Raise ``ValueError`` unless ``trace`` is Perfetto-loadable.

    Checks the structural contract of the Trace Event Format: a
    ``traceEvents`` list whose entries carry a string ``name``, a known
    one-char ``ph``, and — for timed phases — finite, non-negative
    ``ts``/``dur`` numbers plus integer ``pid``/``tid``.
    """
    if not isinstance(trace, dict):
        raise ValueError("trace must be a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace.traceEvents must be a list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        name = event.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"{where}: missing or empty 'name'")
        phase = event.get("ph")
        if not isinstance(phase, str) or phase not in _KNOWN_PHASES:
            raise ValueError(f"{where}: unknown phase {phase!r}")
        for key in ("pid", "tid"):
            if key in event and not isinstance(event[key], int):
                raise ValueError(f"{where}: {key!r} must be an integer")
        if phase == "M":
            continue  # metadata events carry no timestamps
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) \
                or not math.isfinite(ts) or ts < 0:
            raise ValueError(f"{where}: 'ts' must be a finite number >= 0")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) \
                    or not math.isfinite(dur) or dur < 0:
                raise ValueError(
                    f"{where}: complete event needs finite 'dur' >= 0")


def write_chrome_trace(path: str, spans: Sequence[Span],
                       clock: str = "wall",
                       process_name: str = "watz-repro") -> str:
    """Validate and write a Chrome trace JSON file; returns the path."""
    trace = to_chrome_trace(spans, clock=clock, process_name=process_name)
    validate_chrome_trace(trace)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1)
        handle.write("\n")
    return path


# -- flame views ----------------------------------------------------------------


def _paths(spans: Iterable[Span]) -> Dict[int, str]:
    """Root-relative ``a;b;c`` call path per span id (folded-stack keys).

    A span whose parent fell off the flight-recorder ring is treated as a
    root — the path is best-effort over what the buffer still holds.
    """
    by_id = {span.span_id: span for span in spans}
    paths: Dict[int, str] = {}

    def path_of(span: Span) -> str:
        cached = paths.get(span.span_id)
        if cached is not None:
            return cached
        parent = by_id.get(span.parent_id) if span.parent_id else None
        path = span.name if parent is None \
            else f"{path_of(parent)};{span.name}"
        paths[span.span_id] = path
        return path

    for span in by_id.values():
        path_of(span)
    return paths


def folded_stacks(spans: Sequence[Span], clock: str = "sim") -> List[str]:
    """``flamegraph.pl``-style folded lines: ``path <self time>``.

    Self time per path excludes time attributed to child spans, so the
    lines sum to the trace's total without double counting.
    """
    if clock not in _CLOCKS:
        raise ValueError(f"clock must be one of {_CLOCKS}, got {clock!r}")
    paths = _paths(spans)
    child_total: Dict[int, float] = defaultdict(float)
    for span in spans:
        if span.parent_id is not None:
            child_total[span.parent_id] += (
                span.sim_ns if clock == "sim" else span.wall_s)
    totals: Dict[str, float] = defaultdict(float)
    for span in spans:
        own = span.sim_ns if clock == "sim" else span.wall_s
        self_time = max(0.0, own - child_total.get(span.span_id, 0.0))
        totals[paths[span.span_id]] += self_time
    unit = 1 if clock == "sim" else 1e6  # ns / us
    return [f"{path} {value * unit:.0f}"
            for path, value in sorted(totals.items())]


def flame_summary(spans: Sequence[Span]) -> str:
    """Per-name aggregate with both clocks kept in separate columns."""
    child_wall: Dict[int, float] = defaultdict(float)
    child_sim: Dict[int, int] = defaultdict(int)
    for span in spans:
        if span.parent_id is not None:
            child_wall[span.parent_id] += span.wall_s
            child_sim[span.parent_id] += span.sim_ns
    rows: Dict[str, List[float]] = {}
    for span in spans:
        row = rows.setdefault(span.name, [0, 0.0, 0.0, 0, 0])
        row[0] += 1
        row[1] += span.wall_s
        row[2] += max(0.0, span.wall_s - child_wall.get(span.span_id, 0.0))
        row[3] += span.sim_ns
        row[4] += max(0, span.sim_ns - child_sim.get(span.span_id, 0))
    from repro.bench.reporting import format_table

    ordered = sorted(rows.items(), key=lambda item: (-item[1][4], -item[1][2]))
    return format_table(
        "flame summary (self time excludes child spans)",
        ["span", "count", "wall total ms", "wall self ms",
         "sim total us", "sim self us"],
        [(name, int(row[0]), f"{row[1] * 1e3:.3f}", f"{row[2] * 1e3:.3f}",
          f"{row[3] / 1e3:.1f}", f"{row[4] / 1e3:.1f}")
         for name, row in ordered],
    )
