"""Trace smoke run: ``python -m repro.obs.smoke [out_dir]``.

Drives two full attestation handshakes through the fleet gateway with a
tracer attached, exports the Chrome trace (wall and sim clocks), the
flame summary and the span-derived per-phase breakdown into
``bench_results/``, and validates the JSON against the Perfetto schema
gate. CI runs this and uploads the artifacts; it doubles as the smallest
end-to-end example of the observability subsystem.
"""

from __future__ import annotations

import os
import sys

from repro.core.verifier import VerifierPolicy
from repro.crypto import ecdsa
from repro.fleet import (FleetConfig, LoadProfile, build_attester_stacks,
                         run_load, start_fleet_gateway)
from repro.obs.analysis import TraceAnalyzer
from repro.obs.export import (flame_summary, to_chrome_trace,
                              validate_chrome_trace, write_chrome_trace)
from repro.obs.tracer import Tracer
from repro.testbed import Testbed

HOST, PORT = "obs.smoke", 7950


def run_smoke(out_dir: str = "bench_results") -> dict:
    """One traced gateway run; returns the artifact paths."""
    testbed = Testbed()
    identity = ecdsa.keypair_from_private(0x0B5E7EE)
    policy = VerifierPolicy()
    gateway_device = testbed.create_device()
    tracer = Tracer(sim_now=gateway_device.soc.clock.now_ns)
    secret = bytes(range(256))
    gateway = start_fleet_gateway(
        testbed.network, HOST, PORT, gateway_device.client,
        testbed.vendor_key, identity, policy, lambda: secret,
        FleetConfig(workers=2), recorder=tracer.recorder(), tracer=tracer)
    try:
        stacks = build_attester_stacks(testbed, policy, 2)
        report = run_load(testbed.network, HOST, PORT,
                          identity.public_bytes(), stacks,
                          LoadProfile(concurrency=2,
                                      handshakes_per_attester=1))
    finally:
        gateway.stop()
    if len(report.completed) != 2:
        raise RuntimeError(
            f"smoke handshakes failed: {[r.error for r in report.results]}")

    spans = tracer.drain()
    os.makedirs(out_dir, exist_ok=True)
    paths = {}
    for clock in ("wall", "sim"):
        path = os.path.join(out_dir, f"trace_smoke_{clock}.json")
        write_chrome_trace(path, spans, clock=clock,
                           process_name=f"watz-fleet-smoke ({clock})")
        paths[clock] = path
    validate_chrome_trace(to_chrome_trace(spans, clock="wall"))

    analyzer = TraceAnalyzer(spans)
    summary_path = os.path.join(out_dir, "trace_smoke_summary.txt")
    with open(summary_path, "w", encoding="utf-8") as handle:
        handle.write(analyzer.format_breakdown(
            "fleet.request",
            "gateway message breakdown (derived from spans)") + "\n\n")
        handle.write(flame_summary(spans) + "\n")
    paths["summary"] = summary_path
    return paths


def main(argv) -> int:
    out_dir = argv[0] if argv else "bench_results"
    paths = run_smoke(out_dir)
    for label, path in sorted(paths.items()):
        print(f"{label}: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
