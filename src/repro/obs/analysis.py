"""Derive latency decompositions from recorded spans — and nothing else.

The repo's rule is that derived quantities are never hardcoded: Fig. 3's
world-transition split and Table IV's per-phase breakdown must *emerge*
from what actually ran. :class:`TraceAnalyzer` therefore consumes only
:class:`~repro.obs.tracer.Span` records; no constant from
``repro.hw.costs`` appears here. If an instrumentation hook is missing,
the gap shows up honestly as ``(unattributed)`` instead of being papered
over.

Self-time discipline: a span's *self* time is its duration minus the
durations of its direct children, so summing self times over any subtree
equals the subtree root's total — decompositions add up by construction.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.obs.tracer import Span

UNATTRIBUTED = "(unattributed)"


@dataclass(frozen=True)
class PhaseRow:
    """One line of a per-phase breakdown."""

    name: str
    count: int
    wall_s: float
    sim_ns: int


class TraceAnalyzer:
    """Span-only analysis: phase breakdowns, WASI indirection, totals."""

    def __init__(self, spans: Sequence[Span]) -> None:
        self.spans = list(spans)
        self._by_id: Dict[int, Span] = {s.span_id: s for s in self.spans}
        self._children: Dict[int, List[Span]] = defaultdict(list)
        for span in self.spans:
            if span.parent_id is not None and span.parent_id in self._by_id:
                self._children[span.parent_id].append(span)

    # -- primitives -------------------------------------------------------------

    def children(self, span: Span) -> List[Span]:
        return self._children.get(span.span_id, [])

    def self_wall_s(self, span: Span) -> float:
        return max(0.0, span.wall_s
                   - sum(child.wall_s for child in self.children(span)))

    def self_sim_ns(self, span: Span) -> int:
        return max(0, span.sim_ns
                   - sum(child.sim_ns for child in self.children(span)))

    def named(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def prefixed(self, prefix: str) -> List[Span]:
        return [span for span in self.spans
                if span.name == prefix or span.name.startswith(prefix + ".")]

    def total_sim_ns(self, prefix: Optional[str] = None) -> int:
        """Summed *self* sim time — equals wall-to-wall clock movement
        when every ``clock.advance`` happened inside some span."""
        spans = self.prefixed(prefix) if prefix else self.spans
        return sum(self.self_sim_ns(span) for span in spans)

    def total_wall_s(self, prefix: Optional[str] = None) -> float:
        spans = self.prefixed(prefix) if prefix else self.spans
        return sum(self.self_wall_s(span) for span in spans)

    # -- decompositions ----------------------------------------------------------

    def phase_totals(self) -> List[PhaseRow]:
        """Self time per span name, largest simulated cost first."""
        counts: Dict[str, int] = defaultdict(int)
        wall: Dict[str, float] = defaultdict(float)
        sim: Dict[str, int] = defaultdict(int)
        for span in self.spans:
            counts[span.name] += 1
            wall[span.name] += self.self_wall_s(span)
            sim[span.name] += self.self_sim_ns(span)
        rows = [PhaseRow(name, counts[name], wall[name], sim[name])
                for name in counts]
        rows.sort(key=lambda row: (-row.sim_ns, -row.wall_s, row.name))
        return rows

    def _descendants(self, span: Span) -> List[Span]:
        out: List[Span] = []
        frontier = list(self.children(span))
        while frontier:
            node = frontier.pop()
            out.append(node)
            frontier.extend(self.children(node))
        return out

    def breakdown(self, root_name: str) -> List[PhaseRow]:
        """Decompose spans named ``root_name`` into descendant phases.

        Every descendant contributes its *self* time, keyed by span name;
        whatever the roots spent outside any child span is reported as
        ``(unattributed)``. The rows sum exactly to the roots' totals —
        the Table-IV property, derived purely from the trace.
        """
        roots = self.named(root_name)
        counts: Dict[str, int] = defaultdict(int)
        wall: Dict[str, float] = defaultdict(float)
        sim: Dict[str, int] = defaultdict(int)
        root_wall = 0.0
        root_sim = 0
        for root in roots:
            root_wall += root.wall_s
            root_sim += root.sim_ns
            counts[UNATTRIBUTED] += 0
            wall[UNATTRIBUTED] += self.self_wall_s(root)
            sim[UNATTRIBUTED] += self.self_sim_ns(root)
            for node in self._descendants(root):
                counts[node.name] += 1
                wall[node.name] += self.self_wall_s(node)
                sim[node.name] += self.self_sim_ns(node)
        rows = [PhaseRow(name, counts[name], wall[name], sim[name])
                for name in counts]
        rows.sort(key=lambda row: (row.name == UNATTRIBUTED,
                                   -row.sim_ns, -row.wall_s, row.name))
        return rows

    def wasi_indirection(self) -> PhaseRow:
        """Cost of crossing the WASI shim (Table IV's indirection column)."""
        spans = self.prefixed("wasi")
        return PhaseRow(
            name="wasi",
            count=len(spans),
            wall_s=sum(self.self_wall_s(span) for span in spans),
            sim_ns=sum(self.self_sim_ns(span) for span in spans),
        )

    # -- reporting ---------------------------------------------------------------

    def format_breakdown(self, root_name: str, title: str = "") -> str:
        """The Table-IV-style text block for spans named ``root_name``."""
        from repro.bench.reporting import format_table

        rows = self.breakdown(root_name)
        total_sim = sum(row.sim_ns for row in rows)
        total_wall = sum(row.wall_s for row in rows)
        rendered = []
        for row in rows:
            share = (row.sim_ns / total_sim) if total_sim else 0.0
            rendered.append((
                row.name, row.count, f"{row.sim_ns / 1e3:.1f}",
                f"{share * 100:.1f}%", f"{row.wall_s * 1e3:.3f}",
            ))
        rendered.append(("total", len(self.named(root_name)),
                         f"{total_sim / 1e3:.1f}", "100.0%",
                         f"{total_wall * 1e3:.3f}"))
        return format_table(
            title or f"per-phase breakdown of {root_name!r} (from spans)",
            ["phase", "count", "sim us", "sim share", "wall ms"],
            rendered,
        )
