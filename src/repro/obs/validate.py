"""CLI schema gate for trace artifacts: ``python -m repro.obs.validate``.

CI runs this on every exported Chrome-trace JSON; a file Perfetto's
importer would reject fails the build (ISSUE 2 satellite). Exit code 0
means every argument validated.
"""

from __future__ import annotations

import json
import sys
from typing import List

from repro.obs.export import validate_chrome_trace


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: python -m repro.obs.validate TRACE.json [...]",
              file=sys.stderr)
        return 2
    status = 0
    for path in argv:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                trace = json.load(handle)
            validate_chrome_trace(trace)
        except (OSError, ValueError) as problem:
            print(f"{path}: INVALID — {problem}", file=sys.stderr)
            status = 1
            continue
        events = len(trace["traceEvents"])
        print(f"{path}: ok ({events} events)")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
