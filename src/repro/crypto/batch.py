"""Randomised-linear-combination batch ECDSA verification.

The verifier-side hot path of Table III is the per-msg2 ECDSA verify:
one Shamir double-scalar multiplication each. When the gateway drains
several *independent* pending msg2s in one loop tick, their verification
equations can be checked jointly: with random ``lambda_i`` the single
Strauss multi-scalar test

    sum(lambda_i * u1_i) * G + sum(lambda_i * u2_i * Q_i)
        == sum(lambda_i * e_i * R_i)

holds for *some* sign vector ``e`` iff (up to a ``2**(n - ell)`` union
bound over sign vectors, ``ell`` = randomizer bits) every signature in
the batch verifies individually. The left side rides ONE shared doubling
chain (:func:`repro.crypto.ec.multi_scalar_mult`); the ``G`` columns of
all n equations collapse into a single scalar.

Two ECDSA-specific obstacles shape the algorithm:

* **x-only signatures.** ECDSA transmits ``r = R.x mod n``, not ``R``:
  the y-coordinate (a sign) is lost, and low-s normalisation at the
  signer makes both signs genuinely possible. The batch therefore
  recovers ``R_hat = lift_x(r)`` and resolves the n unknown signs with a
  meet-in-the-middle search: all ``2**(n/2)`` partial sums of the left
  half are tabulated (Gray-style accumulation, one mixed addition each,
  affine via one shared batch inversion) and each right-half candidate
  is looked up — ``O(2**(n/2))`` additions instead of ``2**n``, which
  caps the practical batch size (:data:`BATCH_MAX`).

* **attribution.** A failed batch says only "at least one forgery". The
  fallback re-verifies each member with the plain per-signature
  :func:`repro.crypto.ecdsa.verify`, so the caller always learns the
  exact failing item with the exact error the unbatched path raises —
  and the random ``lambda_i`` make the classic cancellation attack
  (two crafted forgeries whose equation errors sum to zero, which WOULD
  fool the unrandomised check) fail with probability ``1 - 2**-ell``.

Rare signatures step out of the batch and fall back individually: an
``r`` small enough that both ``r`` and ``r + n`` are field elements
(the x-wraparound ambiguity, top 32 bits of ``r`` all zero), and any
``r`` that lifts to no curve point at all (no possible ``R`` — rejected
outright, exactly like the per-signature check).

Successfully verified triples can seed the consume-once memo in
:mod:`repro.crypto.ecdsa`, which is how a gateway-side batch pre-pass
turns into a later one-dict-lookup verify inside the verifier TA without
changing a byte of protocol behaviour.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, Tuple

from repro.crypto import ec, ecdsa
from repro.crypto.hashing import sha256
from repro.errors import CryptoError, SignatureError

#: One signature to check: (public key point, message bytes, r || s).
BatchItem = Tuple[ec.Point, bytes, bytes]

#: Largest chunk checked as one linear combination. The sign search is
#: O(2**(n/2)) mixed additions; 8 keeps that at 2 x 16 — negligible next
#: to the multi-scalar chain — while still collapsing eight G-columns.
BATCH_MAX = 8

#: Bits of each random lambda. A batch containing a forgery survives the
#: randomised check with probability <= 2**(n - 64) (union bound over
#: sign vectors) — and even then the per-item fallback would still have
#: to be fooled, which it cannot be: it IS the reference check.
RANDOMIZER_BITS = 64

_WIDTH = 5  # wNAF width for the one-shot R-hat tables


class _Prepared:
    """One signature admitted to the linear combination."""

    __slots__ = ("index", "public", "message", "signature", "u1", "u2",
                 "r_hat")

    def __init__(self, index: int, public: ec.Point, message: bytes,
                 signature: bytes, u1: int, u2: int,
                 r_hat: ec.Point) -> None:
        self.index = index
        self.public = public
        self.message = message
        self.signature = signature
        self.u1 = u1
        self.u2 = u2
        self.r_hat = r_hat


def verify_batch(items: Sequence[BatchItem], *,
                 rng: Optional[Callable[[int], bytes]] = None,
                 max_batch: int = BATCH_MAX,
                 randomizer_bits: int = RANDOMIZER_BITS,
                 seed_memo: bool = False
                 ) -> List[Optional[SignatureError]]:
    """Verify many ``(public, message, signature)`` triples at once.

    Returns a list aligned with ``items``: ``None`` for a valid
    signature, or the exact :class:`SignatureError` the per-signature
    :func:`repro.crypto.ecdsa.verify` raises for that item. The batch is
    an *algorithmic* choice only — the accept/reject set is identical to
    n independent verifications (tests pin this differentially on both
    EC paths).

    ``seed_memo=True`` additionally records every verified triple in the
    consume-once memo of :mod:`repro.crypto.ecdsa`, so the next plain
    ``verify`` of the same triple is a dict lookup.
    """
    if rng is None:
        rng = os.urandom
    if max_batch < 2:
        raise ValueError("max_batch must be at least 2")
    if not 8 <= randomizer_bits <= 128:
        # <= 128 keeps every lambda strictly below the group order, so
        # no P_i = lambda_i * R_hat_i can degenerate to infinity.
        raise ValueError("randomizer_bits must be in [8, 128]")
    results: List[Optional[SignatureError]] = [None] * len(items)
    fallback: List[int] = []
    prepared: List[_Prepared] = []
    for index, (public, message, signature) in enumerate(items):
        outcome = _prepare(index, public, message, signature)
        if isinstance(outcome, SignatureError):
            results[index] = outcome
        elif outcome is None:
            fallback.append(index)
        else:
            prepared.append(outcome)
    for start in range(0, len(prepared), max_batch):
        chunk = prepared[start:start + max_batch]
        if len(chunk) < 2 or not ec.fast_paths_enabled():
            # A chunk of one gains nothing; the naive reference path has
            # no shared chain to amortise — both go straight to the
            # per-signature oracle.
            fallback.extend(entry.index for entry in chunk)
            continue
        if _check_combination(chunk, rng, randomizer_bits):
            for entry in chunk:
                if seed_memo:
                    ecdsa.seed_verified(entry.public, entry.message,
                                        entry.signature)
        else:
            fallback.extend(entry.index for entry in chunk)
    for index in fallback:
        public, message, signature = items[index]
        try:
            ecdsa.verify(public, message, signature)
        except SignatureError as exc:
            results[index] = exc
        else:
            if seed_memo:
                ecdsa.seed_verified(public, message, signature)
    return results


def _prepare(index: int, public: ec.Point, message: bytes,
             signature: bytes):
    """Precheck one item exactly like :func:`ecdsa.verify` would.

    Returns a :class:`_Prepared` for the linear combination, a
    :class:`SignatureError` for an outright rejection, or ``None`` for a
    signature that must take the per-item path (x-wraparound ambiguity).
    """
    if len(signature) != ecdsa.SIGNATURE_SIZE:
        return SignatureError("signature must be 64 bytes (r || s)")
    try:
        ec.validate_public_key(public)
    except CryptoError as exc:
        error = SignatureError(f"invalid public key: {exc}")
        error.__cause__ = exc
        return error
    r = int.from_bytes(signature[:ec.SCALAR_SIZE], "big")
    s = int.from_bytes(signature[ec.SCALAR_SIZE:], "big")
    if not (1 <= r < ec.N and 1 <= s < ec.N):
        return SignatureError("signature scalars out of range")
    if r + ec.N < ec.P:
        # Both r and r + n are field elements: TWO candidate x's for R.
        # Astronomically rare for honest signatures (top 32 bits of r all
        # zero) but adversarially craftable — step out of the batch.
        return None
    r_hat = ec.lift_x(r)
    if r_hat is None:
        # No curve point has this x, so no R can satisfy the equation:
        # the per-signature check would reach the same verdict the
        # expensive way.
        return SignatureError("signature does not verify")
    z = ecdsa._bits2int(sha256(message))
    s_inv = pow(s, ec.N - 2, ec.N)
    return _Prepared(index, public, message, signature,
                     z * s_inv % ec.N, r * s_inv % ec.N, r_hat)


def _check_combination(chunk: List[_Prepared],
                       rng: Callable[[int], bytes],
                       randomizer_bits: int) -> bool:
    """The randomised test: True means every chunk member verifies."""
    n = len(chunk)
    lambdas = []
    for _ in range(n):
        lam = 0
        while lam == 0:
            lam = int.from_bytes(rng((randomizer_bits + 7) // 8),
                                 "big") % (1 << randomizer_bits)
        lambdas.append(lam)
    # Left side of the equation: ONE Strauss chain. The G columns of all
    # n signatures collapse into a single 256-bit scalar.
    terms: List[ec.MultiScalarTerm] = [
        (sum(lam * entry.u1 for lam, entry in zip(lambdas, chunk)) % ec.N,
         None)]
    terms.extend((lam * entry.u2 % ec.N, entry.public)
                 for lam, entry in zip(lambdas, chunk))
    target = ec.multi_scalar_mult(terms)
    # Right side: P_i = lambda_i * R_hat_i. The lambdas are short, so
    # each ride a one-shot table; all n tables share ONE inversion.
    tables = ec._odd_multiples_affine_many(
        [entry.r_hat for entry in chunk], _WIDTH)
    summands = [ec._wnaf_chain([(ec._wnaf_digits(lam, _WIDTH), table)])
                for lam, table in zip(lambdas, tables)]
    # Every lambda is in [1, n) (randomizer_bits <= 128), so no P_i is
    # the point at infinity and the shared batch inversion is safe.
    points = ec._batch_normalize(summands)
    return _signs_match(target, points)


def _signs_match(target: ec.Point,
                 points: List[Tuple[int, int]]) -> bool:
    """Meet-in-the-middle search for signs with sum(e_i P_i) == target.

    Left half: all 2**a signed partial sums, tabulated affine (one batch
    inversion). Right half: each of the 2**b candidates
    ``target - sum(e_i P_i)`` is normalised (one more shared inversion)
    and looked up. Points at infinity cannot share a batch inversion, so
    they key on a ``None`` sentinel instead.
    """
    half = (len(points) + 1) // 2
    left, right = points[:half], points[half:]
    left_sums: List[ec._Jacobian] = [ec._J_INFINITY]
    for x, y in left:
        left_sums = [acc2 for acc in left_sums
                     for acc2 in (ec._jacobian_add_affine(acc, x, y),
                                  ec._jacobian_add_affine(acc, x,
                                                          ec.P - y))]
    known = _normalize_keys(left_sums)
    candidates: List[ec._Jacobian] = [ec._to_jacobian(target)]
    for x, y in right:
        # Moving P_i to the left negates it: candidate -= e_i * P_i.
        candidates = [acc2 for acc in candidates
                      for acc2 in (ec._jacobian_add_affine(acc, x,
                                                           ec.P - y),
                                   ec._jacobian_add_affine(acc, x, y))]
    return not known.isdisjoint(_normalize_keys(candidates))


def _normalize_keys(sums: List[ec._Jacobian]) -> set:
    finite = [point for point in sums if point[2] != 0]
    keys = set(ec._batch_normalize(finite)) if finite else set()
    if len(finite) != len(sums):
        keys.add(None)
    return keys
