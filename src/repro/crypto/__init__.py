"""Pure-Python cryptographic substrate for the WaTZ reproduction.

This package replaces LibTomCrypt in the paper's stack: secp256r1 group
arithmetic, ECDSA signatures, ECDHE key agreement, AES-128 with GCM and
CMAC modes, the SGX-style session key derivation, and a Fortuna-style
seedable PRNG used to derive attestation keys from the root of trust.
"""

from repro.crypto import ec, gcm
from repro.crypto.aes import Aes128
from repro.crypto.batch import BATCH_MAX, verify_batch
from repro.crypto.cmac import MAC_SIZE, AesCmac, aes_cmac
from repro.crypto.ecdh import SessionKeyPair, generate as generate_session_keypair, shared_secret
from repro.crypto.ecdsa import (
    SIGNATURE_SIZE,
    KeyPair,
    is_valid,
    keypair_from_private,
    keypair_from_seed_stream,
    sign,
    verify,
)
from repro.crypto.fortuna import Fortuna, seeded_fortuna
from repro.crypto.gcm import (
    IV_SIZE,
    TAG_SIZE,
    AesGcm,
    GcmOpenStream,
    GcmSealStream,
)
from repro.crypto.hashing import (
    SHA256_SIZE,
    IncrementalHash,
    constant_time_equal,
    hmac_sha256,
    sha256,
    sha256_hex,
)
from repro.crypto.kdf import SessionKeys, derive_kdk, derive_key, derive_session_keys

__all__ = [
    "ec",
    "gcm",
    "Aes128",
    "BATCH_MAX",
    "verify_batch",
    "AesCmac",
    "aes_cmac",
    "MAC_SIZE",
    "SessionKeyPair",
    "generate_session_keypair",
    "shared_secret",
    "KeyPair",
    "SIGNATURE_SIZE",
    "keypair_from_private",
    "keypair_from_seed_stream",
    "sign",
    "verify",
    "is_valid",
    "Fortuna",
    "seeded_fortuna",
    "AesGcm",
    "GcmSealStream",
    "GcmOpenStream",
    "IV_SIZE",
    "TAG_SIZE",
    "SHA256_SIZE",
    "IncrementalHash",
    "constant_time_equal",
    "hmac_sha256",
    "sha256",
    "sha256_hex",
    "SessionKeys",
    "derive_kdk",
    "derive_key",
    "derive_session_keys",
]
