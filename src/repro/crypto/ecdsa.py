"""ECDSA over P-256 with deterministic nonces (RFC 6979).

The attestation service signs evidence, and the verifier signs the session
handshake, with 256-bit ECDSA (paper §V). Deterministic nonces keep the
scheme safe without an entropy source and make protocol tests reproducible.
"""

from __future__ import annotations

import hashlib
import hmac
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.crypto import ec
from repro.crypto.hashing import sha256
from repro.errors import CryptoError, SignatureError

SIGNATURE_SIZE = 64

# -- the verified-signature memo -----------------------------------------------
#
# Batch verification (repro.crypto.batch) proves a whole drain of
# signatures at once, but the verifier TA still calls :func:`verify` per
# message. The memo closes that gap: a batch-verified (key, digest,
# signature) triple is seeded here and the TA's verify consumes it in
# one dict lookup instead of redoing the double-scalar multiplication.
# Entries are consume-once (a hit pops) and the table is LRU-bounded, so
# a seeded-but-never-verified triple can neither grow memory nor satisfy
# more than one later verification. Accept/reject behaviour is identical
# by construction — only triples that passed the full per-signature
# equation are ever seeded.

_MEMO_CAPACITY = 4096
_memo_lock = threading.Lock()
_verified_memo: "OrderedDict[tuple, None]" = OrderedDict()


def _memo_key(public: ec.Point, digest: bytes, signature: bytes) -> tuple:
    return (public.x, public.y, digest, signature)


def seed_verified(public: ec.Point, message: bytes,
                  signature: bytes) -> None:
    """Record one *fully verified* signature for a later one-shot skip."""
    key = _memo_key(public, sha256(message), signature)
    with _memo_lock:
        _verified_memo[key] = None
        _verified_memo.move_to_end(key)
        while len(_verified_memo) > _MEMO_CAPACITY:
            _verified_memo.popitem(last=False)


def _consume_verified(public: ec.Point, digest: bytes,
                      signature: bytes) -> bool:
    key = _memo_key(public, digest, signature)
    with _memo_lock:
        if key in _verified_memo:
            del _verified_memo[key]
            return True
    return False


def clear_verified_memo() -> None:
    with _memo_lock:
        _verified_memo.clear()


def verified_memo_size() -> int:
    with _memo_lock:
        return len(_verified_memo)


@dataclass(frozen=True)
class KeyPair:
    """An ECDSA key pair; ``private`` is the scalar d, ``public`` is d*G."""

    private: int
    public: ec.Point

    def public_bytes(self) -> bytes:
        return self.public.encode()


def keypair_from_private(d: int) -> KeyPair:
    """Build a key pair from a private scalar, validating its range."""
    ec.validate_private_key(d)
    return KeyPair(d, ec.scalar_base_mult(d))


def keypair_from_seed_stream(read: "callable") -> KeyPair:
    """Derive a key pair by rejection sampling from a byte stream.

    ``read(n)`` must return ``n`` fresh bytes per call. This mirrors the
    paper's flow where the Fortuna PRNG, seeded from the hardware root of
    trust, feeds LibTomCrypt's ECC key generation.
    """
    while True:
        candidate = int.from_bytes(read(ec.SCALAR_SIZE), "big")
        if 1 <= candidate < ec.N:
            return keypair_from_private(candidate)


def _bits2int(data: bytes) -> int:
    value = int.from_bytes(data, "big")
    excess = len(data) * 8 - ec.N.bit_length()
    if excess > 0:
        value >>= excess
    return value


def _rfc6979_nonce(private: int, digest: bytes) -> int:
    """Deterministic nonce generation per RFC 6979 with HMAC-SHA256."""
    holen = 32
    x = private.to_bytes(ec.SCALAR_SIZE, "big")
    h1 = (_bits2int(digest) % ec.N).to_bytes(ec.SCALAR_SIZE, "big")
    v = b"\x01" * holen
    k = b"\x00" * holen
    k = hmac.new(k, v + b"\x00" + x + h1, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    k = hmac.new(k, v + b"\x01" + x + h1, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    while True:
        v = hmac.new(k, v, hashlib.sha256).digest()
        candidate = _bits2int(v)
        if 1 <= candidate < ec.N:
            return candidate
        k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()


def sign(private: int, message: bytes) -> bytes:
    """Sign ``message`` (hashed with SHA-256) and return r || s (64 bytes)."""
    ec.validate_private_key(private)
    digest = sha256(message)
    z = _bits2int(digest)
    k = _rfc6979_nonce(private, digest)
    while True:
        point = ec.scalar_base_mult(k)
        r = point.x % ec.N
        if r == 0:
            k = (k + 1) % ec.N or 1
            continue
        k_inv = pow(k, ec.N - 2, ec.N)
        s = k_inv * (z + r * private) % ec.N
        if s == 0:
            k = (k + 1) % ec.N or 1
            continue
        # Low-s normalisation avoids signature malleability.
        if s > ec.N // 2:
            s = ec.N - s
        return r.to_bytes(ec.SCALAR_SIZE, "big") + s.to_bytes(ec.SCALAR_SIZE, "big")


def verify(public: ec.Point, message: bytes, signature: bytes) -> None:
    """Verify an r || s signature; raise :class:`SignatureError` on failure."""
    if len(signature) != SIGNATURE_SIZE:
        raise SignatureError("signature must be 64 bytes (r || s)")
    digest = sha256(message)
    # Consume-once fast path: this exact triple already passed the full
    # equation inside a batch verification. The truthiness guard keeps
    # the un-batched hot path at one plain dict test.
    if _verified_memo and _consume_verified(public, digest, signature):
        return
    try:
        ec.validate_public_key(public)
    except CryptoError as exc:
        raise SignatureError(f"invalid public key: {exc}") from exc
    r = int.from_bytes(signature[: ec.SCALAR_SIZE], "big")
    s = int.from_bytes(signature[ec.SCALAR_SIZE :], "big")
    if not (1 <= r < ec.N and 1 <= s < ec.N):
        raise SignatureError("signature scalars out of range")
    z = _bits2int(digest)
    s_inv = pow(s, ec.N - 2, ec.N)
    u1 = z * s_inv % ec.N
    u2 = r * s_inv % ec.N
    # Shamir's trick: one joint double-scalar multiplication instead of
    # two full multiplications plus an addition.
    point = ec.double_scalar_base_mult(u1, u2, public)
    if point.is_infinity or point.x % ec.N != r:
        raise SignatureError("signature does not verify")


def is_valid(public: ec.Point, message: bytes, signature: bytes) -> bool:
    """Boolean convenience wrapper around :func:`verify`."""
    try:
        verify(public, message, signature)
    except SignatureError:
        return False
    return True
