"""SGX-style key derivation for the remote-attestation session keys.

The paper (§IV, msg1) derives the ECDHE shared secret into a *key
derivation key* (KDK) and then into two session keys — K_m for MACs and
K_e for encryption — "the same as in Intel SGX". Intel's scheme is
AES-CMAC based:

* ``KDK = AES-CMAC(key=0^16, g_ab)`` where ``g_ab`` is the little-endian
  x-coordinate of the ECDH point;
* each derived key is ``AES-CMAC(KDK, 0x01 || label || 0x00 || 0x80 0x00)``
  with an ASCII label.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cmac import aes_cmac
from repro.errors import CryptoError

KEY_SIZE = 16

LABEL_MAC = b"SMK"
LABEL_ENC = b"SK"


def derive_kdk(shared_secret: bytes) -> bytes:
    """Derive the KDK from a big-endian ECDH shared secret.

    SGX feeds the x-coordinate little-endian first, a detail we keep so the
    derivation matches the protocol the paper adapted.
    """
    if len(shared_secret) != 32:
        raise CryptoError("ECDH shared secret must be 32 bytes")
    return aes_cmac(b"\x00" * KEY_SIZE, shared_secret[::-1])


def derive_key(kdk: bytes, label: bytes) -> bytes:
    """Derive one 128-bit session key from the KDK for ``label``."""
    if len(kdk) != KEY_SIZE:
        raise CryptoError("KDK must be 16 bytes")
    message = b"\x01" + label + b"\x00" + b"\x80\x00"
    return aes_cmac(kdk, message)


@dataclass(frozen=True)
class SessionKeys:
    """The two symmetric keys shared by attester and verifier."""

    mac_key: bytes  # K_m: message authentication of msg1/msg2
    enc_key: bytes  # K_e: AES-GCM encryption of msg3


def derive_session_keys(shared_secret: bytes) -> SessionKeys:
    """Full derivation chain: shared secret -> KDK -> (K_m, K_e)."""
    kdk = derive_kdk(shared_secret)
    return SessionKeys(
        mac_key=derive_key(kdk, LABEL_MAC),
        enc_key=derive_key(kdk, LABEL_ENC),
    )
