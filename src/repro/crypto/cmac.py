"""AES-CMAC (RFC 4493 / NIST SP 800-38B).

The WaTZ protocol appends an AES-CMAC to msg1 and msg2 under the derived
key K_m, and the SGX-style key-derivation chain in :mod:`repro.crypto.kdf`
is built from CMAC invocations.
"""

from __future__ import annotations

from repro.crypto.aes import BLOCK_SIZE, Aes128
from repro.crypto.hashing import constant_time_equal
from repro.errors import AuthenticationError

MAC_SIZE = 16
_RB = 0x87


def _double(block: int) -> int:
    """Doubling in GF(2^128) with the CMAC polynomial (left-shift variant)."""
    shifted = (block << 1) & ((1 << 128) - 1)
    if block >> 127:
        shifted ^= _RB
    return shifted


class AesCmac:
    """A keyed AES-CMAC instance with precomputed subkeys."""

    def __init__(self, key: bytes) -> None:
        self._cipher = Aes128(key)
        l = int.from_bytes(self._cipher.encrypt_block(b"\x00" * BLOCK_SIZE), "big")
        self._k1 = _double(l)
        self._k2 = _double(self._k1)

    def mac(self, message: bytes) -> bytes:
        """Compute the 16-byte CMAC of ``message``."""
        n = (len(message) + BLOCK_SIZE - 1) // BLOCK_SIZE
        if n == 0:
            n = 1
            complete = False
        else:
            complete = len(message) % BLOCK_SIZE == 0
        if complete:
            last = int.from_bytes(message[(n - 1) * BLOCK_SIZE :], "big") ^ self._k1
        else:
            tail = message[(n - 1) * BLOCK_SIZE :]
            padded = tail + b"\x80" + b"\x00" * (BLOCK_SIZE - len(tail) - 1)
            last = int.from_bytes(padded, "big") ^ self._k2
        # CBC chain with the state kept as a 128-bit int: one int XOR per
        # block instead of a per-byte generator.
        state = 0
        encrypt_block = self._cipher.encrypt_block
        for i in range(n - 1):
            block = int.from_bytes(message[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE], "big")
            state = int.from_bytes(
                encrypt_block((state ^ block).to_bytes(BLOCK_SIZE, "big")), "big")
        return encrypt_block((last ^ state).to_bytes(BLOCK_SIZE, "big"))

    def verify(self, message: bytes, tag: bytes) -> None:
        """Check ``tag`` against ``message``; raise on mismatch."""
        if not constant_time_equal(self.mac(message), tag):
            raise AuthenticationError("CMAC verification failed")


def aes_cmac(key: bytes, message: bytes) -> bytes:
    """One-shot AES-CMAC."""
    return AesCmac(key).mac(message)
