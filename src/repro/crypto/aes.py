"""AES-128 block cipher, from scratch.

The WaTZ protocol uses AES-128 in two modes: GCM for the encrypted secret
blob (msg3) and CMAC for per-message authentication and key derivation.
Both only need the *forward* cipher, so no decryption schedule is built.

Two execution paths are provided:

* a scalar T-table path for single blocks (CMAC, GHASH subkey, tag mask);
* a NumPy-vectorised counter-mode keystream that encrypts thousands of
  counter blocks per call, keeping megabyte-scale msg3 payloads (Fig. 7 of
  the paper evaluates up to 3 MB) tractable in pure Python.

All tables are generated programmatically from the AES field definition so
there are no hand-typed constants to mistype.
"""

from __future__ import annotations

import sys
from typing import List

import numpy as np

from repro.errors import CryptoError

BLOCK_SIZE = 16
KEY_SIZE = 16
_ROUNDS = 10


def _build_gf_tables() -> tuple:
    """Build log/antilog tables for GF(2^8) with the AES polynomial."""
    alog = [0] * 256
    log = [0] * 256
    value = 1
    for exponent in range(255):
        alog[exponent] = value
        log[value] = exponent
        # Multiply by the generator 0x03 = x + 1.
        value ^= (value << 1) ^ (0x11B if value & 0x80 else 0)
        value &= 0xFF
    alog[255] = alog[0]
    return alog, log


_ALOG, _LOG = _build_gf_tables()


def _gf_mult(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _ALOG[(_LOG[a] + _LOG[b]) % 255]


def _build_sbox() -> List[int]:
    """Derive the S-box from the field inverse plus the affine transform."""
    sbox = [0] * 256
    for value in range(256):
        inverse = 0 if value == 0 else _ALOG[(255 - _LOG[value]) % 255]
        result = 0x63
        for shift in range(5):
            rotated = ((inverse << shift) | (inverse >> (8 - shift))) & 0xFF
            result ^= rotated
        sbox[value] = result & 0xFF
    return sbox


_SBOX = _build_sbox()


def _build_t_tables() -> tuple:
    """Build the four round-transform tables (SubBytes+ShiftRows+MixColumns)."""
    t0 = [0] * 256
    for value in range(256):
        s = _SBOX[value]
        t0[value] = (
            (_gf_mult(s, 2) << 24) | (s << 16) | (s << 8) | _gf_mult(s, 3)
        )
    ror8 = lambda w: ((w >> 8) | (w << 24)) & 0xFFFFFFFF
    t1 = [ror8(w) for w in t0]
    t2 = [ror8(w) for w in t1]
    t3 = [ror8(w) for w in t2]
    return t0, t1, t2, t3


_T0, _T1, _T2, _T3 = _build_t_tables()

# NumPy copies for the vectorised counter-mode path.
_NP_T0 = np.array(_T0, dtype=np.uint32)
_NP_T1 = np.array(_T1, dtype=np.uint32)
_NP_T2 = np.array(_T2, dtype=np.uint32)
_NP_T3 = np.array(_T3, dtype=np.uint32)
_NP_SBOX = np.array(_SBOX, dtype=np.uint32)

# Paired tables: every AES round word XORs four table lookups, and the
# ShiftRows pattern always pairs T0 with T1 and T2 with T3. Merging each
# pair into one 65536-entry table indexed by two state bytes halves the
# gather count per round (8 instead of 16), which is where the vectorised
# keystream spends its time. ``_NP_SB2`` is the same trick for the final
# SubBytes round: two S-box outputs packed per lookup.
_NP_P01 = (_NP_T0[:, None] ^ _NP_T1[None, :]).reshape(-1)
_NP_P23 = (_NP_T2[:, None] ^ _NP_T3[None, :]).reshape(-1)
_NP_SB2 = ((_NP_SBOX[:, None] << 8) | _NP_SBOX[None, :]).reshape(-1)

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _expand_key(key: bytes) -> List[int]:
    """AES-128 key schedule: 16-byte key to 44 round-key words."""
    words = [int.from_bytes(key[i : i + 4], "big") for i in range(0, 16, 4)]
    for i in range(4, 44):
        temp = words[i - 1]
        if i % 4 == 0:
            rotated = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF
            temp = (
                (_SBOX[(rotated >> 24) & 0xFF] << 24)
                | (_SBOX[(rotated >> 16) & 0xFF] << 16)
                | (_SBOX[(rotated >> 8) & 0xFF] << 8)
                | _SBOX[rotated & 0xFF]
            )
            temp ^= _RCON[i // 4 - 1] << 24
        words.append(words[i - 4] ^ temp)
    return words


class Aes128:
    """A keyed AES-128 forward cipher."""

    def __init__(self, key: bytes) -> None:
        if len(key) != KEY_SIZE:
            raise CryptoError("AES-128 requires a 16-byte key")
        self._round_keys = _expand_key(key)
        self._np_round_keys = np.array(self._round_keys, dtype=np.uint32)

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 16-byte block (scalar path)."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError("AES block must be 16 bytes")
        rk = self._round_keys
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
        for round_index in range(1, _ROUNDS):
            base = round_index * 4
            e0 = (
                _T0[s0 >> 24] ^ _T1[(s1 >> 16) & 0xFF]
                ^ _T2[(s2 >> 8) & 0xFF] ^ _T3[s3 & 0xFF] ^ rk[base]
            )
            e1 = (
                _T0[s1 >> 24] ^ _T1[(s2 >> 16) & 0xFF]
                ^ _T2[(s3 >> 8) & 0xFF] ^ _T3[s0 & 0xFF] ^ rk[base + 1]
            )
            e2 = (
                _T0[s2 >> 24] ^ _T1[(s3 >> 16) & 0xFF]
                ^ _T2[(s0 >> 8) & 0xFF] ^ _T3[s1 & 0xFF] ^ rk[base + 2]
            )
            e3 = (
                _T0[s3 >> 24] ^ _T1[(s0 >> 16) & 0xFF]
                ^ _T2[(s1 >> 8) & 0xFF] ^ _T3[s2 & 0xFF] ^ rk[base + 3]
            )
            s0, s1, s2, s3 = e0, e1, e2, e3
        base = _ROUNDS * 4
        o0 = (
            (_SBOX[s0 >> 24] << 24) | (_SBOX[(s1 >> 16) & 0xFF] << 16)
            | (_SBOX[(s2 >> 8) & 0xFF] << 8) | _SBOX[s3 & 0xFF]
        ) ^ rk[base]
        o1 = (
            (_SBOX[s1 >> 24] << 24) | (_SBOX[(s2 >> 16) & 0xFF] << 16)
            | (_SBOX[(s3 >> 8) & 0xFF] << 8) | _SBOX[s0 & 0xFF]
        ) ^ rk[base + 1]
        o2 = (
            (_SBOX[s2 >> 24] << 24) | (_SBOX[(s3 >> 16) & 0xFF] << 16)
            | (_SBOX[(s0 >> 8) & 0xFF] << 8) | _SBOX[s1 & 0xFF]
        ) ^ rk[base + 2]
        o3 = (
            (_SBOX[s3 >> 24] << 24) | (_SBOX[(s0 >> 16) & 0xFF] << 16)
            | (_SBOX[(s1 >> 8) & 0xFF] << 8) | _SBOX[s2 & 0xFF]
        ) ^ rk[base + 3]
        return b"".join(w.to_bytes(4, "big") for w in (o0, o1, o2, o3))

    def encrypt_blocks(self, states: np.ndarray) -> np.ndarray:
        """Encrypt many blocks at once; ``states`` is (n, 4) uint32 words."""
        rk = self._np_round_keys
        s = states ^ rk[0:4]
        s0, s1, s2, s3 = s[:, 0], s[:, 1], s[:, 2], s[:, 3]
        for round_index in range(1, _ROUNDS):
            base = round_index * 4
            e0 = (
                _NP_T0[s0 >> 24] ^ _NP_T1[(s1 >> 16) & 0xFF]
                ^ _NP_T2[(s2 >> 8) & 0xFF] ^ _NP_T3[s3 & 0xFF] ^ rk[base]
            )
            e1 = (
                _NP_T0[s1 >> 24] ^ _NP_T1[(s2 >> 16) & 0xFF]
                ^ _NP_T2[(s3 >> 8) & 0xFF] ^ _NP_T3[s0 & 0xFF] ^ rk[base + 1]
            )
            e2 = (
                _NP_T0[s2 >> 24] ^ _NP_T1[(s3 >> 16) & 0xFF]
                ^ _NP_T2[(s0 >> 8) & 0xFF] ^ _NP_T3[s1 & 0xFF] ^ rk[base + 2]
            )
            e3 = (
                _NP_T0[s3 >> 24] ^ _NP_T1[(s0 >> 16) & 0xFF]
                ^ _NP_T2[(s1 >> 8) & 0xFF] ^ _NP_T3[s2 & 0xFF] ^ rk[base + 3]
            )
            s0, s1, s2, s3 = e0, e1, e2, e3
        base = _ROUNDS * 4
        o0 = (
            (_NP_SBOX[s0 >> 24] << 24) | (_NP_SBOX[(s1 >> 16) & 0xFF] << 16)
            | (_NP_SBOX[(s2 >> 8) & 0xFF] << 8) | _NP_SBOX[s3 & 0xFF]
        ) ^ rk[base]
        o1 = (
            (_NP_SBOX[s1 >> 24] << 24) | (_NP_SBOX[(s2 >> 16) & 0xFF] << 16)
            | (_NP_SBOX[(s3 >> 8) & 0xFF] << 8) | _NP_SBOX[s0 & 0xFF]
        ) ^ rk[base + 1]
        o2 = (
            (_NP_SBOX[s2 >> 24] << 24) | (_NP_SBOX[(s3 >> 16) & 0xFF] << 16)
            | (_NP_SBOX[(s0 >> 8) & 0xFF] << 8) | _NP_SBOX[s1 & 0xFF]
        ) ^ rk[base + 2]
        o3 = (
            (_NP_SBOX[s3 >> 24] << 24) | (_NP_SBOX[(s0 >> 16) & 0xFF] << 16)
            | (_NP_SBOX[(s1 >> 8) & 0xFF] << 8) | _NP_SBOX[s2 & 0xFF]
        ) ^ rk[base + 3]
        return np.stack([o0, o1, o2, o3], axis=1)

    def encrypt_blocks_fast(self, states: np.ndarray) -> np.ndarray:
        """Paired-table variant of :meth:`encrypt_blocks`.

        Same round function, half the gathers: P01/P23 resolve two state
        bytes per lookup, ``np.take`` gathers land in reused scratch
        buffers so no round allocates. Kept separate so
        :meth:`encrypt_blocks` stays the byte-for-byte reference oracle.
        """
        rk = self._np_round_keys
        n = len(states)
        cur = [states[:, k] ^ rk[k] for k in range(4)]
        nxt = [np.empty(n, dtype=np.uint32) for _ in range(4)]
        high = [np.empty(n, dtype=np.uint32) for _ in range(4)]
        idx = np.empty(n, dtype=np.uint32)
        tmp = np.empty(n, dtype=np.uint32)
        gathered = np.empty(n, dtype=np.uint32)

        def pair_index(word_a, word_b):
            # idx <- (word_a & 0xFF00) | (word_b & 0xFF)
            np.bitwise_and(word_a, 0xFF00, out=idx)
            np.bitwise_and(word_b, 0xFF, out=tmp)
            np.bitwise_or(idx, tmp, out=idx)

        for round_index in range(1, _ROUNDS):
            base = round_index * 4
            s0, s1, s2, s3 = cur
            for k in range(4):
                np.right_shift(cur[k], 16, out=high[k])
            pairs = ((high[0], high[1], s2, s3), (high[1], high[2], s3, s0),
                     (high[2], high[3], s0, s1), (high[3], high[0], s1, s2))
            for k, (ha, hb, sa, sb) in enumerate(pairs):
                word = nxt[k]
                pair_index(ha, hb)
                np.take(_NP_P01, idx, out=gathered)
                pair_index(sa, sb)
                np.take(_NP_P23, idx, out=word)
                np.bitwise_xor(word, gathered, out=word)
                np.bitwise_xor(word, rk[base + k], out=word)
            cur, nxt = nxt, cur
        base = _ROUNDS * 4
        s0, s1, s2, s3 = cur
        out = np.empty((n, 4), dtype=np.uint32)
        for k in range(4):
            np.right_shift(cur[k], 16, out=high[k])
        pairs = ((high[0], high[1], s2, s3), (high[1], high[2], s3, s0),
                 (high[2], high[3], s0, s1), (high[3], high[0], s1, s2))
        for k, (ha, hb, sa, sb) in enumerate(pairs):
            pair_index(ha, hb)
            np.take(_NP_SB2, idx, out=gathered)
            pair_index(sa, sb)
            np.take(_NP_SB2, idx, out=tmp)
            np.left_shift(gathered, 16, out=gathered)
            np.bitwise_or(gathered, tmp, out=gathered)
            np.bitwise_xor(gathered, rk[base + k], out=out[:, k])
        return out

    def _counter_words(self, prefix: bytes, start_counter: int,
                       nblocks: int) -> np.ndarray:
        if len(prefix) != 12:
            raise CryptoError("CTR prefix must be 12 bytes")
        words = np.empty((nblocks, 4), dtype=np.uint32)
        words[:, 0] = int.from_bytes(prefix[0:4], "big")
        words[:, 1] = int.from_bytes(prefix[4:8], "big")
        words[:, 2] = int.from_bytes(prefix[8:12], "big")
        counters = (start_counter + np.arange(nblocks, dtype=np.uint64)) & 0xFFFFFFFF
        words[:, 3] = counters.astype(np.uint32)
        return words

    def ctr_keystream(self, prefix: bytes, start_counter: int, nblocks: int) -> bytes:
        """Encrypt counter blocks ``prefix || counter`` for GCM's CTR mode.

        ``prefix`` is the 12-byte IV part of J0; the 32-bit counter occupies
        the final word and starts at ``start_counter``.
        """
        if len(prefix) != 12:
            raise CryptoError("CTR prefix must be 12 bytes")
        if nblocks == 0:
            return b""
        words = self._counter_words(prefix, start_counter, nblocks)
        return self.encrypt_blocks(words).astype(">u4").tobytes()

    def ctr_keystream_into(self, prefix: bytes, start_counter: int,
                           out: np.ndarray) -> None:
        """Fill ``out`` (uint8, multiple of 16 bytes) with keystream bytes.

        Paired-table path writing big-endian keystream straight into a
        caller buffer, so bulk pipelines stay allocation-free per chunk.
        """
        nblocks = len(out) // BLOCK_SIZE
        if nblocks == 0:
            return
        words = self._counter_words(prefix, start_counter, nblocks)
        view = out.view(np.uint32).reshape(nblocks, 4)
        view[:] = self.encrypt_blocks_fast(words)
        if sys.byteorder == "little":
            view.byteswap(inplace=True)
