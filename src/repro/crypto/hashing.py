"""Hash primitives used across the attestation stack.

The paper selects SHA-256 for code measurements and protocol anchors; we
wrap :mod:`hashlib` so every call site shares one spelling and so tests can
assert on digest sizes in a single place.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

SHA256_SIZE = 32


def sha256(data: bytes) -> bytes:
    """Return the SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Return the SHA-256 digest of ``data`` as lowercase hex."""
    return hashlib.sha256(data).hexdigest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """Return the HMAC-SHA-256 of ``data`` under ``key``."""
    return _hmac.new(key, data, hashlib.sha256).digest()


class IncrementalHash:
    """Streaming SHA-256, used to measure Wasm bytecode chunk by chunk.

    The WaTZ runtime copies AOT bytecode from the shared buffer into secure
    memory in chunks and folds every chunk into the measurement as it goes,
    so the module never needs to be contiguous twice.
    """

    def __init__(self) -> None:
        self._ctx = hashlib.sha256()
        self._length = 0

    def update(self, chunk: bytes) -> None:
        self._ctx.update(chunk)
        self._length += len(chunk)

    @property
    def length(self) -> int:
        """Number of bytes folded in so far."""
        return self._length

    def digest(self) -> bytes:
        return self._ctx.digest()

    def hexdigest(self) -> str:
        return self._ctx.hexdigest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without early exit.

    On the real hardware this prevents remote timing probes on MAC checks;
    in the simulation we keep the same discipline so that code paths match.
    """
    return _hmac.compare_digest(a, b)
