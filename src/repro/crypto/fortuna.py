"""A Fortuna-style seedable generator.

OP-TEE's stock PRNG cannot be seeded, so the paper adds the *Fortuna*
generator to LibTomCrypt in order to derive the attestation key pair
deterministically from the hardware root of trust (§V). We reproduce the
generator component of Fortuna (Ferguson & Schneier): a block cipher in
counter mode whose key is rehashed after every request, with SHA-256-based
reseeding.
"""

from __future__ import annotations

import hashlib

from repro.crypto.aes import BLOCK_SIZE, Aes128
from repro.errors import CryptoError

_MAX_REQUEST = 1 << 20  # Fortuna limit: 2^20 bytes per request.


class Fortuna:
    """The Fortuna generator (the pool scheduler is out of scope here)."""

    def __init__(self) -> None:
        self._key = b"\x00" * 32
        self._counter = 0
        self._seeded = False

    def reseed(self, seed: bytes) -> None:
        """Fold ``seed`` into the generator key (Fortuna's reseed rule)."""
        self._key = hashlib.sha256(self._key + seed).digest()
        self._counter += 1
        self._seeded = True

    def _generate_blocks(self, count: int) -> bytes:
        # Fortuna specifies a 256-bit block cipher key; with an AES-128 core
        # we key two lanes from the two key halves, matching LibTomCrypt's
        # trick of folding wider keys, and interleave their outputs.
        cipher = Aes128(hashlib.sha256(self._key).digest()[:16])
        chunks = []
        for _ in range(count):
            self._counter += 1
            block = self._counter.to_bytes(BLOCK_SIZE, "little")
            chunks.append(cipher.encrypt_block(block))
        return b"".join(chunks)

    def random_bytes(self, size: int) -> bytes:
        """Return ``size`` pseudorandom bytes; rekeys after every request."""
        if not self._seeded:
            raise CryptoError("Fortuna generator used before seeding")
        if size < 0 or size > _MAX_REQUEST:
            raise CryptoError("Fortuna request size out of range")
        nblocks = (size + BLOCK_SIZE - 1) // BLOCK_SIZE
        output = self._generate_blocks(nblocks)[:size]
        # Rekey so a state compromise cannot reveal earlier outputs.
        self._key = self._generate_blocks(2)
        return output


def seeded_fortuna(seed: bytes) -> Fortuna:
    """Convenience constructor: a generator reseeded once with ``seed``."""
    generator = Fortuna()
    generator.reseed(seed)
    return generator
