"""Ephemeral elliptic-curve Diffie–Hellman on P-256.

Each remote-attestation session creates fresh ECDHE key pairs on both sides
(paper §IV, *freshness* and *forward secrecy* requirements). The shared
secret is the x-coordinate of ``a * G_v == v * G_a``, fed into the SGX-style
key-derivation chain of :mod:`repro.crypto.kdf`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import ec
from repro.errors import CryptoError


@dataclass(frozen=True)
class SessionKeyPair:
    """An ephemeral ECDHE key pair for one attestation session."""

    private: int
    public: ec.Point

    def public_bytes(self) -> bytes:
        return self.public.encode()


def generate(read: "callable") -> SessionKeyPair:
    """Generate a session key pair from a byte stream ``read(n)``."""
    while True:
        candidate = int.from_bytes(read(ec.SCALAR_SIZE), "big")
        if 1 <= candidate < ec.N:
            return SessionKeyPair(candidate, ec.scalar_base_mult(candidate))


def shared_secret(private: int, peer_public: ec.Point) -> bytes:
    """Compute the 32-byte shared secret (big-endian x-coordinate).

    The peer's public key is fully validated first: accepting an invalid
    point would expose the private scalar to small-subgroup attacks.
    """
    ec.validate_private_key(private)
    ec.validate_public_key(peer_public)
    point = ec.scalar_mult(private, peer_public)
    if point.is_infinity:
        raise CryptoError("ECDH produced the point at infinity")
    return point.x.to_bytes(ec.COORD_SIZE, "big")
