"""AES-128-GCM authenticated encryption (NIST SP 800-38D).

The verifier delivers the *secret blob* of msg3 under AES-GCM (paper §IV,
Table II: ``iv || AES-GCM_Ke(data)``). GHASH is implemented with a
byte-indexed multiplication table so megabyte payloads stay tractable.
"""

from __future__ import annotations

from typing import List

from repro.crypto.aes import BLOCK_SIZE, Aes128
from repro.crypto.hashing import constant_time_equal
from repro.errors import AuthenticationError, CryptoError

IV_SIZE = 12
TAG_SIZE = 16

_R = 0xE1 << 120
_MASK128 = (1 << 128) - 1


def _mult_by_x(value: int) -> int:
    """Multiply a field element by x in GCM's bit-reflected representation."""
    if value & 1:
        return (value >> 1) ^ _R
    return value >> 1


def _gf_mult(x: int, y: int) -> int:
    """Reference GF(2^128) multiplication (slow path, used to build tables)."""
    z = 0
    v = x
    for i in range(128):
        if (y >> (127 - i)) & 1:
            z ^= v
        v = _mult_by_x(v)
    return z


def _build_ghash_tables(h: int) -> List[List[int]]:
    """Per-byte-position multiplication tables for the hash subkey ``h``.

    ``tables[i][b]`` equals ``(b placed at byte position i) * h``, so a full
    product is 16 table lookups XORed together. Position 0 is the most
    significant byte; moving one byte toward the least significant end
    multiplies by x^8 in the field.
    """
    first = [_gf_mult(b << 120, h) for b in range(256)]
    tables = [first]
    for _ in range(15):
        previous = tables[-1]
        shifted = []
        for value in previous:
            for _ in range(8):
                value = _mult_by_x(value)
            shifted.append(value)
        tables.append(shifted)
    return tables


class _Ghash:
    """Streaming GHASH accumulator over prebuilt subkey tables."""

    def __init__(self, tables: List[List[int]]) -> None:
        self._tables = tables
        self._state = 0

    def update_blocks(self, data: bytes) -> None:
        """Fold zero-padded 16-byte blocks of ``data`` into the state."""
        tables = self._tables
        state = self._state
        full_end = len(data) - len(data) % BLOCK_SIZE
        for offset in range(0, full_end, BLOCK_SIZE):
            block = int.from_bytes(data[offset : offset + BLOCK_SIZE], "big")
            x = state ^ block
            acc = 0
            for i in range(16):
                acc ^= tables[i][(x >> (8 * (15 - i))) & 0xFF]
            state = acc
        if full_end != len(data):
            tail = data[full_end:] + b"\x00" * (BLOCK_SIZE - (len(data) - full_end))
            block = int.from_bytes(tail, "big")
            x = state ^ block
            acc = 0
            for i in range(16):
                acc ^= tables[i][(x >> (8 * (15 - i))) & 0xFF]
            state = acc
        self._state = state

    def digest(self) -> int:
        return self._state


class AesGcm:
    """AES-128-GCM with 96-bit IVs and 128-bit tags."""

    def __init__(self, key: bytes) -> None:
        self._cipher = Aes128(key)
        h = int.from_bytes(self._cipher.encrypt_block(b"\x00" * BLOCK_SIZE), "big")
        self._tables = _build_ghash_tables(h)

    def _process(self, iv: bytes, data: bytes) -> bytes:
        """CTR-transform ``data``; encryption and decryption share this body."""
        nblocks = (len(data) + BLOCK_SIZE - 1) // BLOCK_SIZE
        keystream = self._cipher.ctr_keystream(iv, 2, nblocks)
        return bytes(a ^ b for a, b in zip(data, keystream))

    def _tag(self, iv: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        ghash = _Ghash(self._tables)
        if aad:
            ghash.update_blocks(aad)
        if ciphertext:
            ghash.update_blocks(ciphertext)
        lengths = (len(aad) * 8).to_bytes(8, "big") + (len(ciphertext) * 8).to_bytes(8, "big")
        ghash.update_blocks(lengths)
        s = ghash.digest().to_bytes(BLOCK_SIZE, "big")
        j0 = iv + b"\x00\x00\x00\x01"
        mask = self._cipher.encrypt_block(j0)
        return bytes(a ^ b for a, b in zip(s, mask))

    def seal(self, iv: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ``ciphertext || tag``."""
        if len(iv) != IV_SIZE:
            raise CryptoError("GCM IV must be 96 bits")
        ciphertext = self._process(iv, plaintext)
        return ciphertext + self._tag(iv, ciphertext, aad)

    def open(self, iv: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag, then decrypt; raises on any tampering."""
        if len(iv) != IV_SIZE:
            raise CryptoError("GCM IV must be 96 bits")
        if len(sealed) < TAG_SIZE:
            raise AuthenticationError("sealed message shorter than the tag")
        ciphertext, tag = sealed[:-TAG_SIZE], sealed[-TAG_SIZE:]
        expected = self._tag(iv, ciphertext, aad)
        if not constant_time_equal(tag, expected):
            raise AuthenticationError("GCM tag verification failed")
        return self._process(iv, ciphertext)
