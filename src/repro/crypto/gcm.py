"""AES-128-GCM authenticated encryption (NIST SP 800-38D).

The verifier delivers the *secret blob* of msg3 under AES-GCM (paper §IV,
Table II: ``iv || AES-GCM_Ke(data)``). Two execution paths are provided,
mirroring :mod:`repro.crypto.ec`:

* a scalar reference path — per-block GHASH over byte-indexed tables and a
  byte-generator CTR XOR — retained verbatim as the oracle every fast-path
  change is differentially tested against;
* a vectorised fast path: NumPy ``bitwise_xor`` over ``frombuffer`` views
  for CTR, and striped GHASH with aggregated reduction — tables for
  H^1..H^W let a whole :data:`STRIPE_WIDTH`-block stripe be folded with 16
  batched gathers, with a scalar Horner step carrying the state across
  stripes.

:func:`use_fast_paths` switches between them at runtime; the switch selects
*algorithms* only — every ciphertext, tag, and accept/reject decision is
identical on both paths.

The streaming API (:meth:`AesGcm.stream_seal` / :meth:`AesGcm.stream_open`,
init/update/final semantics like :class:`repro.crypto.hashing.IncrementalHash`)
encrypts and folds GHASH in one pass over memoryview chunks so megabyte
msg3 blobs cross the pipeline without full-buffer intermediate copies. The
open stream never releases plaintext before the tag verifies.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Iterator, List

import numpy as np

from repro.crypto.aes import BLOCK_SIZE, Aes128
from repro.crypto.hashing import constant_time_equal
from repro.errors import AuthenticationError, CryptoError

IV_SIZE = 12
TAG_SIZE = 16

#: Blocks per GHASH stripe on the fast path. 64 blocks (1 KiB) keeps the
#: per-subkey stripe tables at 4 MiB while leaving the sequential Horner
#: fold with only N/64 scalar steps — small enough to disappear behind the
#: vectorised gathers (see DESIGN.md §16 for the width trade-off).
STRIPE_WIDTH = 64

#: Minimum whole blocks in a single fold before the striped path engages
#: (below one stripe the scalar loop is cheaper than the numpy dispatch,
#: and small messages never pay the stripe-table build).
_VECTOR_MIN_BLOCKS = STRIPE_WIDTH

#: Whole blocks in one fold/keystream call before work is split across
#: threads (numpy releases the GIL inside gathers). 16384 blocks = 256 KiB.
_PARALLEL_MIN_BLOCKS = 16384
_MAX_POOL_WORKERS = 4

_R = 0xE1 << 120
_MASK64 = (1 << 64) - 1


# --- fast/reference switch -----------------------------------------------------

_fast_paths = True


def use_fast_paths(enabled: bool) -> bool:
    """Select vectorised (True) or scalar reference (False) bulk crypto.

    Returns the previous setting. The switch selects *algorithms* only:
    ciphertexts, tags, and accept/reject behaviour are identical."""
    global _fast_paths
    previous = _fast_paths
    _fast_paths = bool(enabled)
    return previous


def fast_paths_enabled() -> bool:
    return _fast_paths


@contextmanager
def reference_paths() -> Iterator[None]:
    """Run a block on the scalar reference implementation."""
    previous = use_fast_paths(False)
    try:
        yield
    finally:
        use_fast_paths(previous)


# --- field arithmetic and reference tables -------------------------------------


def _mult_by_x(value: int) -> int:
    """Multiply a field element by x in GCM's bit-reflected representation."""
    if value & 1:
        return (value >> 1) ^ _R
    return value >> 1


def _gf_mult(x: int, y: int) -> int:
    """Reference GF(2^128) multiplication (slow path, used to build tables)."""
    z = 0
    v = x
    for i in range(128):
        if (y >> (127 - i)) & 1:
            z ^= v
        v = _mult_by_x(v)
    return z


def _build_ghash_tables(h: int) -> List[List[int]]:
    """Per-byte-position multiplication tables for the hash subkey ``h``.

    ``tables[i][b]`` equals ``(b placed at byte position i) * h``, so a full
    product is 16 table lookups XORed together. Position 0 is the most
    significant byte; moving one byte toward the least significant end
    multiplies by x^8 in the field.
    """
    first = [_gf_mult(b << 120, h) for b in range(256)]
    tables = [first]
    for _ in range(15):
        previous = tables[-1]
        shifted = []
        for value in previous:
            for _ in range(8):
                value = _mult_by_x(value)
            shifted.append(value)
        tables.append(shifted)
    return tables


def _mult_tables(x: int, tables: List[List[int]]) -> int:
    """``x * h`` via the per-byte tables of ``h`` (16 lookups)."""
    acc = 0
    for i in range(16):
        acc ^= tables[i][(x >> (8 * (15 - i))) & 0xFF]
    return acc


# --- striped fast-path tables --------------------------------------------------


class _StripeTables:
    """Aggregated-reduction tables: products against H^1..H^W at once.

    For a stripe of W blocks the GHASH recurrence telescopes to
    ``Y' = Y * H^W  ^  sum_j X_j * H^(W-j)`` — every block's product uses a
    *different* subkey power, so all W products are data-independent and
    vectorise. ``gather[pos]`` holds, for byte position ``pos``, the product
    of every (power, byte value) pair packed as one complex128 (hi||lo
    uint64 halves), so a single ``np.take`` fetches a full 128-bit product.
    ``horner[pos][b]`` is the scalar per-byte table of H^W that carries the
    accumulated state across stripes.
    """

    def __init__(self, h: int, scalar_tables: List[List[int]]) -> None:
        width = STRIPE_WIDTH
        powers = [h]
        for _ in range(width - 1):
            powers.append(_mult_tables(powers[-1], scalar_tables))
        hi = np.array([p >> 64 for p in powers], dtype=np.uint64)
        lo = np.array([p & _MASK64 for p in powers], dtype=np.uint64)
        # Walk x^bit * H^(k+1) for all powers k simultaneously; each byte
        # value's product is the XOR of its set bits' single-bit products.
        table = np.zeros((16, width, 256, 2), dtype=np.uint64)
        byte_values = np.arange(256)
        r_hi = np.uint64(0xE1 << 56)
        one = np.uint64(1)
        shift63 = np.uint64(63)
        for bit in range(128):
            pos, lane = divmod(bit, 8)
            matching = np.nonzero(byte_values & (1 << (7 - lane)))[0]
            table[pos, :, matching, 0] ^= hi[None, :]
            table[pos, :, matching, 1] ^= lo[None, :]
            lsb = lo & one
            lo = (lo >> one) | ((hi & one) << shift63)
            hi = (hi >> one) ^ (lsb * r_hi)
        self.gather = [
            np.ascontiguousarray(table[pos].reshape(width * 256, 2))
            .view(np.complex128).reshape(width * 256)
            for pos in range(16)
        ]
        self.horner = [
            [(int(row[b, 0]) << 64) | int(row[b, 1]) for b in range(256)]
            for row in table[:, width - 1]
        ]


class _SubkeyTables:
    """All per-subkey state: scalar tables eagerly, stripe tables lazily.

    Stripe tables cost ~4 MiB and tens of milliseconds, so they are only
    built the first time a bulk (>= one stripe) fold actually runs — fresh
    session keys sealing small payloads never pay for them.
    """

    __slots__ = ("h", "scalar", "_stripes", "_lock")

    def __init__(self, h: int) -> None:
        self.h = h
        self.scalar = _build_ghash_tables(h)
        self._stripes = None
        self._lock = threading.Lock()

    def stripes(self) -> _StripeTables:
        tables = self._stripes
        if tables is None:
            with self._lock:
                tables = self._stripes
                if tables is None:
                    tables = _StripeTables(self.h, self.scalar)
                    self._stripes = tables
        return tables


#: Bounded LRU of per-subkey tables (same idiom as
#: ``ec.precompute_public_key``): fleet lanes re-keying per session reuse
#: tables instead of rebuilding all 16x256 entries per ``AesGcm`` instance.
_TABLE_CACHE_CAPACITY = 16
_table_cache: "OrderedDict[int, _SubkeyTables]" = OrderedDict()
_table_cache_lock = threading.Lock()


def _tables_for_subkey(h: int) -> _SubkeyTables:
    with _table_cache_lock:
        entry = _table_cache.get(h)
        if entry is not None:
            _table_cache.move_to_end(h)
            return entry
    entry = _SubkeyTables(h)  # built outside the lock; ties pick one winner
    with _table_cache_lock:
        winner = _table_cache.setdefault(h, entry)
        _table_cache.move_to_end(h)
        while len(_table_cache) > _TABLE_CACHE_CAPACITY:
            _table_cache.popitem(last=False)
    return winner


# --- worker pool (bulk folds and keystreams on multi-core hosts) ---------------

_pool = None
_pool_pid = 0
_pool_lock = threading.Lock()


def _bulk_workers(nblocks: int) -> int:
    if nblocks < _PARALLEL_MIN_BLOCKS:
        return 1
    cpus = os.cpu_count() or 1
    if cpus <= 1:
        return 1
    return min(_MAX_POOL_WORKERS, cpus)


def _executor() -> ThreadPoolExecutor:
    global _pool, _pool_pid
    pid = os.getpid()
    if _pool is None or _pool_pid != pid:  # forked children get a fresh pool
        with _pool_lock:
            if _pool is None or _pool_pid != pid:
                _pool = ThreadPoolExecutor(max_workers=_MAX_POOL_WORKERS,
                                           thread_name_prefix="gcm-bulk")
                _pool_pid = pid
    return _pool


# --- GHASH ---------------------------------------------------------------------


class _Ghash:
    """Streaming GHASH accumulator over prebuilt subkey tables (reference)."""

    def __init__(self, tables: List[List[int]]) -> None:
        self._tables = tables
        self._state = 0

    def update_blocks(self, data: bytes) -> None:
        """Fold zero-padded 16-byte blocks of ``data`` into the state."""
        tables = self._tables
        state = self._state
        full_end = len(data) - len(data) % BLOCK_SIZE
        for offset in range(0, full_end, BLOCK_SIZE):
            block = int.from_bytes(data[offset : offset + BLOCK_SIZE], "big")
            x = state ^ block
            acc = 0
            for i in range(16):
                acc ^= tables[i][(x >> (8 * (15 - i))) & 0xFF]
            state = acc
        if full_end != len(data):
            tail = data[full_end:] + b"\x00" * (BLOCK_SIZE - (len(data) - full_end))
            block = int.from_bytes(tail, "big")
            x = state ^ block
            acc = 0
            for i in range(16):
                acc ^= tables[i][(x >> (8 * (15 - i))) & 0xFF]
            state = acc
        self._state = state

    def digest(self) -> int:
        return self._state


_POWER_BASE = np.empty(0, dtype=np.intp)


def _power_base(n: int) -> np.ndarray:
    """Index bases ``(power_index << 8)`` tiled per stripe, cached and grown.

    Block ``j`` of a stripe multiplies ``H^(W-j)`` = ``powers[W-1-j]``; the
    gather index is ``(W-1-j) << 8 | byte``. The pattern repeats every
    stripe, so one cached tile serves every fold.
    """
    global _POWER_BASE
    if _POWER_BASE.size < n:
        reps = -(-n // STRIPE_WIDTH)
        pattern = (STRIPE_WIDTH - 1 - np.arange(STRIPE_WIDTH, dtype=np.intp)) << 8
        _POWER_BASE = np.tile(pattern, reps)
    return _POWER_BASE[:n]


def _column_products(gather: List[np.ndarray], mat: np.ndarray,
                     base: np.ndarray, out: np.ndarray) -> None:
    """XOR together all 16 byte-position products of each block into ``out``.

    One batched gather per byte position; products travel as complex128 so
    hi and lo 64-bit halves move in a single take.
    """
    idx = np.empty(len(mat), dtype=np.intp)
    np.add(base, mat[:, 0], out=idx)
    np.take(gather[0], idx, out=out)
    scratch = np.empty_like(out)
    acc = out.view(np.uint64)
    for pos in range(1, 16):
        np.add(base, mat[:, pos], out=idx)
        np.take(gather[pos], idx, out=scratch)
        acc ^= scratch.view(np.uint64)


def _fold_striped(state: int, tables: _StripeTables, mat: np.ndarray,
                  nstripes: int) -> int:
    """Fold ``nstripes`` full stripes of blocks (``mat``: (n, 16) uint8)."""
    width = STRIPE_WIDTH
    n = nstripes * width
    base = _power_base(n)
    acc = np.empty(n, dtype=np.complex128)
    workers = _bulk_workers(n)
    if workers > 1:
        # Stripe-aligned slices: the power pattern restarts identically at
        # every stripe boundary, so each worker reuses the same base tile.
        pool = _executor()
        step = -(-nstripes // workers) * width
        futures = [
            pool.submit(_column_products, tables.gather,
                        mat[begin:begin + step], base[:min(step, n - begin)],
                        acc[begin:begin + step])
            for begin in range(0, n, step)
        ]
        for future in futures:
            future.result()
    else:
        _column_products(tables.gather, mat, base, acc)
    folded = np.bitwise_xor.reduce(
        acc.view(np.uint64).reshape(nstripes, width, 2), axis=1)
    highs = folded[:, 0].tolist()
    lows = folded[:, 1].tolist()
    t0, t1, t2, t3, t4, t5, t6, t7, t8, t9, t10, t11, t12, t13, t14, t15 = \
        tables.horner
    for s in range(nstripes):
        stripe = (highs[s] << 64) | lows[s]
        if state:
            stripe ^= (
                t0[(state >> 120) & 0xFF] ^ t1[(state >> 112) & 0xFF]
                ^ t2[(state >> 104) & 0xFF] ^ t3[(state >> 96) & 0xFF]
                ^ t4[(state >> 88) & 0xFF] ^ t5[(state >> 80) & 0xFF]
                ^ t6[(state >> 72) & 0xFF] ^ t7[(state >> 64) & 0xFF]
                ^ t8[(state >> 56) & 0xFF] ^ t9[(state >> 48) & 0xFF]
                ^ t10[(state >> 40) & 0xFF] ^ t11[(state >> 32) & 0xFF]
                ^ t12[(state >> 24) & 0xFF] ^ t13[(state >> 16) & 0xFF]
                ^ t14[(state >> 8) & 0xFF] ^ t15[state & 0xFF]
            )
        state = stripe
    return state


def _fold_scalar(state: int, tables: List[List[int]], view,
                 start_block: int, end_block: int) -> int:
    """Reference per-block fold over full blocks of a memoryview."""
    for index in range(start_block, end_block):
        offset = index * BLOCK_SIZE
        block = int.from_bytes(view[offset : offset + BLOCK_SIZE], "big")
        x = state ^ block
        acc = 0
        for i in range(16):
            acc ^= tables[i][(x >> (8 * (15 - i))) & 0xFF]
        state = acc
    return state


class _GhashState:
    """Streaming GHASH over arbitrary-length chunks with segment padding.

    ``update`` absorbs bytes; ``close_segment`` zero-pads the dangling
    partial block exactly as the reference :class:`_Ghash` pads each
    ``update_blocks`` call, so a (aad, ciphertext, lengths) segment
    sequence digests identically on both paths.
    """

    __slots__ = ("_tables", "_fast", "_state", "_partial")

    def __init__(self, tables: _SubkeyTables, fast: bool) -> None:
        self._tables = tables
        self._fast = fast
        self._state = 0
        self._partial = bytearray()

    def update(self, data) -> None:
        if not len(data):
            return
        view = memoryview(data)
        if self._partial:
            need = BLOCK_SIZE - len(self._partial)
            take = min(need, len(view))
            self._partial.extend(view[:take])
            view = view[take:]
            if len(self._partial) < BLOCK_SIZE:
                return
            self._state = _fold_scalar(
                self._state, self._tables.scalar, self._partial, 0, 1)
            self._partial.clear()
        nblocks = len(view) // BLOCK_SIZE
        if nblocks:
            whole = view[: nblocks * BLOCK_SIZE]
            self._state = self._fold_blocks(whole, nblocks)
            view = view[nblocks * BLOCK_SIZE :]
        if len(view):
            self._partial.extend(view)

    def _fold_blocks(self, view, nblocks: int) -> int:
        state = self._state
        if self._fast and nblocks >= _VECTOR_MIN_BLOCKS:
            stripes = self._tables.stripes()
            nstripes = nblocks // STRIPE_WIDTH
            full = nstripes * STRIPE_WIDTH
            mat = np.frombuffer(view, dtype=np.uint8,
                                count=full * BLOCK_SIZE).reshape(full, 16)
            state = _fold_striped(state, stripes, mat, nstripes)
            if full != nblocks:
                state = _fold_scalar(state, self._tables.scalar, view,
                                     full, nblocks)
            return state
        return _fold_scalar(state, self._tables.scalar, view, 0, nblocks)

    def close_segment(self) -> None:
        if self._partial:
            self._partial.extend(b"\x00" * (BLOCK_SIZE - len(self._partial)))
            self._state = _fold_scalar(
                self._state, self._tables.scalar, self._partial, 0, 1)
            self._partial.clear()

    def digest(self) -> int:
        return self._state


# --- CTR keystream streams -----------------------------------------------------


def _ctr_fill(cipher: Aes128, iv: bytes, start_block: int,
              out: np.ndarray) -> None:
    """Fill ``out`` with fast-path keystream, split across threads when big."""
    nblocks = len(out) // BLOCK_SIZE
    workers = _bulk_workers(nblocks)
    if workers <= 1:
        cipher.ctr_keystream_into(iv, start_block, out)
        return
    pool = _executor()
    step = -(-nblocks // workers)
    futures = [
        pool.submit(cipher.ctr_keystream_into, iv, start_block + begin,
                    out[begin * BLOCK_SIZE : (begin + step) * BLOCK_SIZE])
        for begin in range(0, nblocks, step)
    ]
    for future in futures:
        future.result()


class _CtrFast:
    """Chunked CTR XOR: numpy keystream blocks, ``bitwise_xor`` over views."""

    def __init__(self, cipher: Aes128, iv: bytes) -> None:
        self._cipher = cipher
        self._iv = iv
        self._next_block = 2
        self._leftover = b""

    def xor_into(self, src, out) -> None:
        src_arr = np.frombuffer(src, dtype=np.uint8)
        out_arr = np.frombuffer(out, dtype=np.uint8)
        n = len(src_arr)
        pos = 0
        if self._leftover:
            take = min(len(self._leftover), n)
            np.bitwise_xor(
                src_arr[:take],
                np.frombuffer(self._leftover, dtype=np.uint8, count=take),
                out=out_arr[:take])
            self._leftover = self._leftover[take:]
            pos = take
        remaining = n - pos
        if not remaining:
            return
        nblocks = (remaining + BLOCK_SIZE - 1) // BLOCK_SIZE
        keystream = np.empty(nblocks * BLOCK_SIZE, dtype=np.uint8)
        _ctr_fill(self._cipher, self._iv, self._next_block, keystream)
        self._next_block += nblocks
        np.bitwise_xor(src_arr[pos:], keystream[:remaining], out=out_arr[pos:])
        self._leftover = keystream[remaining:].tobytes()


class _CtrReference:
    """Chunked CTR XOR via the original keystream call and byte generator."""

    def __init__(self, cipher: Aes128, iv: bytes) -> None:
        self._cipher = cipher
        self._iv = iv
        self._next_block = 2
        self._leftover = b""

    def xor_into(self, src, out) -> None:
        view = memoryview(src)
        n = len(view)
        pos = 0
        if self._leftover:
            take = min(len(self._leftover), n)
            out[:take] = bytes(
                a ^ b for a, b in zip(view[:take], self._leftover))
            self._leftover = self._leftover[take:]
            pos = take
        remaining = n - pos
        if not remaining:
            return
        nblocks = (remaining + BLOCK_SIZE - 1) // BLOCK_SIZE
        keystream = self._cipher.ctr_keystream(self._iv, self._next_block,
                                               nblocks)
        self._next_block += nblocks
        out[pos:n] = bytes(a ^ b for a, b in zip(view[pos:], keystream))
        self._leftover = keystream[remaining:]


def _make_ctr(cipher: Aes128, iv: bytes, fast: bool):
    return _CtrFast(cipher, iv) if fast else _CtrReference(cipher, iv)


# --- streaming AEAD ------------------------------------------------------------


class GcmSealStream:
    """Single-pass streaming seal: init / update / final, like
    :class:`repro.crypto.hashing.IncrementalHash`.

    ``update_into`` encrypts a chunk straight into a caller buffer and
    folds the produced ciphertext into GHASH as it appears — no
    full-message intermediate. ``final`` returns the 16-byte tag. The
    fast/reference selection is captured at construction so a stream is
    internally consistent even if the switch flips mid-stream.
    """

    def __init__(self, gcm: "AesGcm", iv: bytes, aad: bytes = b"") -> None:
        if len(iv) != IV_SIZE:
            raise CryptoError("GCM IV must be 96 bits")
        fast = _fast_paths
        self._cipher = gcm._cipher
        self._iv = bytes(iv)
        self._ghash = _GhashState(gcm._tables, fast)
        if aad:
            self._ghash.update(aad)
            self._ghash.close_segment()
        self._aad_bits = len(aad) * 8
        self._ctr = _make_ctr(self._cipher, self._iv, fast)
        self._ct_len = 0
        self._finished = False

    def update_into(self, chunk, out) -> int:
        """Encrypt ``chunk`` into the start of ``out``; returns its length."""
        if self._finished:
            raise CryptoError("GCM stream already finalised")
        n = len(chunk)
        if n:
            target = memoryview(out)[:n]
            self._ctr.xor_into(chunk, target)
            self._ghash.update(target)
            self._ct_len += n
        return n

    def update(self, chunk) -> bytes:
        """Encrypt ``chunk`` and return its ciphertext."""
        out = bytearray(len(chunk))
        self.update_into(chunk, out)
        return bytes(out)

    def final(self) -> bytes:
        """Close the stream and return the authentication tag."""
        if self._finished:
            raise CryptoError("GCM stream already finalised")
        self._finished = True
        self._ghash.close_segment()
        self._ghash.update(self._aad_bits.to_bytes(8, "big")
                           + (self._ct_len * 8).to_bytes(8, "big"))
        mask = int.from_bytes(
            self._cipher.encrypt_block(self._iv + b"\x00\x00\x00\x01"), "big")
        return (self._ghash.digest() ^ mask).to_bytes(BLOCK_SIZE, "big")


class GcmOpenStream:
    """Streaming open over ``ciphertext || tag`` chunks.

    The final :data:`TAG_SIZE` bytes of the stream are the tag, so the
    last 16 bytes seen are always held back; everything before them is
    folded into GHASH immediately and retained as zero-copy views.
    ``final`` verifies the tag **before** any decryption — a tampered
    stream never releases a byte of plaintext. Callers must keep the
    underlying chunk buffers unchanged until ``final`` returns.
    """

    def __init__(self, gcm: "AesGcm", iv: bytes, aad: bytes = b"") -> None:
        if len(iv) != IV_SIZE:
            raise CryptoError("GCM IV must be 96 bits")
        self._fast = _fast_paths
        self._cipher = gcm._cipher
        self._iv = bytes(iv)
        self._ghash = _GhashState(gcm._tables, self._fast)
        if aad:
            self._ghash.update(aad)
            self._ghash.close_segment()
        self._aad_bits = len(aad) * 8
        self._pending = bytearray()
        self._parts: List[object] = []
        self._ct_len = 0
        self._finished = False

    def update(self, chunk) -> None:
        """Absorb the next chunk of the sealed stream."""
        if self._finished:
            raise CryptoError("GCM stream already finalised")
        view = memoryview(chunk)
        total = len(self._pending) + len(view)
        if total <= TAG_SIZE:
            self._pending.extend(view)
            return
        release = total - TAG_SIZE
        if self._pending:
            take = min(len(self._pending), release)
            part = bytes(self._pending[:take])
            del self._pending[:take]
            self._ghash.update(part)
            self._parts.append(part)
            self._ct_len += take
            release -= take
        if release:
            part = view[:release]
            self._ghash.update(part)
            self._parts.append(part)
            self._ct_len += release
            view = view[release:]
        self._pending.extend(view)

    def final(self) -> bytes:
        """Verify the tag, then decrypt and return the plaintext."""
        if self._finished:
            raise CryptoError("GCM stream already finalised")
        self._finished = True
        if len(self._pending) < TAG_SIZE:
            raise AuthenticationError("sealed message shorter than the tag")
        tag = bytes(self._pending)
        self._ghash.close_segment()
        self._ghash.update(self._aad_bits.to_bytes(8, "big")
                           + (self._ct_len * 8).to_bytes(8, "big"))
        mask = int.from_bytes(
            self._cipher.encrypt_block(self._iv + b"\x00\x00\x00\x01"), "big")
        expected = (self._ghash.digest() ^ mask).to_bytes(BLOCK_SIZE, "big")
        if not constant_time_equal(tag, expected):
            raise AuthenticationError("GCM tag verification failed")
        # Only now is the keystream ever generated.
        ctr = _make_ctr(self._cipher, self._iv, self._fast)
        plaintext = bytearray(self._ct_len)
        view = memoryview(plaintext)
        offset = 0
        for part in self._parts:
            end = offset + len(part)
            ctr.xor_into(part, view[offset:end])
            offset = end
        self._parts.clear()
        return bytes(plaintext)


# --- one-shot interface --------------------------------------------------------


class AesGcm:
    """AES-128-GCM with 96-bit IVs and 128-bit tags."""

    def __init__(self, key: bytes) -> None:
        self._cipher = Aes128(key)
        h = int.from_bytes(self._cipher.encrypt_block(b"\x00" * BLOCK_SIZE), "big")
        self._tables = _tables_for_subkey(h)

    def _process(self, iv: bytes, data: bytes) -> bytes:
        """CTR-transform ``data``; encryption and decryption share this body."""
        nblocks = (len(data) + BLOCK_SIZE - 1) // BLOCK_SIZE
        keystream = self._cipher.ctr_keystream(iv, 2, nblocks)
        return bytes(a ^ b for a, b in zip(data, keystream))

    def _tag(self, iv: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        ghash = _Ghash(self._tables.scalar)
        if aad:
            ghash.update_blocks(aad)
        if ciphertext:
            ghash.update_blocks(ciphertext)
        lengths = (len(aad) * 8).to_bytes(8, "big") + (len(ciphertext) * 8).to_bytes(8, "big")
        ghash.update_blocks(lengths)
        s = ghash.digest().to_bytes(BLOCK_SIZE, "big")
        j0 = iv + b"\x00\x00\x00\x01"
        mask = self._cipher.encrypt_block(j0)
        return bytes(a ^ b for a, b in zip(s, mask))

    def stream_seal(self, iv: bytes, aad: bytes = b"") -> GcmSealStream:
        """Open a streaming seal; see :class:`GcmSealStream`."""
        return GcmSealStream(self, iv, aad)

    def stream_open(self, iv: bytes, aad: bytes = b"") -> GcmOpenStream:
        """Open a streaming open; see :class:`GcmOpenStream`."""
        return GcmOpenStream(self, iv, aad)

    def seal(self, iv: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ``ciphertext || tag``."""
        if len(iv) != IV_SIZE:
            raise CryptoError("GCM IV must be 96 bits")
        if not _fast_paths:
            ciphertext = self._process(iv, plaintext)
            return ciphertext + self._tag(iv, ciphertext, aad)
        sealed = bytearray(len(plaintext) + TAG_SIZE)
        view = memoryview(sealed)
        stream = GcmSealStream(self, iv, aad)
        n = stream.update_into(plaintext, view)
        view[n:] = stream.final()
        return bytes(sealed)

    def open(self, iv: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag, then decrypt; raises on any tampering."""
        if len(iv) != IV_SIZE:
            raise CryptoError("GCM IV must be 96 bits")
        if len(sealed) < TAG_SIZE:
            raise AuthenticationError("sealed message shorter than the tag")
        if not _fast_paths:
            ciphertext, tag = sealed[:-TAG_SIZE], sealed[-TAG_SIZE:]
            expected = self._tag(iv, ciphertext, aad)
            if not constant_time_equal(tag, expected):
                raise AuthenticationError("GCM tag verification failed")
            return self._process(iv, ciphertext)
        stream = GcmOpenStream(self, iv, aad)
        stream.update(sealed)
        return stream.final()
