"""Elliptic-curve arithmetic over secp256r1 (NIST P-256).

WaTZ selects the *secp256r1* curve (paper §V) for both the long-lived
attestation keys (ECDSA) and the per-session keys (ECDHE). This module
implements group arithmetic with Jacobian coordinates; :mod:`repro.crypto.ecdsa`
and :mod:`repro.crypto.ecdh` build the schemes on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import CryptoError

# Domain parameters of secp256r1 (FIPS 186-4, D.1.2.3).
P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF
A = P - 3
B = 0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B
N = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551
GX = 0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296
GY = 0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5

COORD_SIZE = 32
SCALAR_SIZE = 32


@dataclass(frozen=True)
class Point:
    """An affine point on P-256; ``None`` coordinates encode infinity."""

    x: Optional[int]
    y: Optional[int]

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def encode(self) -> bytes:
        """Serialise as an uncompressed SEC1 point (65 bytes)."""
        if self.is_infinity:
            raise CryptoError("cannot encode the point at infinity")
        return (
            b"\x04"
            + self.x.to_bytes(COORD_SIZE, "big")
            + self.y.to_bytes(COORD_SIZE, "big")
        )


INFINITY = Point(None, None)
GENERATOR = Point(GX, GY)


def decode_point(data: bytes) -> Point:
    """Parse an uncompressed SEC1 point and check it lies on the curve."""
    if len(data) != 1 + 2 * COORD_SIZE or data[0] != 0x04:
        raise CryptoError("malformed uncompressed point encoding")
    x = int.from_bytes(data[1 : 1 + COORD_SIZE], "big")
    y = int.from_bytes(data[1 + COORD_SIZE :], "big")
    point = Point(x, y)
    if not is_on_curve(point):
        raise CryptoError("point is not on secp256r1")
    return point


def is_on_curve(point: Point) -> bool:
    """Return True for infinity or any (x, y) satisfying the curve equation."""
    if point.is_infinity:
        return True
    if not (0 <= point.x < P and 0 <= point.y < P):
        return False
    return (point.y * point.y - (point.x**3 + A * point.x + B)) % P == 0


# Jacobian coordinates: (X, Y, Z) represents the affine point (X/Z^2, Y/Z^3).
_Jacobian = Tuple[int, int, int]
_J_INFINITY: _Jacobian = (1, 1, 0)


def _to_jacobian(point: Point) -> _Jacobian:
    if point.is_infinity:
        return _J_INFINITY
    return (point.x, point.y, 1)


def _from_jacobian(point: _Jacobian) -> Point:
    x, y, z = point
    if z == 0:
        return INFINITY
    z_inv = pow(z, P - 2, P)
    z_inv2 = z_inv * z_inv % P
    return Point(x * z_inv2 % P, y * z_inv2 * z_inv % P)


def _jacobian_double(point: _Jacobian) -> _Jacobian:
    x, y, z = point
    if z == 0 or y == 0:
        return _J_INFINITY
    ysq = y * y % P
    s = 4 * x * ysq % P
    z2 = z * z % P
    # a = -3 allows the classic (x - z^2)(x + z^2) factorisation of M.
    m = 3 * (x - z2) * (x + z2) % P
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = 2 * y * z % P
    return (nx, ny, nz)


def _jacobian_add(p: _Jacobian, q: _Jacobian) -> _Jacobian:
    if p[2] == 0:
        return q
    if q[2] == 0:
        return p
    x1, y1, z1 = p
    x2, y2, z2 = q
    z1z1 = z1 * z1 % P
    z2z2 = z2 * z2 % P
    u1 = x1 * z2z2 % P
    u2 = x2 * z1z1 % P
    s1 = y1 * z2z2 * z2 % P
    s2 = y2 * z1z1 * z1 % P
    if u1 == u2:
        if s1 != s2:
            return _J_INFINITY
        return _jacobian_double(p)
    h = (u2 - u1) % P
    i = 4 * h * h % P
    j = h * i % P
    r = 2 * (s2 - s1) % P
    v = u1 * i % P
    nx = (r * r - j - 2 * v) % P
    ny = (r * (v - nx) - 2 * s1 * j) % P
    nz = 2 * h * z1 * z2 % P
    return (nx, ny, nz)


def add(p: Point, q: Point) -> Point:
    """Group addition of two affine points."""
    return _from_jacobian(_jacobian_add(_to_jacobian(p), _to_jacobian(q)))


def scalar_mult(k: int, point: Point) -> Point:
    """Compute ``k * point`` with left-to-right double-and-add."""
    k %= N
    if k == 0 or point.is_infinity:
        return INFINITY
    result = _J_INFINITY
    addend = _to_jacobian(point)
    while k:
        if k & 1:
            result = _jacobian_add(result, addend)
        addend = _jacobian_double(addend)
        k >>= 1
    return _from_jacobian(result)


def scalar_base_mult(k: int) -> Point:
    """Compute ``k * G`` for the standard generator."""
    return scalar_mult(k, GENERATOR)


def validate_private_key(d: int) -> None:
    """Ensure a scalar is a valid private key for this curve."""
    if not 1 <= d < N:
        raise CryptoError("private key out of range [1, n-1]")


def validate_public_key(point: Point) -> None:
    """Full public-key validation (SP 800-56A §5.6.2.3.3)."""
    if point.is_infinity:
        raise CryptoError("public key is the point at infinity")
    if not is_on_curve(point):
        raise CryptoError("public key is not on secp256r1")
    if not scalar_mult(N, point).is_infinity:
        raise CryptoError("public key has wrong order")
