"""Elliptic-curve arithmetic over secp256r1 (NIST P-256).

WaTZ selects the *secp256r1* curve (paper §V) for both the long-lived
attestation keys (ECDSA) and the per-session keys (ECDHE). This module
implements group arithmetic with Jacobian coordinates; :mod:`repro.crypto.ecdsa`
and :mod:`repro.crypto.ecdh` build the schemes on top.

Two implementations coexist:

* the **naive reference path** — left-to-right double-and-add with no
  precomputation, exactly the seed implementation. It is retained verbatim
  (:func:`scalar_mult_naive`) as the differential-testing oracle and as
  the baseline the crypto microbenchmark compares against.
* the **fast path** (default) — the attestation hot path of Table III:

  - :func:`scalar_mult` uses width-5 wNAF with a table of odd multiples
    of the point, batch-normalised to affine so the main loop runs on
    mixed Jacobian+affine additions;
  - :func:`scalar_base_mult` uses a fixed-base comb: a 64x15 table of
    ``j * 2**(4*i) * G`` built lazily once and shared process-wide, so a
    base multiplication (keygen, ECDSA sign, ECDHE) is ~64 mixed
    additions and **zero** doublings;
  - :func:`double_scalar_base_mult` is Shamir's trick — the joint
    ``u1*G + u2*Q`` of ECDSA verification — interleaving the wNAF
    expansions of both scalars on one shared doubling chain;
  - per-public-key *split* wNAF tables (odd multiples of ``2**(32c) * Q``
    for each of the eight 32-bit scalar chunks) are memoised in a bounded
    LRU (:func:`precompute_public_key`). A cached key's multiplication
    splits the scalar into chunks that all ride one ~33-step doubling
    chain instead of a 256-step one — the doubling chain is what
    dominates double-and-add, so repeated attesters (the fleet steady
    state) skip both table construction *and* seven eighths of the
    doublings.

Both paths compute the same group function; ``tests/crypto`` pins them
together with known-answer vectors and randomised differential tests.
:func:`use_fast_paths` switches the module between them at runtime (the
microbenchmark and the differential tests flip it); the switch never
changes accept/reject behaviour, only the algorithm.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CryptoError

# Domain parameters of secp256r1 (FIPS 186-4, D.1.2.3).
P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF
A = P - 3
B = 0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B
N = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551
GX = 0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296
GY = 0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5

COORD_SIZE = 32
SCALAR_SIZE = 32

#: secp256r1 has cofactor 1: the curve group itself has prime order N, so
#: every on-curve point other than infinity generates the full group. The
#: fast validation path relies on this to replace the reference path's
#: order-check scalar multiplication with a (free) mathematical argument.
COFACTOR = 1


@dataclass(frozen=True)
class Point:
    """An affine point on P-256; ``None`` coordinates encode infinity."""

    x: Optional[int]
    y: Optional[int]

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def encode(self) -> bytes:
        """Serialise as an uncompressed SEC1 point (65 bytes)."""
        if self.is_infinity:
            raise CryptoError("cannot encode the point at infinity")
        return (
            b"\x04"
            + self.x.to_bytes(COORD_SIZE, "big")
            + self.y.to_bytes(COORD_SIZE, "big")
        )


INFINITY = Point(None, None)
GENERATOR = Point(GX, GY)


def decode_point(data: bytes) -> Point:
    """Parse an uncompressed SEC1 point and check it lies on the curve.

    Rejections are explicit and distinct: the SEC1 point-at-infinity
    encoding (a single ``0x00`` byte) is never an acceptable public
    value, coordinates must be canonical field elements, and the point
    must satisfy the curve equation.
    """
    if len(data) == 1 and data[0] == 0x00:
        raise CryptoError("point at infinity is not a valid public point")
    if len(data) != 1 + 2 * COORD_SIZE or data[0] != 0x04:
        raise CryptoError("malformed uncompressed point encoding")
    x = int.from_bytes(data[1 : 1 + COORD_SIZE], "big")
    y = int.from_bytes(data[1 + COORD_SIZE :], "big")
    if x >= P or y >= P:
        raise CryptoError("point coordinate is not a canonical field element")
    point = Point(x, y)
    if not is_on_curve(point):
        raise CryptoError("point is not on secp256r1")
    return point


def is_on_curve(point: Point) -> bool:
    """Return True for infinity or any (x, y) satisfying the curve equation."""
    if point.is_infinity:
        return True
    if not (0 <= point.x < P and 0 <= point.y < P):
        return False
    return (point.y * point.y - (point.x**3 + A * point.x + B)) % P == 0


def lift_x(x: int) -> Optional[Point]:
    """Recover a curve point from an x-coordinate, or None off the curve.

    ``P == 3 (mod 4)``, so the square root (when it exists) is a single
    exponentiation; the returned point carries the root the exponent
    produces — callers that need the conjugate negate ``y`` themselves.
    Batch ECDSA verification uses this to rebuild the ``R`` point that
    plain (x-only) signatures discard."""
    if not 0 <= x < P:
        return None
    rhs = (x * x % P * x + A * x + B) % P
    y = pow(rhs, (P + 1) // 4, P)
    if y * y % P != rhs:
        return None
    return Point(x, y)


# Jacobian coordinates: (X, Y, Z) represents the affine point (X/Z^2, Y/Z^3).
# Invariant: every stored coordinate is reduced to [0, P); intermediate
# differences inside the formulas below are deliberately left unreduced
# (they only ever feed a product that is reduced once).
_Jacobian = Tuple[int, int, int]
_J_INFINITY: _Jacobian = (1, 1, 0)


def _to_jacobian(point: Point) -> _Jacobian:
    if point.is_infinity:
        return _J_INFINITY
    return (point.x, point.y, 1)


def _from_jacobian(point: _Jacobian) -> Point:
    x, y, z = point
    if z == 0:
        return INFINITY
    z_inv = pow(z, P - 2, P)
    z_inv2 = z_inv * z_inv % P
    return Point(x * z_inv2 % P, y * z_inv2 * z_inv % P)


def _jacobian_double(point: _Jacobian) -> _Jacobian:
    x, y, z = point
    if z == 0 or y == 0:
        return _J_INFINITY
    ysq = y * y % P
    s = 4 * x * ysq % P
    z2 = z * z % P
    # a = -3 allows the classic (x - z^2)(x + z^2) factorisation of M.
    # The two differences stay unreduced: their product is reduced once.
    m = 3 * (x - z2) * (x + z2) % P
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = 2 * y * z % P
    return (nx, ny, nz)


def _jacobian_add(p: _Jacobian, q: _Jacobian) -> _Jacobian:
    if p[2] == 0:
        return q
    if q[2] == 0:
        return p
    x1, y1, z1 = p
    x2, y2, z2 = q
    z1z1 = z1 * z1 % P
    z2z2 = z2 * z2 % P
    u1 = x1 * z2z2 % P
    u2 = x2 * z1z1 % P
    s1 = y1 * z2z2 * z2 % P
    s2 = y2 * z1z1 * z1 % P
    if u1 == u2:
        if s1 != s2:
            return _J_INFINITY
        return _jacobian_double(p)
    # h and r are differences of reduced values: |h|, |r| < 2P, and each
    # only feeds products that are reduced once — a single final `% P`
    # replaces the per-step reductions of the seed implementation.
    h = u2 - u1
    i = 4 * h * h % P
    j = h * i % P
    r = 2 * (s2 - s1)
    v = u1 * i % P
    nx = (r * r - j - 2 * v) % P
    ny = (r * (v - nx) - 2 * s1 * j) % P
    nz = 2 * h * z1 * z2 % P
    return (nx, ny, nz)


def _jacobian_add_affine(p: _Jacobian, qx: int, qy: int) -> _Jacobian:
    """Mixed addition of a Jacobian point and an affine (z == 1) point.

    The precomputed tables are batch-normalised to affine exactly so the
    hot loops can use this cheaper formula (madd-2007-bl)."""
    x1, y1, z1 = p
    if z1 == 0:
        return (qx, qy, 1)
    z1z1 = z1 * z1 % P
    u2 = qx * z1z1 % P
    s2 = qy * z1z1 * z1 % P
    if u2 == x1:
        if s2 != y1:
            return _J_INFINITY
        return _jacobian_double(p)
    h = u2 - x1
    i = 4 * h * h % P
    j = h * i % P
    r = 2 * (s2 - y1)
    v = x1 * i % P
    nx = (r * r - j - 2 * v) % P
    ny = (r * (v - nx) - 2 * y1 * j) % P
    nz = 2 * h * z1 % P
    return (nx, ny, nz)


def _batch_normalize(points: List[_Jacobian]) -> List[Tuple[int, int]]:
    """Convert many Jacobian points to affine with ONE field inversion.

    Montgomery's trick: invert the product of all z's, then peel per-point
    inverses off with two multiplications each."""
    prefix: List[int] = []
    acc = 1
    for _x, _y, z in points:
        acc = acc * z % P
        prefix.append(acc)
    inv = pow(acc, P - 2, P)
    affine: List[Tuple[int, int]] = [(0, 0)] * len(points)
    for index in range(len(points) - 1, -1, -1):
        x, y, z = points[index]
        z_inv = inv * prefix[index - 1] % P if index else inv
        inv = inv * z % P
        z_inv2 = z_inv * z_inv % P
        affine[index] = (x * z_inv2 % P, y * z_inv2 * z_inv % P)
    return affine


def add(p: Point, q: Point) -> Point:
    """Group addition of two affine points."""
    return _from_jacobian(_jacobian_add(_to_jacobian(p), _to_jacobian(q)))


# --- the retained naive reference path ---------------------------------------


def scalar_mult_naive(k: int, point: Point) -> Point:
    """``k * point`` with left-to-right double-and-add (seed implementation).

    Kept verbatim as the reference oracle: no precomputation, no windows.
    The fast paths below are differentially tested against it."""
    k %= N
    if k == 0 or point.is_infinity:
        return INFINITY
    result = _J_INFINITY
    addend = _to_jacobian(point)
    while k:
        if k & 1:
            result = _jacobian_add(result, addend)
        addend = _jacobian_double(addend)
        k >>= 1
    return _from_jacobian(result)


# --- fast-path switch ---------------------------------------------------------

_fast_paths = True


def use_fast_paths(enabled: bool) -> bool:
    """Select windowed (True) or naive reference (False) arithmetic.

    Returns the previous setting. The switch selects *algorithms* only:
    accept/reject behaviour and every computed point are identical."""
    global _fast_paths
    previous = _fast_paths
    _fast_paths = bool(enabled)
    return previous


def fast_paths_enabled() -> bool:
    return _fast_paths


@contextmanager
def reference_paths() -> Iterator[None]:
    """Run a block on the naive reference implementation."""
    previous = use_fast_paths(False)
    try:
        yield
    finally:
        use_fast_paths(previous)


# --- precomputed tables --------------------------------------------------------

#: Fixed-base comb parameters: 4-bit windows over the 256-bit scalar.
_COMB_WINDOW = 4
_COMB_WINDOWS = (256 + _COMB_WINDOW - 1) // _COMB_WINDOW
#: wNAF width for arbitrary points (per-public-key tables: 8 points).
_WNAF_WIDTH = 5
#: wNAF width for the generator inside Shamir's trick (32 points, global).
_GEN_WNAF_WIDTH = 7
#: Split-wNAF shape: the 256-bit scalar is cut into eight 32-bit chunks,
#: each multiplied against its own precomputed ``2**(32c) * Q`` table on a
#: single shared doubling chain of ~33 steps.
_SPLIT_BITS = 32
_SPLIT_CHUNKS = 256 // _SPLIT_BITS
_SPLIT_MASK = (1 << _SPLIT_BITS) - 1

_tables_lock = threading.Lock()
_comb_table: Optional[List[List[Tuple[int, int]]]] = None
_gen_split_table: Optional[List[List[Tuple[int, int]]]] = None

#: Per-public-key split tables, LRU-bounded so a parade of
#: never-seen-again attesters cannot grow memory without bound.
_KEY_TABLE_CAPACITY = 256
_key_tables: "OrderedDict[Tuple[int, int], List[List[Tuple[int, int]]]]" = \
    OrderedDict()


def _build_comb_table() -> List[List[Tuple[int, int]]]:
    """table[i][j-1] == j * 2**(4*i) * G, all affine (one batch inversion)."""
    rows: List[List[_Jacobian]] = []
    base = _to_jacobian(GENERATOR)
    for _window in range(_COMB_WINDOWS):
        row = [base]
        for _multiple in range(2, 1 << _COMB_WINDOW):
            row.append(_jacobian_add(row[-1], base))
        rows.append(row)
        for _ in range(_COMB_WINDOW):
            base = _jacobian_double(base)
    flat = [point for row in rows for point in row]
    affine = _batch_normalize(flat)
    size = (1 << _COMB_WINDOW) - 1
    return [affine[i * size : (i + 1) * size] for i in range(_COMB_WINDOWS)]


def _odd_multiples_jacobian(base: _Jacobian, width: int) -> List[_Jacobian]:
    """[1P, 3P, 5P, ..., (2**(width-1) - 1)P] in Jacobian coordinates."""
    twice = _jacobian_double(base)
    multiples = [base]
    for _ in range((1 << (width - 2)) - 1):
        multiples.append(_jacobian_add(multiples[-1], twice))
    return multiples


def _odd_multiples_affine(point: Point, width: int) -> List[Tuple[int, int]]:
    """Odd multiples of ``point`` as affine points (one batch inversion)."""
    return _batch_normalize(_odd_multiples_jacobian(_to_jacobian(point),
                                                    width))


def _odd_multiples_affine_many(points: Sequence[Point], width: int
                               ) -> List[List[Tuple[int, int]]]:
    """One-shot odd-multiple tables for many points, ONE batch inversion.

    The batch-verification helper: ``n`` recovered ``R`` points need
    their little wNAF tables, and sharing the inversion keeps the
    amortised setup cost flat in ``n``."""
    flats = [_odd_multiples_jacobian(_to_jacobian(point), width)
             for point in points]
    stride = 1 << (width - 2)
    affine = _batch_normalize([entry for flat in flats for entry in flat])
    return [affine[index * stride: (index + 1) * stride]
            for index in range(len(points))]


def _split_table_jacobian(point: Point, width: int) -> List[_Jacobian]:
    """The flat Jacobian split table of one point (normalisation deferred).

    One doubling ladder walks the eight chunk bases; the caller decides
    how many points share the single batch inversion — one key's worth
    (:func:`_build_split_table`) or a whole batch of keys' worth
    (:func:`precompute_public_keys`)."""
    base = _to_jacobian(point)
    flat: List[_Jacobian] = []
    for chunk in range(_SPLIT_CHUNKS):
        flat.extend(_odd_multiples_jacobian(base, width))
        if chunk + 1 < _SPLIT_CHUNKS:
            for _ in range(_SPLIT_BITS):
                base = _jacobian_double(base)
    return flat


def _chunk_split_table(affine: List[Tuple[int, int]], width: int
                       ) -> List[List[Tuple[int, int]]]:
    size = 1 << (width - 2)
    return [affine[c * size: (c + 1) * size] for c in range(_SPLIT_CHUNKS)]


def _build_split_table(point: Point, width: int
                       ) -> List[List[Tuple[int, int]]]:
    """table[c] == odd multiples of ``2**(32c) * point``, all affine,
    normalised with a single batch inversion."""
    return _chunk_split_table(_batch_normalize(_split_table_jacobian(
        point, width)), width)


def _generator_comb() -> List[List[Tuple[int, int]]]:
    global _comb_table
    table = _comb_table
    if table is None:
        with _tables_lock:
            table = _comb_table
            if table is None:
                table = _build_comb_table()
                _comb_table = table
    return table


def _generator_split() -> List[List[Tuple[int, int]]]:
    global _gen_split_table
    table = _gen_split_table
    if table is None:
        with _tables_lock:
            table = _gen_split_table
            if table is None:
                table = _build_split_table(GENERATOR, _GEN_WNAF_WIDTH)
                _gen_split_table = table
    return table


def warm_generator_tables() -> None:
    """Build the process-wide generator tables now (they are lazy)."""
    _generator_comb()
    _generator_split()


def precompute_public_key(point: Point) -> List[List[Tuple[int, int]]]:
    """Build (or fetch) the cached split table for a public key.

    Idempotent, thread-safe, pure math over public values: the fleet
    gateway calls this *outside* the secure-monitor lock so repeated
    attesters (and concurrent lanes) pay table construction at most once
    and off the critical section."""
    if point.is_infinity:
        raise CryptoError("cannot precompute the point at infinity")
    key = (point.x, point.y)
    with _tables_lock:
        table = _key_tables.get(key)
        if table is not None:
            _key_tables.move_to_end(key)
            return table
    table = _build_split_table(point, _WNAF_WIDTH)
    with _tables_lock:
        _key_tables[key] = table
        _key_tables.move_to_end(key)
        while len(_key_tables) > _KEY_TABLE_CAPACITY:
            _key_tables.popitem(last=False)
    return table


def precompute_public_keys(points: Iterable[Point]) -> int:
    """Build split tables for many public keys at once; returns how many.

    The pipelined form of :func:`precompute_public_key`: the Jacobian
    ladders of every *missing* key are built back to back and then
    normalised with ONE batch inversion across all of them, instead of
    one inversion per key. The gateway's batch tick uses this to overlap
    one lane's table construction with another's — a whole drain of
    first-sight attesters costs a single field inversion."""
    fresh: List[Point] = []
    seen: set = set()
    for point in points:
        if point.is_infinity:
            raise CryptoError("cannot precompute the point at infinity")
        key = (point.x, point.y)
        if key in seen:
            continue
        seen.add(key)
        fresh.append(point)
    with _tables_lock:
        missing = [point for point in fresh
                   if (point.x, point.y) not in _key_tables]
        for point in fresh:
            if (point.x, point.y) in _key_tables:
                _key_tables.move_to_end((point.x, point.y))
    if not missing:
        return 0
    flats = [_split_table_jacobian(point, _WNAF_WIDTH) for point in missing]
    stride = len(flats[0])
    affine = _batch_normalize([entry for flat in flats for entry in flat])
    with _tables_lock:
        for index, point in enumerate(missing):
            table = _chunk_split_table(
                affine[index * stride: (index + 1) * stride], _WNAF_WIDTH)
            _key_tables[(point.x, point.y)] = table
            _key_tables.move_to_end((point.x, point.y))
        while len(_key_tables) > _KEY_TABLE_CAPACITY:
            _key_tables.popitem(last=False)
    return len(missing)


def _cached_key_table(point: Point
                      ) -> Optional[List[List[Tuple[int, int]]]]:
    with _tables_lock:
        table = _key_tables.get((point.x, point.y))
        if table is not None:
            _key_tables.move_to_end((point.x, point.y))
        return table


def clear_key_table_cache() -> None:
    with _tables_lock:
        _key_tables.clear()


def key_table_cache_info() -> Dict[str, int]:
    with _tables_lock:
        return {"entries": len(_key_tables),
                "capacity": _KEY_TABLE_CAPACITY}


def _wnaf_digits(k: int, width: int) -> List[int]:
    """Non-adjacent form, least-significant digit first; digits are odd
    in (-2**(width-1), 2**(width-1)) or zero."""
    digits: List[int] = []
    window = 1 << width
    half = window >> 1
    while k:
        if k & 1:
            digit = k & (window - 1)
            if digit >= half:
                digit -= window
            k -= digit
        else:
            digit = 0
        digits.append(digit)
        k >>= 1
    return digits


# --- fast scalar multiplication -------------------------------------------------


def _wnaf_chain(digit_tables: List[Tuple[List[int], List[Tuple[int, int]]]]
                ) -> _Jacobian:
    """One shared doubling chain over any number of (digits, table) pairs.

    With a single pair this is windowed wNAF multiplication; with two it
    is Shamir's trick. The doubling step is inlined: at ~256 iterations
    per multiplication, the function-call and tuple overhead of
    :func:`_jacobian_double` is a measurable fraction of the whole
    operation in CPython."""
    length = max((len(digits) for digits, _table in digit_tables), default=0)
    x, y, z = 1, 1, 0
    modulus = P
    for position in range(length - 1, -1, -1):
        if z and y:
            # Inline Jacobian doubling (a = -3), identical formulas to
            # _jacobian_double.
            ysq = y * y % modulus
            s = 4 * x * ysq % modulus
            z2 = z * z % modulus
            m = 3 * (x - z2) * (x + z2) % modulus
            nz = 2 * y * z % modulus
            x = (m * m - 2 * s) % modulus
            y = (m * (s - x) - 8 * ysq * ysq) % modulus
            z = nz
        else:
            x, y, z = 1, 1, 0
        for digits, table in digit_tables:
            if position >= len(digits):
                continue
            digit = digits[position]
            if not digit:
                continue
            if digit > 0:
                qx, qy = table[digit >> 1]
            else:
                qx, qy = table[(-digit) >> 1]
                qy = modulus - qy
            x, y, z = _jacobian_add_affine((x, y, z), qx, qy)
    return (x, y, z)


def _split_pairs(k: int, split_table: List[List[Tuple[int, int]]],
                 width: int) -> List[Tuple[List[int], List[Tuple[int, int]]]]:
    """Pair each 32-bit chunk's wNAF digits with its chunk table."""
    pairs = []
    for chunk_table in split_table:
        chunk = k & _SPLIT_MASK
        if chunk:
            pairs.append((_wnaf_digits(chunk, width), chunk_table))
        k >>= _SPLIT_BITS
        if not k and pairs:
            break
    return pairs


def _scalar_mult_windowed(k: int, point: Point) -> Point:
    split = _cached_key_table(point)
    if split is not None:
        # Cached key: eight chunk-wNAFs share one ~33-step doubling chain.
        pairs = _split_pairs(k, split, _WNAF_WIDTH)
    else:
        # One-shot point (e.g. an ephemeral ECDHE peer): the split table
        # would cost more to build than it saves, so use a plain wNAF over
        # a small odd-multiples table on the full 256-step chain.
        table = _odd_multiples_affine(point, _WNAF_WIDTH)
        pairs = [(_wnaf_digits(k, _WNAF_WIDTH), table)]
    return _from_jacobian(_wnaf_chain(pairs))


def _scalar_base_mult_comb(k: int) -> Point:
    table = _generator_comb()
    acc: _Jacobian = (1, 1, 0)
    window = 0
    mask = (1 << _COMB_WINDOW) - 1
    while k:
        digit = k & mask
        if digit:
            qx, qy = table[window][digit - 1]
            acc = _jacobian_add_affine(acc, qx, qy)
        k >>= _COMB_WINDOW
        window += 1
    return _from_jacobian(acc)


def scalar_mult(k: int, point: Point) -> Point:
    """Compute ``k * point`` (wNAF fast path, or the naive reference)."""
    if not _fast_paths:
        return scalar_mult_naive(k, point)
    k %= N
    if k == 0 or point.is_infinity:
        return INFINITY
    return _scalar_mult_windowed(k, point)


def scalar_base_mult(k: int) -> Point:
    """Compute ``k * G`` for the standard generator (fixed-base comb)."""
    if not _fast_paths:
        return scalar_mult_naive(k, GENERATOR)
    k %= N
    if k == 0:
        return INFINITY
    return _scalar_base_mult_comb(k)


#: A multi-scalar term: ``(scalar, point)``; ``None`` stands for the
#: generator (wide global split table), an explicit point rides its
#: cached per-key table or a one-shot odd-multiples table.
MultiScalarTerm = Tuple[int, Optional[Point]]


def multi_scalar_mult(terms: Sequence[MultiScalarTerm],
                      tables: Optional[Sequence[Optional[
                          List[Tuple[int, int]]]]] = None) -> Point:
    """Compute ``sum(k_i * P_i)`` on ONE shared doubling chain (Strauss).

    The n-term generalisation of Shamir's trick: every term's wNAF
    expansion interleaves onto a single inlined doubling chain, so the
    dominant cost — the doublings — is paid once for the whole sum
    instead of once per term. This is the engine of randomised-linear-
    combination batch ECDSA verification (:mod:`repro.crypto.batch`).

    ``tables`` optionally supplies a prebuilt odd-multiples table per
    term (``None`` entries fall through to the cache / one-shot logic),
    letting a batch caller build all one-shot tables with a single
    shared inversion first."""
    if not _fast_paths:
        acc = INFINITY
        for k, point in terms:
            acc = add(acc, scalar_mult_naive(
                k, GENERATOR if point is None else point))
        return acc
    pairs: List[Tuple[List[int], List[Tuple[int, int]]]] = []
    for index, (k, point) in enumerate(terms):
        k %= N
        if not k:
            continue
        if point is None:
            pairs.extend(_split_pairs(k, _generator_split(),
                                      _GEN_WNAF_WIDTH))
            continue
        if point.is_infinity:
            continue
        prebuilt = tables[index] if tables is not None else None
        if prebuilt is not None:
            pairs.append((_wnaf_digits(k, _WNAF_WIDTH), prebuilt))
            continue
        split = _cached_key_table(point)
        if split is not None:
            pairs.extend(_split_pairs(k, split, _WNAF_WIDTH))
        else:
            # Unknown key: a one-shot odd-multiples table on the full
            # chain; the other terms interleave onto the same chain.
            table = _odd_multiples_affine(point, _WNAF_WIDTH)
            pairs.append((_wnaf_digits(k, _WNAF_WIDTH), table))
    if not pairs:
        return INFINITY
    return _from_jacobian(_wnaf_chain(pairs))


def double_scalar_base_mult(u1: int, u2: int, point: Point) -> Point:
    """Compute ``u1*G + u2*point`` jointly (Shamir's trick).

    The single hottest verifier-side operation: ECDSA verification is one
    call of this instead of two full multiplications plus an addition.
    The two-term special case of :func:`multi_scalar_mult`; G uses the
    wide global table, ``point`` its (possibly cached) per-key table."""
    return multi_scalar_mult(((u1, None), (u2, point)))


# --- key validation -------------------------------------------------------------


def validate_private_key(d: int) -> None:
    """Ensure a scalar is a valid private key for this curve."""
    if not 1 <= d < N:
        raise CryptoError("private key out of range [1, n-1]")


def validate_public_key(point: Point) -> None:
    """Full public-key validation (SP 800-56A §5.6.2.3.3).

    Rejects the point at infinity and off-curve points with dedicated
    errors. The subgroup-membership condition is equivalent to the first
    two checks on this curve: secp256r1 has cofactor 1, so the curve
    group has prime order N and *every* valid non-infinity point has
    order exactly N. The reference path still performs the explicit
    order-check multiplication (the seed behaviour); the fast path relies
    on the cofactor argument — same accept/reject set, one scalar
    multiplication cheaper."""
    if point.is_infinity:
        raise CryptoError("public key is the point at infinity")
    if not is_on_curve(point):
        raise CryptoError("public key is not on secp256r1")
    if not _fast_paths:
        if not scalar_mult_naive(N, point).is_infinity:
            raise CryptoError("public key has wrong order")
