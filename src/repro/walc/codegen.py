"""Code generation: typed walc AST -> Wasm binary via the ModuleBuilder."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError
from repro.walc import ast_nodes as ast
from repro.walc.parser import parse
from repro.walc.typecheck import check_program
from repro.wasm import opcodes as op
from repro.wasm.builder import FunctionBuilder, ModuleBuilder
from repro.wasm.types import ValType

# Arithmetic opcode tables keyed by value type.
_ARITH: Dict[Tuple[str, ValType], int] = {
    ("+", ValType.I32): op.I32_ADD, ("-", ValType.I32): op.I32_SUB,
    ("*", ValType.I32): op.I32_MUL, ("/", ValType.I32): op.I32_DIV_S,
    ("%", ValType.I32): op.I32_REM_S,
    ("&", ValType.I32): op.I32_AND, ("|", ValType.I32): op.I32_OR,
    ("^", ValType.I32): op.I32_XOR,
    ("<<", ValType.I32): op.I32_SHL, (">>", ValType.I32): op.I32_SHR_S,
    ("+", ValType.I64): op.I64_ADD, ("-", ValType.I64): op.I64_SUB,
    ("*", ValType.I64): op.I64_MUL, ("/", ValType.I64): op.I64_DIV_S,
    ("%", ValType.I64): op.I64_REM_S,
    ("&", ValType.I64): op.I64_AND, ("|", ValType.I64): op.I64_OR,
    ("^", ValType.I64): op.I64_XOR,
    ("<<", ValType.I64): op.I64_SHL, (">>", ValType.I64): op.I64_SHR_S,
    ("+", ValType.F32): op.F32_ADD, ("-", ValType.F32): op.F32_SUB,
    ("*", ValType.F32): op.F32_MUL, ("/", ValType.F32): op.F32_DIV,
    ("+", ValType.F64): op.F64_ADD, ("-", ValType.F64): op.F64_SUB,
    ("*", ValType.F64): op.F64_MUL, ("/", ValType.F64): op.F64_DIV,
}

_COMPARE: Dict[Tuple[str, ValType], int] = {
    ("==", ValType.I32): op.I32_EQ, ("!=", ValType.I32): op.I32_NE,
    ("<", ValType.I32): op.I32_LT_S, (">", ValType.I32): op.I32_GT_S,
    ("<=", ValType.I32): op.I32_LE_S, (">=", ValType.I32): op.I32_GE_S,
    ("==", ValType.I64): op.I64_EQ, ("!=", ValType.I64): op.I64_NE,
    ("<", ValType.I64): op.I64_LT_S, (">", ValType.I64): op.I64_GT_S,
    ("<=", ValType.I64): op.I64_LE_S, (">=", ValType.I64): op.I64_GE_S,
    ("==", ValType.F32): op.F32_EQ, ("!=", ValType.F32): op.F32_NE,
    ("<", ValType.F32): op.F32_LT, (">", ValType.F32): op.F32_GT,
    ("<=", ValType.F32): op.F32_LE, (">=", ValType.F32): op.F32_GE,
    ("==", ValType.F64): op.F64_EQ, ("!=", ValType.F64): op.F64_NE,
    ("<", ValType.F64): op.F64_LT, (">", ValType.F64): op.F64_GT,
    ("<=", ValType.F64): op.F64_LE, (">=", ValType.F64): op.F64_GE,
}

_CASTS: Dict[Tuple[ValType, ValType], Optional[int]] = {
    (ValType.I32, ValType.I64): op.I64_EXTEND_I32_S,
    (ValType.I32, ValType.F32): op.F32_CONVERT_I32_S,
    (ValType.I32, ValType.F64): op.F64_CONVERT_I32_S,
    (ValType.I64, ValType.I32): op.I32_WRAP_I64,
    (ValType.I64, ValType.F32): op.F32_CONVERT_I64_S,
    (ValType.I64, ValType.F64): op.F64_CONVERT_I64_S,
    (ValType.F32, ValType.I32): op.I32_TRUNC_F32_S,
    (ValType.F32, ValType.I64): op.I64_TRUNC_F32_S,
    (ValType.F32, ValType.F64): op.F64_PROMOTE_F32,
    (ValType.F64, ValType.I32): op.I32_TRUNC_F64_S,
    (ValType.F64, ValType.I64): op.I64_TRUNC_F64_S,
    (ValType.F64, ValType.F32): op.F32_DEMOTE_F64,
}

# Intrinsic name -> sequence of (opcode, needs_offset_immediate).
_SIMPLE_INTRINSICS: Dict[str, int] = {
    "sqrt": op.F64_SQRT, "fabs": op.F64_ABS, "ffloor": op.F64_FLOOR,
    "fceil": op.F64_CEIL, "ftrunc": op.F64_TRUNC,
    "fnearest": op.F64_NEAREST, "fmin": op.F64_MIN, "fmax": op.F64_MAX,
    "copysign": op.F64_COPYSIGN,
    "clz": op.I32_CLZ, "ctz": op.I32_CTZ, "popcnt": op.I32_POPCNT,
    "rotl": op.I32_ROTL, "rotr": op.I32_ROTR,
    "divu": op.I32_DIV_U, "remu": op.I32_REM_U, "shru": op.I32_SHR_U,
    "ltu": op.I32_LT_U, "gtu": op.I32_GT_U,
    "leu": op.I32_LE_U, "geu": op.I32_GE_U,
    "memory_grow": op.MEMORY_GROW,
    "unreachable": op.UNREACHABLE,
}

_LOAD_INTRINSICS: Dict[str, int] = {
    "load_i32": op.I32_LOAD, "load_i64": op.I64_LOAD,
    "load_f32": op.F32_LOAD, "load_f64": op.F64_LOAD,
    "load_u8": op.I32_LOAD8_U, "load_s8": op.I32_LOAD8_S,
    "load_u16": op.I32_LOAD16_U, "load_s16": op.I32_LOAD16_S,
}

_STORE_INTRINSICS: Dict[str, int] = {
    "store_i32": op.I32_STORE, "store_i64": op.I64_STORE,
    "store_f32": op.F32_STORE, "store_f64": op.F64_STORE,
    "store_u8": op.I32_STORE8, "store_u16": op.I32_STORE16,
}


class _LoopContext:
    """Label depths of the enclosing loop for break/continue."""

    __slots__ = ("block_depth", "loop_depth", "step")

    def __init__(self, block_depth: int, loop_depth: int,
                 step: Optional[ast.Node]) -> None:
        self.block_depth = block_depth
        self.loop_depth = loop_depth
        self.step = step


class _FunctionCodegen:
    def __init__(self, generator: "CodeGenerator",
                 function: ast.FuncDef, builder: FunctionBuilder) -> None:
        self.generator = generator
        self.function = function
        self.builder = builder
        self.scopes: List[Dict[str, int]] = [{}]
        self.local_types: List[ValType] = [p.valtype for p in function.params]
        for index, param in enumerate(function.params):
            self.scopes[0][param.name] = index
        # Current number of open Wasm labels (blocks/loops/ifs).
        self.depth = 0
        self.loops: List[_LoopContext] = []

    def _fail(self, node: ast.Node, message: str) -> None:
        raise CompileError(message, node.line)

    def _lookup_local(self, name: str) -> Optional[int]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # -- statements ----------------------------------------------------------------

    def generate(self) -> None:
        for statement in self.function.body:
            self._statement(statement)
        # If the body falls off the end of a value-returning function the
        # type checker guarantees the tail is unreachable; emit an
        # `unreachable` so the stack discipline validates.
        if self.function.result is not None and not _ends_with_return(
                self.function.body):
            self.builder.emit(op.UNREACHABLE)

    def _block(self, body: List[ast.Node]) -> None:
        self.scopes.append({})
        for statement in body:
            self._statement(statement)
        self.scopes.pop()

    def _statement(self, statement: ast.Node) -> None:
        builder = self.builder
        if isinstance(statement, ast.VarDecl):
            index = builder.add_local(statement.valtype)
            self.scopes[-1][statement.name] = index
            self.local_types.append(statement.valtype)
            if statement.init is not None:
                self._expr(statement.init)
                builder.local_set(index)
        elif isinstance(statement, ast.Assign):
            local = self._lookup_local(statement.name)
            self._expr(statement.value)
            if local is not None:
                builder.local_set(local)
            else:
                builder.global_set(self.generator.global_indices[statement.name])
        elif isinstance(statement, ast.If):
            self._expr(statement.condition)
            builder.if_()
            self.depth += 1
            self._block(statement.then_body)
            if statement.else_body:
                builder.else_()
                self._block(statement.else_body)
            builder.end()
            self.depth -= 1
        elif isinstance(statement, ast.While):
            self._while(statement)
        elif isinstance(statement, ast.Break):
            if not self.loops:
                self._fail(statement, "break outside a loop")
            context = self.loops[-1]
            builder.br(self.depth - context.block_depth)
        elif isinstance(statement, ast.Continue):
            if not self.loops:
                self._fail(statement, "continue outside a loop")
            context = self.loops[-1]
            if context.step is not None:
                self._statement(context.step)
            builder.br(self.depth - context.loop_depth)
        elif isinstance(statement, ast.Return):
            if statement.value is not None:
                self._expr(statement.value)
            builder.ret()
        elif isinstance(statement, ast.ExprStmt):
            self._expr(statement.expr)
            valtype = getattr(statement.expr, "valtype", None)
            if isinstance(valtype, ValType):
                builder.emit(op.DROP)
        else:
            self._fail(statement,
                       f"unsupported statement {type(statement).__name__}")

    def _while(self, statement: ast.While) -> None:
        builder = self.builder
        builder.block()
        self.depth += 1
        block_depth = self.depth
        builder.loop()
        self.depth += 1
        loop_depth = self.depth
        # while(cond): exit the block when the condition is false.
        self._expr(statement.condition)
        builder.emit(op.I32_EQZ)
        builder.br_if(self.depth - block_depth)
        self.loops.append(_LoopContext(block_depth, loop_depth,
                                       statement.step))
        self._block(statement.body)
        if statement.step is not None:
            self._statement(statement.step)
        self.loops.pop()
        builder.br(self.depth - loop_depth)  # back edge
        builder.end()
        self.depth -= 1
        builder.end()
        self.depth -= 1

    # -- expressions -----------------------------------------------------------------

    def _expr(self, expr: ast.Node) -> None:
        builder = self.builder
        if isinstance(expr, ast.IntLiteral):
            valtype = expr.valtype  # type: ignore[attr-defined]
            if valtype == ValType.I32:
                builder.i32_const(expr.value)
            elif valtype == ValType.I64:
                builder.i64_const(expr.value)
            elif valtype == ValType.F32:
                builder.f32_const(float(expr.value))
            else:
                builder.f64_const(float(expr.value))
        elif isinstance(expr, ast.FloatLiteral):
            valtype = expr.valtype  # type: ignore[attr-defined]
            if valtype == ValType.F32:
                builder.f32_const(expr.value)
            else:
                builder.f64_const(expr.value)
        elif isinstance(expr, ast.NameRef):
            local = self._lookup_local(expr.name)
            if local is not None:
                builder.local_get(local)
            else:
                builder.global_get(self.generator.global_indices[expr.name])
        elif isinstance(expr, ast.Unary):
            self._unary(expr)
        elif isinstance(expr, ast.Binary):
            self._binary(expr)
        elif isinstance(expr, ast.Cast):
            self._expr(expr.operand)
            source = expr.operand.valtype  # type: ignore[attr-defined]
            if source != expr.target:
                builder.emit(_CASTS[(source, expr.target)])
        elif isinstance(expr, ast.Call):
            self._call(expr)
        else:
            self._fail(expr, f"unsupported expression {type(expr).__name__}")

    def _unary(self, expr: ast.Unary) -> None:
        builder = self.builder
        valtype = expr.valtype  # type: ignore[attr-defined]
        if expr.operator == "-":
            if valtype == ValType.F64:
                self._expr(expr.operand)
                builder.emit(op.F64_NEG)
            elif valtype == ValType.F32:
                self._expr(expr.operand)
                builder.emit(op.F32_NEG)
            elif valtype == ValType.I32:
                builder.i32_const(0)
                self._expr(expr.operand)
                builder.emit(op.I32_SUB)
            else:
                builder.i64_const(0)
                self._expr(expr.operand)
                builder.emit(op.I64_SUB)
        elif expr.operator == "!":
            self._expr(expr.operand)
            builder.emit(op.I32_EQZ)
        else:  # "~"
            self._expr(expr.operand)
            if valtype == ValType.I32:
                builder.i32_const(-1)
                builder.emit(op.I32_XOR)
            else:
                builder.i64_const(-1)
                builder.emit(op.I64_XOR)

    def _binary(self, expr: ast.Binary) -> None:
        builder = self.builder
        operator = expr.operator
        if operator == "&&":
            # lhs && rhs  ==>  if (lhs) { rhs != 0 } else { 0 }
            self._expr(expr.left)
            builder.if_(ValType.I32)
            self.depth += 1
            self._expr(expr.right)
            builder.emit(op.I32_EQZ)
            builder.emit(op.I32_EQZ)
            builder.else_()
            builder.i32_const(0)
            builder.end()
            self.depth -= 1
            return
        if operator == "||":
            self._expr(expr.left)
            builder.if_(ValType.I32)
            self.depth += 1
            builder.i32_const(1)
            builder.else_()
            self._expr(expr.right)
            builder.emit(op.I32_EQZ)
            builder.emit(op.I32_EQZ)
            builder.end()
            self.depth -= 1
            return
        operand_type = expr.left.valtype  # type: ignore[attr-defined]
        self._expr(expr.left)
        self._expr(expr.right)
        opcode = _COMPARE.get((operator, operand_type))
        if opcode is None:
            opcode = _ARITH.get((operator, operand_type))
        if opcode is None:
            self._fail(expr, f"no opcode for {operator} on "
                             f"{operand_type.mnemonic}")
        builder.emit(opcode)

    def _call(self, expr: ast.Call) -> None:
        builder = self.builder
        kind, name = expr.resolved  # type: ignore[attr-defined]
        if kind == "function":
            for argument in expr.args:
                self._expr(argument)
            builder.call(self.generator.func_indices[name])
            return
        # Intrinsics.
        if name in _LOAD_INTRINSICS:
            self._expr(expr.args[0])
            builder.emit(_LOAD_INTRINSICS[name], 0)
            return
        if name in _STORE_INTRINSICS:
            self._expr(expr.args[0])
            self._expr(expr.args[1])
            builder.emit(_STORE_INTRINSICS[name], 0)
            return
        if name == "memory_size":
            builder.emit(op.MEMORY_SIZE)
            return
        for argument in expr.args:
            self._expr(argument)
        builder.emit(_SIMPLE_INTRINSICS[name])


def _ends_with_return(body: List[ast.Node]) -> bool:
    if not body:
        return False
    last = body[-1]
    if isinstance(last, ast.Return):
        return True
    if isinstance(last, ast.If) and last.else_body:
        return (_ends_with_return(last.then_body)
                and _ends_with_return(last.else_body))
    return False


class CodeGenerator:
    """Drives module-level code generation."""

    DEFAULT_MIN_PAGES = 2

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.builder = ModuleBuilder()
        self.func_indices: Dict[str, int] = {}
        self.global_indices: Dict[str, int] = {}

    def generate(self) -> bytes:
        builder = self.builder
        for imported in self.program.imports:
            type_index = builder.add_type(
                imported.params,
                [imported.result] if imported.result else [],
            )
            index = builder.import_function(
                imported.module, imported.name, type_index
            )
            self.func_indices[imported.name] = index

        memory = self.program.memory
        if memory is not None:
            builder.add_memory(memory.min_pages, memory.max_pages)
        else:
            builder.add_memory(self.DEFAULT_MIN_PAGES)
        builder.export_memory("memory")

        for segment in self.program.data:
            builder.add_data(segment.offset, segment.payload)

        for position, global_decl in enumerate(self.program.globals):
            builder.add_global(global_decl.valtype, True, global_decl.init)
            self.global_indices[global_decl.name] = position

        function_builders = []
        for function in self.program.functions:
            type_index = builder.add_type(
                [p.valtype for p in function.params],
                [function.result] if function.result else [],
            )
            fn_builder = builder.add_function(type_index)
            self.func_indices[function.name] = fn_builder.index
            function_builders.append(fn_builder)
            if function.exported:
                builder.export_function(function.name, fn_builder.index)

        for function, fn_builder in zip(self.program.functions,
                                        function_builders):
            _FunctionCodegen(self, function, fn_builder).generate()

        return builder.build()


def compile_source(source: str) -> bytes:
    """Compile walc source text to a Wasm binary."""
    program = parse(source)
    check_program(program)
    return CodeGenerator(program).generate()
