"""Type checker for walc.

Annotates every expression node with ``.valtype`` and every call with its
resolved target, enforcing the explicit-cast discipline of the language.
Integer and float literals are *flexible*: they adapt to the type of the
other operand or the assignment/parameter context, so loop counters of
type i64 do not force ``L`` suffixes everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import TypeCheckError
from repro.walc import ast_nodes as ast
from repro.wasm.types import ValType

# Intrinsics: name -> (param types, result type).
INTRINSICS: Dict[str, Tuple[Tuple[ValType, ...], Optional[ValType]]] = {
    "load_i32": ((ValType.I32,), ValType.I32),
    "load_i64": ((ValType.I32,), ValType.I64),
    "load_f32": ((ValType.I32,), ValType.F32),
    "load_f64": ((ValType.I32,), ValType.F64),
    "load_u8": ((ValType.I32,), ValType.I32),
    "load_s8": ((ValType.I32,), ValType.I32),
    "load_u16": ((ValType.I32,), ValType.I32),
    "load_s16": ((ValType.I32,), ValType.I32),
    "store_i32": ((ValType.I32, ValType.I32), None),
    "store_i64": ((ValType.I32, ValType.I64), None),
    "store_f32": ((ValType.I32, ValType.F32), None),
    "store_f64": ((ValType.I32, ValType.F64), None),
    "store_u8": ((ValType.I32, ValType.I32), None),
    "store_u16": ((ValType.I32, ValType.I32), None),
    "memory_size": ((), ValType.I32),
    "memory_grow": ((ValType.I32,), ValType.I32),
    "sqrt": ((ValType.F64,), ValType.F64),
    "fabs": ((ValType.F64,), ValType.F64),
    "ffloor": ((ValType.F64,), ValType.F64),
    "fceil": ((ValType.F64,), ValType.F64),
    "ftrunc": ((ValType.F64,), ValType.F64),
    "fnearest": ((ValType.F64,), ValType.F64),
    "fmin": ((ValType.F64, ValType.F64), ValType.F64),
    "fmax": ((ValType.F64, ValType.F64), ValType.F64),
    "copysign": ((ValType.F64, ValType.F64), ValType.F64),
    "clz": ((ValType.I32,), ValType.I32),
    "ctz": ((ValType.I32,), ValType.I32),
    "popcnt": ((ValType.I32,), ValType.I32),
    "rotl": ((ValType.I32, ValType.I32), ValType.I32),
    "rotr": ((ValType.I32, ValType.I32), ValType.I32),
    "divu": ((ValType.I32, ValType.I32), ValType.I32),
    "remu": ((ValType.I32, ValType.I32), ValType.I32),
    "shru": ((ValType.I32, ValType.I32), ValType.I32),
    "ltu": ((ValType.I32, ValType.I32), ValType.I32),
    "gtu": ((ValType.I32, ValType.I32), ValType.I32),
    "leu": ((ValType.I32, ValType.I32), ValType.I32),
    "geu": ((ValType.I32, ValType.I32), ValType.I32),
    "unreachable": ((), None),
}

_ARITH_OPS = {"+", "-", "*", "/"}
_INT_OPS = {"%", "&", "|", "^", "<<", ">>"}
_CMP_OPS = {"==", "!=", "<", ">", "<=", ">="}
_LOGIC_OPS = {"&&", "||"}


@dataclass
class FuncSignature:
    params: Tuple[ValType, ...]
    result: Optional[ValType]
    is_import: bool


class TypeChecker:
    """Checks one program and annotates its AST in place."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.functions: Dict[str, FuncSignature] = {}
        self.globals: Dict[str, ValType] = {}
        self.scopes: List[Dict[str, ValType]] = []
        self.current_result: Optional[ValType] = None

    def _fail(self, node: ast.Node, message: str) -> None:
        raise TypeCheckError(message, node.line)

    # -- program --------------------------------------------------------------

    def check(self) -> None:
        for imported in self.program.imports:
            self._declare_function(
                imported, imported.name,
                FuncSignature(tuple(imported.params), imported.result, True),
            )
        for function in self.program.functions:
            self._declare_function(
                function, function.name,
                FuncSignature(
                    tuple(p.valtype for p in function.params),
                    function.result, False,
                ),
            )
        for global_decl in self.program.globals:
            if global_decl.name in self.globals:
                self._fail(global_decl,
                           f"duplicate global {global_decl.name!r}")
            self.globals[global_decl.name] = global_decl.valtype
        for function in self.program.functions:
            self._check_function(function)

    def _declare_function(self, node: ast.Node, name: str,
                          signature: FuncSignature) -> None:
        if name in self.functions or name in INTRINSICS:
            self._fail(node, f"duplicate function {name!r}")
        self.functions[name] = signature

    # -- functions --------------------------------------------------------------

    def _check_function(self, function: ast.FuncDef) -> None:
        self.current_result = function.result
        self.scopes = [{}]
        for param in function.params:
            if param.name in self.scopes[0]:
                self._fail(param, f"duplicate parameter {param.name!r}")
            self.scopes[0][param.name] = param.valtype
        self._check_block(function.body)
        if function.result is not None and not _terminates(function.body):
            self._fail(function,
                       f"function {function.name!r} must end with a return "
                       "on every path")
        self.scopes = []

    def _lookup(self, node: ast.Node, name: str) -> ValType:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        if name in self.globals:
            return self.globals[name]
        self._fail(node, f"unknown variable {name!r}")

    # -- statements ----------------------------------------------------------------

    def _check_block(self, body: List[ast.Node]) -> None:
        self.scopes.append({})
        for statement in body:
            self._check_statement(statement)
        self.scopes.pop()

    def _check_statement(self, statement: ast.Node) -> None:
        if isinstance(statement, ast.VarDecl):
            if statement.name in self.scopes[-1]:
                self._fail(statement,
                           f"duplicate variable {statement.name!r}")
            if statement.init is not None:
                self._check_expr(statement.init, statement.valtype)
            self.scopes[-1][statement.name] = statement.valtype
        elif isinstance(statement, ast.Assign):
            target = self._lookup(statement, statement.name)
            self._check_expr(statement.value, target)
        elif isinstance(statement, ast.If):
            self._require_i32(statement.condition)
            self._check_block(statement.then_body)
            self._check_block(statement.else_body)
        elif isinstance(statement, ast.While):
            self._require_i32(statement.condition)
            # The step shares the loop body's enclosing scope so it can see
            # variables from the `for` initialiser.
            self.scopes.append({})
            for inner in statement.body:
                self._check_statement(inner)
            if statement.step is not None:
                self._check_statement(statement.step)
            self.scopes.pop()
        elif isinstance(statement, (ast.Break, ast.Continue)):
            pass  # loop nesting is validated by codegen
        elif isinstance(statement, ast.Return):
            if self.current_result is None:
                if statement.value is not None:
                    self._fail(statement, "void function returns a value")
            else:
                if statement.value is None:
                    self._fail(statement, "missing return value")
                self._check_expr(statement.value, self.current_result)
        elif isinstance(statement, ast.ExprStmt):
            self._check_expr(statement.expr, None)
        else:
            self._fail(statement,
                       f"unsupported statement {type(statement).__name__}")

    def _require_i32(self, expr: ast.Node) -> None:
        valtype = self._check_expr(expr, ValType.I32)
        if valtype != ValType.I32:
            self._fail(expr, "condition must be i32")

    # -- expressions -----------------------------------------------------------------

    def _check_expr(self, expr: ast.Node,
                    expected: Optional[ValType]) -> ValType:
        valtype = self._infer(expr, expected)
        expr.valtype = valtype  # type: ignore[attr-defined]
        if expected is not None and valtype != expected:
            self._fail(expr,
                       f"expected {expected.mnemonic}, found {valtype.mnemonic}"
                       " (use an explicit `as` cast)")
        return valtype

    def _infer(self, expr: ast.Node,
               expected: Optional[ValType]) -> ValType:
        if isinstance(expr, ast.IntLiteral):
            if expr.forced_type is not None:
                return expr.forced_type
            if expected is not None:
                return expected
            return ValType.I32
        if isinstance(expr, ast.FloatLiteral):
            if expr.forced_type is not None:
                return expr.forced_type
            if expected in (ValType.F32, ValType.F64):
                return expected
            return ValType.F64
        if isinstance(expr, ast.NameRef):
            return self._lookup(expr, expr.name)
        if isinstance(expr, ast.Unary):
            return self._infer_unary(expr, expected)
        if isinstance(expr, ast.Binary):
            return self._infer_binary(expr, expected)
        if isinstance(expr, ast.Cast):
            self._check_expr(expr.operand, None)
            return expr.target
        if isinstance(expr, ast.Call):
            return self._infer_call(expr)
        self._fail(expr, f"unsupported expression {type(expr).__name__}")

    def _infer_unary(self, expr: ast.Unary,
                     expected: Optional[ValType]) -> ValType:
        if expr.operator == "-":
            return self._check_expr(expr.operand, expected)
        if expr.operator == "!":
            return self._check_expr(expr.operand, ValType.I32)
        # "~" bitwise not
        valtype = self._check_expr(
            expr.operand,
            expected if expected in (ValType.I32, ValType.I64) else None,
        )
        if not valtype.is_integer:
            self._fail(expr, "~ requires an integer operand")
        return valtype

    def _infer_binary(self, expr: ast.Binary,
                      expected: Optional[ValType]) -> ValType:
        operator = expr.operator
        if operator in _LOGIC_OPS:
            self._require_i32(expr.left)
            self._require_i32(expr.right)
            return ValType.I32

        operand_expected = expected if operator in _ARITH_OPS | _INT_OPS else None
        # Flexible literals adapt to the concrete operand: check the
        # non-literal side first.
        if _is_flexible(expr.left) and not _is_flexible(expr.right):
            right = self._check_expr(expr.right, operand_expected)
            left = self._check_expr(expr.left, right)
        else:
            left = self._check_expr(expr.left, operand_expected)
            right = self._check_expr(expr.right, left)
        if left != right:
            self._fail(expr,
                       f"operand types differ: {left.mnemonic} vs "
                       f"{right.mnemonic}")

        if operator in _CMP_OPS:
            return ValType.I32
        if operator in _INT_OPS and not left.is_integer:
            self._fail(expr, f"{operator} requires integer operands")
        return left

    def _infer_call(self, expr: ast.Call) -> ValType:
        if expr.callee in INTRINSICS:
            params, result = INTRINSICS[expr.callee]
            expr.resolved = ("intrinsic", expr.callee)  # type: ignore
        elif expr.callee in self.functions:
            signature = self.functions[expr.callee]
            params, result = signature.params, signature.result
            expr.resolved = ("function", expr.callee)  # type: ignore
        else:
            self._fail(expr, f"unknown function {expr.callee!r}")
        if len(expr.args) != len(params):
            self._fail(expr,
                       f"{expr.callee} expects {len(params)} arguments, "
                       f"got {len(expr.args)}")
        for argument, param_type in zip(expr.args, params):
            self._check_expr(argument, param_type)
        if result is None:
            # Void calls are only legal as expression statements; using one
            # as a value fails the caller's expected-type comparison.
            return _VOID
        return result


class _VoidType:
    mnemonic = "void"

    def __bool__(self) -> bool:
        return False


_VOID = _VoidType()


def _is_flexible(expr: ast.Node) -> bool:
    if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral)):
        return expr.forced_type is None
    if isinstance(expr, ast.Unary) and expr.operator == "-":
        return _is_flexible(expr.operand)
    return False


def _terminates(body: List[ast.Node]) -> bool:
    """Conservative: does every path through ``body`` return?"""
    for statement in body:
        if isinstance(statement, ast.Return):
            return True
        if isinstance(statement, ast.If):
            if (statement.else_body
                    and _terminates(statement.then_body)
                    and _terminates(statement.else_body)):
                return True
        if isinstance(statement, ast.ExprStmt) \
                and isinstance(statement.expr, ast.Call) \
                and statement.expr.callee == "unreachable":
            return True
    return False


def check_program(program: ast.Program) -> None:
    """Type-check and annotate ``program`` in place."""
    TypeChecker(program).check()
