"""Tokeniser for the walc language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import LexError

KEYWORDS = {
    "fn", "var", "if", "else", "while", "for", "break", "continue", "data",
    "return", "export", "import", "memory", "as",
    "i32", "i64", "f32", "f64",
}

# Multi-character operators, longest first.
_OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", ",", ";", ":", ".",
]


@dataclass(frozen=True)
class Token:
    kind: str  # "int" | "float" | "name" | "keyword" | "op" | "eof"
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> List[Token]:
    """Tokenise walc source; raises :class:`LexError` on bad input."""
    tokens: List[Token] = []
    line = 1
    column = 1
    position = 0
    size = len(source)

    while position < size:
        char = source[position]
        if char == "\n":
            line += 1
            column = 1
            position += 1
            continue
        if char in " \t\r":
            position += 1
            column += 1
            continue
        if source.startswith("//", position):
            end = source.find("\n", position)
            position = size if end == -1 else end
            continue
        if source.startswith("/*", position):
            end = source.find("*/", position + 2)
            if end == -1:
                raise LexError("unterminated block comment", line, column)
            skipped = source[position : end + 2]
            line += skipped.count("\n")
            position = end + 2
            continue

        if char.isdigit() or (char == "." and position + 1 < size
                              and source[position + 1].isdigit()):
            token, position = _lex_number(source, position, line, column)
            column += len(token.text)
            tokens.append(token)
            continue

        if char.isalpha() or char == "_":
            start = position
            while position < size and (source[position].isalnum()
                                       or source[position] == "_"):
                position += 1
            text = source[start:position]
            kind = "keyword" if text in KEYWORDS else "name"
            tokens.append(Token(kind, text, line, column))
            column += len(text)
            continue

        for operator in _OPERATORS:
            if source.startswith(operator, position):
                tokens.append(Token("op", operator, line, column))
                position += len(operator)
                column += len(operator)
                break
        else:
            raise LexError(f"unexpected character {char!r}", line, column)

    tokens.append(Token("eof", "", line, column))
    return tokens


def _lex_number(source: str, position: int, line: int, column: int):
    start = position
    size = len(source)
    if source.startswith("0x", position) or source.startswith("0X", position):
        position += 2
        while position < size and (source[position] in "0123456789abcdefABCDEF_"):
            position += 1
        text = source[start:position]
        return Token("int", text, line, column), position

    is_float = False
    while position < size and source[position].isdigit():
        position += 1
    if position < size and source[position] == "." and (
            position + 1 >= size or source[position + 1] != "."):
        is_float = True
        position += 1
        while position < size and source[position].isdigit():
            position += 1
    if position < size and source[position] in "eE":
        lookahead = position + 1
        if lookahead < size and source[lookahead] in "+-":
            lookahead += 1
        if lookahead < size and source[lookahead].isdigit():
            is_float = True
            position = lookahead
            while position < size and source[position].isdigit():
                position += 1
    # Suffixes: l/L forces i64, f/F forces f32.
    if position < size and source[position] in "lL":
        if is_float:
            raise LexError("l suffix on a float literal", line, column)
        position += 1
    elif position < size and source[position] in "fF":
        is_float = True
        position += 1

    text = source[start:position]
    return Token("float" if is_float else "int", text, line, column), position
