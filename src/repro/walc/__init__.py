"""walc: a small C-like language compiled to WebAssembly.

Stands in for the WASI-SDK/Clang toolchain the paper uses to compile its
workloads; all benchmark kernels in this repo (PolyBench, the database
engine core, the neural network) are authored in walc and executed as
genuine Wasm modules.
"""

from repro.walc.codegen import compile_source
from repro.walc.parser import parse
from repro.walc.typecheck import check_program

__all__ = ["compile_source", "parse", "check_program"]
