"""Abstract syntax tree of the walc language.

walc ("WaTZ ahead-of-time language compiler") is the small C-like language
this repo uses to author the paper's workloads as genuine Wasm modules,
standing in for WASI-SDK/Clang which are unavailable offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.wasm.types import ValType


@dataclass
class Node:
    line: int = 0


# --- expressions -----------------------------------------------------------


@dataclass
class IntLiteral(Node):
    value: int = 0
    forced_type: Optional[ValType] = None  # via l/L suffix


@dataclass
class FloatLiteral(Node):
    value: float = 0.0
    forced_type: Optional[ValType] = None  # via f/F suffix


@dataclass
class NameRef(Node):
    name: str = ""


@dataclass
class Unary(Node):
    operator: str = ""
    operand: Node = None


@dataclass
class Binary(Node):
    operator: str = ""
    left: Node = None
    right: Node = None


@dataclass
class Cast(Node):
    operand: Node = None
    target: ValType = ValType.I32


@dataclass
class Call(Node):
    callee: str = ""
    args: List[Node] = field(default_factory=list)


# --- statements --------------------------------------------------------------


@dataclass
class VarDecl(Node):
    name: str = ""
    valtype: ValType = ValType.I32
    init: Optional[Node] = None


@dataclass
class Assign(Node):
    name: str = ""
    value: Node = None


@dataclass
class If(Node):
    condition: Node = None
    then_body: List[Node] = field(default_factory=list)
    else_body: List[Node] = field(default_factory=list)


@dataclass
class While(Node):
    condition: Node = None
    body: List[Node] = field(default_factory=list)
    # ``for``-loop step statement, run before every back edge (also after
    # ``continue``); None for plain while loops.
    step: Optional[Node] = None


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


@dataclass
class Return(Node):
    value: Optional[Node] = None


@dataclass
class ExprStmt(Node):
    expr: Node = None


# --- top level ----------------------------------------------------------------


@dataclass
class Param(Node):
    name: str = ""
    valtype: ValType = ValType.I32


@dataclass
class FuncDef(Node):
    name: str = ""
    params: List[Param] = field(default_factory=list)
    result: Optional[ValType] = None
    body: List[Node] = field(default_factory=list)
    exported: bool = False


@dataclass
class ImportDecl(Node):
    module: str = ""
    name: str = ""
    params: List[ValType] = field(default_factory=list)
    result: Optional[ValType] = None


@dataclass
class GlobalDecl(Node):
    name: str = ""
    valtype: ValType = ValType.I32
    init: Union[int, float] = 0


@dataclass
class DataDecl(Node):
    offset: int = 0
    payload: bytes = b""


@dataclass
class MemoryDecl(Node):
    min_pages: int = 1
    max_pages: Optional[int] = None


@dataclass
class Program(Node):
    imports: List[ImportDecl] = field(default_factory=list)
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)
    data: List[DataDecl] = field(default_factory=list)
    memory: Optional[MemoryDecl] = None
