"""Recursive-descent parser for walc.

Grammar sketch (statements end with ``;``, blocks use braces)::

    program   := (import | global | memory | function)*
    import    := "import" "fn" name "." name "(" params? ")" ("->" type)? ";"
    memory    := "memory" INT ("max" INT)? ";"        -- max via plain name
    global    := "var" name ":" type "=" literal ";"
    function  := "export"? "fn" name "(" params? ")" ("->" type)? block
    stmt      := var | assign | if | while | for | break | continue
               | return | exprstmt
    for       := "for" "(" simple? ";" expr? ";" simple? ")" block

Expressions use precedence climbing with C-like precedence; ``expr as
type`` casts explicitly; ``&&``/``||`` short-circuit.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.walc import ast_nodes as ast
from repro.walc.lexer import Token, tokenize
from repro.wasm.types import ValType

_TYPES = {
    "i32": ValType.I32,
    "i64": ValType.I64,
    "f32": ValType.F32,
    "f64": ValType.F64,
}

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_CAST_PRECEDENCE = 11


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.position = 0

    # -- token plumbing ---------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def _fail(self, message: str) -> None:
        token = self.current
        raise ParseError(f"{message}, found {token.text!r}",
                         token.line, token.column)

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.current
        if token.kind != kind or (text is not None and token.text != text):
            self._fail(f"expected {text or kind}")
        return self._advance()

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.current
        if token.kind == kind and (text is None or token.text == text):
            return self._advance()
        return None

    def _type(self) -> ValType:
        token = self.current
        if token.kind == "keyword" and token.text in _TYPES:
            self._advance()
            return _TYPES[token.text]
        self._fail("expected a type")

    # -- top level ---------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self.current.kind != "eof":
            if self._accept("keyword", "import"):
                program.imports.append(self._import_decl())
            elif self._accept("keyword", "memory"):
                program.memory = self._memory_decl()
            elif self._accept("keyword", "data"):
                program.data.append(self._data_decl())
            elif self.current.kind == "keyword" and self.current.text == "var":
                program.globals.append(self._global_decl())
            elif self.current.kind == "keyword" and self.current.text in (
                    "fn", "export"):
                program.functions.append(self._function())
            else:
                self._fail("expected a top-level declaration")
        return program

    def _import_decl(self) -> ast.ImportDecl:
        line = self.current.line
        self._expect("keyword", "fn")
        module = self._expect("name").text
        self._expect("op", ".")
        name = self._expect("name").text
        self._expect("op", "(")
        params: List[ValType] = []
        if not self._accept("op", ")"):
            while True:
                # Parameter names are optional in imports.
                if self.current.kind == "name":
                    self._advance()
                    self._expect("op", ":")
                params.append(self._type())
                if self._accept("op", ")"):
                    break
                self._expect("op", ",")
        result = None
        if self._accept("op", "->"):
            result = self._type()
        self._expect("op", ";")
        return ast.ImportDecl(line=line, module=module, name=name,
                              params=params, result=result)

    def _memory_decl(self) -> ast.MemoryDecl:
        line = self.current.line
        min_pages = int(self._expect("int").text, 0)
        max_pages = None
        if self.current.kind == "name" and self.current.text == "max":
            self._advance()
            max_pages = int(self._expect("int").text, 0)
        self._expect("op", ";")
        return ast.MemoryDecl(line=line, min_pages=min_pages,
                              max_pages=max_pages)

    def _data_decl(self) -> ast.DataDecl:
        """``data OFFSET [byte, byte, ...];`` — an initialised data segment."""
        line = self.current.line
        offset = int(self._expect("int").text, 0)
        payload = bytearray()
        # A bracketed list of byte literals; brackets are spelled with
        # the generic operator tokens '[' ']'... the lexer has no brackets,
        # so the list uses parentheses instead: data 64 (1, 2, 0xff);
        self._expect("op", "(")
        if not self._accept("op", ")"):
            while True:
                value = int(self._expect("int").text, 0)
                if not 0 <= value <= 255:
                    self._fail("data bytes must be in [0, 255]")
                payload.append(value)
                if self._accept("op", ")"):
                    break
                self._expect("op", ",")
        self._expect("op", ";")
        return ast.DataDecl(line=line, offset=offset, payload=bytes(payload))

    def _global_decl(self) -> ast.GlobalDecl:
        line = self.current.line
        self._expect("keyword", "var")
        name = self._expect("name").text
        self._expect("op", ":")
        valtype = self._type()
        self._expect("op", "=")
        negative = bool(self._accept("op", "-"))
        token = self.current
        if token.kind == "int":
            self._advance()
            value = int(token.text.rstrip("lL"), 0)
        elif token.kind == "float":
            self._advance()
            value = float(token.text.rstrip("fF"))
        else:
            self._fail("global initialiser must be a literal")
        if negative:
            value = -value
        self._expect("op", ";")
        if valtype.is_integer:
            value = int(value)
        else:
            value = float(value)
        return ast.GlobalDecl(line=line, name=name, valtype=valtype,
                              init=value)

    def _function(self) -> ast.FuncDef:
        line = self.current.line
        exported = bool(self._accept("keyword", "export"))
        self._expect("keyword", "fn")
        name = self._expect("name").text
        self._expect("op", "(")
        params: List[ast.Param] = []
        if not self._accept("op", ")"):
            while True:
                param_name = self._expect("name").text
                self._expect("op", ":")
                params.append(ast.Param(name=param_name, valtype=self._type()))
                if self._accept("op", ")"):
                    break
                self._expect("op", ",")
        result = None
        if self._accept("op", "->"):
            result = self._type()
        body = self._block()
        return ast.FuncDef(line=line, name=name, params=params,
                           result=result, body=body, exported=exported)

    # -- statements ----------------------------------------------------------------

    def _block(self) -> List[ast.Node]:
        self._expect("op", "{")
        statements: List[ast.Node] = []
        while not self._accept("op", "}"):
            statements.append(self._statement())
        return statements

    def _statement(self) -> ast.Node:
        token = self.current
        if token.kind == "keyword":
            if token.text == "var":
                return self._var_decl()
            if token.text == "if":
                return self._if()
            if token.text == "while":
                return self._while()
            if token.text == "for":
                return self._for()
            if token.text == "break":
                self._advance()
                self._expect("op", ";")
                return ast.Break(line=token.line)
            if token.text == "continue":
                self._advance()
                self._expect("op", ";")
                return ast.Continue(line=token.line)
            if token.text == "return":
                self._advance()
                value = None
                if not self._accept("op", ";"):
                    value = self._expression()
                    self._expect("op", ";")
                return ast.Return(line=token.line, value=value)
        statement = self._simple_statement()
        self._expect("op", ";")
        return statement

    def _simple_statement(self) -> ast.Node:
        """An assignment or expression statement (no trailing ``;``)."""
        token = self.current
        if token.kind == "name" and self.tokens[self.position + 1].text == "=" \
                and self.tokens[self.position + 1].kind == "op":
            name = self._advance().text
            self._expect("op", "=")
            value = self._expression()
            return ast.Assign(line=token.line, name=name, value=value)
        expr = self._expression()
        return ast.ExprStmt(line=token.line, expr=expr)

    def _var_decl(self) -> ast.VarDecl:
        line = self.current.line
        self._expect("keyword", "var")
        name = self._expect("name").text
        self._expect("op", ":")
        valtype = self._type()
        init = None
        if self._accept("op", "="):
            init = self._expression()
        self._expect("op", ";")
        return ast.VarDecl(line=line, name=name, valtype=valtype, init=init)

    def _if(self) -> ast.If:
        line = self.current.line
        self._expect("keyword", "if")
        self._expect("op", "(")
        condition = self._expression()
        self._expect("op", ")")
        then_body = self._block()
        else_body: List[ast.Node] = []
        if self._accept("keyword", "else"):
            if self.current.kind == "keyword" and self.current.text == "if":
                else_body = [self._if()]
            else:
                else_body = self._block()
        return ast.If(line=line, condition=condition,
                      then_body=then_body, else_body=else_body)

    def _while(self) -> ast.While:
        line = self.current.line
        self._expect("keyword", "while")
        self._expect("op", "(")
        condition = self._expression()
        self._expect("op", ")")
        body = self._block()
        return ast.While(line=line, condition=condition, body=body)

    def _for(self) -> ast.Node:
        """Desugar ``for (init; cond; step) { body }`` into while."""
        line = self.current.line
        self._expect("keyword", "for")
        self._expect("op", "(")
        init: Optional[ast.Node] = None
        if not self._accept("op", ";"):
            if self.current.kind == "keyword" and self.current.text == "var":
                init = self._var_decl()  # consumes the ';'
            else:
                init = self._simple_statement()
                self._expect("op", ";")
        condition: ast.Node = ast.IntLiteral(line=line, value=1)
        if not self._accept("op", ";"):
            condition = self._expression()
            self._expect("op", ";")
        step: Optional[ast.Node] = None
        if not self._accept("op", ")"):
            step = self._simple_statement()
            self._expect("op", ")")
        body = self._block()
        loop = ast.While(line=line, condition=condition, body=body, step=step)
        if init is None:
            return loop
        wrapper = ast.If(line=line, condition=ast.IntLiteral(line=line, value=1),
                         then_body=[init, loop], else_body=[])
        return wrapper

    # -- expressions -----------------------------------------------------------------

    def _expression(self, min_precedence: int = 1) -> ast.Node:
        left = self._unary()
        while True:
            token = self.current
            if token.kind == "keyword" and token.text == "as" \
                    and _CAST_PRECEDENCE >= min_precedence:
                self._advance()
                left = ast.Cast(line=token.line, operand=left,
                                target=self._type())
                continue
            if token.kind != "op":
                return left
            precedence = _PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                return left
            self._advance()
            right = self._expression(precedence + 1)
            left = ast.Binary(line=token.line, operator=token.text,
                              left=left, right=right)

    def _unary(self) -> ast.Node:
        token = self.current
        if token.kind == "op" and token.text in ("-", "!", "~"):
            self._advance()
            operand = self._unary()
            return ast.Unary(line=token.line, operator=token.text,
                             operand=operand)
        return self._primary()

    def _primary(self) -> ast.Node:
        token = self.current
        if token.kind == "int":
            self._advance()
            text = token.text
            forced = None
            if text[-1] in "lL":
                forced = ValType.I64
                text = text[:-1]
            return ast.IntLiteral(line=token.line, value=int(text, 0),
                                  forced_type=forced)
        if token.kind == "float":
            self._advance()
            text = token.text
            forced = None
            if text[-1] in "fF":
                forced = ValType.F32
                text = text[:-1]
            return ast.FloatLiteral(line=token.line, value=float(text),
                                    forced_type=forced)
        if token.kind == "name":
            self._advance()
            if self._accept("op", "("):
                args: List[ast.Node] = []
                if not self._accept("op", ")"):
                    while True:
                        args.append(self._expression())
                        if self._accept("op", ")"):
                            break
                        self._expect("op", ",")
                return ast.Call(line=token.line, callee=token.text, args=args)
            return ast.NameRef(line=token.line, name=token.text)
        if token.kind == "op" and token.text == "(":
            self._advance()
            expr = self._expression()
            self._expect("op", ")")
            return expr
        self._fail("expected an expression")


def parse(source: str) -> ast.Program:
    """Parse walc source text into an AST."""
    return Parser(source).parse_program()
