"""The appraisal engine: codec registry + compiled policy + audit trail.

One engine object is what a relying party actually holds: it decodes
self-describing evidence envelopes through the pluggable codec registry,
appraises the resulting view against the compiled declarative policy,
and records every decision — accepts and denies alike — in the
append-only audit log. The verifier and the fleet shards consume it
through three calls: :meth:`decode`, :meth:`appraise`, :meth:`record`.

The engine's policy is live state: the revocation killswitch mutates it
(:meth:`revoke_measurement` / :meth:`revoke_identity`), which bumps the
policy epoch and therefore the fingerprint. The evaluator recompiles
lazily on the next use, and every fingerprint-scoped consumer — the
per-shard appraisal caches, the resumption tickets they minted —
invalidates on its next message without any eager fan-out call.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Optional

from repro.appraisal.audit import AuditLog
from repro.appraisal.envelope import (
    CodecRegistry,
    decode_envelope,
    default_registry,
    tee_name,
)
from repro.appraisal.policy import (
    AppraisalPolicy,
    PolicyEvaluator,
    Reason,
    Verdict,
)
from repro.errors import EnvelopeError

#: Audit tag for evidence denied before its backend could be identified.
TEE_UNKNOWN = 0x00


class AppraisalEngine:
    """Decode, appraise and audit multi-TEE evidence."""

    def __init__(self, policy: AppraisalPolicy,
                 registry: Optional[CodecRegistry] = None,
                 audit: Optional[AuditLog] = None,
                 tracer=None) -> None:
        self.policy = policy
        self.registry = registry or default_registry()
        self.audit = audit or AuditLog()
        #: Optional :class:`repro.obs.tracer.Tracer`; attached by the
        #: fleet so codec decodes and policy evaluations show up as
        #: ``appraisal.*`` spans next to the ``crypto.*`` ones.
        self.tracer = tracer
        self._evaluator: PolicyEvaluator = policy.compile()

    # -- policy lifecycle -------------------------------------------------------

    def fingerprint(self) -> bytes:
        """The live policy fingerprint (recomputed; policy may mutate)."""
        return self.policy.fingerprint()

    def evaluator(self) -> PolicyEvaluator:
        """The compiled policy, recompiled lazily after any mutation."""
        fingerprint = self.policy.fingerprint()
        if fingerprint != self._evaluator.fingerprint:
            self._evaluator = self.policy.compile()
        return self._evaluator

    def revoke_measurement(self, digest: bytes) -> None:
        """Killswitch: deny this measurement fleet-wide from now on."""
        self.policy.revoke_measurement(digest)

    def revoke_identity(self, identity: bytes) -> None:
        """Killswitch: deny this attestation identity fleet-wide."""
        self.policy.revoke_identity(identity)

    def replace_policy(self, policy: AppraisalPolicy) -> None:
        """Swap in a new policy (shard sync path)."""
        self.policy = policy
        self._evaluator = policy.compile()

    # -- the three verbs --------------------------------------------------------

    def _span(self, name: str, **attrs):
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, world="normal", **attrs)

    def decode(self, data: bytes):
        """Envelope bytes -> typed evidence view.

        A malformed envelope or body is itself an appraisal outcome: it
        is audited (reason ``envelope-malformed``) before the typed
        :class:`~repro.errors.EnvelopeError` propagates.
        """
        with self._span("appraisal.decode", size=len(data)):
            try:
                tee_type, body = decode_envelope(data)
            except EnvelopeError as exc:
                self.record(TEE_UNKNOWN, False, Reason.ENVELOPE_MALFORMED,
                            str(exc))
                raise
            try:
                return self.registry.get(tee_type).decode(body)
            except EnvelopeError as exc:
                self.record(tee_type, False, Reason.ENVELOPE_MALFORMED,
                            str(exc))
                raise

    def appraise(self, view, now_ns: Optional[int] = None) -> Verdict:
        """Evaluate the policy over a decoded view; audited either way."""
        with self._span("appraisal.evaluate", tee=tee_name(view.tee_type)):
            verdict = self.evaluator().evaluate(view, now_ns=now_ns)
        self.record(verdict.tee_type, verdict.accepted, verdict.reason,
                    verdict.detail)
        return verdict

    def record(self, tee_type: int, accepted: bool, reason: str,
               detail: str = "") -> None:
        """Audit one decision under the current policy fingerprint.

        Also the hook the *legacy* TrustZone verifier path calls, so a
        single-TEE deployment gets the same audit trail as the
        envelope path.
        """
        self.audit.record(tee_type, accepted, reason,
                          self.policy.fingerprint(), detail)
