"""The TrustZone evidence codec: WaTZ's native claims, bytes unchanged.

The codec body *is* the :class:`repro.core.evidence.SignedEvidence`
serialisation — the exact structure the seed verifier appraises — so a
TrustZone attester's evidence is identical whether it travels bare in a
legacy msg2 or wrapped in the multi-TEE envelope. The transcript
invariance of the refactored verifier path rests on that.

This module also hosts the TrustZone *appraisal* checks that used to
live inline in :mod:`repro.core.verifier` (version, endorsement, claim,
boot chain), split into the pre-/post-signature halves the seed verifier
runs them in. They raise the seed's exact exception types and messages —
with a stable ``reason_code`` attribute attached for the audit log — so
the refactor is observable-behaviour-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.appraisal.envelope import TEE_TRUSTZONE, encode_envelope
from repro.appraisal.policy import Reason
from repro.core.evidence import (
    EVIDENCE_SIZE,
    TEE_TYPE_TRUSTZONE,
    Evidence,
    SignedEvidence,
)
from repro.errors import EndorsementError, EvidenceError, MeasurementMismatch

# The core layer mirrors the tag (it cannot import this package); the
# two constants describe the same backend and must never drift.
assert TEE_TYPE_TRUSTZONE == TEE_TRUSTZONE


@dataclass(frozen=True)
class TrustZoneView:
    """Uniform appraisal view over native WaTZ signed evidence."""

    signed: SignedEvidence

    tee_type = TEE_TYPE_TRUSTZONE

    @property
    def evidence(self) -> Evidence:
        return self.signed.evidence

    @property
    def anchor(self) -> bytes:
        return self.signed.evidence.anchor

    @property
    def claim(self) -> bytes:
        return self.signed.evidence.claim

    @property
    def identity(self) -> bytes:
        return self.signed.evidence.attestation_public_key

    @property
    def boot_claim(self) -> bytes:
        return self.signed.evidence.boot_claim

    @property
    def cache_extra(self) -> bytes:
        return self.signed.evidence.boot_claim

    @property
    def version(self) -> Tuple[int, int]:
        return tuple(self.signed.evidence.version)

    # TrustZone evidence carries neither an SVN ladder nor a debug flag;
    # the policy engine's SVN/debug rules are inert for this backend.
    svn = None
    debug = False
    signer = None

    def encode(self) -> bytes:
        return self.signed.encode()

    def envelope(self) -> bytes:
        return encode_envelope(TEE_TRUSTZONE, self.signed.encode())

    def verify_signature(self) -> None:
        self.signed.verify_signature()


class TrustZoneCodec:
    """Envelope codec wrapping the unchanged native serialisation."""

    tee_type = TEE_TYPE_TRUSTZONE
    name = "trustzone"

    def decode(self, body: bytes) -> TrustZoneView:
        # SignedEvidence.decode is already strict (typed EvidenceError on
        # any size or magic violation) — the codec adds nothing to it.
        return TrustZoneView(SignedEvidence.decode(body))

    def encode(self, view: TrustZoneView) -> bytes:
        return view.signed.encode()

    def verify_signature(self, view: TrustZoneView) -> None:
        view.verify_signature()

    @property
    def body_size(self) -> int:
        return EVIDENCE_SIZE


def _deny(exc_class, message: str, reason: str) -> None:
    exc = exc_class(message)
    exc.reason_code = reason
    raise exc


def appraise_pre_signature(policy, evidence: Evidence) -> None:
    """The checks the seed verifier runs *before* the evidence signature.

    ``policy`` is a :class:`repro.core.verifier.VerifierPolicy`. Raises
    the seed's exact exceptions (type and message) on failure.
    """
    if evidence.version < policy.minimum_version:
        _deny(EndorsementError,
              f"runtime version {evidence.version} is below the accepted "
              f"minimum {policy.minimum_version}",
              Reason.VERSION_BELOW_MINIMUM)
    if evidence.attestation_public_key not in policy.endorsements:
        _deny(EndorsementError, "device attestation key is not endorsed",
              Reason.IDENTITY_UNKNOWN)


def appraise_post_signature(policy, evidence: Evidence) -> None:
    """The checks the seed verifier runs *after* the evidence signature."""
    if evidence.claim not in policy.reference_values:
        _deny(MeasurementMismatch,
              f"code measurement {evidence.claim.hex()[:16]}... matches "
              "no reference value",
              Reason.MEASUREMENT_UNKNOWN)
    if policy.trusted_boot_measurements and \
            evidence.boot_claim not in policy.trusted_boot_measurements:
        _deny(MeasurementMismatch,
              "boot-chain measurement matches no trusted value "
              "(possibly hijacked secure boot)",
              Reason.BOOT_UNKNOWN)


def reason_of(exc: BaseException) -> str:
    """Map an appraisal exception to its stable reason code (audit)."""
    reason = getattr(exc, "reason_code", None)
    if reason is not None:
        return reason
    if isinstance(exc, MeasurementMismatch):
        return Reason.MEASUREMENT_UNKNOWN
    if isinstance(exc, EndorsementError):
        return Reason.IDENTITY_UNKNOWN
    if isinstance(exc, EvidenceError):
        return Reason.ENVELOPE_MALFORMED
    return Reason.SIGNATURE_INVALID
