"""Per-TEE evidence codecs for the multi-TEE appraisal envelope.

Three built-ins (see the sibling modules):

* :mod:`~repro.appraisal.codecs.trustzone` — the native WaTZ claims
  structure, byte-for-byte the format of :mod:`repro.core.evidence`;
* :mod:`~repro.appraisal.codecs.sgx` — an SGX-style quote (MRENCLAVE /
  MRSIGNER measurement pair, ISV SVN, debug flag), as carried by
  Twine-style SGX Wasm runtimes;
* :mod:`~repro.appraisal.codecs.tdx` — a TDX-style quote (MRTD plus four
  runtime-extendable RTMRs).

Each module exports its evidence dataclass, a ``build()`` helper that
signs through a caller-supplied signer, and the codec class registered
into :class:`repro.appraisal.envelope.CodecRegistry`.
"""

from repro.appraisal.codecs.sgx import SgxCodec, SgxEvidence
from repro.appraisal.codecs.tdx import TdxCodec, TdxEvidence
from repro.appraisal.codecs.trustzone import TrustZoneCodec, TrustZoneView

__all__ = [
    "SgxCodec",
    "SgxEvidence",
    "TdxCodec",
    "TdxEvidence",
    "TrustZoneCodec",
    "TrustZoneView",
]
