"""A TDX-style evidence codec: MRTD plus four runtime measurement registers.

Models the quote shape of an Intel TDX trust domain: the build-time
measurement of the domain (MRTD) and four RTMRs — runtime-extendable
registers the guest folds boot-stage and application measurements into,
the TDX analogue of the measured-boot accumulation WaTZ's §VII extension
adds to TrustZone evidence. Register fields are 48 bytes wide, matching
TDX's SHA-384 register size; the simulation treats them as opaque
digests. The body is signed with the repo's P-256 ECDSA under an
attestation key carried in the body.

::

    body := magic "TDXQ" || u8 version || u8 reserved(0) || u16 reserved(0)
            || anchor[32] || mrtd[48] || rtmr0..rtmr3[48 each]
            || attestation_public_key[65] || signature[64]
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Tuple

from repro.appraisal.envelope import TEE_TDX, encode_envelope
from repro.crypto import ec, ecdsa
from repro.crypto.hashing import SHA256_SIZE
from repro.errors import CryptoError, EnvelopeError, EvidenceError

TDX_QUOTE_VERSION = 1

ANCHOR_SIZE = SHA256_SIZE
#: TDX measurement registers are SHA-384 wide.
REGISTER_SIZE = 48
RTMR_COUNT = 4
PUBKEY_SIZE = 65

_MAGIC = b"TDXQ"
_HEADER = struct.Struct("<4sBBH")

TDX_SIGNED_SIZE = (_HEADER.size + ANCHOR_SIZE
                   + (1 + RTMR_COUNT) * REGISTER_SIZE + PUBKEY_SIZE)
TDX_BODY_SIZE = TDX_SIGNED_SIZE + ecdsa.SIGNATURE_SIZE


@dataclass(frozen=True)
class TdxEvidence:
    """Decoded TDX-style quote, already carrying its signature."""

    anchor: bytes
    mrtd: bytes
    rtmrs: Tuple[bytes, ...]
    attestation_public_key: bytes
    signature: bytes
    version: Tuple[int, int] = (TDX_QUOTE_VERSION, 0)

    tee_type = TEE_TDX

    def __post_init__(self) -> None:
        if len(self.anchor) != ANCHOR_SIZE:
            raise EvidenceError("tdx anchor must be a SHA-256 digest")
        if len(self.mrtd) != REGISTER_SIZE:
            raise EvidenceError("mrtd must be a 48-byte register value")
        if len(self.rtmrs) != RTMR_COUNT or \
                any(len(r) != REGISTER_SIZE for r in self.rtmrs):
            raise EvidenceError(
                f"tdx evidence needs {RTMR_COUNT} 48-byte RTMRs")
        if len(self.attestation_public_key) != PUBKEY_SIZE:
            raise EvidenceError(
                "tdx attestation key must be an uncompressed point")
        if len(self.signature) != ecdsa.SIGNATURE_SIZE:
            raise EvidenceError("tdx quote signature has the wrong size")

    # -- uniform appraisal view -------------------------------------------------

    @property
    def claim(self) -> bytes:
        """The primary code measurement the policy appraises."""
        return self.mrtd

    @property
    def identity(self) -> bytes:
        return self.attestation_public_key

    @property
    def cache_extra(self) -> bytes:
        return b"".join(self.rtmrs)

    # No SVN ladder / debug flag / signer measurement in this shape.
    svn = None
    debug = False
    signer = None

    def signed_body(self) -> bytes:
        return (
            _HEADER.pack(_MAGIC, TDX_QUOTE_VERSION, 0, 0)
            + self.anchor + self.mrtd + b"".join(self.rtmrs)
            + self.attestation_public_key
        )

    def encode(self) -> bytes:
        return self.signed_body() + self.signature

    def envelope(self) -> bytes:
        return encode_envelope(TEE_TDX, self.encode())

    def verify_signature(self) -> None:
        try:
            public = ec.decode_point(self.attestation_public_key)
        except CryptoError as exc:
            raise EvidenceError(f"malformed tdx quote key: {exc}") from exc
        ecdsa.verify(public, self.signed_body(), self.signature)


def build(anchor: bytes, mrtd: bytes, rtmrs, attestation_public_key: bytes,
          sign: Callable[[bytes], bytes]) -> TdxEvidence:
    """Assemble and sign a quote (``sign`` holds the private key)."""
    unsigned = TdxEvidence(anchor=anchor, mrtd=mrtd, rtmrs=tuple(rtmrs),
                           attestation_public_key=attestation_public_key,
                           signature=b"\x00" * ecdsa.SIGNATURE_SIZE)
    return TdxEvidence(anchor=anchor, mrtd=mrtd, rtmrs=tuple(rtmrs),
                       attestation_public_key=attestation_public_key,
                       signature=sign(unsigned.signed_body()))


class TdxCodec:
    """Envelope codec for the TDX-style quote body."""

    tee_type = TEE_TDX
    name = "tdx"
    body_size = TDX_BODY_SIZE

    def decode(self, body: bytes) -> TdxEvidence:
        if len(body) != TDX_BODY_SIZE:
            raise EnvelopeError(
                f"tdx quote body must be {TDX_BODY_SIZE} bytes, "
                f"got {len(body)}")
        magic, version, reserved8, reserved16 = _HEADER.unpack_from(body)
        if magic != _MAGIC:
            raise EnvelopeError("bad tdx quote magic")
        if version != TDX_QUOTE_VERSION:
            raise EnvelopeError(f"unsupported tdx quote version {version}")
        if reserved8 != 0 or reserved16 != 0:
            raise EnvelopeError("non-canonical tdx quote: reserved bits set")
        offset = _HEADER.size
        anchor = body[offset:offset + ANCHOR_SIZE]
        offset += ANCHOR_SIZE
        mrtd = body[offset:offset + REGISTER_SIZE]
        offset += REGISTER_SIZE
        rtmrs = []
        for _ in range(RTMR_COUNT):
            rtmrs.append(bytes(body[offset:offset + REGISTER_SIZE]))
            offset += REGISTER_SIZE
        public_key = body[offset:offset + PUBKEY_SIZE]
        offset += PUBKEY_SIZE
        return TdxEvidence(anchor=bytes(anchor), mrtd=bytes(mrtd),
                           rtmrs=tuple(rtmrs),
                           attestation_public_key=bytes(public_key),
                           signature=bytes(body[offset:]))

    def encode(self, view: TdxEvidence) -> bytes:
        return view.encode()

    def verify_signature(self, view: TdxEvidence) -> None:
        view.verify_signature()
