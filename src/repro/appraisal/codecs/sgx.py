"""An SGX-style evidence codec: MRENCLAVE/MRSIGNER pair, SVN, debug flag.

Models the quote shape a Twine-style SGX Wasm runtime would present
(PAPERS.md, "Twine"): the enclave's code measurement (MRENCLAVE), the
signer-key measurement (MRSIGNER), the ISV security-version number the
policy's minimum-SVN rule appraises, and the debug-launch flag a
production policy must reject. The body is a fixed-layout little-endian
struct signed with the repo's P-256 ECDSA (:mod:`repro.crypto`) under an
attestation key carried in the body — the same endorsement discipline as
the native TrustZone format.

::

    body := magic "SGXQ" || u8 version || u8 debug || u16 isv_svn
            || u16 reserved(0) || anchor[32] || mrenclave[32]
            || mrsigner[32] || attestation_public_key[65]
            || signature[64 over everything before it]

Decoding is strict: exact size, magic, supported version, canonical
``debug`` (0/1) and zero reserved bits — anything else is a typed
:class:`~repro.errors.EnvelopeError`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Tuple

from repro.appraisal.envelope import TEE_SGX, encode_envelope
from repro.crypto import ec, ecdsa
from repro.crypto.hashing import SHA256_SIZE
from repro.errors import CryptoError, EnvelopeError, EvidenceError

SGX_QUOTE_VERSION = 1

ANCHOR_SIZE = SHA256_SIZE
MEASUREMENT_SIZE = SHA256_SIZE
PUBKEY_SIZE = 65

_MAGIC = b"SGXQ"
_HEADER = struct.Struct("<4sBBHH")

SGX_SIGNED_SIZE = (_HEADER.size + ANCHOR_SIZE + 2 * MEASUREMENT_SIZE
                   + PUBKEY_SIZE)
SGX_BODY_SIZE = SGX_SIGNED_SIZE + ecdsa.SIGNATURE_SIZE


@dataclass(frozen=True)
class SgxEvidence:
    """Decoded SGX-style quote, already carrying its signature."""

    anchor: bytes
    mrenclave: bytes
    mrsigner: bytes
    isv_svn: int
    debug: bool
    attestation_public_key: bytes
    signature: bytes
    version: Tuple[int, int] = (SGX_QUOTE_VERSION, 0)

    tee_type = TEE_SGX

    def __post_init__(self) -> None:
        if len(self.anchor) != ANCHOR_SIZE:
            raise EvidenceError("sgx anchor must be a SHA-256 digest")
        if len(self.mrenclave) != MEASUREMENT_SIZE:
            raise EvidenceError("mrenclave must be a SHA-256 digest")
        if len(self.mrsigner) != MEASUREMENT_SIZE:
            raise EvidenceError("mrsigner must be a SHA-256 digest")
        if not 0 <= self.isv_svn <= 0xFFFF:
            raise EvidenceError("isv_svn must fit in 16 bits")
        if len(self.attestation_public_key) != PUBKEY_SIZE:
            raise EvidenceError(
                "sgx attestation key must be an uncompressed point")
        if len(self.signature) != ecdsa.SIGNATURE_SIZE:
            raise EvidenceError("sgx quote signature has the wrong size")

    # -- uniform appraisal view -------------------------------------------------

    @property
    def claim(self) -> bytes:
        """The primary code measurement the policy appraises."""
        return self.mrenclave

    @property
    def identity(self) -> bytes:
        return self.attestation_public_key

    @property
    def signer(self) -> bytes:
        return self.mrsigner

    @property
    def svn(self) -> int:
        return self.isv_svn

    @property
    def cache_extra(self) -> bytes:
        return (self.mrsigner + struct.pack("<H", self.isv_svn)
                + bytes([1 if self.debug else 0]))

    def signed_body(self) -> bytes:
        return (
            _HEADER.pack(_MAGIC, SGX_QUOTE_VERSION,
                         1 if self.debug else 0, self.isv_svn, 0)
            + self.anchor + self.mrenclave + self.mrsigner
            + self.attestation_public_key
        )

    def encode(self) -> bytes:
        return self.signed_body() + self.signature

    def envelope(self) -> bytes:
        return encode_envelope(TEE_SGX, self.encode())

    def verify_signature(self) -> None:
        try:
            public = ec.decode_point(self.attestation_public_key)
        except CryptoError as exc:
            raise EvidenceError(f"malformed sgx quote key: {exc}") from exc
        ecdsa.verify(public, self.signed_body(), self.signature)


def build(anchor: bytes, mrenclave: bytes, mrsigner: bytes, isv_svn: int,
          debug: bool, attestation_public_key: bytes,
          sign: Callable[[bytes], bytes]) -> SgxEvidence:
    """Assemble and sign a quote (``sign`` holds the private key)."""
    unsigned = SgxEvidence(anchor=anchor, mrenclave=mrenclave,
                           mrsigner=mrsigner, isv_svn=isv_svn, debug=debug,
                           attestation_public_key=attestation_public_key,
                           signature=b"\x00" * ecdsa.SIGNATURE_SIZE)
    return SgxEvidence(anchor=anchor, mrenclave=mrenclave,
                       mrsigner=mrsigner, isv_svn=isv_svn, debug=debug,
                       attestation_public_key=attestation_public_key,
                       signature=sign(unsigned.signed_body()))


class SgxCodec:
    """Envelope codec for the SGX-style quote body."""

    tee_type = TEE_SGX
    name = "sgx"
    body_size = SGX_BODY_SIZE

    def decode(self, body: bytes) -> SgxEvidence:
        if len(body) != SGX_BODY_SIZE:
            raise EnvelopeError(
                f"sgx quote body must be {SGX_BODY_SIZE} bytes, "
                f"got {len(body)}")
        magic, version, debug, isv_svn, reserved = _HEADER.unpack_from(body)
        if magic != _MAGIC:
            raise EnvelopeError("bad sgx quote magic")
        if version != SGX_QUOTE_VERSION:
            raise EnvelopeError(f"unsupported sgx quote version {version}")
        if debug not in (0, 1):
            raise EnvelopeError(
                f"non-canonical sgx debug flag {debug:#04x}")
        if reserved != 0:
            raise EnvelopeError("non-canonical sgx quote: reserved bits set")
        offset = _HEADER.size
        anchor = body[offset:offset + ANCHOR_SIZE]
        offset += ANCHOR_SIZE
        mrenclave = body[offset:offset + MEASUREMENT_SIZE]
        offset += MEASUREMENT_SIZE
        mrsigner = body[offset:offset + MEASUREMENT_SIZE]
        offset += MEASUREMENT_SIZE
        public_key = body[offset:offset + PUBKEY_SIZE]
        offset += PUBKEY_SIZE
        return SgxEvidence(anchor=bytes(anchor), mrenclave=bytes(mrenclave),
                           mrsigner=bytes(mrsigner), isv_svn=isv_svn,
                           debug=bool(debug),
                           attestation_public_key=bytes(public_key),
                           signature=bytes(body[offset:]))

    def encode(self, view: SgxEvidence) -> bytes:
        return view.encode()

    def verify_signature(self, view: SgxEvidence) -> None:
        view.verify_signature()
