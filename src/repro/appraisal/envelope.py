"""The self-describing multi-TEE evidence envelope and the codec registry.

WaTZ's wire protocol carries exactly one evidence shape — the TrustZone
claims structure of :mod:`repro.core.evidence`. Serving a heterogeneous
fleet (Twine-style SGX enclaves, TDX-style domains and TrustZone boards
attesting the *same* Wasm module) needs a container that says what it is:

::

    envelope := magic "WTEV" || u8 version || u8 tee_type
                || u16 reserved(0) || u32 body_len || body

The header is fixed and versioned; the body is opaque to the envelope and
owned by the codec registered for ``tee_type``. Decoding is strict —
short headers, bad magic, unsupported versions, non-zero reserved bits,
and any body-length mismatch raise :class:`~repro.errors.EnvelopeError`
(a :class:`~repro.errors.EvidenceError`), never a bare ``struct.error``.

A :class:`CodecRegistry` maps ``tee_type`` tags to codec objects. Each
codec exposes:

* ``tee_type`` / ``name`` — the tag it claims and a human label;
* ``decode(body) -> view`` / ``encode(view) -> body`` — strict, typed
  parsing of the backend-specific body;
* ``verify_signature(view)`` — the backend's key/signature verification
  path (all three built-ins reuse :mod:`repro.crypto`).

Every decoded *view* presents the uniform appraisal surface the policy
engine and the appraisal cache consume: ``tee_type``, ``anchor``,
``claim`` (the primary code measurement), ``identity`` (the signing
key), ``cache_extra`` (backend state beyond the claim — boot chain,
MRSIGNER/SVN/debug, RTMRs), ``svn``, ``debug``, ``signer``, ``version``,
plus ``encode()`` (the codec body) and ``envelope()`` (the full wire
envelope — the byte string resumption tickets MAC over, so a ticket
minted under one backend can never verify under another: the header's
``tee_type`` is inside the MAC'd bytes).
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

from repro.errors import EnvelopeError

ENVELOPE_MAGIC = b"WTEV"
ENVELOPE_VERSION = 1

_ENV_HEADER = struct.Struct("<4sBBHI")
ENVELOPE_HEADER_SIZE = _ENV_HEADER.size

#: Registered evidence-shape tags. TrustZone's value is mirrored as
#: ``repro.core.evidence.TEE_TYPE_TRUSTZONE`` (the core layer must not
#: import this package — it sits below it); the codec module asserts the
#: two stay equal.
TEE_TRUSTZONE = 0x01
TEE_SGX = 0x02
TEE_TDX = 0x03

TEE_NAMES = {
    TEE_TRUSTZONE: "trustzone",
    TEE_SGX: "sgx",
    TEE_TDX: "tdx",
}


def tee_name(tee_type: int) -> str:
    return TEE_NAMES.get(tee_type, f"tee_{tee_type:#04x}")


def encode_envelope(tee_type: int, body: bytes) -> bytes:
    """Wrap a codec body in the versioned self-describing header."""
    if not 0 <= tee_type <= 0xFF:
        raise EnvelopeError(f"tee_type {tee_type} does not fit the tag byte")
    return _ENV_HEADER.pack(ENVELOPE_MAGIC, ENVELOPE_VERSION, tee_type,
                            0, len(body)) + body


def decode_envelope(data: bytes) -> Tuple[int, bytes]:
    """Strictly parse an envelope into ``(tee_type, body)``."""
    if len(data) < ENVELOPE_HEADER_SIZE:
        raise EnvelopeError(
            f"envelope shorter than its {ENVELOPE_HEADER_SIZE}-byte header"
        )
    magic, version, tee_type, reserved, body_len = _ENV_HEADER.unpack_from(
        data, 0)
    if magic != ENVELOPE_MAGIC:
        raise EnvelopeError("bad envelope magic")
    if version != ENVELOPE_VERSION:
        raise EnvelopeError(f"unsupported envelope version {version}")
    if reserved != 0:
        raise EnvelopeError("non-canonical envelope: reserved bits set")
    body = data[ENVELOPE_HEADER_SIZE:]
    if len(body) != body_len:
        raise EnvelopeError(
            f"envelope declares {body_len} body bytes, carries {len(body)}"
        )
    return tee_type, bytes(body)


class CodecRegistry:
    """Pluggable ``tee_type -> codec`` table.

    Registration is explicit (no import-time magic): construct a registry
    with the codecs a deployment accepts, or take
    :func:`default_registry` for all three built-ins. Lookup of an
    unregistered tag raises :class:`~repro.errors.EnvelopeError` so the
    protocol layer reports it as malformed/unacceptable evidence rather
    than a programming error.
    """

    def __init__(self, codecs=()) -> None:
        self._codecs: Dict[int, object] = {}
        for codec in codecs:
            self.register(codec)

    def register(self, codec) -> None:
        tag = codec.tee_type
        if tag in self._codecs:
            raise ValueError(
                f"a codec for tee_type {tag:#04x} "
                f"({self._codecs[tag].name}) is already registered")
        self._codecs[tag] = codec

    def get(self, tee_type: int):
        codec = self._codecs.get(tee_type)
        if codec is None:
            raise EnvelopeError(
                f"no codec registered for tee_type {tee_type:#04x}")
        return codec

    def tee_types(self) -> Tuple[int, ...]:
        return tuple(sorted(self._codecs))

    def codecs(self) -> Tuple[object, ...]:
        return tuple(self._codecs[tag] for tag in sorted(self._codecs))

    def __contains__(self, tee_type: int) -> bool:
        return tee_type in self._codecs

    def decode(self, data: bytes):
        """Envelope bytes -> typed evidence view (via the body's codec)."""
        tee_type, body = decode_envelope(data)
        return self.get(tee_type).decode(body)

    def encode(self, view) -> bytes:
        """Typed evidence view -> full envelope bytes."""
        codec = self.get(view.tee_type)
        return encode_envelope(view.tee_type, codec.encode(view))


def default_registry() -> CodecRegistry:
    """A registry holding the three built-in codecs."""
    from repro.appraisal.codecs.sgx import SgxCodec
    from repro.appraisal.codecs.tdx import TdxCodec
    from repro.appraisal.codecs.trustzone import TrustZoneCodec

    return CodecRegistry((TrustZoneCodec(), SgxCodec(), TdxCodec()))
