"""The declarative appraisal policy: policies as data, compiled to code.

A relying party serving a heterogeneous fleet expresses what it accepts
*declaratively* — per-TEE accepted measurements, minimum SVNs, a debug
kill rule, key policies, expiry — rather than as imperative checks
scattered through the verifier. The policy is plain data
(:class:`AppraisalPolicy`), deterministically serialisable (so the fleet
shards sync it over the same fingerprint-gated channel as the legacy
``VerifierPolicy``), and compiled (:meth:`AppraisalPolicy.compile`) into
an evaluator whose verdicts are structured accept/deny decisions with
**stable reason codes** (:class:`Reason`) — the strings the audit log
records and operators alert on, pinned by test.

The revocation killswitch lives here too: revoking a measurement or an
identity adds it to the deny set *and bumps the policy epoch*. The epoch
is part of the fingerprint, so every fingerprint-scoped consumer — the
appraisal caches on every shard, the resumption tickets they minted —
invalidates on the next message, even if the accept sets are later
restored to an identical state. Un-revoking never resurrects old
tickets.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.appraisal.envelope import TEE_TRUSTZONE, tee_name
from repro.crypto.hashing import sha256
from repro.errors import PolicyDenied


class Reason:
    """Stable machine-readable verdict reason codes.

    These strings are an API: the audit log persists them, the fleet
    shards ship them across the IPC hop inside ``PolicyDenied`` messages,
    and ``tests/appraisal/test_policy.py`` pins every value. Add new
    codes freely; never change an existing one.
    """

    OK = "ok"
    TEE_NOT_ACCEPTED = "tee-not-accepted"
    MEASUREMENT_UNKNOWN = "measurement-unknown"
    MEASUREMENT_REVOKED = "measurement-revoked"
    IDENTITY_UNKNOWN = "identity-unknown"
    IDENTITY_REVOKED = "identity-revoked"
    SIGNER_UNKNOWN = "signer-unknown"
    DEBUG_REJECTED = "debug-rejected"
    SVN_BELOW_MINIMUM = "svn-below-minimum"
    VERSION_BELOW_MINIMUM = "version-below-minimum"
    BOOT_UNKNOWN = "boot-unknown"
    POLICY_EXPIRED = "policy-expired"
    SIGNATURE_INVALID = "signature-invalid"
    ENVELOPE_MALFORMED = "envelope-malformed"


@dataclass(frozen=True)
class Verdict:
    """One structured appraisal decision."""

    accepted: bool
    reason: str
    tee_type: int
    detail: str = ""

    def raise_if_denied(self) -> "Verdict":
        if not self.accepted:
            raise PolicyDenied(self.detail or
                               f"{tee_name(self.tee_type)} evidence denied",
                               reason=self.reason)
        return self


@dataclass
class TeePolicy:
    """What one evidence backend must present to be accepted."""

    #: Accepted primary code measurements (claim / MRENCLAVE / MRTD).
    accepted_measurements: Set[bytes] = field(default_factory=set)
    #: Endorsed attestation identities (the quote-signing keys).
    accepted_identities: Set[bytes] = field(default_factory=set)
    #: Accepted signer measurements (MRSIGNER); empty = rule disabled.
    accepted_signers: Set[bytes] = field(default_factory=set)
    #: Accepted boot-chain / RTMR accumulations; empty = rule disabled.
    accepted_boot_measurements: Set[bytes] = field(default_factory=set)
    #: Evidence with an SVN below this is denied.
    minimum_svn: int = 0
    #: Debug-launched enclaves are denied unless explicitly allowed.
    allow_debug: bool = False
    #: Evidence format versions older than this are denied.
    minimum_version: Tuple[int, int] = (0, 0)

    def trust_measurement(self, digest: bytes) -> None:
        self.accepted_measurements.add(bytes(digest))

    def endorse(self, identity: bytes) -> None:
        self.accepted_identities.add(bytes(identity))

    def trust_signer(self, digest: bytes) -> None:
        self.accepted_signers.add(bytes(digest))

    def trust_boot_measurement(self, digest: bytes) -> None:
        self.accepted_boot_measurements.add(bytes(digest))


@dataclass
class AppraisalPolicy:
    """The whole relying-party policy: per-TEE rules + global kill sets."""

    tee: Dict[int, TeePolicy] = field(default_factory=dict)
    #: Killswitch sets: revoked entries deny *regardless of backend*.
    revoked_measurements: Set[bytes] = field(default_factory=set)
    revoked_identities: Set[bytes] = field(default_factory=set)
    #: Bumped by every revocation; part of the fingerprint, so tickets
    #: and caches minted before the bump can never be redeemed after it.
    epoch: int = 0
    #: Policy expiry on the verifier's monotonic clock (ns); evidence
    #: appraised after this instant is denied until the policy is
    #: re-issued. ``None`` disables the rule.
    not_after_ns: Optional[int] = None

    def accept_tee(self, tee_type: int) -> TeePolicy:
        """The backend's rule set, created empty on first touch."""
        if tee_type not in self.tee:
            self.tee[tee_type] = TeePolicy()
        return self.tee[tee_type]

    # -- the killswitch ---------------------------------------------------------

    def revoke_measurement(self, digest: bytes) -> None:
        self.revoked_measurements.add(bytes(digest))
        self.epoch += 1

    def revoke_identity(self, identity: bytes) -> None:
        self.revoked_identities.add(bytes(identity))
        self.epoch += 1

    # -- legacy bridge ----------------------------------------------------------

    @classmethod
    def from_verifier_policy(cls, policy) -> "AppraisalPolicy":
        """Lift a legacy ``VerifierPolicy`` into the TrustZone slot."""
        lifted = cls()
        lifted.tee[TEE_TRUSTZONE] = TeePolicy(
            accepted_measurements=set(policy.reference_values),
            accepted_identities=set(policy.endorsements),
            accepted_boot_measurements=set(policy.trusted_boot_measurements),
            minimum_version=tuple(policy.minimum_version),
        )
        return lifted

    # -- deterministic serialisation -------------------------------------------

    def encode(self) -> bytes:
        """Canonical binary: the fingerprint input and the shard-sync blob."""
        parts = [struct.pack(">QI", self.epoch, len(self.tee))]
        parts.append(struct.pack(">BQ",
                                 0 if self.not_after_ns is None else 1,
                                 self.not_after_ns or 0))
        for tee_type in sorted(self.tee):
            rules = self.tee[tee_type]
            parts.append(struct.pack(">BHBII", tee_type, rules.minimum_svn,
                                     1 if rules.allow_debug else 0,
                                     rules.minimum_version[0],
                                     rules.minimum_version[1]))
            for group in (rules.accepted_measurements,
                          rules.accepted_identities,
                          rules.accepted_signers,
                          rules.accepted_boot_measurements):
                parts.append(_encode_set(group))
        parts.append(_encode_set(self.revoked_measurements))
        parts.append(_encode_set(self.revoked_identities))
        return b"".join(parts)

    @classmethod
    def decode(cls, blob: bytes) -> "AppraisalPolicy":
        epoch, tee_count = struct.unpack_from(">QI", blob, 0)
        offset = 12
        has_expiry, not_after = struct.unpack_from(">BQ", blob, offset)
        offset += 9
        policy = cls(epoch=epoch,
                     not_after_ns=not_after if has_expiry else None)
        for _ in range(tee_count):
            tee_type, min_svn, allow_debug, major, minor = \
                struct.unpack_from(">BHBII", blob, offset)
            offset += 12
            groups = []
            for _ in range(4):
                items, offset = _decode_set(blob, offset)
                groups.append(items)
            policy.tee[tee_type] = TeePolicy(
                accepted_measurements=groups[0],
                accepted_identities=groups[1],
                accepted_signers=groups[2],
                accepted_boot_measurements=groups[3],
                minimum_svn=min_svn,
                allow_debug=bool(allow_debug),
                minimum_version=(major, minor),
            )
        policy.revoked_measurements, offset = _decode_set(blob, offset)
        policy.revoked_identities, offset = _decode_set(blob, offset)
        return policy

    def fingerprint(self) -> bytes:
        """Digest of everything an appraisal outcome depends on."""
        return sha256(b"appraisal-policy-v1|" + self.encode())

    def compile(self) -> "PolicyEvaluator":
        return PolicyEvaluator(self)


def _encode_set(group: Set[bytes]) -> bytes:
    members = sorted(bytes(item) for item in group)
    parts = [struct.pack(">I", len(members))]
    for item in members:
        parts.append(struct.pack(">I", len(item)))
        parts.append(item)
    return b"".join(parts)


def _decode_set(blob: bytes, offset: int) -> Tuple[Set[bytes], int]:
    (count,) = struct.unpack_from(">I", blob, offset)
    offset += 4
    items = set()
    for _ in range(count):
        (length,) = struct.unpack_from(">I", blob, offset)
        offset += 4
        items.add(bytes(blob[offset:offset + length]))
        offset += length
    return items, offset


class PolicyEvaluator:
    """A policy compiled for the hot path: frozen sets, fixed rule order.

    The check order is part of the observable contract (a sample failing
    several rules reports the *first* one) and is pinned by test:

    expiry → TEE accepted → measurement revoked → identity revoked →
    measurement known → identity endorsed → signer → debug → SVN →
    version → boot chain.

    Kill rules outrank accept rules so a revocation verdict is never
    masked by a stale accept set.
    """

    def __init__(self, policy: AppraisalPolicy) -> None:
        self.fingerprint = policy.fingerprint()
        self._not_after_ns = policy.not_after_ns
        self._revoked_measurements: FrozenSet[bytes] = \
            frozenset(policy.revoked_measurements)
        self._revoked_identities: FrozenSet[bytes] = \
            frozenset(policy.revoked_identities)
        self._tee: Dict[int, Tuple] = {}
        for tee_type, rules in policy.tee.items():
            self._tee[tee_type] = (
                frozenset(rules.accepted_measurements),
                frozenset(rules.accepted_identities),
                frozenset(rules.accepted_signers),
                frozenset(rules.accepted_boot_measurements),
                rules.minimum_svn,
                rules.allow_debug,
                tuple(rules.minimum_version),
            )

    def evaluate(self, view, now_ns: Optional[int] = None) -> Verdict:
        """Appraise one evidence view; never raises — returns a verdict."""
        tee_type = view.tee_type

        def deny(reason: str, detail: str) -> Verdict:
            return Verdict(False, reason, tee_type, detail)

        if self._not_after_ns is not None and now_ns is not None \
                and now_ns > self._not_after_ns:
            return deny(Reason.POLICY_EXPIRED,
                        "appraisal policy has expired")
        rules = self._tee.get(tee_type)
        if rules is None:
            return deny(Reason.TEE_NOT_ACCEPTED,
                        f"policy accepts no {tee_name(tee_type)} evidence")
        (measurements, identities, signers, boots,
         minimum_svn, allow_debug, minimum_version) = rules
        claim = bytes(view.claim)
        identity = bytes(view.identity)
        if claim in self._revoked_measurements:
            return deny(Reason.MEASUREMENT_REVOKED,
                        f"measurement {claim.hex()[:16]}... is revoked")
        if identity in self._revoked_identities:
            return deny(Reason.IDENTITY_REVOKED,
                        "attestation identity is revoked")
        if claim not in measurements:
            return deny(Reason.MEASUREMENT_UNKNOWN,
                        f"measurement {claim.hex()[:16]}... matches no "
                        "accepted value")
        if identity not in identities:
            return deny(Reason.IDENTITY_UNKNOWN,
                        "attestation identity is not endorsed")
        signer = getattr(view, "signer", None)
        if signers and (signer is None or bytes(signer) not in signers):
            return deny(Reason.SIGNER_UNKNOWN,
                        "signer measurement matches no accepted value")
        if getattr(view, "debug", False) and not allow_debug:
            return deny(Reason.DEBUG_REJECTED,
                        "debug-launched enclaves are not accepted")
        svn = getattr(view, "svn", None)
        if minimum_svn and (svn is None or svn < minimum_svn):
            return deny(Reason.SVN_BELOW_MINIMUM,
                        f"svn {svn} is below the accepted minimum "
                        f"{minimum_svn}")
        if tuple(view.version) < minimum_version:
            return deny(Reason.VERSION_BELOW_MINIMUM,
                        f"evidence version {tuple(view.version)} is below "
                        f"the accepted minimum {minimum_version}")
        boot = getattr(view, "boot_claim", None)
        if boots and (boot is None or bytes(boot) not in boots):
            return deny(Reason.BOOT_UNKNOWN,
                        "boot-chain measurement matches no accepted value")
        return Verdict(True, Reason.OK, tee_type)
