"""Synthetic SGX/TDX attester stacks for driving mixed-TEE fleets.

The repo's simulated hardware is TrustZone (the paper's platform); these
classes stand in for the *other* side of a heterogeneous fleet — a
Twine-style SGX enclave or a TDX domain attesting the same Wasm module.
Each holds a deterministic P-256 attestation key pair and a fixed set of
measurement registers, and produces signed evidence for a session anchor
through the matching codec's ``build()``. The protocol driving (ECDH,
session keys, msg0/1/2/3) reuses :class:`repro.core.attester.Attester`
unchanged — the multi-TEE message variants are backend-agnostic.

Determinism matters here: the load generator and the tests derive every
enclave from an integer index, so populations are reproducible and the
verifier-side policy can be provisioned without carrying key material
around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.appraisal.codecs import sgx, tdx
from repro.appraisal.envelope import TEE_SGX, TEE_TDX
from repro.crypto import ecdsa
from repro.crypto.hashing import sha256


def _seed_stream(seed: bytes):
    """A deterministic byte stream: sha256 in counter mode over the seed."""
    state = {"counter": 0, "pool": b""}

    def read(n: int) -> bytes:
        while len(state["pool"]) < n:
            state["pool"] += sha256(
                seed + state["counter"].to_bytes(8, "big"))
            state["counter"] += 1
        out, state["pool"] = state["pool"][:n], state["pool"][n:]
        return out

    return read


def _derive_keypair(seed: bytes) -> ecdsa.KeyPair:
    return ecdsa.keypair_from_seed_stream(_seed_stream(seed))


@dataclass
class SyntheticSgxEnclave:
    """An SGX-shaped device: measurement pair, SVN, debug flag, quote key."""

    keypair: ecdsa.KeyPair
    mrenclave: bytes
    mrsigner: bytes
    isv_svn: int = 1
    debug: bool = False

    tee_type = TEE_SGX

    @property
    def attestation_public_key(self) -> bytes:
        return self.keypair.public_bytes()

    def collect_evidence(self, anchor: bytes) -> sgx.SgxEvidence:
        """Issue a signed quote binding this session's anchor."""
        return sgx.build(
            anchor=anchor,
            mrenclave=self.mrenclave,
            mrsigner=self.mrsigner,
            isv_svn=self.isv_svn,
            debug=self.debug,
            attestation_public_key=self.attestation_public_key,
            sign=lambda body: ecdsa.sign(self.keypair.private, body),
        )


@dataclass
class SyntheticTdxDomain:
    """A TDX-shaped device: MRTD plus four RTMRs, quote key."""

    keypair: ecdsa.KeyPair
    mrtd: bytes
    rtmrs: Tuple[bytes, ...]

    tee_type = TEE_TDX

    @property
    def attestation_public_key(self) -> bytes:
        return self.keypair.public_bytes()

    def collect_evidence(self, anchor: bytes) -> tdx.TdxEvidence:
        return tdx.build(
            anchor=anchor,
            mrtd=self.mrtd,
            rtmrs=self.rtmrs,
            attestation_public_key=self.attestation_public_key,
            sign=lambda body: ecdsa.sign(self.keypair.private, body),
        )


def _register(label: str, seed: bytes, width: int) -> bytes:
    digest = sha256(label.encode() + b"|" + seed)
    while len(digest) < width:
        digest += sha256(digest)
    return digest[:width]


def sgx_enclave(index: int, claim: bytes, isv_svn: int = 1,
                debug: bool = False,
                mrsigner: bytes = None) -> SyntheticSgxEnclave:
    """A reproducible SGX-shaped device for fleet index ``index``.

    ``claim`` becomes the MRENCLAVE, so a TrustZone board and an SGX
    enclave attesting the same Wasm module present the same primary
    measurement to the policy. All enclaves share one vendor MRSIGNER
    unless overridden.
    """
    seed = b"sgx-enclave|" + index.to_bytes(8, "big")
    return SyntheticSgxEnclave(
        keypair=_derive_keypair(seed),
        mrenclave=bytes(claim),
        mrsigner=mrsigner if mrsigner is not None else vendor_mrsigner(),
        isv_svn=isv_svn,
        debug=debug,
    )


def tdx_domain(index: int, claim: bytes) -> SyntheticTdxDomain:
    """A reproducible TDX-shaped device for fleet index ``index``.

    ``claim`` becomes the MRTD (widened to the 48-byte register) and the
    RTMRs accumulate a fixed reference boot sequence, identical across
    the fleet, so one policy entry covers every domain.
    """
    seed = b"tdx-domain|" + index.to_bytes(8, "big")
    return SyntheticTdxDomain(
        keypair=_derive_keypair(seed),
        mrtd=reference_mrtd(claim),
        rtmrs=reference_rtmrs(),
    )


def reference_mrtd(claim: bytes) -> bytes:
    """The MRTD a genuine domain running ``claim`` presents."""
    return _register("tdx-mrtd", bytes(claim), tdx.REGISTER_SIZE)


def reference_rtmrs() -> Tuple[bytes, ...]:
    """The RTMR values of the reference boot sequence."""
    return tuple(
        _register(f"tdx-rtmr-{i}", b"reference-boot", tdx.REGISTER_SIZE)
        for i in range(tdx.RTMR_COUNT))


def vendor_mrsigner() -> bytes:
    """The shared MRSIGNER of :func:`sgx_enclave` populations."""
    return _register("sgx-vendor-signer", b"", sgx.MEASUREMENT_SIZE)
