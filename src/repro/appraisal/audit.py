"""Append-only audit log for appraisal decisions.

Every accept and every deny a relying party issues is an event an
operator may later have to account for — which policy fingerprint was in
force, what evidence shape arrived, why it was denied. The log is
append-only by construction: entries are frozen, the buffer only grows
(up to a bounded ring, mirroring :class:`repro.obs.tracer.Tracer`), and
each entry carries a hash chained over its predecessor so any tampering
or truncation in an exported log is detectable.

The log is in-process state, one per verifier (per shard in the fleet);
exports are plain dicts so :mod:`repro.obs.export` tooling can persist
them alongside span dumps.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.appraisal.envelope import tee_name
from repro.crypto.hashing import SHA256_SIZE, sha256

#: Default ring capacity; old entries fall off but the chain head of the
#: full history is preserved in ``head``.
AUDIT_CAPACITY = 4096

_GENESIS = b"\x00" * SHA256_SIZE


@dataclass(frozen=True)
class AuditEntry:
    """One appraisal decision, chained to its predecessor."""

    sequence: int
    tee_type: int
    accepted: bool
    reason: str
    policy_fingerprint: bytes
    detail: str = ""
    #: sha256 over the predecessor's digest plus this entry's fields.
    digest: bytes = b""

    @property
    def tee(self) -> str:
        return tee_name(self.tee_type)

    def to_dict(self) -> Dict[str, object]:
        return {
            "sequence": self.sequence,
            "tee": self.tee,
            "tee_type": self.tee_type,
            "accepted": self.accepted,
            "reason": self.reason,
            "policy_fingerprint": self.policy_fingerprint.hex(),
            "detail": self.detail,
            "digest": self.digest.hex(),
        }


def _chain(previous: bytes, sequence: int, tee_type: int, accepted: bool,
           reason: str, policy_fingerprint: bytes, detail: str) -> bytes:
    return sha256(
        previous
        + sequence.to_bytes(8, "big")
        + bytes([tee_type, 1 if accepted else 0])
        + reason.encode()
        + b"|"
        + policy_fingerprint
        + detail.encode()
    )


class AuditLog:
    """Bounded, hash-chained, append-only record of verdicts."""

    def __init__(self, capacity: int = AUDIT_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._entries: deque = deque(maxlen=capacity)
        self._sequence = 0
        self._head = _GENESIS

    def record(self, tee_type: int, accepted: bool, reason: str,
               policy_fingerprint: bytes, detail: str = "") -> AuditEntry:
        """Append one decision; returns the chained entry."""
        with self._lock:
            digest = _chain(self._head, self._sequence, tee_type, accepted,
                            reason, policy_fingerprint, detail)
            entry = AuditEntry(
                sequence=self._sequence,
                tee_type=tee_type,
                accepted=accepted,
                reason=reason,
                policy_fingerprint=bytes(policy_fingerprint),
                detail=detail,
                digest=digest,
            )
            self._entries.append(entry)
            self._sequence += 1
            self._head = digest
            return entry

    @property
    def head(self) -> bytes:
        """Chain head over the *entire* history, including dropped entries."""
        with self._lock:
            return self._head

    def __len__(self) -> int:
        with self._lock:
            return self._sequence

    def entries(self) -> List[AuditEntry]:
        """The retained window, oldest first."""
        with self._lock:
            return list(self._entries)

    def tail(self, count: int = 10) -> List[AuditEntry]:
        with self._lock:
            return list(self._entries)[-count:]

    def entries_since(self, sequence: int) -> List[AuditEntry]:
        """Retained entries with ``sequence >= sequence``, oldest first.

        The incremental-export surface the verifier hierarchy drains:
        an edge relay remembers the last sequence it forwarded and asks
        only for what is new. Entries that already fell off the bounded
        ring are gone — the root detects the resulting chain gap.
        """
        with self._lock:
            return [entry for entry in self._entries
                    if entry.sequence >= sequence]

    def denials(self) -> List[AuditEntry]:
        return [entry for entry in self.entries() if not entry.accepted]

    def counts_by_reason(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.entries():
            counts[entry.reason] = counts.get(entry.reason, 0) + 1
        return counts

    def export(self) -> List[Dict[str, object]]:
        return [entry.to_dict() for entry in self.entries()]


def entry_from_dict(data: Dict[str, object]) -> AuditEntry:
    """Rebuild an entry exported by :meth:`AuditEntry.to_dict`.

    The inverse the hierarchy needs to verify chains that crossed a
    process boundary as JSON (the sharded gateway's ``OP_AUDIT``).
    """
    return AuditEntry(
        sequence=int(data["sequence"]),
        tee_type=int(data["tee_type"]),
        accepted=bool(data["accepted"]),
        reason=str(data["reason"]),
        policy_fingerprint=bytes.fromhex(str(data["policy_fingerprint"])),
        detail=str(data["detail"]),
        digest=bytes.fromhex(str(data["digest"])),
    )


def verify_chain(entries: List[AuditEntry],
                 previous: Optional[bytes] = None) -> bool:
    """Check a contiguous run of entries against its hash chain.

    ``previous`` is the digest preceding the first entry — ``None`` means
    the run starts at the genesis (sequence 0). Detects reordering,
    field tampering and dropped middles; cannot (by design) distinguish a
    shorter-but-valid prefix from the full log, which is what ``head``
    is for.
    """
    if previous is None:
        previous = _GENESIS
    for entry in entries:
        expected = _chain(previous, entry.sequence, entry.tee_type,
                          entry.accepted, entry.reason,
                          entry.policy_fingerprint, entry.detail)
        if expected != entry.digest:
            return False
        previous = entry.digest
    return True
