"""Multi-TEE evidence appraisal: pluggable codecs, declarative policy.

WaTZ's verifier appraises exactly one evidence shape — the TrustZone
claims structure its runtime TA emits. A production relying party serves
a heterogeneous fleet: TrustZone boards, Twine-style SGX enclaves and
TDX-style domains all attesting the *same* Wasm module. This package
generalises the appraisal side without touching the native wire format:

* :mod:`~repro.appraisal.envelope` — a versioned self-describing
  envelope (``tee_type`` tag + opaque per-backend body) and the
  :class:`~repro.appraisal.envelope.CodecRegistry` of pluggable codecs;
* :mod:`~repro.appraisal.codecs` — the three built-in backends
  (TrustZone bytes unchanged, SGX-style, TDX-style), each with its own
  signature-verification path over :mod:`repro.crypto`;
* :mod:`~repro.appraisal.policy` — policies as data, compiled to an
  evaluator returning structured verdicts with stable reason codes, plus
  the revocation killswitch (epoch-bumping, fingerprint-scoped);
* :mod:`~repro.appraisal.audit` — the append-only, hash-chained audit
  log of every accept/deny;
* :mod:`~repro.appraisal.engine` — the object tying them together for
  the verifier and the fleet shards;
* :mod:`~repro.appraisal.synthetic` — synthetic SGX/TDX attester stacks
  so the load generator and the tests can drive mixed-TEE populations.
"""

from repro.appraisal.audit import AuditEntry, AuditLog, verify_chain
from repro.appraisal.engine import TEE_UNKNOWN, AppraisalEngine
from repro.appraisal.envelope import (
    ENVELOPE_HEADER_SIZE,
    ENVELOPE_MAGIC,
    ENVELOPE_VERSION,
    TEE_NAMES,
    TEE_SGX,
    TEE_TDX,
    TEE_TRUSTZONE,
    CodecRegistry,
    decode_envelope,
    default_registry,
    encode_envelope,
    tee_name,
)
from repro.appraisal.policy import (
    AppraisalPolicy,
    PolicyEvaluator,
    Reason,
    TeePolicy,
    Verdict,
)

__all__ = [
    "AppraisalEngine",
    "AppraisalPolicy",
    "AuditEntry",
    "AuditLog",
    "CodecRegistry",
    "ENVELOPE_HEADER_SIZE",
    "ENVELOPE_MAGIC",
    "ENVELOPE_VERSION",
    "PolicyEvaluator",
    "Reason",
    "TEE_NAMES",
    "TEE_SGX",
    "TEE_TDX",
    "TEE_TRUSTZONE",
    "TEE_UNKNOWN",
    "TeePolicy",
    "Verdict",
    "decode_envelope",
    "default_registry",
    "encode_envelope",
    "tee_name",
    "verify_chain",
]
