"""WaTZ core: runtime TA, WASI-RA, remote-attestation protocol, verifier."""

from repro.core.attester import Attester, AttesterSession
from repro.core.evidence import (
    EVIDENCE_SIZE,
    WATZ_VERSION,
    Evidence,
    SignedEvidence,
)
from repro.core.measurement import Measurement, MeasuringCopier, measure_bytes
from repro.core.runtime import (
    CMD_INVOKE,
    CMD_LOAD,
    CMD_MEASUREMENT,
    CMD_STDOUT,
    CMD_UNLOAD,
    LoadedApp,
    NormalWorldRuntime,
    StartupBreakdown,
    WatzRuntime,
    watz_manifest,
)
from repro.core.server import (
    CMD_HANDLE_MESSAGE,
    VERIFIER_UUID,
    VerifierListener,
    make_verifier_ta,
    start_verifier,
)
from repro.core.transport import ClientConnection, Network, Service
from repro.core.verifier import Verifier, VerifierPolicy, VerifierSession
from repro.core.wasi_ra import WATZ_MODULE, WasiRa, build_wasi_ra_imports

__all__ = [
    "Attester",
    "AttesterSession",
    "Verifier",
    "VerifierPolicy",
    "VerifierSession",
    "Evidence",
    "SignedEvidence",
    "EVIDENCE_SIZE",
    "WATZ_VERSION",
    "Measurement",
    "MeasuringCopier",
    "measure_bytes",
    "WatzRuntime",
    "NormalWorldRuntime",
    "LoadedApp",
    "StartupBreakdown",
    "watz_manifest",
    "CMD_LOAD",
    "CMD_INVOKE",
    "CMD_STDOUT",
    "CMD_MEASUREMENT",
    "CMD_UNLOAD",
    "Network",
    "Service",
    "ClientConnection",
    "start_verifier",
    "make_verifier_ta",
    "VerifierListener",
    "VERIFIER_UUID",
    "CMD_HANDLE_MESSAGE",
    "WasiRa",
    "build_wasi_ra_imports",
    "WATZ_MODULE",
]
