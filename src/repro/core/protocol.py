"""Wire formats of the WaTZ remote-attestation protocol (paper Table II).

::

    msg0 := G_a
    msg1 := content1 || MAC_Km(content1)
            content1 := G_v || V || SIGN_V(G_v || G_a)
    msg2 := content2 || MAC_Km(content2)
            content2 := G_a || evidence || SIGN_A(evidence)
            evidence := (anchor || A || ...),  anchor := HASH(G_a || G_v)
    msg3 := iv || AES-GCM_Ke(data)

Each message carries a one-byte type tag so misordered messages are
detected explicitly rather than by parse failure. The instrumentation
hooks (:class:`CostRecorder`) reproduce Table III's per-message cost
breakdown into memory management / key generation / symmetric / asymmetric
categories.
"""

from __future__ import annotations

import struct
import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Sequence, Tuple

from repro.crypto import ecdsa
from repro.crypto.cmac import MAC_SIZE
from repro.crypto.gcm import IV_SIZE, TAG_SIZE, AesGcm
from repro.crypto.hashing import sha256
from repro.core.evidence import EVIDENCE_SIZE, SignedEvidence
from repro.errors import ProtocolError

POINT_SIZE = 65

MSG0 = 0x00
MSG1 = 0x01
MSG2 = 0x02
MSG3 = 0x03
#: §IV extension: msg2 with the evidence protected by AES-GCM under K_e
#: ("if the secrecy of this structure is a concern").
MSG2_ENC = 0x12
#: Fleet extension: msg3 whose sealed payload is prefixed with a
#: resumption key (see :mod:`repro.fleet.cache`). The key rides inside
#: the AES-GCM envelope, so only the attester that completed this
#: session's key exchange — and whose evidence signature was fully
#: verified — ever learns it.
MSG3_RESUME = 0x13
#: Multi-TEE extension (:mod:`repro.appraisal`): the attester opens by
#: declaring its evidence shape (``tee_type`` tag); the verifier echoes
#: the accepted tag inside msg1's MAC'd content, and msg2 carries a
#: self-describing evidence *envelope* instead of the bare TrustZone
#: structure. Distinct tags keep the legacy transcript byte-identical:
#: a legacy attester never sees — and never emits — these.
MSG0_MULTI = 0x20
MSG1_MULTI = 0x21
MSG2_MULTI = 0x22

#: Secret handed out after a fully verified appraisal; presenting a CMAC
#: under it (the msg2 *ticket*) is what authorises the verifier to skip
#: the ECDSA re-verify on re-attestation.
RESUMPTION_KEY_SIZE = 16
#: The msg2 resumption ticket is one AES-CMAC tag.
TICKET_SIZE = MAC_SIZE

_MSG0_SIZE = 1 + POINT_SIZE
_CONTENT1_SIZE = POINT_SIZE + POINT_SIZE + ecdsa.SIGNATURE_SIZE
_MSG1_SIZE = 1 + _CONTENT1_SIZE + MAC_SIZE
# EVIDENCE_SIZE already includes SIGN_A(evidence).
_CONTENT2_SIZE = POINT_SIZE + EVIDENCE_SIZE
_MSG2_SIZE = 1 + _CONTENT2_SIZE + MAC_SIZE
_MSG2_TICKET_SIZE = _MSG2_SIZE + TICKET_SIZE


def compute_anchor(g_a: bytes, g_v: bytes) -> bytes:
    """The session anchor: HASH(G_a || G_v) (paper §IV, msg2)."""
    return sha256(g_a + g_v)


# --- encodings ---------------------------------------------------------------


def encode_msg0(g_a: bytes) -> bytes:
    return bytes([MSG0]) + g_a


def decode_msg0(data: bytes) -> bytes:
    if len(data) != _MSG0_SIZE or data[0] != MSG0:
        raise ProtocolError("malformed msg0")
    return data[1:]


def encode_msg1(g_v: bytes, verifier_key: bytes, signature: bytes,
                mac: bytes) -> bytes:
    return bytes([MSG1]) + g_v + verifier_key + signature + mac


@dataclass(frozen=True)
class Msg1:
    g_v: bytes
    verifier_key: bytes
    signature: bytes
    mac: bytes

    @property
    def content(self) -> bytes:
        return self.g_v + self.verifier_key + self.signature


def decode_msg1(data: bytes) -> Msg1:
    if len(data) != _MSG1_SIZE or data[0] != MSG1:
        raise ProtocolError("malformed msg1")
    offset = 1
    g_v = data[offset : offset + POINT_SIZE]
    offset += POINT_SIZE
    verifier_key = data[offset : offset + POINT_SIZE]
    offset += POINT_SIZE
    signature = data[offset : offset + ecdsa.SIGNATURE_SIZE]
    offset += ecdsa.SIGNATURE_SIZE
    return Msg1(g_v, verifier_key, signature, data[offset:])


def encode_msg2(g_a: bytes, signed_evidence: SignedEvidence,
                mac: bytes, ticket: bytes = b"") -> bytes:
    """``ticket`` (optional) is the resumption CMAC; it sits inside the
    session-MAC'd content, so it cannot be stripped or spliced."""
    return bytes([MSG2]) + g_a + signed_evidence.encode() + ticket + mac


_SEALED_EVIDENCE_SIZE = EVIDENCE_SIZE + 16  # GCM tag
_MSG2_ENC_SIZE = 1 + POINT_SIZE + IV_SIZE + _SEALED_EVIDENCE_SIZE + MAC_SIZE


def encode_msg2_encrypted(g_a: bytes, iv: bytes, sealed_evidence: bytes,
                          mac: bytes) -> bytes:
    return bytes([MSG2_ENC]) + g_a + iv + sealed_evidence + mac


@dataclass(frozen=True)
class Msg2Encrypted:
    g_a: bytes
    iv: bytes
    sealed_evidence: bytes
    mac: bytes

    @property
    def content(self) -> bytes:
        return self.g_a + self.iv + self.sealed_evidence


def decode_msg2_encrypted(data: bytes) -> "Msg2Encrypted":
    if len(data) != _MSG2_ENC_SIZE or data[0] != MSG2_ENC:
        raise ProtocolError("malformed encrypted msg2")
    offset = 1
    g_a = data[offset : offset + POINT_SIZE]
    offset += POINT_SIZE
    iv = data[offset : offset + IV_SIZE]
    offset += IV_SIZE
    sealed = data[offset : offset + _SEALED_EVIDENCE_SIZE]
    offset += _SEALED_EVIDENCE_SIZE
    return Msg2Encrypted(g_a, iv, sealed, data[offset:])


@dataclass(frozen=True)
class Msg2:
    g_a: bytes
    signed_evidence: SignedEvidence
    mac: bytes
    #: Resumption ticket: CMAC over the evidence body under the key a
    #: prior *fully verified* appraisal handed out (empty when absent).
    ticket: bytes = b""

    @property
    def content(self) -> bytes:
        return self.g_a + self.signed_evidence.encode() + self.ticket


def decode_msg2(data: bytes) -> Msg2:
    if len(data) not in (_MSG2_SIZE, _MSG2_TICKET_SIZE) or data[0] != MSG2:
        raise ProtocolError("malformed msg2")
    offset = 1
    g_a = data[offset : offset + POINT_SIZE]
    offset += POINT_SIZE
    evidence = SignedEvidence.decode(data[offset : offset + EVIDENCE_SIZE])
    offset += EVIDENCE_SIZE
    ticket = b""
    if len(data) == _MSG2_TICKET_SIZE:
        ticket = data[offset : offset + TICKET_SIZE]
        offset += TICKET_SIZE
    mac = data[offset:]
    return Msg2(g_a, evidence, mac, ticket)


# --- multi-TEE envelope variants (repro.appraisal) ---------------------------
#
# msg0_multi := tag || u8 tee_type || G_a
# msg1_multi := tag || u8 tee_type || content1 || MAC_Km(tee_type || content1)
# msg2_multi := tag || content2m || MAC_Km(content2m)
#               content2m := G_a || u32 env_len || envelope || [ticket]
#
# The negotiated ``tee_type`` rides *inside* msg1's MAC'd bytes, so a
# man-in-the-middle cannot downgrade or redirect the negotiation once the
# session keys exist; the envelope's own header carries the tag inside
# msg2's MAC'd content (and inside the ticket CMAC) for the same reason.

_MSG0_MULTI_SIZE = 2 + POINT_SIZE
_MSG1_MULTI_SIZE = 2 + _CONTENT1_SIZE + MAC_SIZE


def encode_msg0_multi(tee_type: int, g_a: bytes) -> bytes:
    return bytes([MSG0_MULTI, tee_type]) + g_a


def decode_msg0_multi(data: bytes) -> Tuple[int, bytes]:
    if len(data) != _MSG0_MULTI_SIZE or data[0] != MSG0_MULTI:
        raise ProtocolError("malformed multi-TEE msg0")
    return data[1], data[2:]


def encode_msg1_multi(tee_type: int, g_v: bytes, verifier_key: bytes,
                      signature: bytes, mac: bytes) -> bytes:
    return (bytes([MSG1_MULTI, tee_type]) + g_v + verifier_key + signature
            + mac)


@dataclass(frozen=True)
class Msg1Multi:
    tee_type: int
    g_v: bytes
    verifier_key: bytes
    signature: bytes
    mac: bytes

    @property
    def content(self) -> bytes:
        """The MAC'd bytes — the negotiated tag is covered."""
        return (bytes([self.tee_type]) + self.g_v + self.verifier_key
                + self.signature)


def decode_msg1_multi(data: bytes) -> Msg1Multi:
    if len(data) != _MSG1_MULTI_SIZE or data[0] != MSG1_MULTI:
        raise ProtocolError("malformed multi-TEE msg1")
    offset = 1
    tee_type = data[offset]
    offset += 1
    g_v = data[offset : offset + POINT_SIZE]
    offset += POINT_SIZE
    verifier_key = data[offset : offset + POINT_SIZE]
    offset += POINT_SIZE
    signature = data[offset : offset + ecdsa.SIGNATURE_SIZE]
    offset += ecdsa.SIGNATURE_SIZE
    return Msg1Multi(tee_type, g_v, verifier_key, signature, data[offset:])


def encode_msg2_multi(g_a: bytes, envelope: bytes, mac: bytes,
                      ticket: bytes = b"") -> bytes:
    return (bytes([MSG2_MULTI]) + g_a + struct.pack("<I", len(envelope))
            + envelope + ticket + mac)


@dataclass(frozen=True)
class Msg2Multi:
    g_a: bytes
    envelope: bytes
    mac: bytes
    #: CMAC over the *envelope* bytes (tag header included) under the
    #: resumption key — see :mod:`repro.fleet.cache`.
    ticket: bytes = b""

    @property
    def content(self) -> bytes:
            return (self.g_a + struct.pack("<I", len(self.envelope))
                + self.envelope + self.ticket)


def decode_msg2_multi(data: bytes) -> Msg2Multi:
    fixed = 1 + POINT_SIZE + 4
    if len(data) < fixed + MAC_SIZE or data[0] != MSG2_MULTI:
        raise ProtocolError("malformed multi-TEE msg2")
    offset = 1
    g_a = data[offset : offset + POINT_SIZE]
    offset += POINT_SIZE
    (env_len,) = struct.unpack_from("<I", data, offset)
    offset += 4
    if len(data) < offset + env_len + MAC_SIZE:
        raise ProtocolError("multi-TEE msg2 truncates its envelope")
    envelope = data[offset : offset + env_len]
    offset += env_len
    trailer = len(data) - offset - MAC_SIZE
    if trailer == 0:
        ticket = b""
    elif trailer == TICKET_SIZE:
        ticket = data[offset : offset + TICKET_SIZE]
        offset += TICKET_SIZE
    else:
        raise ProtocolError("multi-TEE msg2 carries a malformed ticket")
    return Msg2Multi(bytes(g_a), bytes(envelope), bytes(data[offset:]),
                     bytes(ticket))


def encode_msg3(iv: bytes, sealed: bytes, resume: bool = False) -> bytes:
    """``resume`` tags msg3 whose sealed payload carries a leading
    resumption key (:data:`RESUMPTION_KEY_SIZE` bytes) before the secret."""
    return bytes([MSG3_RESUME if resume else MSG3]) + iv + sealed


def decode_msg3(data: bytes) -> Tuple[bytes, bytes]:
    if len(data) < 1 + IV_SIZE or data[0] not in (MSG3, MSG3_RESUME):
        raise ProtocolError("malformed msg3")
    return data[1 : 1 + IV_SIZE], data[1 + IV_SIZE :]


#: Chunk size of the streaming msg3 pipeline. 128 KiB keeps every
#: intermediate buffer cache-sized while amortising per-chunk dispatch
#: overhead to noise; the optee shared-memory charge uses the same
#: granularity (``repro.optee.gp_api.SHARED_COPY_CHUNK``).
MSG3_CHUNK_SIZE = 128 * 1024


def seal_msg3(gcm: AesGcm, iv: bytes, chunks: Sequence[bytes],
              resume: bool = False) -> bytes:
    """Streamed counterpart of :func:`encode_msg3` + ``AesGcm.seal``.

    Every payload chunk is encrypted directly into the wire buffer — tag
    byte, IV, ciphertext, and tag are produced in one pass with no
    full-payload intermediate (the resume variant previously concatenated
    key and secret before sealing a copy).
    """
    stream = gcm.stream_seal(iv)
    total = sum(len(chunk) for chunk in chunks)
    message = bytearray(1 + IV_SIZE + total + TAG_SIZE)
    message[0] = MSG3_RESUME if resume else MSG3
    message[1 : 1 + IV_SIZE] = iv
    view = memoryview(message)
    offset = 1 + IV_SIZE
    for chunk in chunks:
        offset += stream.update_into(chunk, view[offset:])
    view[offset:] = stream.final()
    return bytes(message)


def open_msg3(gcm: AesGcm, data: bytes,
              chunk_size: int = MSG3_CHUNK_SIZE) -> bytes:
    """Streamed counterpart of :func:`decode_msg3` + ``AesGcm.open``.

    The sealed payload reaches the cipher as memoryview chunks (no
    ciphertext copy); plaintext is only materialised — once — after the
    tag verifies.
    """
    if len(data) < 1 + IV_SIZE or data[0] not in (MSG3, MSG3_RESUME):
        raise ProtocolError("malformed msg3")
    view = memoryview(data)
    iv = bytes(view[1 : 1 + IV_SIZE])
    stream = gcm.stream_open(iv)
    for offset in range(1 + IV_SIZE, len(data), chunk_size):
        stream.update(view[offset : offset + chunk_size])
    return stream.final()


# --- instrumentation -------------------------------------------------------------

MEMORY = "memory"
KEYGEN = "keygen"
SYMMETRIC = "symmetric"
ASYMMETRIC = "asymmetric"

CATEGORIES = (MEMORY, KEYGEN, SYMMETRIC, ASYMMETRIC)


class CostRecorder:
    """Accumulates real execution time per (message, category).

    Reproduces Table III: attester/verifier both carry one recorder and
    wrap each cryptographic phase, so the bench can print the same rows.
    """

    def __init__(self) -> None:
        self.seconds: Dict[Tuple[str, str], float] = defaultdict(float)

    @contextmanager
    def phase(self, message: str, category: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.seconds[(message, category)] += time.perf_counter() - start

    def get(self, message: str, category: str) -> float:
        return self.seconds.get((message, category), 0.0)

    def reset(self) -> None:
        self.seconds.clear()


class NullRecorder(CostRecorder):
    """A recorder that skips the clock reads (production path)."""

    @contextmanager
    def phase(self, message: str, category: str) -> Iterator[None]:
        yield
