"""The WaTZ runtime: a trusted application hosting Wasm applications.

The flow of paper Fig. 2: the normal world places AOT bytecode in a shared
buffer and invokes the runtime TA; the runtime copies the bytecode into
secure memory *measuring it as it goes*, allocates executable pages
through the kernel extension, instantiates the module with WASI + WASI-RA
bindings, and executes it. The per-phase startup breakdown (Fig. 4) is
recorded on every load.

A :class:`NormalWorldRuntime` (the WAMR-outside-the-TEE baseline of
Figs. 5/6/8) shares the engines but binds WASI to the cheap normal-world
clock and skips all world transitions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.attester import Attester
from repro.core.measurement import Measurement, MeasuringCopier
from repro.core.wasi_ra import WasiRa, build_wasi_ra_imports
from repro.errors import TeeBadParameters
from repro.optee.ta import TaManifest, TrustedApplication
from repro.wasi import ProcExit, WasiEnvironment, build_wasi_imports
from repro.wasm import AotCompiler, Interpreter
from repro.wasm import codecache
from repro.wasm.decoder import decode_module
from repro.wasm.runtime import Instance
from repro.wasm.validation import validate_module

# Runtime TA commands.
CMD_LOAD = 1
CMD_INVOKE = 2
CMD_STDOUT = 3
CMD_MEASUREMENT = 4
CMD_UNLOAD = 5
CMD_HOSTCALLS = 6

#: Observed by the paper (§VI-B): loading an AOT module roughly doubles the
#: resident size because WAMR allocates a structure per relocation entry.
RELOCATION_OVERHEAD_FACTOR = 2

_ENGINES = {
    "aot": AotCompiler,
    "interpreter": Interpreter,
}


def _make_engine(engine_name: str, opt_level=None, tracer=None,
                 profile=None):
    """Construct an execution engine, forwarding AOT-only options.

    ``opt_level`` selects the AOT optimisation tier (``None`` keeps the
    process default, see :func:`repro.wasm.default_opt_level`);
    ``profile`` feeds tier 3 (anything
    :meth:`repro.wasm.pgo.Profile.coerce` accepts — a Profile, a dict, or
    canonical JSON text); the interpreter has no tiers and ignores all
    three knobs.
    """
    factory = _ENGINES[engine_name]
    if factory is AotCompiler:
        return factory(opt_level=opt_level, tracer=tracer, profile=profile)
    return factory()


@dataclass
class StartupBreakdown:
    """Fig. 4's phases. Real seconds, except the simulated transition."""

    transition_ns: int = 0
    alloc_s: float = 0.0
    runtime_init_s: float = 0.0
    load_s: float = 0.0
    hash_s: float = 0.0
    instantiate_s: float = 0.0
    execute_s: float = 0.0

    @property
    def total_s(self) -> float:
        return (self.transition_ns * 1e-9 + self.alloc_s
                + self.runtime_init_s + self.load_s + self.hash_s
                + self.instantiate_s + self.execute_s)

    def fractions(self) -> Dict[str, float]:
        total = self.total_s or 1.0
        return {
            "transition": self.transition_ns * 1e-9 / total,
            "alloc": self.alloc_s / total,
            "runtime_init": self.runtime_init_s / total,
            "load": self.load_s / total,
            "hash": self.hash_s / total,
            "instantiate": self.instantiate_s / total,
            "execute": self.execute_s / total,
        }


@dataclass
class LoadedApp:
    """A hosted Wasm application inside the runtime."""

    instance: Instance
    measurement: Measurement
    wasi_env: WasiEnvironment
    wasi_ra: Optional[WasiRa]
    breakdown: StartupBreakdown
    allocated_bytes: int = 0
    executable_region: object = None
    #: repro.obs.record.HostCallLog when loaded with record_hostcalls.
    hostcall_log: object = None


class WatzRuntime(TrustedApplication):
    """The WaTZ trusted application (the attester of Fig. 2)."""

    #: Execution engine; "aot" is the paper's choice, "interpreter" the
    #: ablation baseline.
    engine_name = "aot"

    def open_session(self, api) -> None:
        super().open_session(api)
        self._apps: Dict[int, LoadedApp] = {}
        self._next_handle = 1

    # -- TA command dispatch ----------------------------------------------------

    def invoke(self, command: int, params: dict) -> dict:
        if command == CMD_LOAD:
            return self._cmd_load(params)
        if command == CMD_INVOKE:
            return self._cmd_invoke(params)
        if command == CMD_STDOUT:
            return {"stdout": self._app(params).wasi_env.stdout_text()}
        if command == CMD_MEASUREMENT:
            return {"measurement": self._app(params).measurement.hex}
        if command == CMD_UNLOAD:
            return self._cmd_unload(params)
        if command == CMD_HOSTCALLS:
            app = self._app(params)
            if app.hostcall_log is None:
                raise TeeBadParameters(
                    "application was not loaded with record_hostcalls")
            return {"log": app.hostcall_log.to_json()}
        raise TeeBadParameters(f"unknown runtime command {command}")

    def _app(self, params: dict) -> LoadedApp:
        app = self._apps.get(params.get("app"))
        if app is None:
            raise TeeBadParameters("unknown application handle")
        return app

    # -- loading -------------------------------------------------------------------

    def _cmd_load(self, params: dict) -> dict:
        shared_buffer = params["bytecode"]
        size = params.get("size", len(shared_buffer.data))
        engine_name = params.get("engine", self.engine_name)
        args = params.get("args")
        entry = params.get("entry")

        api = self.api
        breakdown = StartupBreakdown(
            transition_ns=api.costs.world_enter_ns
        )

        # Phase 1: memory allocation — a secure buffer for the bytecode
        # (doubled for relocation bookkeeping, §VI-B) plus executable pages.
        started = time.perf_counter()
        allocated = size * RELOCATION_OVERHEAD_FACTOR
        api.tee_malloc(allocated)
        executable_region = api.alloc_executable(size)
        breakdown.alloc_s = time.perf_counter() - started

        # Phase 2: runtime initialisation — engine construction and native
        # symbol registration (the WASI and WASI-RA bindings).
        started = time.perf_counter()
        engine = _make_engine(engine_name, opt_level=params.get("opt_level"),
                              tracer=api.tracer,
                              profile=params.get("profile"))
        filesystem = None
        if params.get("filesystem"):
            # The WASI-FS extension (paper future work): files live in the
            # TA's GP Trusted Storage and persist across sessions.
            from repro.wasi.filesystem import (
                TrustedStorageBacking,
                WasiFilesystem,
            )

            filesystem = WasiFilesystem(TrustedStorageBacking(api))
        wasi_env = WasiEnvironment(
            args=args,
            clock_ns=api.get_system_time_ns,
            random_bytes=api.generate_random,
            wasi_dispatch=lambda: api.charge_ns(api.costs.wasi_dispatch_ns),
            filesystem=filesystem,
            tracer=api.tracer,
        )
        imports = build_wasi_imports(wasi_env)
        breakdown.runtime_init_s = time.perf_counter() - started

        # Phase 3: loading — copy from the shared buffer into secure
        # memory, then parse, validate and AOT-process the module. This is
        # the paper's dominant phase (73% of startup, Fig. 4): "parses the
        # bytecode and creates the internal structures required to run",
        # including the relocation processing our AOT compilation stands
        # in for. The content-addressed code cache skips the parse/validate
        # (and, below, the per-function compile) when the same binary was
        # loaded before; the bytecode copy and its SimClock charge are real
        # data movement and are always paid.
        cache = codecache.DEFAULT_CACHE if params.get("code_cache", True) \
            else None
        started = time.perf_counter()
        api.charge_ns(api.costs.shared_copy_ns(size))
        copier = MeasuringCopier()
        bytecode = copier.copy(shared_buffer.read(0, size))
        cache_key = None
        cache_entry = None
        if cache is not None:
            cache_key = codecache.CodeCache.module_key(bytecode)
            cache_entry = cache.lookup(cache_key, engine.cache_identity)
        if cache_entry is not None:
            module = cache_entry.module
        else:
            module = decode_module(bytecode)
            validate_module(module)
            if cache is not None:
                cache.store(cache_key, engine.cache_identity, module)
        breakdown.load_s = time.perf_counter() - started

        # Phase 4: measurement (the hash later embedded in evidence).
        started = time.perf_counter()
        measurement = copier.finish()
        breakdown.hash_s = time.perf_counter() - started

        # WASI-RA needs the finished measurement as its claim.
        wasi_ra = WasiRa(api, measurement.digest,
                         Attester(api.generate_random,
                                  params.get("recorder")))
        imports.update(build_wasi_ra_imports(wasi_ra))

        # Optional host-call recording (repro.obs): the log replays the
        # execution as a standalone deterministic benchmark.
        hostcall_log = None
        if params.get("record_hostcalls"):
            from repro.obs.record import record_host_calls

            imports, hostcall_log = record_host_calls(imports)

        # Phase 5: instantiation — memory/table/global setup and linking.
        # The engine's per-function lowering is charged to the load phase,
        # where WAMR's relocation work lives.
        compile_seconds = [0.0]
        original_compile = engine.compile_function

        def timed_compile(*compile_args):
            compile_started = time.perf_counter()
            compiled = original_compile(*compile_args)
            compile_seconds[0] += time.perf_counter() - compile_started
            return compiled

        engine.compile_function = timed_compile
        started = time.perf_counter()
        instance = engine.instantiate(
            module, imports, memory_cap_bytes=api.heap_free,
            code_cache=cache, cache_key=cache_key,
        )
        total_elapsed = time.perf_counter() - started
        breakdown.load_s += compile_seconds[0]
        breakdown.instantiate_s = max(0.0, total_elapsed - compile_seconds[0])

        handle = self._next_handle
        self._next_handle += 1
        app = LoadedApp(
            instance=instance,
            measurement=measurement,
            wasi_env=wasi_env,
            wasi_ra=wasi_ra,
            breakdown=breakdown,
            allocated_bytes=allocated,
            executable_region=executable_region,
            hostcall_log=hostcall_log,
        )
        self._apps[handle] = app

        # Phase 6: optional immediate execution of the entry point.
        if entry is not None:
            started = time.perf_counter()
            self._run(app, entry, params.get("entry_args", ()))
            breakdown.execute_s = time.perf_counter() - started

        return {
            "app": handle,
            "measurement": measurement.hex,
            "breakdown": breakdown,
        }

    # -- execution ------------------------------------------------------------------

    def _run(self, app: LoadedApp, function: str, args) -> object:
        try:
            return app.instance.invoke(function, *args)
        except ProcExit as exit_request:
            return exit_request.code

    def _cmd_invoke(self, params: dict) -> dict:
        app = self._app(params)
        result = self._run(app, params["function"], params.get("args", ()))
        return {"result": result}

    def _cmd_unload(self, params: dict) -> dict:
        handle = params.get("app")
        app = self._apps.pop(handle, None)
        if app is not None:
            self.api.tee_free(app.allocated_bytes)
            self.api.free_executable(app.executable_region)
        return {}


#: The canonical WaTZ TA manifest; heap size is workload-dependent and
#: overridden per benchmark exactly as the paper recompiles the TA.
def watz_manifest(heap_size: int, stack_size: int = 3 * 1024,
                  uuid: str = "watz-runtime") -> TaManifest:
    return TaManifest(uuid=uuid, name="watz", heap_size=heap_size,
                      stack_size=stack_size)


class NormalWorldRuntime:
    """WAMR running in the normal world (the unshielded baseline)."""

    def __init__(self, soc=None, engine_name: str = "aot",
                 opt_level: Optional[int] = None, profile=None) -> None:
        self._soc = soc
        self.engine_name = engine_name
        self.opt_level = opt_level
        self.profile = profile

    def load(self, bytecode: bytes,
             args: Optional[List[str]] = None,
             filesystem=None,
             code_cache=codecache.DEFAULT) -> LoadedApp:
        if self._soc is not None:
            clock_ns = self._soc.read_monotonic_ns
        else:
            clock_ns = lambda: time.perf_counter_ns()
        import os

        wasi_env = WasiEnvironment(args=args, clock_ns=clock_ns,
                                   random_bytes=os.urandom,
                                   filesystem=filesystem)
        imports = build_wasi_imports(wasi_env)
        engine = _make_engine(self.engine_name, opt_level=self.opt_level,
                              profile=self.profile)
        started = time.perf_counter()
        instance = engine.instantiate(bytecode, imports,
                                      code_cache=code_cache)
        load_s = time.perf_counter() - started
        breakdown = StartupBreakdown(instantiate_s=load_s)
        from repro.core.measurement import measure_bytes

        return LoadedApp(
            instance=instance,
            measurement=measure_bytes(bytecode),
            wasi_env=wasi_env,
            wasi_ra=None,
            breakdown=breakdown,
        )

    def invoke(self, app: LoadedApp, function: str, *args):
        try:
            return app.instance.invoke(function, *args)
        except ProcExit as exit_request:
            return exit_request.code
