"""WASI-RA: the paper's WASI extension for remote attestation (§V).

Six host functions, exposed to hosted Wasm applications in the ``watz``
import namespace:

* ``wasi_ra_collect_quote`` / ``wasi_ra_dispose_quote`` — issue and
  release evidence for an arbitrary anchor (transport-agnostic);
* ``wasi_ra_net_handshake`` — run msg0/msg1 against a verifier address,
  returning an attestation context and the session anchor;
* ``wasi_ra_net_send_quote`` — send the evidence (msg2);
* ``wasi_ra_net_receive_data`` — receive and decrypt the secret blob
  (msg3);
* ``wasi_ra_net_dispose`` — release the context.

Errors are reported as negative WASI errno values, so the hosted
application always stays in control of the flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core import protocol
from repro.core.attester import Attester, AttesterSession
from repro.core.evidence import SignedEvidence
from repro.errors import ReproError
from repro.wasi import errno
from repro.wasm.runtime import HostFunction
from repro.wasm.types import FuncType, ValType

WATZ_MODULE = "watz"

I32 = ValType.I32


@dataclass
class _NetContext:
    session: AttesterSession
    socket: int
    received: Optional[bytes] = None


class WasiRa:
    """Per-application WASI-RA state, bound to the runtime's GP API."""

    def __init__(self, api, claim: bytes, attester: Attester) -> None:
        self._api = api
        self._claim = claim
        self._attester = attester
        self._contexts: Dict[int, _NetContext] = {}
        self._quotes: Dict[int, SignedEvidence] = {}
        self._next_handle = 1
        self.last_secret: Optional[bytes] = None

    # -- evidence ------------------------------------------------------------------

    def collect_quote(self, instance, anchor_ptr, anchor_len):
        """Issue evidence for an anchor; returns an opaque handle."""
        self._api.charge_ns(self._api.costs.wasi_dispatch_ns)
        if anchor_len != 32:
            return -errno.EINVAL
        anchor = instance.memory.read(anchor_ptr, anchor_len)
        try:
            signed = self._attester.collect_evidence(
                anchor,
                self._claim,
                self._api.attestation_public_key(),
                self._api.attestation_sign,
                boot_claim=self._api.boot_measurement(),
            )
        except ReproError:
            return -errno.EPROTO
        handle = self._next_handle
        self._next_handle += 1
        self._quotes[handle] = signed
        return handle

    def dispose_quote(self, instance, handle):
        self._api.charge_ns(self._api.costs.wasi_dispatch_ns)
        self._quotes.pop(handle, None)

    # -- networked protocol -----------------------------------------------------------

    def net_handshake(self, instance, host_ptr, host_len, port,
                      vkey_ptr, vkey_len, anchor_out):
        """msg0/msg1 exchange; returns a context handle, writes the anchor.

        The verifier's identity key is read from the application's own
        (measured) memory — hard-coding it in the Wasm binary is what lets
        the verifier detect tampering with the intended service identity.
        """
        self._api.charge_ns(self._api.costs.wasi_dispatch_ns)
        if vkey_len != 65:
            return -errno.EINVAL
        host = instance.memory.read(host_ptr, host_len).decode("utf-8")
        expected_key = instance.memory.read(vkey_ptr, vkey_len)
        try:
            session = self._attester.start_session(expected_key)
            socket = self._api.tcp_connect(host, port)
            self._api.tcp_send(socket, self._attester.make_msg0(session))
            msg1 = self._api.tcp_receive(socket)
            self._attester.handle_msg1(session, msg1)
        except ReproError:
            return -errno.EPROTO
        instance.memory.write(anchor_out, session.anchor)
        handle = self._next_handle
        self._next_handle += 1
        self._contexts[handle] = _NetContext(session, socket)
        return handle

    def net_send_quote(self, instance, context_handle, quote_handle):
        self._api.charge_ns(self._api.costs.wasi_dispatch_ns)
        context = self._contexts.get(context_handle)
        signed = self._quotes.get(quote_handle)
        if context is None or signed is None:
            return -errno.EINVAL
        try:
            message = self._attester.make_msg2(context.session, signed)
            self._api.tcp_send(context.socket, message)
        except ReproError:
            return -errno.EPROTO
        return errno.SUCCESS

    def net_receive_data(self, instance, context_handle, buf_ptr, buf_cap):
        """Receive msg3; returns the blob size (or a negative errno).

        If the buffer is too small nothing is lost: the plaintext is kept
        in the context, and the call can be retried with a larger buffer.
        """
        self._api.charge_ns(self._api.costs.wasi_dispatch_ns)
        context = self._contexts.get(context_handle)
        if context is None:
            return -errno.EINVAL
        if context.received is None:
            try:
                msg3 = self._api.tcp_receive(context.socket)
                context.received = self._attester.handle_msg3(
                    context.session, msg3
                )
            except ReproError:
                return -errno.EPROTO
            self.last_secret = context.received
        received = context.received
        if len(received) > buf_cap:
            return -errno.E2BIG
        # Place the blob into linear memory in pipeline-sized pieces: the
        # plaintext crosses into sandbox memory exactly once, without a
        # full-size intermediate slice.
        view = memoryview(received)
        for offset in range(0, len(view), protocol.MSG3_CHUNK_SIZE):
            instance.memory.write(
                buf_ptr + offset,
                view[offset : offset + protocol.MSG3_CHUNK_SIZE])
        return len(received)

    def net_dispose(self, instance, context_handle):
        self._api.charge_ns(self._api.costs.wasi_dispatch_ns)
        context = self._contexts.pop(context_handle, None)
        if context is not None:
            self._api.tcp_close(context.socket)


_SIGNATURES = {
    "wasi_ra_collect_quote": FuncType((I32, I32), (I32,)),
    "wasi_ra_dispose_quote": FuncType((I32,), ()),
    "wasi_ra_net_handshake": FuncType((I32, I32, I32, I32, I32, I32), (I32,)),
    "wasi_ra_net_send_quote": FuncType((I32, I32), (I32,)),
    "wasi_ra_net_receive_data": FuncType((I32, I32, I32), (I32,)),
    "wasi_ra_net_dispose": FuncType((I32,), ()),
}

_METHODS = {
    "wasi_ra_collect_quote": "collect_quote",
    "wasi_ra_dispose_quote": "dispose_quote",
    "wasi_ra_net_handshake": "net_handshake",
    "wasi_ra_net_send_quote": "net_send_quote",
    "wasi_ra_net_receive_data": "net_receive_data",
    "wasi_ra_net_dispose": "net_dispose",
}


def build_wasi_ra_imports(wasi_ra: WasiRa):
    """Build the ``watz`` import namespace for instantiation.

    When the runtime's board has a tracer attached, each WASI-RA entry
    point is wrapped in a ``wasi.ra.<name>`` span (same discipline as the
    preview1 namespace in :mod:`repro.wasi.host`).
    """
    tracer = getattr(wasi_ra._api, "tracer", None)

    def build(name, method):
        if tracer is None:
            return method

        def traced_call(instance, *args):
            with tracer.span(f"wasi.ra.{name}", world="secure"):
                return method(instance, *args)

        return traced_call

    namespace = {}
    for name, signature in _SIGNATURES.items():
        namespace[name] = HostFunction(
            signature, build(name, getattr(wasi_ra, _METHODS[name])), name
        )
    return {WATZ_MODULE: namespace}
