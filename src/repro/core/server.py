"""The verifier server: a listener in the normal world + a verifier TA.

Paper §V, "The server (verifier)": the GP socket API cannot *listen* for
inbound connections, so the verifier needs a dedicated normal-world
listener application that receives protocol messages and forwards them to
the verifier TA in the secure world; replies travel the same path back.
Every forwarded message therefore pays the world-transition costs of
Fig. 3b — which the end-to-end benchmarks (Table IV, Fig. 8) include.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core import protocol
from repro.core.transport import Network, Service
from repro.core.verifier import Verifier, VerifierPolicy, VerifierSession
from repro.crypto import ecdsa
from repro.errors import ProtocolError, TeeBadParameters
from repro.optee.gp_api import OpTeeClient
from repro.optee.ta import TaManifest, TrustedApplication, sign_ta

CMD_HANDLE_MESSAGE = 1

VERIFIER_UUID = "watz-verifier"

SecretProvider = Callable[[], bytes]


class VerifierProtocolState:
    """Verifier-side state machine for one attester's message stream.

    One instance per inbound connection: msg0 opens the handshake, msg2
    appraises the evidence and (on success) releases the secret. The
    single-session verifier TA owns exactly one of these; the fleet
    gateway's pooled TA (:mod:`repro.fleet.gateway`) keeps a table of
    them keyed by connection, which is what stops interleaved streams
    from different attesters crossing.
    """

    def __init__(self, verifier: Verifier,
                 secret_provider: SecretProvider) -> None:
        self._verifier = verifier
        self._secret_provider = secret_provider
        self._session: Optional[VerifierSession] = None
        self._done = False

    @property
    def done(self) -> bool:
        """True once msg3 has been released (the handshake is finished)."""
        return self._done

    def handle(self, data: bytes) -> bytes:
        if not data:
            raise ProtocolError("empty protocol message")
        kind = data[0]
        if kind == protocol.MSG0:
            if self._session is not None:
                raise ProtocolError("msg0 after the handshake started")
            self._session, reply = self._verifier.handle_msg0(data)
            return reply
        if kind == protocol.MSG0_MULTI:
            if self._session is not None:
                raise ProtocolError("msg0 after the handshake started")
            self._session, reply = self._verifier.handle_msg0_multi(data)
            return reply
        if kind in (protocol.MSG2, protocol.MSG2_ENC):
            if self._session is None or self._done:
                raise ProtocolError("msg2 without a handshake")
            reply = self._verifier.handle_msg2(
                self._session, data, self._secret_provider()
            )
            self._done = True
            return reply
        if kind == protocol.MSG2_MULTI:
            if self._session is None or self._done:
                raise ProtocolError("msg2 without a handshake")
            reply = self._verifier.handle_msg2_multi(
                self._session, data, self._secret_provider()
            )
            self._done = True
            return reply
        raise ProtocolError(f"unexpected message type {kind}")


def make_verifier_ta(identity: ecdsa.KeyPair, policy: VerifierPolicy,
                     secret_provider: SecretProvider,
                     recorder: Optional[protocol.CostRecorder] = None,
                     appraisal_cache=None) -> type:
    """Build a verifier TA class closed over its configuration.

    The identity key and policy are baked into the TA the way the paper's
    verifier TA carries its key material in secure storage.
    """

    class VerifierTa(TrustedApplication):
        def open_session(self, api) -> None:
            super().open_session(api)
            self.verifier = Verifier(
                identity, policy, api.generate_random, recorder,
                appraisal_cache=appraisal_cache,
            )
            self._state = VerifierProtocolState(self.verifier,
                                                secret_provider)

        def invoke(self, command: int, params: dict) -> dict:
            if command != CMD_HANDLE_MESSAGE:
                raise TeeBadParameters(f"unknown verifier command {command}")
            data = params["data"]
            tracer = self.api.tracer
            if tracer is None:
                return {"reply": self._state.handle(data)}
            kind = f"msg{data[0] & 0x0F}" if data else "empty"
            with tracer.span(f"core.protocol.{kind}", world="secure"):
                return {"reply": self._state.handle(data)}

    return VerifierTa


class VerifierListener(Service):
    """Normal-world listener: one TA session per inbound connection."""

    def __init__(self, client: OpTeeClient) -> None:
        self._ta_session = client.open_session(VERIFIER_UUID)

    def on_message(self, data: bytes) -> Optional[bytes]:
        # Forward to the secure world (paying the Fig. 3b transition) and
        # relay the TA's reply back over the socket.
        result = self._ta_session.invoke(CMD_HANDLE_MESSAGE, {"data": data})
        return result.get("reply")

    def on_close(self) -> None:
        self._ta_session.close()


def start_verifier(network: Network, host: str, port: int,
                   client: OpTeeClient, vendor_key: ecdsa.KeyPair,
                   identity: ecdsa.KeyPair, policy: VerifierPolicy,
                   secret_provider: SecretProvider,
                   heap_size: int = 10 * 1024 * 1024,
                   recorder: Optional[protocol.CostRecorder] = None,
                   appraisal_cache=None) -> None:
    """Install the verifier TA and start listening on ``host:port``."""
    manifest = TaManifest(uuid=VERIFIER_UUID, name="watz-verifier",
                          heap_size=heap_size)
    ta_class = make_verifier_ta(identity, policy, secret_provider, recorder,
                                appraisal_cache=appraisal_cache)
    image = sign_ta(manifest, b"watz verifier ta", ta_class, vendor_key)
    client.kernel.install_ta(image)
    network.listen(host, port, lambda: VerifierListener(client))
