"""The verifier side of the WaTZ remote-attestation protocol.

The verifier holds a long-lived ECDSA identity ``V``, a set of
*endorsements* (public attestation keys of known devices) and a set of
*reference values* (trusted Wasm code measurements). It performs all the
checks of paper §IV(d): MAC, session-key consistency, anchor binding,
endorsement lookup, evidence signature, claim comparison — and only then
releases the secret blob, encrypted under the session key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Set, Tuple

from repro.crypto import ec, ecdh, ecdsa
from repro.crypto.cmac import AesCmac
from repro.crypto.gcm import AesGcm
from repro.crypto.hashing import constant_time_equal
from repro.crypto.kdf import SessionKeys, derive_session_keys
from repro.core import protocol
from repro.core.evidence import WATZ_VERSION
from repro.errors import (
    EndorsementError,
    MeasurementMismatch,
    ProtocolError,
)


@dataclass
class VerifierPolicy:
    """What the verifier accepts."""

    endorsements: Set[bytes] = field(default_factory=set)
    reference_values: Set[bytes] = field(default_factory=set)
    # Runtimes older than this are rejected (rollback discussion, §VII).
    minimum_version: Tuple[int, int] = WATZ_VERSION
    # Measured-boot appraisal (§VII extension): when non-empty, the
    # evidence's boot claim must match one of these accumulated values.
    trusted_boot_measurements: Set[bytes] = field(default_factory=set)

    def endorse(self, attestation_public_key: bytes) -> None:
        self.endorsements.add(bytes(attestation_public_key))

    def trust_measurement(self, claim: bytes) -> None:
        self.reference_values.add(bytes(claim))

    def trust_boot_measurement(self, accumulated: bytes) -> None:
        self.trusted_boot_measurements.add(bytes(accumulated))


@dataclass
class VerifierSession:
    """Mutable state of one verification."""

    session_keypair: ecdh.SessionKeyPair
    g_a: bytes
    keys: SessionKeys

    @property
    def g_v(self) -> bytes:
        return self.session_keypair.public_bytes()


class Verifier:
    """Protocol engine for the relying party."""

    def __init__(self, identity: ecdsa.KeyPair, policy: VerifierPolicy,
                 random_source: Callable[[int], bytes],
                 recorder: Optional[protocol.CostRecorder] = None,
                 appraisal_cache=None) -> None:
        self.identity = identity
        self.policy = policy
        self._random = random_source
        self.recorder = recorder or protocol.NullRecorder()
        # Optional repro.fleet.cache.AppraisalCache: memoises successful
        # appraisals so re-attestations by a known-genuine device skip the
        # expensive ECDSA verify (the asymmetric-crypto dominance of
        # Table III is what makes this worthwhile at fleet scale).
        self.appraisal_cache = appraisal_cache

    @property
    def identity_bytes(self) -> bytes:
        return self.identity.public_bytes()

    # -- msg0 -> msg1 --------------------------------------------------------------

    def handle_msg0(self, data: bytes) -> Tuple[VerifierSession, bytes]:
        """Process msg0 and produce msg1 (paper §IV(b))."""
        with self.recorder.phase("msg0", protocol.MEMORY):
            g_a = protocol.decode_msg0(data)
        with self.recorder.phase("msg0", protocol.KEYGEN):
            keypair = ecdh.generate(self._random)
            shared = ecdh.shared_secret(keypair.private, ec.decode_point(g_a))
            keys = derive_session_keys(shared)
        session = VerifierSession(keypair, g_a, keys)

        with self.recorder.phase("msg1", protocol.ASYMMETRIC):
            signature = ecdsa.sign(self.identity.private,
                                   session.g_v + g_a)
        with self.recorder.phase("msg1", protocol.SYMMETRIC):
            content = session.g_v + self.identity_bytes + signature
            mac = AesCmac(keys.mac_key).mac(content)
        with self.recorder.phase("msg1", protocol.MEMORY):
            message = protocol.encode_msg1(session.g_v, self.identity_bytes,
                                           signature, mac)
        return session, message

    # -- msg2 -> msg3 --------------------------------------------------------------

    def handle_msg2(self, session: VerifierSession, data: bytes,
                    secret_blob: bytes) -> bytes:
        """Appraise the evidence; on success, seal the secret blob (msg3).

        Accepts both the clear-evidence msg2 of Table II and the
        encrypted-evidence variant (§IV extension).
        """
        if data and data[0] == protocol.MSG2_ENC:
            with self.recorder.phase("msg2", protocol.MEMORY):
                sealed_message = protocol.decode_msg2_encrypted(data)
            with self.recorder.phase("msg2", protocol.SYMMETRIC):
                AesCmac(session.keys.mac_key).verify(
                    sealed_message.content, sealed_message.mac)
                body = AesGcm(session.keys.enc_key).open(
                    sealed_message.iv, sealed_message.sealed_evidence)
            from repro.core.evidence import SignedEvidence

            message = protocol.Msg2(
                sealed_message.g_a, SignedEvidence.decode(body), b"")
        else:
            with self.recorder.phase("msg2", protocol.MEMORY):
                message = protocol.decode_msg2(data)
            with self.recorder.phase("msg2", protocol.SYMMETRIC):
                AesCmac(session.keys.mac_key).verify(message.content,
                                                     message.mac)

        # G_a must match msg0's: otherwise someone spliced sessions.
        if not constant_time_equal(message.g_a, session.g_a):
            raise ProtocolError("msg2 session key differs from msg0")

        evidence = message.signed_evidence.evidence
        expected_anchor = protocol.compute_anchor(session.g_a, session.g_v)
        if not constant_time_equal(evidence.anchor, expected_anchor):
            raise ProtocolError(
                "evidence anchor is not bound to this session "
                "(masquerading or replay)"
            )

        if evidence.version < self.policy.minimum_version:
            raise EndorsementError(
                f"runtime version {evidence.version} is below the accepted "
                f"minimum {self.policy.minimum_version}"
            )

        # Endorsement: is this a known device?
        if evidence.attestation_public_key not in self.policy.endorsements:
            raise EndorsementError("device attestation key is not endorsed")

        # Hardware genuineness: the kernel-held key signed the evidence.
        # The appraisal cache may stand in for the asymmetric verify, but
        # only against proof of continuity: the msg2 ticket must be a
        # valid CMAC over this evidence body under the resumption key a
        # prior *fully verified* handshake sealed into its msg3. Evidence
        # fields, MAC and anchor are all computable by an attacker from
        # their own key exchange, so a bare msg2 — however well-formed —
        # never skips the signature check. Every session-specific check
        # (MAC, anchor, endorsement, reference values) above and below
        # still runs unconditionally.
        cache = self.appraisal_cache
        resumption_key = None
        if cache is not None:
            with self.recorder.phase("msg2", protocol.SYMMETRIC):
                resumption_key = cache.redeem(self.policy, evidence,
                                              message.ticket)
        cache_hit = resumption_key is not None
        if not cache_hit:
            with self.recorder.phase("msg2", protocol.ASYMMETRIC):
                message.signed_evidence.verify_signature()

        # Software trustworthiness: the measured bytecode must be known.
        if evidence.claim not in self.policy.reference_values:
            raise MeasurementMismatch(
                f"code measurement {evidence.claim.hex()[:16]}... matches "
                "no reference value"
            )

        # Measured boot (§VII extension): appraise the startup components
        # when the policy demands it.
        if self.policy.trusted_boot_measurements and \
                evidence.boot_claim not in \
                self.policy.trusted_boot_measurements:
            raise MeasurementMismatch(
                "boot-chain measurement matches no trusted value "
                "(possibly hijacked secure boot)"
            )

        # All checks passed: only now is the appraisal memoised, so a
        # failed appraisal (unknown measurement, bad boot claim) is never
        # cached. The freshly drawn resumption key travels to the
        # attester inside msg3's AES-GCM envelope — only the session peer
        # whose signature just verified can read it.
        if cache is not None and not cache_hit:
            resumption_key = self._random(protocol.RESUMPTION_KEY_SIZE)
            cache.store(self.policy, evidence, resumption_key)

        # All checks passed: provision the secret blob (paper §IV(d)).
        with self.recorder.phase("msg3", protocol.MEMORY):
            iv = self._random(12)
        with self.recorder.phase("msg3", protocol.SYMMETRIC):
            payload = secret_blob if resumption_key is None \
                else resumption_key + secret_blob
            sealed = AesGcm(session.keys.enc_key).seal(iv, payload)
        return protocol.encode_msg3(iv, sealed,
                                    resume=resumption_key is not None)
