"""The verifier side of the WaTZ remote-attestation protocol.

The verifier holds a long-lived ECDSA identity ``V``, a set of
*endorsements* (public attestation keys of known devices) and a set of
*reference values* (trusted Wasm code measurements). It performs all the
checks of paper §IV(d): MAC, session-key consistency, anchor binding,
endorsement lookup, evidence signature, claim comparison — and only then
releases the secret blob, encrypted under the session key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Set, Tuple

# NOTE: the TrustZone codec imports repro.core.evidence, so its appraisal
# helpers are imported lazily inside handle_msg2 to keep package import
# acyclic (sys.modules makes the repeat import a dict lookup).
from repro.appraisal.policy import Reason
from repro.crypto import ec, ecdh, ecdsa
from repro.crypto.cmac import AesCmac
from repro.crypto.gcm import AesGcm
from repro.crypto.hashing import constant_time_equal, sha256
from repro.crypto.kdf import SessionKeys, derive_session_keys
from repro.core import protocol
from repro.core.evidence import TEE_TYPE_TRUSTZONE, WATZ_VERSION
from repro.errors import (
    EndorsementError,
    EnvelopeError,
    MeasurementMismatch,
    PolicyDenied,
    ProtocolError,
)


@dataclass
class VerifierPolicy:
    """What the verifier accepts."""

    endorsements: Set[bytes] = field(default_factory=set)
    reference_values: Set[bytes] = field(default_factory=set)
    # Runtimes older than this are rejected (rollback discussion, §VII).
    minimum_version: Tuple[int, int] = WATZ_VERSION
    # Measured-boot appraisal (§VII extension): when non-empty, the
    # evidence's boot claim must match one of these accumulated values.
    trusted_boot_measurements: Set[bytes] = field(default_factory=set)

    def endorse(self, attestation_public_key: bytes) -> None:
        self.endorsements.add(bytes(attestation_public_key))

    def trust_measurement(self, claim: bytes) -> None:
        self.reference_values.add(bytes(claim))

    def trust_boot_measurement(self, accumulated: bytes) -> None:
        self.trusted_boot_measurements.add(bytes(accumulated))


@dataclass
class VerifierSession:
    """Mutable state of one verification."""

    session_keypair: ecdh.SessionKeyPair
    g_a: bytes
    keys: SessionKeys
    #: Evidence backend negotiated in a multi-TEE msg0 (``None`` for the
    #: legacy single-TEE handshake).
    tee_type: Optional[int] = None

    @property
    def g_v(self) -> bytes:
        return self.session_keypair.public_bytes()


class Verifier:
    """Protocol engine for the relying party."""

    def __init__(self, identity: ecdsa.KeyPair, policy: VerifierPolicy,
                 random_source: Callable[[int], bytes],
                 recorder: Optional[protocol.CostRecorder] = None,
                 appraisal_cache=None, engine=None) -> None:
        self.identity = identity
        self.policy = policy
        self._random = random_source
        self.recorder = recorder or protocol.NullRecorder()
        # Optional repro.fleet.cache.AppraisalCache: memoises successful
        # appraisals so re-attestations by a known-genuine device skip the
        # expensive ECDSA verify (the asymmetric-crypto dominance of
        # Table III is what makes this worthwhile at fleet scale).
        self.appraisal_cache = appraisal_cache
        # Optional repro.appraisal.AppraisalEngine: enables the multi-TEE
        # envelope handshake (msg0/1/2_multi), audits every appraisal
        # decision (legacy path included), and arms the revocation
        # killswitch. ``None`` keeps the verifier exactly the seed
        # single-TEE engine.
        self.engine = engine

    @property
    def identity_bytes(self) -> bytes:
        return self.identity.public_bytes()

    def _policy_scope(self):
        """What the appraisal cache's fingerprint must cover.

        Without an engine this is the legacy ``VerifierPolicy`` (the
        cache fingerprints it itself — seed behaviour, unchanged). With
        an engine, cached appraisals also depend on the declarative
        policy — including its revocation epoch — so the scope becomes a
        single combined digest: any revocation bumps it, every shard's
        cache clears, and outstanding resumption tickets die with the
        entries that anchored them.
        """
        if self.engine is None:
            return self.policy
        from repro.fleet.cache import policy_fingerprint

        return sha256(policy_fingerprint(self.policy)
                      + self.engine.fingerprint())

    # -- msg0 -> msg1 --------------------------------------------------------------

    def handle_msg0(self, data: bytes) -> Tuple[VerifierSession, bytes]:
        """Process msg0 and produce msg1 (paper §IV(b))."""
        with self.recorder.phase("msg0", protocol.MEMORY):
            g_a = protocol.decode_msg0(data)
        with self.recorder.phase("msg0", protocol.KEYGEN):
            keypair = ecdh.generate(self._random)
            shared = ecdh.shared_secret(keypair.private, ec.decode_point(g_a))
            keys = derive_session_keys(shared)
        session = VerifierSession(keypair, g_a, keys)

        with self.recorder.phase("msg1", protocol.ASYMMETRIC):
            signature = ecdsa.sign(self.identity.private,
                                   session.g_v + g_a)
        with self.recorder.phase("msg1", protocol.SYMMETRIC):
            content = session.g_v + self.identity_bytes + signature
            mac = AesCmac(keys.mac_key).mac(content)
        with self.recorder.phase("msg1", protocol.MEMORY):
            message = protocol.encode_msg1(session.g_v, self.identity_bytes,
                                           signature, mac)
        return session, message

    # -- msg2 -> msg3 --------------------------------------------------------------

    def handle_msg2(self, session: VerifierSession, data: bytes,
                    secret_blob: bytes) -> bytes:
        """Appraise the evidence; on success, seal the secret blob (msg3).

        Accepts both the clear-evidence msg2 of Table II and the
        encrypted-evidence variant (§IV extension).
        """
        from repro.appraisal.codecs.trustzone import (
            appraise_post_signature,
            appraise_pre_signature,
            reason_of,
        )

        if data and data[0] == protocol.MSG2_ENC:
            with self.recorder.phase("msg2", protocol.MEMORY):
                sealed_message = protocol.decode_msg2_encrypted(data)
            with self.recorder.phase("msg2", protocol.SYMMETRIC):
                AesCmac(session.keys.mac_key).verify(
                    sealed_message.content, sealed_message.mac)
                body = AesGcm(session.keys.enc_key).open(
                    sealed_message.iv, sealed_message.sealed_evidence)
            from repro.core.evidence import SignedEvidence

            message = protocol.Msg2(
                sealed_message.g_a, SignedEvidence.decode(body), b"")
        else:
            with self.recorder.phase("msg2", protocol.MEMORY):
                message = protocol.decode_msg2(data)
            with self.recorder.phase("msg2", protocol.SYMMETRIC):
                AesCmac(session.keys.mac_key).verify(message.content,
                                                     message.mac)

        # G_a must match msg0's: otherwise someone spliced sessions.
        if not constant_time_equal(message.g_a, session.g_a):
            raise ProtocolError("msg2 session key differs from msg0")

        evidence = message.signed_evidence.evidence
        expected_anchor = protocol.compute_anchor(session.g_a, session.g_v)
        if not constant_time_equal(evidence.anchor, expected_anchor):
            raise ProtocolError(
                "evidence anchor is not bound to this session "
                "(masquerading or replay)"
            )

        try:
            # Revocation killswitch (engine-armed deployments only): kill
            # rules outrank every accept rule, including the cache.
            if self.engine is not None:
                self._check_revocations(evidence)

            # Version + endorsement — the checks the seed ran inline here,
            # now shared with the TrustZone codec (same exceptions, same
            # messages, same order).
            appraise_pre_signature(self.policy, evidence)

            # Hardware genuineness: the kernel-held key signed the
            # evidence. The appraisal cache may stand in for the
            # asymmetric verify, but only against proof of continuity:
            # the msg2 ticket must be a valid CMAC over this evidence
            # body under the resumption key a prior *fully verified*
            # handshake sealed into its msg3. Evidence fields, MAC and
            # anchor are all computable by an attacker from their own key
            # exchange, so a bare msg2 — however well-formed — never
            # skips the signature check. Every session-specific check
            # (MAC, anchor, endorsement, reference values) above and
            # below still runs unconditionally.
            cache = self.appraisal_cache
            resumption_key = None
            if cache is not None:
                with self.recorder.phase("msg2", protocol.SYMMETRIC):
                    resumption_key = cache.redeem(self._policy_scope(),
                                                  evidence, message.ticket)
            cache_hit = resumption_key is not None
            if not cache_hit:
                with self.recorder.phase("msg2", protocol.ASYMMETRIC):
                    message.signed_evidence.verify_signature()

            # Software trustworthiness (claim) and measured boot (§VII
            # extension) — also shared with the codec now.
            appraise_post_signature(self.policy, evidence)
        except Exception as exc:
            if self.engine is not None:
                self.engine.record(TEE_TYPE_TRUSTZONE, False,
                                   reason_of(exc), str(exc))
            raise
        if self.engine is not None:
            self.engine.record(TEE_TYPE_TRUSTZONE, True, Reason.OK)

        # All checks passed: only now is the appraisal memoised, so a
        # failed appraisal (unknown measurement, bad boot claim) is never
        # cached. The freshly drawn resumption key travels to the
        # attester inside msg3's AES-GCM envelope — only the session peer
        # whose signature just verified can read it.
        if cache is not None and not cache_hit:
            resumption_key = self._random(protocol.RESUMPTION_KEY_SIZE)
            cache.store(self._policy_scope(), evidence, resumption_key)

        # All checks passed: provision the secret blob (paper §IV(d)).
        return self._seal_msg3(session, secret_blob, resumption_key)

    def _check_revocations(self, view) -> None:
        """The killswitch half of the declarative policy, on either path."""
        policy = self.engine.policy
        claim = bytes(view.claim)
        if claim in policy.revoked_measurements:
            raise PolicyDenied(
                f"measurement {claim.hex()[:16]}... is revoked",
                reason=Reason.MEASUREMENT_REVOKED)
        if bytes(view.identity) in policy.revoked_identities:
            raise PolicyDenied("attestation identity is revoked",
                               reason=Reason.IDENTITY_REVOKED)

    def _seal_msg3(self, session: VerifierSession, secret_blob: bytes,
                   resumption_key: Optional[bytes]) -> bytes:
        with self.recorder.phase("msg3", protocol.MEMORY):
            iv = self._random(12)
        with self.recorder.phase("msg3", protocol.SYMMETRIC):
            chunks = (secret_blob,) if resumption_key is None \
                else (resumption_key, secret_blob)
            message = protocol.seal_msg3(AesGcm(session.keys.enc_key), iv,
                                         chunks,
                                         resume=resumption_key is not None)
        return message

    # -- multi-TEE envelope handshake (repro.appraisal) ----------------------------

    def handle_msg0_multi(self, data: bytes) -> Tuple[VerifierSession, bytes]:
        """Process a multi-TEE msg0: negotiate the evidence backend.

        The attester declares its ``tee_type``; the verifier accepts it
        iff a codec is registered, and echoes the tag inside msg1's MAC'd
        content so the negotiation cannot be tampered with downstream.
        """
        engine = self._require_engine()
        with self.recorder.phase("msg0", protocol.MEMORY):
            tee_type, g_a = protocol.decode_msg0_multi(data)
        if tee_type not in engine.registry:
            engine.record(tee_type, False, Reason.TEE_NOT_ACCEPTED,
                          f"no codec registered for tee_type {tee_type:#04x}")
            raise EnvelopeError(
                f"no codec registered for tee_type {tee_type:#04x}")
        with self.recorder.phase("msg0", protocol.KEYGEN):
            keypair = ecdh.generate(self._random)
            shared = ecdh.shared_secret(keypair.private, ec.decode_point(g_a))
            keys = derive_session_keys(shared)
        session = VerifierSession(keypair, g_a, keys, tee_type=tee_type)

        with self.recorder.phase("msg1", protocol.ASYMMETRIC):
            signature = ecdsa.sign(self.identity.private,
                                   session.g_v + g_a)
        with self.recorder.phase("msg1", protocol.SYMMETRIC):
            content = (bytes([tee_type]) + session.g_v + self.identity_bytes
                       + signature)
            mac = AesCmac(keys.mac_key).mac(content)
        with self.recorder.phase("msg1", protocol.MEMORY):
            message = protocol.encode_msg1_multi(
                tee_type, session.g_v, self.identity_bytes, signature, mac)
        return session, message

    def handle_msg2_multi(self, session: VerifierSession, data: bytes,
                          secret_blob: bytes) -> bytes:
        """Appraise an enveloped evidence body through the policy engine.

        Session checks (MAC, key consistency, anchor binding) mirror the
        legacy path; decoding goes through the codec registry and the
        accept/deny decision through the compiled declarative policy. On
        deny, a :class:`~repro.errors.PolicyDenied` carries the stable
        reason code and the decision is already in the audit log.
        """
        engine = self._require_engine()
        with self.recorder.phase("msg2", protocol.MEMORY):
            message = protocol.decode_msg2_multi(data)
        with self.recorder.phase("msg2", protocol.SYMMETRIC):
            AesCmac(session.keys.mac_key).verify(message.content, message.mac)

        if not constant_time_equal(message.g_a, session.g_a):
            raise ProtocolError("msg2 session key differs from msg0")
        if session.tee_type is None:
            raise ProtocolError(
                "multi-TEE msg2 on a handshake that did not negotiate "
                "an evidence backend")

        view = engine.decode(message.envelope)
        if view.tee_type != session.tee_type:
            engine.record(view.tee_type, False, Reason.TEE_NOT_ACCEPTED,
                          "evidence backend differs from the negotiated one")
            raise ProtocolError(
                "msg2 evidence backend differs from the negotiated one")

        expected_anchor = protocol.compute_anchor(session.g_a, session.g_v)
        if not constant_time_equal(view.anchor, expected_anchor):
            raise ProtocolError(
                "evidence anchor is not bound to this session "
                "(masquerading or replay)"
            )

        scope = self._policy_scope()
        cache = self.appraisal_cache
        resumption_key = None
        if cache is not None:
            with self.recorder.phase("msg2", protocol.SYMMETRIC):
                resumption_key = cache.redeem(scope, view, message.ticket)
        cache_hit = resumption_key is not None
        if not cache_hit:
            with self.recorder.phase("msg2", protocol.ASYMMETRIC):
                try:
                    view.verify_signature()
                except Exception as exc:
                    engine.record(view.tee_type, False,
                                  Reason.SIGNATURE_INVALID, str(exc))
                    raise

        # The declarative policy runs even on a cache hit: the cache only
        # stands in for the asymmetric verify, never for appraisal.
        engine.appraise(view).raise_if_denied()

        if cache is not None and not cache_hit:
            resumption_key = self._random(protocol.RESUMPTION_KEY_SIZE)
            cache.store(scope, view, resumption_key)

        return self._seal_msg3(session, secret_blob, resumption_key)

    def _require_engine(self):
        if self.engine is None:
            raise ProtocolError(
                "multi-TEE handshake needs an appraisal engine")
        return self.engine
