"""In-process network fabric.

Replaces the TCP/IP path between attester and verifier (which, in the
paper's evaluation, run on the same board anyway). The model is
synchronous request/response: ``send`` on a client connection delivers the
message to the server-side service immediately, and any reply is queued
for ``receive``. The supplicant (normal world) is the only component that
touches this fabric, mirroring OP-TEE's socket redirection.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Optional, Tuple

from repro.errors import TeeCommunicationError


class Service:
    """Server-side per-connection protocol handler."""

    def on_message(self, data: bytes) -> Optional[bytes]:
        """Handle one inbound message; return a reply or None."""
        raise NotImplementedError

    def on_close(self) -> None:
        """Connection teardown hook."""


class ClientConnection:
    """The client end of a connection.

    ``send`` is fire-and-forget (like a TCP write): the server processes
    queued messages lazily when the client blocks in ``receive``. This
    reproduces the paper's observation (§VI-F) that *sending* the evidence
    is marginal while *receiving* the reply absorbs the server's
    verification time.
    """

    def __init__(self, service: Service) -> None:
        self._service = service
        self._outbox: deque = deque()
        self._inbox: deque = deque()
        self._closed = False

    def send(self, data: bytes) -> None:
        if self._closed:
            raise TeeCommunicationError("connection is closed")
        self._outbox.append(bytes(data))

    def _flush(self) -> None:
        while self._outbox:
            reply = self._service.on_message(self._outbox.popleft())
            if reply is not None:
                self._inbox.append(reply)

    def receive(self) -> bytes:
        if self._closed:
            raise TeeCommunicationError("connection is closed")
        self._flush()
        if not self._inbox:
            raise TeeCommunicationError("no pending data on the connection")
        return self._inbox.popleft()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._service.on_close()


ServiceFactory = Callable[[], Service]


class Network:
    """A registry of listening services addressable by (host, port)."""

    def __init__(self) -> None:
        self._listeners: Dict[Tuple[str, int], ServiceFactory] = {}

    def listen(self, host: str, port: int, factory: ServiceFactory) -> None:
        key = (host, port)
        if key in self._listeners:
            raise TeeCommunicationError(f"address {host}:{port} already in use")
        self._listeners[key] = factory

    def shutdown(self, host: str, port: int) -> None:
        self._listeners.pop((host, port), None)

    def connect(self, host: str, port: int) -> ClientConnection:
        factory = self._listeners.get((host, port))
        if factory is None:
            raise TeeCommunicationError(f"connection refused: {host}:{port}")
        return ClientConnection(factory())
