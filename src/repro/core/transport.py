"""In-process network fabric.

Replaces the TCP/IP path between attester and verifier (which, in the
paper's evaluation, run on the same board anyway). The model is
synchronous request/response: ``send`` on a client connection delivers the
message to the server-side service immediately, and any reply is queued
for ``receive``. The supplicant (normal world) is the only component that
touches this fabric, mirroring OP-TEE's socket redirection.

The fabric is safe for concurrent use: each connection serialises its own
traffic behind a per-connection lock (so two threads sharing one
connection cannot interleave a flush), while different connections make
progress independently — which is what lets the fleet gateway
(:mod:`repro.fleet.gateway`) serve many attesters at once. The network
keeps a registry of the connections handed out per listener so
``shutdown`` can tear down live connections instead of leaving them
serving a dead address.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import TeeCommunicationError


class Service:
    """Server-side per-connection protocol handler."""

    def on_message(self, data: bytes) -> Optional[bytes]:
        """Handle one inbound message; return a reply or None."""
        raise NotImplementedError

    def on_close(self) -> None:
        """Connection teardown hook."""


class ClientConnection:
    """The client end of a connection.

    ``send`` is fire-and-forget (like a TCP write): the server processes
    queued messages lazily when the client blocks in ``receive``. This
    reproduces the paper's observation (§VI-F) that *sending* the evidence
    is marginal while *receiving* the reply absorbs the server's
    verification time.

    ``close`` drains the outbox first, so a message sent before the close
    still reaches :meth:`Service.on_message` — mirroring TCP's lingering
    close. ``abort`` is the server-initiated teardown (listener shutdown):
    queued messages are dropped, as they would be on a connection reset.
    """

    def __init__(self, service: Service,
                 on_closed: Optional[Callable[["ClientConnection"], None]]
                 = None) -> None:
        self._service = service
        self._outbox: deque = deque()
        self._inbox: deque = deque()
        self._closed = False
        self._lock = threading.RLock()
        self._on_closed = on_closed

    def send(self, data: bytes) -> None:
        with self._lock:
            if self._closed:
                raise TeeCommunicationError("connection is closed")
            self._outbox.append(bytes(data))

    def _flush(self) -> None:
        while self._outbox:
            reply = self._service.on_message(self._outbox.popleft())
            if reply is not None:
                self._inbox.append(reply)

    def receive(self) -> bytes:
        with self._lock:
            if self._closed:
                raise TeeCommunicationError("connection is closed")
            self._flush()
            if not self._inbox:
                raise TeeCommunicationError("no pending data on the connection")
            return self._inbox.popleft()

    def close(self) -> None:
        """Graceful client close: deliver queued messages, then tear down."""
        with self._lock:
            if self._closed:
                return
            try:
                self._flush()
            finally:
                self._teardown()

    def abort(self) -> None:
        """Abortive close (server shutdown): drop queued messages."""
        with self._lock:
            if self._closed:
                return
            self._outbox.clear()
            self._teardown()

    def _teardown(self) -> None:
        self._closed = True
        try:
            self._service.on_close()
        finally:
            if self._on_closed is not None:
                self._on_closed(self)


ServiceFactory = Callable[[], Service]


class Network:
    """A registry of listening services addressable by (host, port)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._listeners: Dict[Tuple[str, int], ServiceFactory] = {}
        self._connections: Dict[Tuple[str, int], List[ClientConnection]] = {}

    def listen(self, host: str, port: int, factory: ServiceFactory) -> None:
        key = (host, port)
        with self._lock:
            if key in self._listeners:
                raise TeeCommunicationError(
                    f"address {host}:{port} already in use")
            self._listeners[key] = factory
            self._connections.setdefault(key, [])

    def shutdown(self, host: str, port: int) -> None:
        """Stop listening and tear down every live connection."""
        key = (host, port)
        with self._lock:
            self._listeners.pop(key, None)
            live = self._connections.pop(key, [])
        for connection in list(live):
            connection.abort()

    def connect(self, host: str, port: int) -> ClientConnection:
        key = (host, port)
        with self._lock:
            factory = self._listeners.get(key)
            if factory is None:
                raise TeeCommunicationError(
                    f"connection refused: {host}:{port}")
        # The factory may do real work (e.g. open a TA session); run it
        # outside the registry lock so connects do not serialise on it.
        service = factory()
        connection = ClientConnection(
            service, on_closed=lambda conn: self._forget(key, conn))
        with self._lock:
            registry = self._connections.get(key)
            if registry is None:
                # The listener shut down while the service was being built.
                registry_gone = True
            else:
                registry_gone = False
                registry.append(connection)
        if registry_gone:
            connection.abort()
            raise TeeCommunicationError(f"connection refused: {host}:{port}")
        return connection

    def _forget(self, key: Tuple[str, int], conn: ClientConnection) -> None:
        with self._lock:
            registry = self._connections.get(key)
            if registry is not None and conn in registry:
                registry.remove(conn)
