"""Code measurement of Wasm applications.

When WaTZ copies AOT bytecode from the shared buffer into secure memory it
folds every chunk into a SHA-256 measurement (paper §III/§VI-B); the
resulting *fingerprint* is the claim carried by attestation evidence, and
what verifiers compare against their reference values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import IncrementalHash, sha256

#: Chunk size of the shared-buffer copy loop.
COPY_CHUNK = 64 * 1024


@dataclass(frozen=True)
class Measurement:
    """A finished code measurement."""

    digest: bytes
    size: int

    @property
    def hex(self) -> str:
        return self.digest.hex()


def measure_bytes(bytecode: bytes) -> Measurement:
    """One-shot measurement (reference values, tests)."""
    return Measurement(sha256(bytecode), len(bytecode))


class MeasuringCopier:
    """Copies bytecode out of a shared buffer while measuring it.

    Returns both the secure-memory copy and the measurement so the
    runtime cannot accidentally execute bytes it did not measure.
    """

    def __init__(self) -> None:
        self._hash = IncrementalHash()
        self._chunks = []

    def copy(self, source: bytes) -> bytes:
        for offset in range(0, len(source), COPY_CHUNK):
            chunk = bytes(source[offset : offset + COPY_CHUNK])
            self._hash.update(chunk)
            self._chunks.append(chunk)
        return b"".join(self._chunks)

    def finish(self) -> Measurement:
        return Measurement(self._hash.digest(), self._hash.length)
