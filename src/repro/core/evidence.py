"""Attestation evidence: structure, serialisation, verification.

Paper §IV, "Proof of trust": evidence contains (i) an *anchor* binding it
to the transport session, (ii) the WaTZ *version* so relying parties can
exclude outdated runtimes, (iii) the *claim* — the Wasm bytecode hash,
(iv) the device's public attestation key (the endorsement handle), and
(v) a digital signature over all of the above, produced by the kernel
attestation service.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.crypto import ec, ecdsa
from repro.crypto.hashing import SHA256_SIZE
from repro.errors import CryptoError, EvidenceError

WATZ_VERSION = (1, 0)

#: Evidence-envelope tag of this (TrustZone) format in the multi-TEE
#: codec registry (:mod:`repro.appraisal`). Defined here — not there —
#: so the appraisal cache can key legacy evidence without importing the
#: appraisal package (which imports this module).
TEE_TYPE_TRUSTZONE = 0x01

ANCHOR_SIZE = SHA256_SIZE
CLAIM_SIZE = SHA256_SIZE
BOOT_CLAIM_SIZE = SHA256_SIZE
PUBKEY_SIZE = 65

#: The boot claim when the platform does not provide measured boot.
NO_BOOT_CLAIM = b"\x00" * BOOT_CLAIM_SIZE

_HEADER = struct.Struct("<4sHH")
_MAGIC = b"WTZE"

#: Serialised size of the unsigned evidence body.
EVIDENCE_BODY_SIZE = (_HEADER.size + ANCHOR_SIZE + CLAIM_SIZE
                      + BOOT_CLAIM_SIZE + PUBKEY_SIZE)
#: Serialised size including the signature.
EVIDENCE_SIZE = EVIDENCE_BODY_SIZE + ecdsa.SIGNATURE_SIZE


@dataclass(frozen=True)
class Evidence:
    """Unsigned evidence content.

    ``boot_claim`` is the measured-boot extension of §VII: the PCR-style
    accumulation of the boot-stage measurements, letting verifiers also
    appraise the startup components. A platform without measured boot
    carries :data:`NO_BOOT_CLAIM`.
    """

    anchor: bytes
    claim: bytes
    attestation_public_key: bytes
    version: tuple = WATZ_VERSION
    boot_claim: bytes = NO_BOOT_CLAIM

    def __post_init__(self) -> None:
        if len(self.anchor) != ANCHOR_SIZE:
            raise EvidenceError("anchor must be a SHA-256 digest")
        if len(self.claim) != CLAIM_SIZE:
            raise EvidenceError("claim must be a SHA-256 digest")
        if len(self.boot_claim) != BOOT_CLAIM_SIZE:
            raise EvidenceError("boot claim must be a SHA-256 digest")
        if len(self.attestation_public_key) != PUBKEY_SIZE:
            raise EvidenceError("attestation key must be an uncompressed point")

    # -- uniform appraisal view (repro.appraisal) -------------------------------
    # The multi-TEE appraisal cache and policy engine address every
    # evidence shape through the same accessors; for the native format
    # they are aliases, so the wire bytes are untouched.

    #: Envelope tag of this evidence shape.
    tee_type = TEE_TYPE_TRUSTZONE

    @property
    def identity(self) -> bytes:
        """The attesting party's signing identity (the endorsed key)."""
        return self.attestation_public_key

    @property
    def cache_extra(self) -> bytes:
        """Backend-specific appraisal-relevant state beyond the claim."""
        return self.boot_claim

    def encode(self) -> bytes:
        """Serialise the evidence body (the signed blob)."""
        return (
            _HEADER.pack(_MAGIC, self.version[0], self.version[1])
            + self.anchor
            + self.claim
            + self.boot_claim
            + self.attestation_public_key
        )

    @classmethod
    def decode(cls, data: bytes) -> "Evidence":
        if len(data) != EVIDENCE_BODY_SIZE:
            raise EvidenceError(
                f"evidence body must be {EVIDENCE_BODY_SIZE} bytes"
            )
        magic, major, minor = _HEADER.unpack_from(data, 0)
        if magic != _MAGIC:
            raise EvidenceError("bad evidence magic")
        offset = _HEADER.size
        anchor = data[offset : offset + ANCHOR_SIZE]
        offset += ANCHOR_SIZE
        claim = data[offset : offset + CLAIM_SIZE]
        offset += CLAIM_SIZE
        boot_claim = data[offset : offset + BOOT_CLAIM_SIZE]
        offset += BOOT_CLAIM_SIZE
        public_key = data[offset : offset + PUBKEY_SIZE]
        return cls(anchor=anchor, claim=claim,
                   attestation_public_key=public_key,
                   version=(major, minor), boot_claim=boot_claim)


@dataclass(frozen=True)
class SignedEvidence:
    """Evidence plus the attestation-service signature."""

    evidence: Evidence
    signature: bytes

    def encode(self) -> bytes:
        return self.evidence.encode() + self.signature

    @classmethod
    def decode(cls, data: bytes) -> "SignedEvidence":
        if len(data) != EVIDENCE_SIZE:
            raise EvidenceError(f"signed evidence must be {EVIDENCE_SIZE} bytes")
        return cls(
            evidence=Evidence.decode(data[:EVIDENCE_BODY_SIZE]),
            signature=data[EVIDENCE_BODY_SIZE:],
        )

    def verify_signature(self) -> None:
        """Check the self-contained signature (endorsement check is separate).

        The key used is the one *inside* the evidence; a verifier must
        additionally confirm that key is endorsed, otherwise any attacker
        could mint self-consistent evidence with a fresh key.
        """
        try:
            public = ec.decode_point(self.evidence.attestation_public_key)
        except CryptoError as exc:
            raise EvidenceError(f"malformed evidence key: {exc}") from exc
        ecdsa.verify(public, self.evidence.encode(), self.signature)
