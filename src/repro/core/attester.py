"""The attester side of the WaTZ remote-attestation protocol.

Runs inside the WaTZ runtime TA on behalf of a hosted Wasm application
(reached through WASI-RA). Implements the client half of Table II,
including every check the paper specifies in §IV:

* the verifier's identity key ``V`` must equal the key hard-coded in the
  (measured) Wasm application;
* the signature over both public session keys must verify — mismatched
  session keys reveal masquerading or replay;
* the MAC of msg1 must verify under the freshly derived ``K_m``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto import ec, ecdh, ecdsa
from repro.crypto.cmac import AesCmac
from repro.crypto.gcm import AesGcm
from repro.crypto.hashing import constant_time_equal
from repro.crypto.kdf import SessionKeys, derive_session_keys
from repro.core import protocol
from repro.core.evidence import Evidence, SignedEvidence
from repro.errors import AuthenticationError, ProtocolError

EvidenceSigner = Callable[[bytes], bytes]


@dataclass
class AttesterSession:
    """Mutable state of one attestation attempt."""

    session_keypair: ecdh.SessionKeyPair
    expected_verifier_key: bytes
    g_v: Optional[bytes] = None
    keys: Optional[SessionKeys] = None
    anchor: Optional[bytes] = None
    #: Evidence backend declared in a multi-TEE msg0 (``None`` for the
    #: legacy single-TEE handshake).
    tee_type: Optional[int] = None

    @property
    def g_a(self) -> bytes:
        return self.session_keypair.public_bytes()


class Attester:
    """Protocol engine; stateless apart from per-session objects.

    The one piece of cross-session state is ``resumption_key``: the
    secret a fully verified appraisal hands back inside msg3 (fleet
    extension, :mod:`repro.fleet.cache`). Subsequent msg2s carry a CMAC
    ticket under it so the verifier can skip the ECDSA re-verify. An
    attester only ever talks to the verifier whose identity key is
    hard-coded in its measured application, so one key suffices.
    """

    def __init__(self, random_source: Callable[[int], bytes],
                 recorder: Optional[protocol.CostRecorder] = None) -> None:
        self._random = random_source
        self.recorder = recorder or protocol.NullRecorder()
        self.resumption_key: Optional[bytes] = None

    # -- msg0 ------------------------------------------------------------------

    def start_session(self, expected_verifier_key: bytes) -> AttesterSession:
        """Generate the ephemeral session key pair (freshness, §IV)."""
        with self.recorder.phase("msg0", protocol.KEYGEN):
            keypair = ecdh.generate(self._random)
        return AttesterSession(keypair, expected_verifier_key)

    def make_msg0(self, session: AttesterSession) -> bytes:
        with self.recorder.phase("msg0", protocol.MEMORY):
            message = protocol.encode_msg0(session.g_a)
        return message

    def make_msg0_multi(self, session: AttesterSession,
                        tee_type: int) -> bytes:
        """Open a multi-TEE handshake, declaring the evidence backend."""
        session.tee_type = tee_type
        with self.recorder.phase("msg0", protocol.MEMORY):
            message = protocol.encode_msg0_multi(tee_type, session.g_a)
        return message

    # -- msg1 ------------------------------------------------------------------

    def handle_msg1(self, session: AttesterSession, data: bytes) -> None:
        """All attester-side checks of paper §IV(c).

        Accepts both the legacy msg1 and the multi-TEE variant; the
        latter must echo the ``tee_type`` this session declared in its
        msg0 (the echo sits inside the MAC'd content, so once the MAC is
        checked the negotiation is tamper-proof).
        """
        if data and data[0] == protocol.MSG1_MULTI:
            with self.recorder.phase("msg1", protocol.MEMORY):
                message = protocol.decode_msg1_multi(data)
            if message.tee_type != session.tee_type:
                raise ProtocolError(
                    "msg1 echoes a tee_type this session did not declare")
        else:
            with self.recorder.phase("msg1", protocol.MEMORY):
                message = protocol.decode_msg1(data)

        # The verifier identity must match the key hard-coded in the Wasm
        # application; because that key is part of the code measurement, an
        # attacker cannot redirect the application to a rogue service.
        if message.verifier_key != session.expected_verifier_key:
            raise AuthenticationError(
                "verifier identity does not match the hard-coded key"
            )

        with self.recorder.phase("msg1", protocol.KEYGEN):
            shared = ecdh.shared_secret(
                session.session_keypair.private,
                ec.decode_point(message.g_v),
            )
            session.keys = derive_session_keys(shared)

        with self.recorder.phase("msg1", protocol.SYMMETRIC):
            AesCmac(session.keys.mac_key).verify(message.content, message.mac)

        with self.recorder.phase("msg1", protocol.ASYMMETRIC):
            verifier_public = ec.decode_point(message.verifier_key)
            # Different session keys in the signature reveal masquerading
            # or replay.
            ecdsa.verify(verifier_public, message.g_v + session.g_a,
                         message.signature)

        session.g_v = message.g_v
        session.anchor = protocol.compute_anchor(session.g_a, message.g_v)

    # -- msg2 ------------------------------------------------------------------

    def collect_evidence(self, anchor: bytes, claim: bytes,
                         attestation_public_key: bytes,
                         sign_evidence: EvidenceSigner,
                         version: tuple = None,
                         boot_claim: bytes = None) -> SignedEvidence:
        """Issue signed evidence for an anchor (WASI-RA ``collect_quote``).

        Deliberately decoupled from the network protocol so applications
        can carry the evidence over other transports (paper §V).
        ``sign_evidence`` is the kernel attestation service entry point;
        the private key never appears here.
        """
        with self.recorder.phase("msg2", protocol.MEMORY):
            kwargs = {}
            if version:
                kwargs["version"] = version
            if boot_claim is not None:
                kwargs["boot_claim"] = boot_claim
            evidence = Evidence(
                anchor=anchor,
                claim=claim,
                attestation_public_key=attestation_public_key,
                **kwargs,
            )
            body = evidence.encode()
        with self.recorder.phase("msg2", protocol.ASYMMETRIC):
            signature = sign_evidence(body)
        return SignedEvidence(evidence, signature)

    def make_msg2(self, session: AttesterSession,
                  signed_evidence: SignedEvidence,
                  encrypt_evidence: bool = False) -> bytes:
        """Wrap evidence into msg2, MACed under the session key.

        ``encrypt_evidence`` enables the §IV extension: the evidence is
        sealed under K_e so a passive observer learns neither the code
        measurement nor the device identity.
        """
        if session.anchor is None or session.keys is None:
            raise ProtocolError("msg1 has not been processed yet")
        if signed_evidence.evidence.anchor != session.anchor:
            raise ProtocolError("evidence anchor does not match this session")
        if encrypt_evidence:
            with self.recorder.phase("msg2", protocol.SYMMETRIC):
                iv = self._random(12)
                sealed = AesGcm(session.keys.enc_key).seal(
                    iv, signed_evidence.encode())
                content = session.g_a + iv + sealed
                mac = AesCmac(session.keys.mac_key).mac(content)
            return protocol.encode_msg2_encrypted(session.g_a, iv, sealed,
                                                  mac)
        with self.recorder.phase("msg2", protocol.SYMMETRIC):
            ticket = b""
            if self.resumption_key is not None:
                # Prove continuity with the prior fully verified
                # handshake: CMAC the *fresh* evidence body (which
                # contains this session's anchor) under the resumption
                # key, so a captured ticket cannot be transplanted into
                # another session.
                ticket = AesCmac(self.resumption_key).mac(
                    signed_evidence.evidence.encode())
            content = session.g_a + signed_evidence.encode() + ticket
            mac = AesCmac(session.keys.mac_key).mac(content)
        return protocol.encode_msg2(session.g_a, signed_evidence, mac,
                                    ticket)

    def make_msg2_multi(self, session: AttesterSession, view) -> bytes:
        """Wrap an evidence *view* (any codec) into a multi-TEE msg2.

        ``view`` is a decoded-evidence object from
        :mod:`repro.appraisal.codecs` — native TrustZone evidence wrapped
        in a ``TrustZoneView``, or a synthetic SGX/TDX quote. The
        resumption ticket MACs the full envelope bytes, tag header
        included, so a ticket earned under one backend can never be
        redeemed under another.
        """
        if session.anchor is None or session.keys is None:
            raise ProtocolError("msg1 has not been processed yet")
        if view.anchor != session.anchor:
            raise ProtocolError("evidence anchor does not match this session")
        if session.tee_type is not None and view.tee_type != session.tee_type:
            raise ProtocolError(
                "evidence backend differs from the negotiated one")
        with self.recorder.phase("msg2", protocol.MEMORY):
            envelope = view.envelope()
        with self.recorder.phase("msg2", protocol.SYMMETRIC):
            ticket = b""
            if self.resumption_key is not None:
                ticket = AesCmac(self.resumption_key).mac(envelope)
            content = (session.g_a + len(envelope).to_bytes(4, "little")
                       + envelope + ticket)
            mac = AesCmac(session.keys.mac_key).mac(content)
        return protocol.encode_msg2_multi(session.g_a, envelope, mac, ticket)

    def attest(self, session: AttesterSession, claim: bytes,
               attestation_public_key: bytes,
               sign_evidence: EvidenceSigner) -> bytes:
        """Convenience: collect evidence for the session and build msg2."""
        if session.anchor is None:
            raise ProtocolError("msg1 has not been processed yet")
        signed = self.collect_evidence(
            session.anchor, claim, attestation_public_key, sign_evidence
        )
        return self.make_msg2(session, signed)

    # -- msg3 ------------------------------------------------------------------

    def handle_msg3(self, session: AttesterSession, data: bytes) -> bytes:
        """Decrypt the secret blob with the session encryption key.

        The resume variant (fleet extension) prefixes the sealed payload
        with a resumption key; it is retained for future msg2 tickets
        and only the remaining bytes are the application secret.
        """
        if session.keys is None:
            raise ProtocolError("session keys are not established")
        with self.recorder.phase("msg3", protocol.SYMMETRIC):
            plaintext = protocol.open_msg3(AesGcm(session.keys.enc_key), data)
        if data[0] == protocol.MSG3_RESUME:
            if len(plaintext) < protocol.RESUMPTION_KEY_SIZE:
                raise ProtocolError("resume msg3 too short for a key")
            self.resumption_key = plaintext[:protocol.RESUMPTION_KEY_SIZE]
            plaintext = plaintext[protocol.RESUMPTION_KEY_SIZE:]
        return plaintext
