"""Claim evaluation over the explored protocol model.

The paper (§VII) configures Scyther to check the secrecy of the private
session keys, the shared secret and the secret blob, and the
authentication claims *aliveness*, *weak agreement*, *non-injective
agreement*, *non-injective synchronisation* and *reachability*. This
module evaluates the same claim set over the bounded exploration of
:class:`~repro.formal.protocol_model.ProtocolModel`, and reports a
concrete attack trace for every violated claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.formal.protocol_model import (
    A_SCALAR,
    DEVICE,
    GOOD_CLAIM,
    SECRET_BLOB,
    VERIFIER,
    DhPub,
    ProtocolModel,
    ProtocolVariant,
    PubKey,
    Trace,
)


@dataclass
class ClaimResult:
    name: str
    holds: bool
    attack: Optional[Trace] = None

    def describe(self) -> str:
        status = "OK" if self.holds else "ATTACK"
        return f"{self.name}: {status}"


@dataclass
class VerificationReport:
    variant: ProtocolVariant
    claims: List[ClaimResult] = field(default_factory=list)

    @property
    def all_hold(self) -> bool:
        return all(claim.holds for claim in self.claims)

    def claim(self, name: str) -> ClaimResult:
        for result in self.claims:
            if result.name == name:
                return result
        raise KeyError(name)

    def failed_claims(self) -> List[str]:
        return [claim.name for claim in self.claims if not claim.holds]


# -- individual claims ---------------------------------------------------------


def _secrecy_claims(model: ProtocolModel) -> List[ClaimResult]:
    results = []
    for name, _secret in model.SECRETS:
        leak = model.leaks.get(name)
        results.append(ClaimResult(f"secrecy_{name}", leak is None, leak))
    return results


def _verifier_alive(trace: Trace) -> bool:
    return any(v.pc >= 1 for v in trace.verifiers)


def _weak_agreement_attester(trace: Trace) -> bool:
    """Some verifier session actually talked with the attester's key."""
    return any(v.g_a == DhPub(A_SCALAR) for v in trace.verifiers)


def _ni_agreement_attester(trace: Trace) -> bool:
    """The attester and a verifier agree on both session keys."""
    attester = trace.attester
    if attester.verifier_key != PubKey(VERIFIER):
        return False
    return any(
        v.g_a == DhPub(A_SCALAR) and DhPub(v.scalar) == attester.g_v
        for v in trace.verifiers
    )


def _ni_agreement_verifier(trace: Trace) -> bool:
    """A completing verifier accepted the honest device and application,
    in a session whose key belongs to the honest attester."""
    for verifier in trace.verifiers:
        if verifier.pc == 2:
            if verifier.accepted_claim != GOOD_CLAIM:
                return False
            if verifier.accepted_device != DEVICE:
                return False
            if verifier.g_a != DhPub(A_SCALAR):
                return False
    return True


def _ni_synchronisation(trace: Trace) -> bool:
    """The attester's completed run matches a verifier run message-for-
    message: same session keys on both sides and the genuine blob."""
    attester = trace.attester
    if attester.received_blob != SECRET_BLOB:
        return False
    return any(
        v.pc == 2
        and v.g_a == DhPub(A_SCALAR)
        and DhPub(v.scalar) == attester.g_v
        and v.accepted_claim == GOOD_CLAIM
        for v in trace.verifiers
    )


def _forall(traces: List[Trace],
            predicate: Callable[[Trace], bool]) -> ClaimResult:
    for trace in traces:
        if not predicate(trace):
            return ClaimResult("", False, trace)
    return ClaimResult("", True)


def verify_protocol(variant: Optional[ProtocolVariant] = None,
                    max_steps: Optional[int] = None) -> VerificationReport:
    """Explore the model and evaluate the paper's claim set."""
    model = ProtocolModel(variant)
    if max_steps is not None:
        model.MAX_STEPS = max_steps
    model.explore()
    report = VerificationReport(variant=model.variant)

    report.claims.extend(_secrecy_claims(model))

    checks = [
        ("aliveness_verifier", model.attester_completions, _verifier_alive),
        ("weak_agreement_attester", model.attester_completions,
         _weak_agreement_attester),
        ("ni_agreement_attester", model.attester_completions,
         _ni_agreement_attester),
        ("ni_agreement_verifier", model.verifier_completions,
         _ni_agreement_verifier),
        ("ni_synchronisation", model.attester_completions,
         _ni_synchronisation),
    ]
    for name, traces, predicate in checks:
        result = _forall(traces, predicate)
        result.name = name
        report.claims.append(result)

    report.claims.append(
        ClaimResult("reachability", model.both_complete)
    )
    return report


#: The mutations of DESIGN.md ablation 3: disabling each check must make
#: at least one claim fail. Maps mutation -> claims expected to break.
MUTATION_EXPECTATIONS: Dict[str, List[str]] = {
    "attester_checks_identity": ["aliveness_verifier",
                                 "weak_agreement_attester",
                                 "ni_agreement_attester",
                                 "ni_synchronisation"],
    "verifier_checks_claim": ["ni_agreement_verifier",
                              "secrecy_secret_blob"],
    "verifier_checks_endorsement": ["ni_agreement_verifier",
                                    "secrecy_secret_blob"],
    "verifier_checks_evidence_signature": ["ni_agreement_verifier",
                                           "secrecy_secret_blob"],
    "verifier_checks_anchor": ["ni_agreement_verifier",
                               "secrecy_secret_blob"],
}


def run_mutation_suite() -> Dict[str, VerificationReport]:
    """Verify the shipped protocol and every single-check mutation."""
    reports = {"shipped": verify_protocol(ProtocolVariant())}
    for mutation in MUTATION_EXPECTATIONS:
        variant = ProtocolVariant().mutate(**{mutation: False})
        reports[mutation] = verify_protocol(variant)
    return reports
