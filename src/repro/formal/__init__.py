"""Dolev-Yao symbolic verification of the WaTZ RA protocol (Scyther stand-in)."""

from repro.formal.checker import (
    MUTATION_EXPECTATIONS,
    ClaimResult,
    VerificationReport,
    run_mutation_suite,
    verify_protocol,
)
from repro.formal.protocol_model import ProtocolModel, ProtocolVariant, Trace
from repro.formal.terms import (
    Atom,
    DhPub,
    DhShared,
    Hash,
    Kdf,
    Knowledge,
    Mac,
    Pair,
    PrivKey,
    PubKey,
    Sign,
    SymEnc,
    pair,
    subterms,
)

__all__ = [
    "verify_protocol",
    "run_mutation_suite",
    "VerificationReport",
    "ClaimResult",
    "MUTATION_EXPECTATIONS",
    "ProtocolModel",
    "ProtocolVariant",
    "Trace",
    "Atom", "Pair", "Hash", "PubKey", "PrivKey", "Sign", "Mac", "SymEnc",
    "DhPub", "DhShared", "Kdf", "Knowledge", "pair", "subterms",
]
