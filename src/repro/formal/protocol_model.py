"""Symbolic model of the WaTZ remote-attestation protocol (Table II).

The model mirrors the implementation check-for-check; every check can be
disabled through :class:`ProtocolVariant` to demonstrate the checker finds
the corresponding attack (checker self-test, DESIGN.md ablation 3).

Scenario explored: one honest attester session (device D, application with
the trusted measurement), two honest verifier listener sessions, and a
Dolev–Yao intruder E that fully controls the network, owns its own DH
scalars and signature key, and — specific to WaTZ — can host a *malicious
Wasm application* inside the same device, obtaining genuine device-signed
evidence for the attacker's own code measurement with any anchor it
chooses. The verifier's claim check is what defeats that capability.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.formal.terms import (
    Atom,
    DhPub,
    DhShared,
    Hash,
    Kdf,
    Knowledge,
    Mac,
    Pair,
    PrivKey,
    PubKey,
    Sign,
    SymEnc,
    pair,
)

# Agents.
DEVICE = Atom("D")       # the attesting device (kernel attestation key)
VERIFIER = Atom("V")     # the relying party
INTRUDER = Atom("E")

# Values.
GOOD_CLAIM = Atom("claim_good")   # measurement of the honest application
EVIL_CLAIM = Atom("claim_evil")   # measurement of the intruder's application
SECRET_BLOB = Atom("blob")
INTRUDER_BLOB = Atom("blob_E")

# Session scalars.
A_SCALAR = Atom("a")      # honest attester's ephemeral scalar
V1_SCALAR = Atom("v1")
V2_SCALAR = Atom("v2")
E_SCALAR = Atom("e")      # the intruder's own scalar

MAC_LABEL = "Km"
ENC_LABEL = "Ke"


def session_keys(scalar_x, scalar_y) -> Tuple[Kdf, Kdf]:
    shared = DhShared(scalar_x, scalar_y)
    return Kdf(shared, MAC_LABEL), Kdf(shared, ENC_LABEL)


def anchor_of(g_a, g_v) -> Hash:
    return Hash(Pair(g_a, g_v))


def evidence_term(anchor, claim, device) -> Pair:
    return pair(anchor, claim, PubKey(device))


@dataclass(frozen=True)
class ProtocolVariant:
    """Togglable checks; all on = the protocol as shipped."""

    attester_checks_identity: bool = True
    attester_checks_signature: bool = True
    attester_checks_mac: bool = True
    verifier_checks_mac: bool = True
    verifier_checks_ga: bool = True
    verifier_checks_anchor: bool = True
    verifier_checks_endorsement: bool = True
    verifier_checks_evidence_signature: bool = True
    verifier_checks_claim: bool = True

    def mutate(self, **kwargs) -> "ProtocolVariant":
        return replace(self, **kwargs)


@dataclass
class AttesterState:
    pc: int = 0  # 0=start 1=sent msg0 2=accepted msg1+sent msg2 3=complete
    g_v: Optional[object] = None
    verifier_key: Optional[object] = None
    received_blob: Optional[object] = None


@dataclass
class VerifierState:
    scalar: object = V1_SCALAR
    pc: int = 0  # 0=start 1=replied msg1 2=complete (sent msg3)
    g_a: Optional[object] = None
    accepted_claim: Optional[object] = None
    accepted_device: Optional[object] = None


@dataclass
class Trace:
    """One explored interleaving."""

    events: List[Tuple] = field(default_factory=list)
    attester: AttesterState = field(default_factory=AttesterState)
    verifiers: List[VerifierState] = field(default_factory=list)

    def clone(self) -> "Trace":
        return Trace(
            events=list(self.events),
            attester=replace(self.attester),
            verifiers=[replace(v) for v in self.verifiers],
        )


class ProtocolModel:
    """Bounded exploration of the protocol under a Dolev–Yao intruder."""

    MAX_STEPS = 10

    def __init__(self, variant: Optional[ProtocolVariant] = None) -> None:
        self.variant = variant or ProtocolVariant()
        # Completion snapshots for the authentication claims.
        self.attester_completions: List[Trace] = []
        self.verifier_completions: List[Trace] = []
        self.both_complete = False  # reachability witness
        # First branch leaking each secret, if any.
        self.leaks: Dict[str, Trace] = {}

    # -- intruder initial knowledge -------------------------------------------------

    def initial_knowledge(self) -> Knowledge:
        knowledge = Knowledge([
            Atom("g"),
            E_SCALAR,
            PrivKey(INTRUDER),
            PubKey(INTRUDER),
            PubKey(VERIFIER),
            PubKey(DEVICE),   # the endorsement value is public
            GOOD_CLAIM,       # measurements are not secret
            EVIL_CLAIM,
            INTRUDER_BLOB,
        ])
        # WaTZ-specific oracle: the intruder can run its *own* Wasm
        # application inside the device; WaTZ will happily measure it and
        # the kernel will sign evidence for the attacker's claim with any
        # anchor the application supplies. The anchors the intruder can
        # reach in this bounded scenario are those of its own sessions
        # with the verifier.
        for scalar in (V1_SCALAR, V2_SCALAR):
            anchor = anchor_of(DhPub(E_SCALAR), DhPub(scalar))
            evil_evidence = evidence_term(anchor, EVIL_CLAIM, DEVICE)
            knowledge.add(Sign(PrivKey(DEVICE), evil_evidence))
        return knowledge

    # -- exploration --------------------------------------------------------------------

    SECRETS = (
        ("secret_blob", SECRET_BLOB),
        ("honest_mac_key", Kdf(DhShared(A_SCALAR, V1_SCALAR), MAC_LABEL)),
        ("honest_enc_key", Kdf(DhShared(A_SCALAR, V1_SCALAR), ENC_LABEL)),
        ("attestation_key", PrivKey(DEVICE)),
        ("attester_scalar", A_SCALAR),
        ("verifier_scalar", V1_SCALAR),
    )

    def explore(self) -> "ProtocolModel":
        """Depth-first search over intruder delivery choices."""
        trace = Trace(verifiers=[VerifierState(scalar=V1_SCALAR),
                                 VerifierState(scalar=V2_SCALAR)])
        knowledge = self.initial_knowledge()
        self._dfs(trace, knowledge, 0)
        return self

    def _record(self, trace: Trace, knowledge: Knowledge) -> None:
        if trace.attester.pc == 3 and trace.events \
                and trace.events[-1][0:2] == ("recv", "A"):
            self.attester_completions.append(trace.clone())
        if trace.events and trace.events[-1][2] == "msg3" \
                and trace.events[-1][0] == "send":
            self.verifier_completions.append(trace.clone())
        if trace.attester.pc == 3 and any(v.pc == 2 for v in trace.verifiers):
            self.both_complete = True
        for name, secret in self.SECRETS:
            if name not in self.leaks and knowledge.derives(secret):
                self.leaks[name] = trace.clone()

    def _dfs(self, trace: Trace, knowledge: Knowledge, depth: int) -> None:
        self._record(trace, knowledge)
        if depth >= self.MAX_STEPS:
            return
        moves = list(self._enabled_moves(trace, knowledge))
        for move in moves:
            snapshot = knowledge.snapshot()
            branch = trace.clone()
            move(branch, knowledge)
            self._dfs(branch, knowledge, depth + 1)
            knowledge.restore(snapshot)

    # -- enabled transitions -----------------------------------------------------------------

    def _enabled_moves(self, trace: Trace, knowledge: Knowledge):
        attester = trace.attester
        if attester.pc == 0:
            yield self._attester_send_msg0
        elif attester.pc == 1:
            yield from self._attester_recv_msg1_moves(trace, knowledge)
        elif attester.pc == 2:
            yield from self._attester_recv_msg3_moves(trace, knowledge)
        for index, verifier in enumerate(trace.verifiers):
            if verifier.pc == 0:
                yield from self._verifier_recv_msg0_moves(index, knowledge)
            elif verifier.pc == 1:
                yield from self._verifier_recv_msg2_moves(index, trace,
                                                          knowledge)

    # -- attester ---------------------------------------------------------------------------

    def _attester_send_msg0(self, trace: Trace, knowledge: Knowledge) -> None:
        trace.attester.pc = 1
        message = DhPub(A_SCALAR)
        trace.events.append(("send", "A", "msg0", message))
        knowledge.add(message)

    def _attester_recv_msg1_moves(self, trace: Trace, knowledge: Knowledge):
        g_a = DhPub(A_SCALAR)
        for g_v in (DhPub(V1_SCALAR), DhPub(V2_SCALAR), DhPub(E_SCALAR)):
            for verifier_key in (PubKey(VERIFIER), PubKey(INTRUDER)):
                if not knowledge.derives(g_v):
                    continue
                if self.variant.attester_checks_identity \
                        and verifier_key != PubKey(VERIFIER):
                    continue
                signature = Sign(PrivKey(verifier_key.agent),
                                 Pair(g_v, g_a))
                if self.variant.attester_checks_signature \
                        and not knowledge.derives(signature):
                    continue
                mac_key = Kdf(DhShared(A_SCALAR, g_v.scalar), MAC_LABEL)
                content = pair(g_v, verifier_key, signature)
                if self.variant.attester_checks_mac \
                        and not knowledge.derives(Mac(mac_key, content)):
                    continue
                yield self._make_attester_accept_msg1(g_v, verifier_key)

    def _make_attester_accept_msg1(self, g_v, verifier_key):
        def move(trace: Trace, knowledge: Knowledge) -> None:
            attester = trace.attester
            attester.pc = 2
            attester.g_v = g_v
            attester.verifier_key = verifier_key
            g_a = DhPub(A_SCALAR)
            trace.events.append(("recv", "A", "msg1", (g_v, verifier_key)))
            anchor = anchor_of(g_a, g_v)
            evidence = evidence_term(anchor, GOOD_CLAIM, DEVICE)
            signed = Sign(PrivKey(DEVICE), evidence)
            mac_key = Kdf(DhShared(A_SCALAR, g_v.scalar), MAC_LABEL)
            content = pair(g_a, evidence, signed)
            message = pair(content, Mac(mac_key, content))
            trace.events.append(("send", "A", "msg2", message))
            knowledge.add(message)

        return move

    def _attester_recv_msg3_moves(self, trace: Trace, knowledge: Knowledge):
        attester = trace.attester
        enc_key = Kdf(DhShared(A_SCALAR, attester.g_v.scalar), ENC_LABEL)
        for blob in (SECRET_BLOB, INTRUDER_BLOB):
            ciphertext = SymEnc(enc_key, blob)
            if not knowledge.derives(ciphertext):
                continue
            yield self._make_attester_accept_msg3(blob)

    def _make_attester_accept_msg3(self, blob):
        def move(trace: Trace, knowledge: Knowledge) -> None:
            trace.attester.pc = 3
            trace.attester.received_blob = blob
            trace.events.append(("recv", "A", "msg3", blob))
            self.any_attester_complete = True

        return move

    # -- verifier ----------------------------------------------------------------------------

    def _verifier_recv_msg0_moves(self, index: int, knowledge: Knowledge):
        for g_a in (DhPub(A_SCALAR), DhPub(E_SCALAR)):
            if not knowledge.derives(g_a):
                continue
            yield self._make_verifier_reply_msg1(index, g_a)

    def _make_verifier_reply_msg1(self, index: int, g_a):
        def move(trace: Trace, knowledge: Knowledge) -> None:
            verifier = trace.verifiers[index]
            verifier.pc = 1
            verifier.g_a = g_a
            g_v = DhPub(verifier.scalar)
            trace.events.append(("recv", f"V{index}", "msg0", g_a))
            signature = Sign(PrivKey(VERIFIER), Pair(g_v, g_a))
            mac_key = Kdf(DhShared(verifier.scalar, g_a.scalar), MAC_LABEL)
            content = pair(g_v, PubKey(VERIFIER), signature)
            message = pair(content, Mac(mac_key, content))
            trace.events.append(("send", f"V{index}", "msg1", message))
            knowledge.add(message)

        return move

    def _verifier_recv_msg2_moves(self, index: int, trace: Trace,
                                  knowledge: Knowledge):
        verifier = trace.verifiers[index]
        g_v = DhPub(verifier.scalar)
        candidate_gas = (DhPub(A_SCALAR), DhPub(E_SCALAR))
        anchor_halves = (DhPub(A_SCALAR), DhPub(E_SCALAR))
        anchor_others = (DhPub(V1_SCALAR), DhPub(V2_SCALAR), DhPub(E_SCALAR))
        for g_a2 in candidate_gas:
            if self.variant.verifier_checks_ga and g_a2 != verifier.g_a:
                continue
            for claim in (GOOD_CLAIM, EVIL_CLAIM):
                if self.variant.verifier_checks_claim \
                        and claim != GOOD_CLAIM:
                    continue
                for device in (DEVICE, INTRUDER):
                    if self.variant.verifier_checks_endorsement \
                            and device != DEVICE:
                        continue
                    for anchor_ga in anchor_halves:
                        for anchor_gv in anchor_others:
                            if self.variant.verifier_checks_anchor and (
                                    anchor_ga != verifier.g_a
                                    or anchor_gv != g_v):
                                continue
                            anchor = anchor_of(anchor_ga, anchor_gv)
                            evidence = evidence_term(anchor, claim, device)
                            genuine = Sign(PrivKey(device), evidence)
                            if self.variant.verifier_checks_evidence_signature:
                                if not knowledge.derives(genuine):
                                    continue
                                signed_candidates = [genuine]
                            else:
                                # Check disabled: the field may hold the
                                # genuine signature (honest run) or any
                                # junk the intruder can produce.
                                signed_candidates = [
                                    Sign(PrivKey(INTRUDER), evidence)
                                ]
                                if knowledge.derives(genuine):
                                    signed_candidates.append(genuine)
                            mac_key = Kdf(
                                DhShared(verifier.scalar,
                                         verifier.g_a.scalar),
                                MAC_LABEL,
                            )
                            for signed in signed_candidates:
                                content = pair(g_a2, evidence, signed)
                                if self.variant.verifier_checks_mac \
                                        and not knowledge.derives(
                                            Mac(mac_key, content)):
                                    continue
                                if not knowledge.derives(content):
                                    continue
                                yield self._make_verifier_accept_msg2(
                                    index, claim, device
                                )

    def _make_verifier_accept_msg2(self, index: int, claim, device):
        def move(trace: Trace, knowledge: Knowledge) -> None:
            verifier = trace.verifiers[index]
            verifier.pc = 2
            verifier.accepted_claim = claim
            verifier.accepted_device = device
            trace.events.append(("recv", f"V{index}", "msg2",
                                 (claim, device)))
            enc_key = Kdf(DhShared(verifier.scalar, verifier.g_a.scalar),
                          ENC_LABEL)
            message = SymEnc(enc_key, SECRET_BLOB)
            trace.events.append(("send", f"V{index}", "msg3", message))
            knowledge.add(message)
            self.any_verifier_complete = True

        return move
