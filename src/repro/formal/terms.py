"""Symbolic term algebra for the Dolev–Yao protocol model.

Terms are immutable trees. The equational theory covers what the WaTZ
protocol needs: pairing, hashing, MACs, signatures, symmetric encryption,
Diffie–Hellman (with the g^ab = g^ba identification), and key derivation.

The intruder model follows Dolev–Yao (paper §VII): the attacker sees every
message, can decompose what it knows and construct anything derivable —
but cannot break cryptography.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Set


class Term:
    """Base class; all terms are hashable and compared structurally."""

    __slots__ = ()


@dataclass(frozen=True)
class Atom(Term):
    """An atomic value: an agent name, nonce, scalar, or constant."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Pair(Term):
    """Concatenation of two terms (n-ary via nesting)."""

    left: Term
    right: Term

    def __repr__(self) -> str:
        return f"<{self.left!r}, {self.right!r}>"


@dataclass(frozen=True)
class Hash(Term):
    """A one-way hash; reveals nothing about its body."""

    body: Term

    def __repr__(self) -> str:
        return f"h({self.body!r})"


@dataclass(frozen=True)
class PubKey(Term):
    """The public half of an agent's signature key pair."""

    agent: Term

    def __repr__(self) -> str:
        return f"pk({self.agent!r})"


@dataclass(frozen=True)
class PrivKey(Term):
    """The private half; secret unless the agent is compromised."""

    agent: Term

    def __repr__(self) -> str:
        return f"sk({self.agent!r})"


@dataclass(frozen=True)
class Sign(Term):
    """A signature by ``key`` (a PrivKey) over ``body``.

    Conservatively, a signature *reveals* its body to the attacker
    (signatures are not confidentiality primitives), which only gives the
    intruder more power.
    """

    key: Term
    body: Term

    def __repr__(self) -> str:
        return f"sign({self.key!r}, {self.body!r})"


@dataclass(frozen=True)
class Mac(Term):
    """A MAC keyed by ``key`` over ``body``; reveals nothing."""

    key: Term
    body: Term

    def __repr__(self) -> str:
        return f"mac({self.key!r}, {self.body!r})"


@dataclass(frozen=True)
class SymEnc(Term):
    """Authenticated symmetric encryption of ``body`` under ``key``."""

    key: Term
    body: Term

    def __repr__(self) -> str:
        return f"enc({self.key!r}, {self.body!r})"


@dataclass(frozen=True)
class DhPub(Term):
    """g^x for a scalar term x."""

    scalar: Term

    def __repr__(self) -> str:
        return f"g^{self.scalar!r}"


class DhShared(Term):
    """g^(x*y): order-insensitive Diffie–Hellman shared secret."""

    __slots__ = ("scalars",)

    def __init__(self, scalar_a: Term, scalar_b: Term) -> None:
        ordered = sorted((scalar_a, scalar_b), key=repr)
        object.__setattr__(self, "scalars", tuple(ordered))

    def __setattr__(self, *args) -> None:
        raise AttributeError("terms are immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, DhShared) and self.scalars == other.scalars

    def __hash__(self) -> int:
        return hash(("DhShared", self.scalars))

    def __repr__(self) -> str:
        return f"g^({self.scalars[0]!r}*{self.scalars[1]!r})"


@dataclass(frozen=True)
class Kdf(Term):
    """A derived key: KDF(secret, label)."""

    secret: Term
    label: str

    def __repr__(self) -> str:
        return f"kdf({self.secret!r}, {self.label})"


def pair(*terms: Term) -> Term:
    """Right-nested n-ary concatenation."""
    if not terms:
        raise ValueError("pair of nothing")
    result = terms[-1]
    for term in reversed(terms[:-1]):
        result = Pair(term, result)
    return result


def subterms(term: Term) -> Iterable[Term]:
    """All subterms, including the term itself."""
    yield term
    if isinstance(term, Pair):
        yield from subterms(term.left)
        yield from subterms(term.right)
    elif isinstance(term, (Hash, Sign, Mac, SymEnc)):
        if isinstance(term, Hash):
            yield from subterms(term.body)
        else:
            yield from subterms(term.key)
            yield from subterms(term.body)
    elif isinstance(term, DhPub):
        yield from subterms(term.scalar)
    elif isinstance(term, DhShared):
        yield from subterms(term.scalars[0])
        yield from subterms(term.scalars[1])
    elif isinstance(term, Kdf):
        yield from subterms(term.secret)
    elif isinstance(term, (PubKey, PrivKey)):
        yield from subterms(term.agent)


class Knowledge:
    """An intruder knowledge set closed under decomposition.

    Decomposition (applied eagerly to a fixpoint):

    * pairs split;
    * signatures reveal their bodies;
    * symmetric ciphertexts open when the key is derivable.

    Construction is checked lazily by :meth:`derives` so the set stays
    finite.
    """

    def __init__(self, initial: Iterable[Term] = ()) -> None:
        self._terms: Set[Term] = set()
        for term in initial:
            self.add(term)

    def __contains__(self, term: Term) -> bool:
        return term in self._terms

    def __iter__(self):
        return iter(self._terms)

    def __len__(self) -> int:
        return len(self._terms)

    def snapshot(self) -> FrozenSet[Term]:
        return frozenset(self._terms)

    def restore(self, snapshot: FrozenSet[Term]) -> None:
        self._terms = set(snapshot)

    def add(self, term: Term) -> None:
        """Add a term and re-close under decomposition."""
        if term in self._terms:
            return
        queue = [term]
        while queue:
            current = queue.pop()
            if current in self._terms:
                continue
            self._terms.add(current)
            if isinstance(current, Pair):
                queue.append(current.left)
                queue.append(current.right)
            elif isinstance(current, Sign):
                queue.append(current.body)
            # Ciphertexts whose keys later become derivable are reopened
            # below.
        self._reclose()

    def _reclose(self) -> None:
        changed = True
        while changed:
            changed = False
            for current in list(self._terms):
                if isinstance(current, SymEnc) \
                        and current.body not in self._terms \
                        and self.derives(current.key):
                    self._terms.add(current.body)
                    if isinstance(current.body, Pair):
                        self.add(current.body)
                    changed = True

    def derives(self, goal: Term, _pending: Optional[frozenset] = None) -> bool:
        """Can the intruder construct ``goal`` from its knowledge?"""
        if goal in self._terms:
            return True
        pending = _pending or frozenset()
        if goal in pending:
            return False
        pending = pending | {goal}
        if isinstance(goal, Pair):
            return (self.derives(goal.left, pending)
                    and self.derives(goal.right, pending))
        if isinstance(goal, Hash):
            return self.derives(goal.body, pending)
        if isinstance(goal, (Sign, Mac, SymEnc)):
            return (self.derives(goal.key, pending)
                    and self.derives(goal.body, pending))
        if isinstance(goal, DhPub):
            return self.derives(goal.scalar, pending)
        if isinstance(goal, DhShared):
            first, second = goal.scalars
            # Knowing one scalar and the other half's public value (or
            # both scalars) yields the shared secret.
            if self.derives(first, pending) and (
                    self.derives(DhPub(second), pending)
                    or self.derives(second, pending)):
                return True
            if self.derives(second, pending) and self.derives(
                    DhPub(first), pending):
                return True
            return False
        if isinstance(goal, Kdf):
            return self.derives(goal.secret, pending)
        if isinstance(goal, PubKey):
            return True  # public keys are public
        return False
