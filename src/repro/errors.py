"""Shared exception hierarchy for the WaTZ reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can distinguish faults of this library from programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this library."""


# --- WebAssembly ----------------------------------------------------------


class WasmError(ReproError):
    """Base class for WebAssembly subsystem errors."""


class DecodeError(WasmError):
    """Malformed or truncated Wasm binary."""


class ValidationError(WasmError):
    """A structurally sound module violates the Wasm validation rules."""


class TrapError(WasmError):
    """A Wasm trap raised during execution (e.g. out-of-bounds access)."""

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


class LinkError(WasmError):
    """An import could not be resolved at instantiation time."""


class ExhaustionError(TrapError):
    """Call-stack or fuel exhaustion during execution."""


# --- Compiler (walc) ------------------------------------------------------


class CompileError(ReproError):
    """Base class for walc compiler errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class LexError(CompileError):
    """Invalid token in walc source."""


class ParseError(CompileError):
    """Invalid syntax in walc source."""


class TypeCheckError(CompileError):
    """Type error in walc source."""


# --- Crypto ---------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class SignatureError(CryptoError):
    """A digital signature failed verification."""


class AuthenticationError(CryptoError):
    """A MAC or AEAD tag failed verification."""


# --- Hardware / platform --------------------------------------------------


class HardwareError(ReproError):
    """Base class for simulated-hardware faults."""


class FuseError(HardwareError):
    """Illegal eFuse operation (double programming, read of locked bank)."""


class SecureBootError(HardwareError):
    """The boot chain rejected a stage image."""


class WorldError(HardwareError):
    """Illegal cross-world access or transition."""


# --- OP-TEE ---------------------------------------------------------------


class TeeError(ReproError):
    """Base class for trusted-OS errors (mirrors GP TEE_Result codes)."""

    code = 0xFFFF0000  # TEE_ERROR_GENERIC

    def __init__(self, message: str = "") -> None:
        super().__init__(message or self.__class__.__name__)


class TeeOutOfMemory(TeeError):
    code = 0xFFFF000C


class TeeAccessDenied(TeeError):
    code = 0xFFFF0001


class TeeBadParameters(TeeError):
    code = 0xFFFF0006


class TeeItemNotFound(TeeError):
    code = 0xFFFF0008


class TeeSecurityViolation(TeeError):
    code = 0xFFFF000F


class TeeShortBuffer(TeeError):
    code = 0xFFFF0010


class TeeCommunicationError(TeeError):
    code = 0xFFFF000E


# --- Remote attestation ---------------------------------------------------


class AttestationError(ReproError):
    """Base class for remote-attestation failures."""


class ProtocolError(AttestationError):
    """A protocol message was malformed or arrived out of order."""


class EvidenceError(AttestationError):
    """Evidence construction or verification failed."""


class EndorsementError(AttestationError):
    """The verifier does not endorse the attesting device."""


class MeasurementMismatch(AttestationError):
    """The claimed code measurement matches no reference value."""


# --- Multi-TEE appraisal (repro.appraisal) --------------------------------


class EnvelopeError(EvidenceError):
    """A multi-TEE evidence envelope or codec body failed to parse.

    Raised for truncated bodies, bad magic, unknown ``tee_type`` tags and
    non-canonical field encodings — codec parsing never leaks raw
    ``struct.error``/``IndexError`` to callers.
    """


class PolicyDenied(AttestationError):
    """The declarative appraisal policy denied otherwise-valid evidence.

    ``reason_code`` carries the stable machine-readable verdict reason
    (see :class:`repro.appraisal.policy.Reason`); it is embedded in the
    message as a ``[reason]`` suffix so the code survives the fleet
    shards' name+message IPC error hop.
    """

    def __init__(self, message: str = "", reason: str = None) -> None:
        if reason is None:
            # Recover the code from a message that crossed the IPC hop.
            start, end = message.rfind("["), message.rfind("]")
            reason = message[start + 1:end] if 0 <= start < end else "denied"
            super().__init__(message or f"appraisal denied [{reason}]")
        else:
            suffix = f"[{reason}]"
            if not message:
                message = f"appraisal denied {suffix}"
            elif not message.endswith(suffix):
                message = f"{message} {suffix}"
            super().__init__(message)
        self.reason_code = reason


# --- Fleet gateway --------------------------------------------------------


class FleetError(ReproError):
    """Base class for attestation-gateway errors."""


class FleetOverloaded(FleetError):
    """The gateway shed load instead of queueing without bound.

    ``reason`` distinguishes token-bucket rate limiting (``"rate"``) from
    a full accept queue (``"queue"``).
    """

    def __init__(self, message: str = "", reason: str = "queue") -> None:
        super().__init__(message or f"gateway overloaded ({reason})")
        self.reason = reason


class FleetShardCrashed(FleetError):
    """A verifier shard died (or wedged) while serving a message.

    The in-flight handshake cannot be salvaged — its protocol state lived
    in the dead shard — so it fails cleanly and the attester restarts
    from msg0 against the respawned worker.
    """


# --- Formal verification --------------------------------------------------


class FormalError(ReproError):
    """Base class for protocol-model errors."""


class AttackFound(FormalError):
    """The checker found a concrete attack trace on a claimed property."""

    def __init__(self, claim: str, trace: list) -> None:
        super().__init__(f"attack found on claim {claim!r}")
        self.claim = claim
        self.trace = trace


# --- Workloads ------------------------------------------------------------


class WorkloadError(ReproError):
    """Base class for workload/benchmark errors."""


class SqlError(WorkloadError):
    """SQL parse or execution error in the mini database."""
