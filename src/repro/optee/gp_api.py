"""GlobalPlatform TEE Internal API subset, plus client-side (TEEC) API.

Two halves:

* :class:`GpInternalApi` — what a trusted application sees: accounted
  heap, nanosecond system time (the paper's extension to ``TEE_Time``),
  randomness, GP sockets (redirected to the normal world through the
  supplicant), and the WaTZ-specific kernel extensions (executable pages,
  attestation signing).
* :class:`OpTeeClient` — the normal-world client API: shared-memory
  registration, session open/close, command invocation. Every invocation
  pays the world-transition costs of Fig. 3b.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import TeeAccessDenied, TeeBadParameters, TeeOutOfMemory
from repro.hw.caam import World
from repro.optee.kernel import ExecutableRegion, OpTeeKernel
from repro.optee.sharedmem import SharedBuffer
from repro.optee.ta import TaManifest, TrustedApplication

#: Granularity of the world-shared bounce-buffer copy (matches the msg3
#: streaming pipeline's ``protocol.MSG3_CHUNK_SIZE``): received payloads
#: cross into secure memory chunk by chunk, exactly once.
SHARED_COPY_CHUNK = 128 * 1024


def _charge_shared_copy(soc, size: int, chunk: int = SHARED_COPY_CHUNK) -> None:
    """Advance the SimClock for a chunkwise world-shared copy.

    Charges each chunk as the difference of cumulative ``shared_copy_ns``
    values, so the telescoping sum is byte-identical to the old one-shot
    charge despite the cost model's integer division.
    """
    previous = 0
    end = 0
    while True:
        end = min(size, end + chunk)
        cumulative = soc.costs.shared_copy_ns(end)
        soc.clock.advance(cumulative - previous)
        previous = cumulative
        if end >= size:
            break


class GpInternalApi:
    """Per-session service interface handed to a TA."""

    def __init__(self, kernel: OpTeeKernel, manifest: TaManifest) -> None:
        self._kernel = kernel
        self.manifest = manifest
        # The TA's declared heap is reserved from the secure heap for the
        # whole session (TAs size it at compile time, §VI-A); stacks live
        # in separate per-thread TA RAM and do not count against the cap —
        # the paper's 17 MB + 10 MB attester/verifier split fills the
        # 27 MB heap exactly.
        kernel.secure_alloc(manifest.heap_size)
        self._released = False
        self._heap_used = 0
        self._sockets: Dict[int, int] = {}  # ta handle -> supplicant handle
        self._next_socket = 1

    # -- memory -------------------------------------------------------------------

    def tee_malloc(self, size: int) -> int:
        """Account an allocation inside the TA's declared heap."""
        if size < 0:
            raise TeeBadParameters("negative allocation")
        if self._heap_used + size > self.manifest.heap_size:
            raise TeeOutOfMemory(
                f"TA {self.manifest.name!r} heap exhausted: "
                f"{self._heap_used + size} > {self.manifest.heap_size} bytes"
            )
        self._heap_used += size
        return self._heap_used

    def tee_free(self, size: int) -> None:
        self._heap_used = max(0, self._heap_used - size)

    @property
    def heap_used(self) -> int:
        return self._heap_used

    @property
    def heap_free(self) -> int:
        return self.manifest.heap_size - self._heap_used

    def alloc_executable(self, size: int) -> ExecutableRegion:
        """WaTZ extension: executable pages for AOT Wasm bytecode.

        The backing memory counts against the TA's own heap; the syscall
        flips the page protections.
        """
        self.tee_malloc(size)
        return self._kernel.map_executable_pages(size)

    def free_executable(self, region: ExecutableRegion) -> None:
        self._kernel.unmap_executable_pages(region)
        self.tee_free(region.size)

    def release(self) -> None:
        """Session teardown: return the reserved memory."""
        if not self._released:
            self._kernel.secure_free(self.manifest.heap_size)
            self._released = True

    # -- platform cost hooks -----------------------------------------------------------

    def charge_ns(self, delta_ns: int) -> None:
        """Advance the simulated clock (architectural latency accounting)."""
        self._kernel.soc.clock.advance(delta_ns)

    @property
    def costs(self):
        return self._kernel.soc.costs

    @property
    def tracer(self):
        """The board's attached tracer, or None (tracing disabled)."""
        return self._kernel.soc.tracer

    # -- time ----------------------------------------------------------------------

    def get_system_time_ns(self) -> int:
        """Nanosecond monotonic time (the paper's TEE_Time extension)."""
        self._kernel.soc.require_world(World.SECURE)
        return self._kernel.soc.read_monotonic_ns()

    # -- randomness -----------------------------------------------------------------

    def generate_random(self, size: int) -> bytes:
        return self._kernel.rng.random_bytes(size)

    # -- GP Trusted Storage (per-TA persistent objects) ---------------------------------

    def storage_put(self, object_id: str, payload: bytes) -> None:
        """Create or replace a persistent object owned by this TA."""
        self._kernel.trusted_storage.put(self.manifest.uuid, object_id,
                                         payload)

    def storage_get(self, object_id: str) -> bytes:
        return self._kernel.trusted_storage.get(self.manifest.uuid,
                                                object_id)

    def storage_delete(self, object_id: str) -> None:
        self._kernel.trusted_storage.delete(self.manifest.uuid, object_id)

    def storage_exists(self, object_id: str) -> bool:
        return self._kernel.trusted_storage.exists(self.manifest.uuid,
                                                   object_id)

    def storage_list(self):
        return self._kernel.trusted_storage.list_ids(self.manifest.uuid)

    # -- WaTZ attestation extension ----------------------------------------------------

    def attestation_public_key(self) -> bytes:
        return self._kernel.attestation_service.public_key_bytes

    def boot_measurement(self) -> bytes:
        """The measured-boot claim (§VII extension)."""
        return self._kernel.boot_measurement

    def attestation_sign(self, evidence_bytes: bytes) -> bytes:
        """Forward claims to the kernel attestation service for signing."""
        return self._kernel.attestation_service.sign_evidence(evidence_bytes)

    @property
    def optee_version(self) -> str:
        return self._kernel.version

    # -- GP sockets (TCP over the supplicant) ----------------------------------------------

    def _socket_rpc(self, operation, payload_size: int = 0):
        soc = self._kernel.soc
        soc.require_world(World.SECURE)
        tracer = soc.tracer
        if tracer is None:
            soc.clock.advance(soc.costs.shared_copy_ns(payload_size))
            with soc.rpc_to_normal_world():
                soc.clock.advance(soc.costs.socket_roundtrip_ns)
                result = operation()
            return result
        with tracer.span("optee.socket_rpc", world="secure",
                         payload=payload_size):
            with tracer.span("optee.shared_copy", world="secure"):
                soc.clock.advance(soc.costs.shared_copy_ns(payload_size))
            with soc.rpc_to_normal_world():
                with tracer.span("net.socket_roundtrip", world="normal"):
                    soc.clock.advance(soc.costs.socket_roundtrip_ns)
                    result = operation()
        return result

    def tcp_connect(self, host: str, port: int) -> int:
        supplicant = self._kernel.require_supplicant()
        remote = self._socket_rpc(lambda: supplicant.connect(host, port))
        handle = self._next_socket
        self._next_socket += 1
        self._sockets[handle] = remote
        return handle

    def tcp_send(self, handle: int, data: bytes) -> None:
        supplicant = self._kernel.require_supplicant()
        remote = self._socket_handle(handle)
        self._socket_rpc(lambda: supplicant.send(remote, data), len(data))

    def tcp_receive(self, handle: int) -> bytes:
        supplicant = self._kernel.require_supplicant()
        remote = self._socket_handle(handle)
        data = self._socket_rpc(lambda: supplicant.receive(remote))
        soc = self._kernel.soc
        if soc.tracer is None:
            _charge_shared_copy(soc, len(data))
        else:
            with soc.tracer.span("optee.shared_copy", world="secure",
                                 payload=len(data)):
                _charge_shared_copy(soc, len(data))
        return data

    def tcp_close(self, handle: int) -> None:
        supplicant = self._kernel.require_supplicant()
        remote = self._sockets.pop(handle, None)
        if remote is not None:
            self._socket_rpc(lambda: supplicant.close(remote))

    def _socket_handle(self, handle: int) -> int:
        remote = self._sockets.get(handle)
        if remote is None:
            raise TeeBadParameters(f"unknown socket handle {handle}")
        return remote


class TaSession:
    """An open client session with a TA instance in the secure world."""

    def __init__(self, client: "OpTeeClient", ta: TrustedApplication,
                 api: GpInternalApi) -> None:
        self._client = client
        self.ta = ta
        self.api = api
        self._open = True

    def invoke(self, command: int, params: Optional[dict] = None) -> dict:
        """Invoke a TA command, paying the world-transition costs."""
        if not self._open:
            raise TeeAccessDenied("session is closed")
        soc = self._client.kernel.soc
        tracer = soc.tracer
        if tracer is None:
            with soc.enter_secure_world():
                result = self.ta.invoke(command, params or {})
            return result
        with tracer.span("optee.ta.invoke", ta=self.api.manifest.name,
                         command=command):
            with soc.enter_secure_world():
                result = self.ta.invoke(command, params or {})
        return result

    def close(self) -> None:
        if not self._open:
            return
        soc = self._client.kernel.soc
        tracer = soc.tracer
        if tracer is None:
            with soc.enter_secure_world():
                self.ta.close_session()
                self.api.release()
        else:
            with tracer.span("optee.ta.close", ta=self.api.manifest.name):
                with soc.enter_secure_world():
                    self.ta.close_session()
                    self.api.release()
        self._open = False


class OpTeeClient:
    """The normal-world GP client API (TEEC_*)."""

    def __init__(self, kernel: OpTeeKernel) -> None:
        self.kernel = kernel

    def allocate_shared_memory(self, size: int) -> SharedBuffer:
        """Register a world-shared buffer (normal world side)."""
        self.kernel.soc.require_world(World.NORMAL)
        return self.kernel.shared_memory.allocate(size)

    def open_session(self, uuid: str) -> TaSession:
        """Open a session: loads and verifies the TA, pays transition costs."""
        self.kernel.soc.require_world(World.NORMAL)
        image = self.kernel.ta_image(uuid)
        soc = self.kernel.soc
        tracer = soc.tracer
        if tracer is None:
            with soc.enter_secure_world():
                api = GpInternalApi(self.kernel, image.manifest)
                ta = image.factory()
                ta.manifest = image.manifest
                ta.open_session(api)
            return TaSession(self, ta, api)
        with tracer.span("optee.ta.open", ta=image.manifest.name):
            with soc.enter_secure_world():
                api = GpInternalApi(self.kernel, image.manifest)
                ta = image.factory()
                ta.manifest = image.manifest
                ta.open_session(api)
        return TaSession(self, ta, api)
