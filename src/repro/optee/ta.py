"""Trusted applications: manifest, signing and life cycle.

OP-TEE only loads TAs signed with the vendor key (paper §II/§VII) — the
very restriction WaTZ lifts for *Wasm* applications, which run inside the
signed WaTZ runtime TA and are isolated by the Wasm sandbox instead.
"""

from __future__ import annotations

import uuid as uuid_module
from dataclasses import dataclass, field
from typing import Optional

from repro.crypto import ecdsa
from repro.crypto.hashing import sha256
from repro.errors import TeeSecurityViolation


@dataclass(frozen=True)
class TaManifest:
    """Compile-time properties of a trusted application."""

    uuid: str
    name: str
    # TAs declare heap and stack sizes at compile time (paper §VI-A).
    heap_size: int
    stack_size: int = 3 * 1024

    def encode(self) -> bytes:
        return (
            f"{self.uuid}|{self.name}|{self.heap_size}|{self.stack_size}"
        ).encode()


class TrustedApplication:
    """Base class for secure-world applications.

    Subclasses implement :meth:`invoke`; sessions receive a
    :class:`~repro.optee.gp_api.GpInternalApi` at open time, their only
    window onto system services.
    """

    manifest: TaManifest

    def open_session(self, api) -> None:
        """Called when a client opens a session; ``api`` is the GP API."""
        self.api = api

    def invoke(self, command: int, params: dict) -> dict:
        raise NotImplementedError

    def close_session(self) -> None:
        """Called when the client closes the session."""


@dataclass(frozen=True)
class TaImage:
    """A deployable, signed TA image."""

    manifest: TaManifest
    payload: bytes  # the (symbolic) ELF payload; signed and measured
    signature: bytes
    factory: type = None  # the TrustedApplication subclass to instantiate

    @property
    def signed_blob(self) -> bytes:
        return self.manifest.encode() + b"\x00" + self.payload

    @property
    def measurement(self) -> bytes:
        return sha256(self.signed_blob)


def sign_ta(manifest: TaManifest, payload: bytes, factory: type,
            vendor_key: ecdsa.KeyPair) -> TaImage:
    """Sign a TA for deployment, as the OP-TEE build system would."""
    blob = manifest.encode() + b"\x00" + payload
    return TaImage(
        manifest=manifest,
        payload=payload,
        signature=ecdsa.sign(vendor_key.private, blob),
        factory=factory,
    )


def verify_ta(image: TaImage, vendor_public) -> None:
    """Check a TA image signature; raise on tampering or wrong key."""
    try:
        ecdsa.verify(vendor_public, image.signed_blob, image.signature)
    except Exception as exc:
        raise TeeSecurityViolation(
            f"TA {image.manifest.name!r} signature verification failed"
        ) from exc


def fresh_uuid() -> str:
    """Generate a TA UUID (host-side convenience)."""
    return str(uuid_module.uuid4())
