"""GP Trusted Storage (TEE secure object store).

The paper leaves WASI file-system support as future work, noting it can
be built "via the Trusted Storage API" (§III/§V). This module provides
that substrate: persistent objects, namespaced *per TA UUID* — the
isolation property §VII discusses (a TA reusing another's UUID would
reach its storage, which is why OP-TEE gates TA identity on the vendor
signature; our kernel enforces the same at install time).

Rollback protection (§VII): every write bumps a hardware monotonic
counter and records the value alongside the object. An attacker who
restores an old snapshot of the storage medium cannot wind back the
counter, so the stale version is detected on the next read.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import TeeAccessDenied, TeeItemNotFound, TeeSecurityViolation


class TrustedStorage:
    """Kernel-side secure object store, persistent across TA sessions."""

    def __init__(self, counters=None) -> None:
        # (ta_uuid, object_id) -> (payload, version)
        self._objects: Dict[Tuple[str, str], Tuple[bytes, int]] = {}
        self._counters = counters

    @staticmethod
    def _counter_label(ta_uuid: str, object_id: str) -> str:
        return f"ts/{ta_uuid}/{object_id}"

    def put(self, ta_uuid: str, object_id: str, payload: bytes) -> None:
        if not object_id:
            raise TeeAccessDenied("empty object identifier")
        version = 0
        if self._counters is not None:
            version = self._counters.increment(
                self._counter_label(ta_uuid, object_id))
        self._objects[(ta_uuid, object_id)] = (bytes(payload), version)

    def get(self, ta_uuid: str, object_id: str) -> bytes:
        try:
            payload, version = self._objects[(ta_uuid, object_id)]
        except KeyError:
            raise TeeItemNotFound(
                f"no trusted object {object_id!r} for this TA"
            ) from None
        if self._counters is not None:
            expected = self._counters.read(
                self._counter_label(ta_uuid, object_id))
            if version != expected:
                raise TeeSecurityViolation(
                    f"rollback detected on {object_id!r}: stored version "
                    f"{version}, hardware counter {expected}"
                )
        return payload

    def delete(self, ta_uuid: str, object_id: str) -> None:
        if self._objects.pop((ta_uuid, object_id), None) is None:
            raise TeeItemNotFound(f"no trusted object {object_id!r}")
        # The counter deliberately keeps advancing: a re-created object
        # gets a fresh, higher version, so restoring the deleted one is
        # still detectable.
        if self._counters is not None:
            self._counters.increment(self._counter_label(ta_uuid, object_id))

    def exists(self, ta_uuid: str, object_id: str) -> bool:
        return (ta_uuid, object_id) in self._objects

    def list_ids(self, ta_uuid: str) -> List[str]:
        return sorted(object_id for uuid, object_id in self._objects
                      if uuid == ta_uuid)

    def snapshot(self) -> Dict:
        """What an attacker with medium access could copy (tests only)."""
        return dict(self._objects)

    def restore_snapshot(self, snapshot: Dict) -> None:
        """Simulate an attacker restoring an old medium image."""
        self._objects = dict(snapshot)
