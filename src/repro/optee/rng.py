"""Kernel random number generation.

OP-TEE's stock PRNG cannot be seeded (paper §V), which is why the paper
adds Fortuna for the deterministic attestation-key derivation. The kernel
RNG here serves ordinary randomness requests (session keys, IVs); it is a
Fortuna generator continuously reseeded from a hardware entropy source —
in the simulation, the host's ``os.urandom``, or a deterministic stand-in
for reproducible tests.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from repro.crypto.fortuna import Fortuna


class KernelRng:
    """The trusted kernel's randomness service."""

    def __init__(self, entropy_source: Optional[Callable[[int], bytes]] = None) -> None:
        self._entropy = entropy_source or os.urandom
        self._generator = Fortuna()
        self._generator.reseed(self._entropy(32))
        self._bytes_since_reseed = 0

    def random_bytes(self, size: int) -> bytes:
        """Return ``size`` random bytes, reseeding periodically."""
        self._bytes_since_reseed += size
        if self._bytes_since_reseed > 1 << 16:
            self._generator.reseed(self._entropy(32))
            self._bytes_since_reseed = 0
        out = bytearray()
        while size > 0:
            chunk = self._generator.random_bytes(min(size, 1 << 20))
            out.extend(chunk)
            size -= len(chunk)
        return bytes(out)
