"""Simulated OP-TEE: trusted kernel, GP APIs, TAs, shared memory.

Replaces OP-TEE 3.13 in the paper's stack, including the paper's own
extensions: nanosecond secure-world time, the executable-page syscall for
AOT Wasm, the 256-bit HUK plumbing, and the attestation-service kernel
module.
"""

from repro.optee.attestation_service import AttestationService
from repro.optee.gp_api import GpInternalApi, OpTeeClient, TaSession
from repro.optee.kernel import OPTEE_VERSION, SECURE_HEAP_CAP, OpTeeKernel
from repro.optee.rng import KernelRng
from repro.optee.sharedmem import SHARED_MEMORY_CAP, SharedBuffer, SharedMemoryPool
from repro.optee.storage import TrustedStorage
from repro.optee.supplicant import Supplicant
from repro.optee.ta import (
    TaImage,
    TaManifest,
    TrustedApplication,
    fresh_uuid,
    sign_ta,
    verify_ta,
)

__all__ = [
    "OpTeeKernel",
    "OpTeeClient",
    "TaSession",
    "GpInternalApi",
    "AttestationService",
    "KernelRng",
    "Supplicant",
    "TrustedStorage",
    "SharedMemoryPool",
    "SharedBuffer",
    "SHARED_MEMORY_CAP",
    "SECURE_HEAP_CAP",
    "OPTEE_VERSION",
    "TaManifest",
    "TaImage",
    "TrustedApplication",
    "sign_ta",
    "verify_ta",
    "fresh_uuid",
]
