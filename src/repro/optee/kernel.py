"""The OP-TEE trusted kernel.

Boots on a securely-booted SoC, owns the secure heap (with the paper's
27 MB cap) and the shared-memory pool (9 MB cap), loads signed TAs, and
hosts the kernel modules — notably the WaTZ attestation service and the
executable-page syscall the paper adds for AOT Wasm execution.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.crypto import ec, ecdsa
from repro.crypto.hashing import hmac_sha256
from repro.errors import (
    SecureBootError,
    TeeAccessDenied,
    TeeBadParameters,
    TeeItemNotFound,
    TeeOutOfMemory,
)
from repro.hw.caam import World
from repro.optee.attestation_service import AttestationService
from repro.optee.rng import KernelRng
from repro.optee.sharedmem import SharedMemoryPool
from repro.optee.storage import TrustedStorage
from repro.optee.supplicant import Supplicant
from repro.optee.ta import TaImage, verify_ta

#: The paper's raised secure-heap limit ("up to 27 MB").
SECURE_HEAP_CAP = 27 * 1024 * 1024

OPTEE_VERSION = "3.13-watz"


class ExecutableRegion:
    """Pages allocated through the paper's mprotect-like extension."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.executable = True


class OpTeeKernel:
    """The trusted OS. Instantiate only after a successful secure boot."""

    def __init__(self, soc, vendor_public: ec.Point,
                 rng: Optional[KernelRng] = None,
                 allow_executable_pages: bool = True) -> None:
        if not soc.securely_booted:
            raise SecureBootError("OP-TEE requires a securely booted SoC")
        soc.require_world(World.SECURE)
        self.soc = soc
        self.vendor_public = vendor_public
        self.version = OPTEE_VERSION
        # Whether the executable-page syscall extension is present; stock
        # OP-TEE lacks it (paper §III, "Execution modes") — used by the
        # AOT ablation.
        self.allow_executable_pages = allow_executable_pages

        # The hardware unique key: derived from the secure-world MKVB. The
        # paper widened OP-TEE's HUK plumbing to the full 256-bit blob.
        self.__huk = soc.master_key_blob()

        self.shared_memory = SharedMemoryPool()
        self.secure_heap_capacity = SECURE_HEAP_CAP
        self.secure_heap_allocated = 0

        self.rng = rng or KernelRng()
        self.attestation_service = AttestationService(self)
        self.trusted_storage = TrustedStorage(soc.monotonic)
        # Measured-boot claim (§VII): the PCR-style accumulation of every
        # boot-stage measurement, for inclusion in attestation evidence.
        self.boot_measurement = soc.boot_report.accumulated_measurement()

        self._ta_images: Dict[str, TaImage] = {}
        self.supplicant: Optional[Supplicant] = None

        # Boot complete: hand the CPU back to the normal world so clients
        # can start opening sessions.
        soc.current_world = World.NORMAL

    # -- key derivation ----------------------------------------------------------

    def huk_subkey_derive(self, usage: bytes, size: int) -> bytes:
        """OP-TEE's HUK-based subkey derivation (kernel-internal)."""
        if size > 32:
            raise TeeBadParameters("huk subkeys are at most 32 bytes")
        return hmac_sha256(self.__huk, usage)[:size]

    # -- secure heap ----------------------------------------------------------------

    def secure_alloc(self, size: int) -> None:
        """Account a secure-heap allocation against the 27 MB cap."""
        if size < 0:
            raise TeeBadParameters("negative allocation")
        if self.secure_heap_allocated + size > self.secure_heap_capacity:
            raise TeeOutOfMemory(
                f"secure heap cap exceeded: "
                f"{self.secure_heap_allocated + size} > "
                f"{self.secure_heap_capacity} bytes"
            )
        self.secure_heap_allocated += size

    def secure_free(self, size: int) -> None:
        self.secure_heap_allocated = max(0, self.secure_heap_allocated - size)

    def map_executable_pages(self, size: int) -> ExecutableRegion:
        """The WaTZ kernel extension: executable memory for AOT bytecode.

        Stock OP-TEE cannot change page protections from a TA, which is
        what previously blocked AOT Wasm execution in the secure world.
        The pages themselves come out of the calling TA's reserved heap;
        this syscall only flips the protection bits.
        """
        if not self.allow_executable_pages:
            raise TeeAccessDenied(
                "this OP-TEE build cannot map executable pages "
                "(stock kernel; see paper §III)"
            )
        return ExecutableRegion(size)

    def unmap_executable_pages(self, region: ExecutableRegion) -> None:
        region.executable = False

    # -- TA management ----------------------------------------------------------------

    def install_ta(self, image: TaImage) -> None:
        """Register a signed TA image; verification happens at load."""
        verify_ta(image, self.vendor_public)
        self._ta_images[image.manifest.uuid] = image

    def ta_image(self, uuid: str) -> TaImage:
        image = self._ta_images.get(uuid)
        if image is None:
            raise TeeItemNotFound(f"no TA with UUID {uuid}")
        return image

    # -- normal-world services ------------------------------------------------------------

    def attach_supplicant(self, supplicant: Supplicant) -> None:
        self.supplicant = supplicant

    def require_supplicant(self) -> Supplicant:
        if self.supplicant is None:
            raise TeeAccessDenied("no tee-supplicant is running")
        return self.supplicant
