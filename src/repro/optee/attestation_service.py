"""The WaTZ attestation service, an OP-TEE kernel module.

Paper §V: evidence signing is offloaded to a dedicated trusted-kernel
module so the private attestation key is never exposed to user-space TAs.
The key pair is derived *deterministically at every boot* from the
hardware root of trust: the secure-world MKVB is folded through
``huk_subkey_derive`` and used to seed a Fortuna PRNG that feeds the ECDSA
key generation — so OS updates keep the device identity stable while the
private scalar never leaves the kernel.
"""

from __future__ import annotations

from repro.crypto import ec, ecdsa
from repro.crypto.fortuna import seeded_fortuna
from repro.errors import TeeAccessDenied
from repro.hw.caam import World

ATTESTATION_KEY_USAGE = b"watz/attestation-key/v1"


class AttestationService:
    """Kernel-resident signer for WaTZ evidence."""

    def __init__(self, kernel) -> None:
        self._kernel = kernel
        seed = kernel.huk_subkey_derive(ATTESTATION_KEY_USAGE, 32)
        generator = seeded_fortuna(seed)
        self.__key_pair = ecdsa.keypair_from_seed_stream(generator.random_bytes)
        # Boot-time warm-up: signing uses the generator's comb tables, and
        # any local verification of our own evidence (tests, loopback
        # appraisals) uses the per-key table. Both are pure precomputation
        # over public values, paid once here rather than on the first
        # attestation's critical path.
        ec.warm_generator_tables()
        ec.precompute_public_key(self.__key_pair.public)

    @property
    def public_key_bytes(self) -> bytes:
        """The endorsement value exported to verifiers (paper §IV)."""
        return self.__key_pair.public_bytes()

    def sign_evidence(self, evidence_bytes: bytes) -> bytes:
        """Sign serialised evidence on behalf of the runtime TA.

        Callable only while the CPU is in the secure world: the service is
        kernel code, unreachable through any normal-world interface.
        """
        if self._kernel.soc.current_world != World.SECURE:
            raise TeeAccessDenied(
                "attestation service is only reachable from the secure world"
            )
        return ecdsa.sign(self.__key_pair.private, evidence_bytes)
