"""World-shared memory buffers.

OP-TEE TAs cannot touch normal-world memory directly; the two worlds
exchange data through registered shared buffers. The paper raised the
shared-memory cap to 9 MB — "the largest value that would not break
OP-TEE" — and that cap is what forces Fig. 6's dataset scaling, so the
pool enforces it faithfully.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import TeeBadParameters, TeeOutOfMemory

#: The paper's raised limit for world-shared buffers.
SHARED_MEMORY_CAP = 9 * 1024 * 1024


class SharedBuffer:
    """One registered buffer, visible to both worlds."""

    def __init__(self, pool: "SharedMemoryPool", handle: int, size: int) -> None:
        self._pool = pool
        self.handle = handle
        self.data = bytearray(size)

    @property
    def size(self) -> int:
        return len(self.data)

    def write(self, offset: int, payload: bytes) -> None:
        if offset < 0 or offset + len(payload) > len(self.data):
            raise TeeBadParameters("shared buffer write out of range")
        self.data[offset : offset + len(payload)] = payload

    def read(self, offset: int, size: int) -> bytes:
        if offset < 0 or offset + size > len(self.data):
            raise TeeBadParameters("shared buffer read out of range")
        return bytes(self.data[offset : offset + size])

    def free(self) -> None:
        self._pool.free(self.handle)


class SharedMemoryPool:
    """Allocator for shared buffers with the OP-TEE size cap."""

    def __init__(self, capacity: int = SHARED_MEMORY_CAP) -> None:
        self.capacity = capacity
        self.allocated = 0
        self._buffers: Dict[int, SharedBuffer] = {}
        self._next_handle = 1

    def allocate(self, size: int) -> SharedBuffer:
        if size <= 0:
            raise TeeBadParameters("shared buffer size must be positive")
        if self.allocated + size > self.capacity:
            raise TeeOutOfMemory(
                f"shared memory cap exceeded: {self.allocated + size} > "
                f"{self.capacity} bytes"
            )
        handle = self._next_handle
        self._next_handle += 1
        buffer = SharedBuffer(self, handle, size)
        self._buffers[handle] = buffer
        self.allocated += size
        return buffer

    def free(self, handle: int) -> None:
        buffer = self._buffers.pop(handle, None)
        if buffer is None:
            raise TeeBadParameters(f"unknown shared buffer handle {handle}")
        self.allocated -= buffer.size

    def get(self, handle: int) -> SharedBuffer:
        buffer = self._buffers.get(handle)
        if buffer is None:
            raise TeeBadParameters(f"unknown shared buffer handle {handle}")
        return buffer
