"""The tee-supplicant: OP-TEE's normal-world helper daemon.

The GP socket API is implemented by OP-TEE by *redirecting* communication
to the normal world through shared memory (paper §V); the supplicant is
the user-space daemon that performs the actual I/O. In the simulation it
bridges kernel RPCs to an in-process network fabric
(:mod:`repro.core.transport`).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import TeeCommunicationError


class Supplicant:
    """Normal-world RPC endpoint for the trusted kernel."""

    def __init__(self, soc, network) -> None:
        self._soc = soc
        self._network = network
        self._connections: Dict[int, object] = {}
        self._next_handle = 1

    # Every entry point asserts it runs in the normal world: the kernel
    # performs an RPC world switch before calling in.

    def connect(self, host: str, port: int):
        """Open a TCP-like connection; returns a handle."""
        from repro.hw.caam import World

        self._soc.require_world(World.NORMAL)
        connection = self._network.connect(host, port)
        handle = self._next_handle
        self._next_handle += 1
        self._connections[handle] = connection
        return handle

    def _connection(self, handle: int):
        connection = self._connections.get(handle)
        if connection is None:
            raise TeeCommunicationError(f"unknown connection handle {handle}")
        return connection

    def send(self, handle: int, data: bytes) -> None:
        from repro.hw.caam import World

        self._soc.require_world(World.NORMAL)
        self._connection(handle).send(data)

    def receive(self, handle: int) -> bytes:
        from repro.hw.caam import World

        self._soc.require_world(World.NORMAL)
        return self._connection(handle).receive()

    def close(self, handle: int) -> None:
        from repro.hw.caam import World

        self._soc.require_world(World.NORMAL)
        connection = self._connections.pop(handle, None)
        if connection is not None:
            connection.close()
