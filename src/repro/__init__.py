"""WaTZ reproduction: a trusted Wasm runtime with remote attestation.

Reproduces *WaTZ: A Trusted WebAssembly Runtime Environment with Remote
Attestation for TrustZone* (ICDCS 2022) as a full-stack simulation; see
DESIGN.md for the substitution table and the per-experiment index.
"""

__version__ = "1.0.0"

WATZ_PAPER = (
    "WaTZ: A Trusted WebAssembly Runtime Environment with "
    "Remote Attestation for TrustZone, ICDCS 2022"
)
