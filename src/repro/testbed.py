"""Testbed assembly: one call builds the paper's experimental setup.

Manufactures a SoC (fuses the OTPMK and boot key), secure-boots it, starts
OP-TEE with the attestation service, attaches a supplicant to the shared
in-process network, and installs the WaTZ runtime TA. Tests, examples and
benchmarks all build on this instead of repeating the ceremony.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.runtime import (
    CMD_INVOKE,
    CMD_LOAD,
    CMD_STDOUT,
    LoadedApp,
    WatzRuntime,
)
from repro.core.transport import Network
from repro.crypto import ecdsa
from repro.crypto.hashing import sha256
from repro.hw import SoC, sign_stage
from repro.hw.costs import CostModel, DEFAULT_COSTS
from repro.optee import (
    KernelRng,
    OpTeeClient,
    OpTeeKernel,
    Supplicant,
    TaManifest,
    TaSession,
    sign_ta,
)

#: Deterministic vendor signing key for the simulated platform vendor.
VENDOR_PRIVATE = int.from_bytes(sha256(b"watz-repro vendor key"), "big") >> 1

BOOT_STAGES = ("spl", "arm-trusted-firmware", "op-tee")


def _device_secret(serial: int) -> bytes:
    """A per-device OTPMK, unique per serial (fused at manufacturing)."""
    return sha256(b"otpmk" + serial.to_bytes(8, "big"))


@dataclass
class Device:
    """One booted board: SoC + OP-TEE + client + supplicant."""

    serial: int
    soc: SoC
    kernel: OpTeeKernel
    client: OpTeeClient
    network: Network
    vendor_key: ecdsa.KeyPair
    _watz_images: Dict[int, str] = field(default_factory=dict)

    @property
    def attestation_public_key(self) -> bytes:
        return self.kernel.attestation_service.public_key_bytes

    # -- WaTZ management -------------------------------------------------------

    def install_watz(self, heap_size: int,
                     engine: str = "aot") -> str:
        """Install a WaTZ runtime TA image with the given heap size.

        TAs declare heap/stack at compile time (paper §VI-A); installing
        per-heap images mirrors the paper recompiling the TA per benchmark.
        """
        key = (heap_size, engine)
        cached = self._watz_images.get(key)
        if cached is not None:
            return cached
        uuid = f"watz-runtime-{heap_size}-{engine}"
        manifest = TaManifest(uuid=uuid, name="watz",
                              heap_size=heap_size)
        runtime_class = type(
            f"WatzRuntime_{engine}", (WatzRuntime,),
            {"engine_name": engine},
        )
        image = sign_ta(manifest, b"watz runtime payload",
                        runtime_class, self.vendor_key)
        self.kernel.install_ta(image)
        self._watz_images[key] = uuid
        return uuid

    def open_watz(self, heap_size: int, engine: str = "aot") -> TaSession:
        uuid = self.install_watz(heap_size, engine)
        return self.client.open_session(uuid)

    def load_wasm(self, session: TaSession, bytecode: bytes,
                  **load_params) -> dict:
        """Stage bytecode in shared memory and load it into WaTZ."""
        buffer = self.client.allocate_shared_memory(len(bytecode))
        buffer.write(0, bytecode)
        try:
            result = session.invoke(CMD_LOAD, {
                "bytecode": buffer,
                "size": len(bytecode),
                **load_params,
            })
        finally:
            buffer.free()
        return result

    def run_wasm(self, session: TaSession, app_handle: int,
                 function: str, *args):
        result = session.invoke(CMD_INVOKE, {
            "app": app_handle, "function": function, "args": args,
        })
        return result["result"]

    def read_stdout(self, session: TaSession, app_handle: int) -> str:
        return session.invoke(CMD_STDOUT, {"app": app_handle})["stdout"]


class Testbed:
    """A shared network plus any number of manufactured devices."""

    __test__ = False  # not a pytest collection target

    def __init__(self, costs: CostModel = DEFAULT_COSTS,
                 deterministic_rng: bool = False,
                 first_serial: int = 1) -> None:
        self.network = Network()
        self.costs = costs
        self.vendor_key = ecdsa.keypair_from_private(VENDOR_PRIVATE)
        # ``first_serial`` pins the serial (and, with deterministic_rng,
        # the entropy stream) of the next manufactured board. A verifier
        # shard process (repro.fleet.shards) uses it to rebuild a board
        # identical to the one a single-process gateway would have used,
        # which is what makes threaded-vs-sharded transcripts comparable.
        self._next_serial = first_serial
        self._deterministic = deterministic_rng

    def _entropy_source(self, serial: int):
        if not self._deterministic:
            return None
        state = {"counter": 0}

        def entropy(size: int) -> bytes:
            state["counter"] += 1
            seed = f"entropy/{serial}/{state['counter']}".encode()
            out = b""
            while len(out) < size:
                out += hashlib.sha256(seed + len(out).to_bytes(4, "big")).digest()
            return out[:size]

        return entropy

    def create_device(self, allow_executable_pages: bool = True) -> Device:
        """Manufacture, provision and boot one board."""
        serial = self._next_serial
        self._next_serial += 1
        soc = SoC(self.costs)
        soc.provision(
            otpmk=_device_secret(serial),
            boot_key_hash=sha256(self.vendor_key.public_bytes()),
        )
        stages = [
            sign_stage(name, f"{name} image v1".encode(), self.vendor_key)
            for name in BOOT_STAGES
        ]
        soc.secure_boot(self.vendor_key.public_bytes(), stages)
        rng = KernelRng(self._entropy_source(serial))
        kernel = OpTeeKernel(soc, self.vendor_key.public, rng=rng,
                             allow_executable_pages=allow_executable_pages)
        kernel.attach_supplicant(Supplicant(soc, self.network))
        client = OpTeeClient(kernel)
        return Device(
            serial=serial,
            soc=soc,
            kernel=kernel,
            client=client,
            network=self.network,
            vendor_key=self.vendor_key,
        )
