"""WASI preview1 errno values (the subset WaTZ returns)."""

from __future__ import annotations

SUCCESS = 0
E2BIG = 1
EACCES = 2
EBADF = 8
EFAULT = 21
EINVAL = 28
EIO = 29
ENOENT = 44
ENOMEM = 48
ENOSYS = 52
ENOTSUP = 58
EPROTO = 67

NAMES = {
    SUCCESS: "success",
    E2BIG: "e2big",
    EACCES: "eacces",
    EBADF: "ebadf",
    EFAULT: "efault",
    EINVAL: "einval",
    EIO: "eio",
    ENOENT: "enoent",
    ENOMEM: "enomem",
    ENOSYS: "enosys",
    ENOTSUP: "enotsup",
    EPROTO: "eproto",
}
