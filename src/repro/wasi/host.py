"""Binding of the WASI implementation into a Wasm import namespace."""

from __future__ import annotations

from typing import Dict

from repro.errors import TrapError
from repro.wasi.api import IMPLEMENTED, UNIMPLEMENTED, WasiApi, WasiEnvironment
from repro.wasm.runtime import HostFunction
from repro.wasm.types import FuncType, ValType

WASI_MODULE = "wasi_snapshot_preview1"

I32 = ValType.I32
I64 = ValType.I64

# Signatures of the implemented preview1 functions.
_SIGNATURES: Dict[str, FuncType] = {
    "args_sizes_get": FuncType((I32, I32), (I32,)),
    "args_get": FuncType((I32, I32), (I32,)),
    "environ_sizes_get": FuncType((I32, I32), (I32,)),
    "environ_get": FuncType((I32, I32), (I32,)),
    "clock_res_get": FuncType((I32, I32), (I32,)),
    "clock_time_get": FuncType((I32, I64, I32), (I32,)),
    "fd_write": FuncType((I32, I32, I32, I32), (I32,)),
    "fd_read": FuncType((I32, I32, I32, I32), (I32,)),
    "fd_close": FuncType((I32,), (I32,)),
    "fd_seek": FuncType((I32, I64, I32, I32), (I32,)),
    "fd_fdstat_get": FuncType((I32, I32), (I32,)),
    "fd_prestat_get": FuncType((I32, I32), (I32,)),
    "proc_exit": FuncType((I32,), ()),
    "sched_yield": FuncType((), (I32,)),
    "random_get": FuncType((I32, I32), (I32,)),
}


# Preview1 signatures that are not all-i32 (64-bit offsets/rights); used
# for both the trapping stubs and the file-system implementations so a
# module links identically in either mode.
_WIDE_SIGNATURES: Dict[str, FuncType] = {
    "path_open": FuncType((I32, I32, I32, I32, I32, I64, I64, I32, I32),
                          (I32,)),
    "fd_pread": FuncType((I32, I32, I32, I64, I32), (I32,)),
    "fd_pwrite": FuncType((I32, I32, I32, I64, I32), (I32,)),
    "fd_allocate": FuncType((I32, I64, I64), (I32,)),
    "fd_advise": FuncType((I32, I64, I64, I32), (I32,)),
    "fd_filestat_set_size": FuncType((I32, I64), (I32,)),
    "fd_filestat_set_times": FuncType((I32, I64, I64, I32), (I32,)),
    "path_filestat_set_times": FuncType((I32, I32, I32, I32, I64, I64, I32),
                                        (I32,)),
    "fd_readdir": FuncType((I32, I32, I32, I64, I32), (I32,)),
}


def _stub(name: str) -> HostFunction:
    param_count, has_result = UNIMPLEMENTED[name]
    func_type = _WIDE_SIGNATURES.get(
        name, FuncType((I32,) * param_count, (I32,) if has_result else ()))

    def trap(_instance, *_args):
        raise TrapError(
            f"WASI function {name!r} is declared but not implemented in "
            "WaTZ (no file-system/socket WASI support yet, paper §III)"
        )

    return HostFunction(func_type, trap, name)


#: File-system functions implemented when the WASI-FS extension is on,
#: with their preview1 signatures.
_FS_FUNCTIONS: Dict[str, FuncType] = {
    "path_open": _WIDE_SIGNATURES["path_open"],
    "fd_tell": FuncType((I32, I32), (I32,)),
    "fd_sync": FuncType((I32,), (I32,)),
    "fd_filestat_get": FuncType((I32, I32), (I32,)),
    "path_filestat_get": FuncType((I32, I32, I32, I32, I32), (I32,)),
    "path_unlink_file": FuncType((I32, I32, I32), (I32,)),
    "fd_prestat_dir_name": FuncType((I32, I32, I32), (I32,)),
    "fd_readdir": _WIDE_SIGNATURES["fd_readdir"],
}


def _traced(tracer, name: str, fn):
    """Wrap a WASI entry point in a ``wasi.<name>`` span.

    The span covers the dispatch charge *and* the body, so its simulated
    self time (children excluded) is exactly the WASI indirection cost —
    what separates the native-TA and Wasm curves of Fig. 3a.
    """

    def traced_call(instance, *args):
        with tracer.span(f"wasi.{name}", world="secure"):
            return fn(instance, *args)

    return traced_call


def build_wasi_imports(env: WasiEnvironment) -> Dict[str, Dict[str, HostFunction]]:
    """Build the ``wasi_snapshot_preview1`` namespace for instantiation.

    With ``env.tracer`` set, every function — implemented, stub, or
    file-system — is wrapped in a tracing span; with it unset (the
    default) the namespace is exactly the untraced fast path.
    """
    api = WasiApi(env)
    namespace: Dict[str, HostFunction] = {}
    for name in IMPLEMENTED:
        namespace[name] = HostFunction(_SIGNATURES[name],
                                       getattr(api, name), name)
    for name in UNIMPLEMENTED:
        namespace[name] = _stub(name)
    if env.filesystem is not None:
        from repro.wasi.filesystem import WasiFsApi

        fs_api = WasiFsApi(env)
        for name, signature in _FS_FUNCTIONS.items():
            namespace[name] = HostFunction(signature,
                                           getattr(fs_api, name), name)
    if env.tracer is not None:
        namespace = {
            name: HostFunction(host.func_type,
                               _traced(env.tracer, name, host.fn), name)
            for name, host in namespace.items()
        }
    return {WASI_MODULE: namespace}
