"""WASI preview1 subset, the paper's TEE adaptation layer."""

from repro.wasi.api import (
    IMPLEMENTED,
    UNIMPLEMENTED,
    ProcExit,
    WasiApi,
    WasiEnvironment,
    wasi_function_count,
)
from repro.wasi.filesystem import (
    StorageBacking,
    TrustedStorageBacking,
    WasiFilesystem,
)
from repro.wasi.host import WASI_MODULE, build_wasi_imports

__all__ = [
    "WasiEnvironment",
    "WasiApi",
    "ProcExit",
    "build_wasi_imports",
    "WASI_MODULE",
    "WasiFilesystem",
    "StorageBacking",
    "TrustedStorageBacking",
    "IMPLEMENTED",
    "UNIMPLEMENTED",
    "wasi_function_count",
]
