"""WASI snapshot preview1 implementation over the GP Internal API.

This is the paper's *adaptation layer* (§III/§V): hosted Wasm applications
call standard WASI, and WaTZ maps each call onto whatever the trusted OS
offers. Following the paper's process, all 45 preview1 functions are
declared; the subset needed by the workloads is implemented, and the rest
trap with a clear message when called ("dummy functions throwing
exceptions").

``clock_time_get`` is the interesting one for the evaluation: from inside
the TEE it routes through the paper's nanosecond TEE_Time extension and a
kernel RPC to the normal world, charging the Fig. 3a latency; the WASI
dispatch itself adds the shim cost that separates the native-TA and Wasm
curves.
"""

from __future__ import annotations

import struct
from typing import Callable, List, Optional

from repro.errors import TrapError
from repro.wasi import errno

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

CLOCK_REALTIME = 0
CLOCK_MONOTONIC = 1


class ProcExit(Exception):
    """Raised by ``proc_exit`` to unwind out of Wasm execution."""

    def __init__(self, code: int) -> None:
        super().__init__(f"proc_exit({code})")
        self.code = code


class WasiEnvironment:
    """Per-application WASI state.

    ``clock_ns`` and ``random_bytes`` are injected by the embedder: inside
    WaTZ they are bound to the GP API (and therefore pay the simulated
    secure-world costs); in the normal world they are bound to the plain
    REE clock.
    """

    def __init__(self,
                 args: Optional[List[str]] = None,
                 environ: Optional[List[str]] = None,
                 clock_ns: Optional[Callable[[], int]] = None,
                 random_bytes: Optional[Callable[[int], bytes]] = None,
                 wasi_dispatch: Optional[Callable[[], None]] = None,
                 filesystem=None,
                 tracer=None) -> None:
        self.args = list(args or ["app.wasm"])
        self.environ = list(environ or [])
        self.clock_ns = clock_ns or (lambda: 0)
        self.random_bytes = random_bytes or (lambda n: b"\x00" * n)
        # Called on every WASI entry: charges the dispatch latency.
        self.wasi_dispatch = wasi_dispatch or (lambda: None)
        # Optional WASI-FS extension (paper future work); None keeps the
        # shipped behaviour where file-system calls trap.
        self.filesystem = filesystem
        # Optional repro.obs.Tracer: when set, every host call built from
        # this environment is wrapped in a ``wasi.<name>`` span.
        self.tracer = tracer
        self.stdout = bytearray()
        self.stderr = bytearray()
        self.exit_code: Optional[int] = None

    def stdout_text(self) -> str:
        return self.stdout.decode("utf-8", errors="replace")


def _memory(instance):
    if instance.memory is None:
        raise TrapError("WASI call without a linear memory")
    return instance.memory


def _write_u32(instance, address: int, value: int) -> None:
    _memory(instance).write(address, _U32.pack(value & 0xFFFFFFFF))


def _write_u64(instance, address: int, value: int) -> None:
    _memory(instance).write(address, _U64.pack(value & 0xFFFFFFFFFFFFFFFF))


class WasiApi:
    """The 45 preview1 entry points, bound to one environment."""

    def __init__(self, env: WasiEnvironment) -> None:
        self.env = env

    # -- command-line and environment -----------------------------------------

    def args_sizes_get(self, instance, argc_ptr, buf_size_ptr):
        self.env.wasi_dispatch()
        blob = b"".join(a.encode() + b"\x00" for a in self.env.args)
        _write_u32(instance, argc_ptr, len(self.env.args))
        _write_u32(instance, buf_size_ptr, len(blob))
        return errno.SUCCESS

    def args_get(self, instance, argv_ptr, argv_buf_ptr):
        self.env.wasi_dispatch()
        memory = _memory(instance)
        offset = argv_buf_ptr
        for index, argument in enumerate(self.env.args):
            _write_u32(instance, argv_ptr + 4 * index, offset)
            raw = argument.encode() + b"\x00"
            memory.write(offset, raw)
            offset += len(raw)
        return errno.SUCCESS

    def environ_sizes_get(self, instance, count_ptr, buf_size_ptr):
        self.env.wasi_dispatch()
        blob = b"".join(e.encode() + b"\x00" for e in self.env.environ)
        _write_u32(instance, count_ptr, len(self.env.environ))
        _write_u32(instance, buf_size_ptr, len(blob))
        return errno.SUCCESS

    def environ_get(self, instance, environ_ptr, buf_ptr):
        self.env.wasi_dispatch()
        memory = _memory(instance)
        offset = buf_ptr
        for index, entry in enumerate(self.env.environ):
            _write_u32(instance, environ_ptr + 4 * index, offset)
            raw = entry.encode() + b"\x00"
            memory.write(offset, raw)
            offset += len(raw)
        return errno.SUCCESS

    # -- clocks -------------------------------------------------------------------

    def clock_res_get(self, instance, clock_id, resolution_ptr):
        self.env.wasi_dispatch()
        if clock_id not in (CLOCK_REALTIME, CLOCK_MONOTONIC):
            return errno.EINVAL
        _write_u64(instance, resolution_ptr, 1)  # 1 ns (the paper's extension)
        return errno.SUCCESS

    def clock_time_get(self, instance, clock_id, _precision, time_ptr):
        self.env.wasi_dispatch()
        if clock_id not in (CLOCK_REALTIME, CLOCK_MONOTONIC):
            return errno.EINVAL
        _write_u64(instance, time_ptr, self.env.clock_ns())
        return errno.SUCCESS

    # -- file descriptors (stdout/stderr only; no file system yet) -------------------

    def fd_write(self, instance, fd, iovs_ptr, iovs_len, nwritten_ptr):
        self.env.wasi_dispatch()
        if fd not in (1, 2):
            if self.env.filesystem is not None and fd > 3:
                from repro.wasi.filesystem import WasiFsApi

                return WasiFsApi(self.env).fd_write_file(
                    instance, fd, iovs_ptr, iovs_len, nwritten_ptr)
            return errno.EBADF
        memory = _memory(instance)
        sink = self.env.stdout if fd == 1 else self.env.stderr
        written = 0
        for index in range(iovs_len):
            base = _U32.unpack(memory.read(iovs_ptr + 8 * index, 4))[0]
            size = _U32.unpack(memory.read(iovs_ptr + 8 * index + 4, 4))[0]
            sink.extend(memory.read(base, size))
            written += size
        _write_u32(instance, nwritten_ptr, written)
        return errno.SUCCESS

    def fd_read(self, instance, fd, iovs_ptr, iovs_len, nread_ptr):
        self.env.wasi_dispatch()
        if fd != 0 and self.env.filesystem is not None:
            from repro.wasi.filesystem import WasiFsApi

            return WasiFsApi(self.env).fd_read(instance, fd, iovs_ptr,
                                               iovs_len, nread_ptr)
        if fd != 0:
            return errno.EBADF
        _write_u32(instance, nread_ptr, 0)  # stdin is empty in the TEE
        return errno.SUCCESS

    def fd_close(self, instance, fd):
        self.env.wasi_dispatch()
        if self.env.filesystem is not None:
            from repro.wasi.filesystem import WasiFsApi

            return WasiFsApi(self.env).fd_close(instance, fd)
        return errno.SUCCESS if fd in (0, 1, 2) else errno.EBADF

    def fd_seek(self, instance, fd, offset, whence, newoffset_ptr):
        self.env.wasi_dispatch()
        if self.env.filesystem is not None and fd > 3:
            from repro.wasi.filesystem import WasiFsApi

            return WasiFsApi(self.env).fd_seek(instance, fd, offset,
                                               whence, newoffset_ptr)
        if fd in (0, 1, 2):
            _write_u64(instance, newoffset_ptr, 0)
            return errno.SUCCESS
        return errno.EBADF

    def fd_fdstat_get(self, instance, fd, stat_ptr):
        self.env.wasi_dispatch()
        if fd not in (0, 1, 2):
            return errno.EBADF
        # filetype=character_device(2), flags=0, rights=all.
        _memory(instance).write(stat_ptr, struct.pack("<BxHIQQ", 2, 0, 0,
                                                      0xFFFFFFFF, 0xFFFFFFFF))
        return errno.SUCCESS

    def fd_prestat_get(self, instance, fd, prestat_ptr):
        self.env.wasi_dispatch()
        if self.env.filesystem is not None:
            from repro.wasi.filesystem import WasiFsApi

            return WasiFsApi(self.env).fd_prestat_get(instance, fd,
                                                      prestat_ptr)
        return errno.EBADF  # no preopened directories without a file system

    # -- process ---------------------------------------------------------------------

    def proc_exit(self, instance, code):
        self.env.wasi_dispatch()
        self.env.exit_code = code
        raise ProcExit(code)

    def sched_yield(self, instance):
        self.env.wasi_dispatch()
        return errno.SUCCESS

    def random_get(self, instance, buf_ptr, size):
        self.env.wasi_dispatch()
        _memory(instance).write(buf_ptr, self.env.random_bytes(size))
        return errno.SUCCESS


#: Functions declared but not implemented: calling one traps, as in the
#: paper's development methodology ("dummy functions ... throwing
#: exceptions when called"). Name -> (param count, has i32 result).
UNIMPLEMENTED = {
    "fd_advise": (4, True),
    "fd_allocate": (3, True),
    "fd_datasync": (1, True),
    "fd_fdstat_set_flags": (2, True),
    "fd_fdstat_set_rights": (3, True),
    "fd_filestat_get": (2, True),
    "fd_filestat_set_size": (2, True),
    "fd_filestat_set_times": (4, True),
    "fd_pread": (5, True),
    "fd_prestat_dir_name": (3, True),
    "fd_pwrite": (5, True),
    "fd_readdir": (5, True),
    "fd_renumber": (2, True),
    "fd_sync": (1, True),
    "fd_tell": (2, True),
    "path_create_directory": (3, True),
    "path_filestat_get": (5, True),
    "path_filestat_set_times": (7, True),
    "path_link": (7, True),
    "path_open": (9, True),
    "path_readlink": (6, True),
    "path_remove_directory": (3, True),
    "path_rename": (6, True),
    "path_symlink": (5, True),
    "path_unlink_file": (3, True),
    "poll_oneoff": (4, True),
    "proc_raise": (1, True),
    "sock_recv": (6, True),
    "sock_send": (5, True),
    "sock_shutdown": (2, True),
}

IMPLEMENTED = (
    "args_sizes_get", "args_get", "environ_sizes_get", "environ_get",
    "clock_res_get", "clock_time_get", "fd_write", "fd_read", "fd_close",
    "fd_seek", "fd_fdstat_get", "fd_prestat_get", "proc_exit",
    "sched_yield", "random_get",
)


def wasi_function_count() -> int:
    """Total declared surface (paper: 45 WASI API functions)."""
    return len(IMPLEMENTED) + len(UNIMPLEMENTED)
