"""WASI file-system support — the paper's stated future work.

Paper §III/§V: "WATZ may be completed to support file system interaction
via the Trusted Storage API". This module completes it: a WASI preview1
file system with one preopened root directory, backed either by plain
memory (normal world) or by the GP Trusted Storage of the hosting TA
(secure world), so files written by a hosted Wasm application persist
across WaTZ sessions and stay isolated per TA UUID.

The extension is opt-in: without a :class:`WasiFilesystem` on the
environment, the file-system calls keep the paper's shipped behaviour
(declared but trapping).
"""

from __future__ import annotations

import struct
from typing import Dict, Optional

from repro.errors import TeeItemNotFound
from repro.wasi import errno

PREOPEN_FD = 3

# oflags bits (WASI preview1).
O_CREAT = 1
O_DIRECTORY = 2
O_EXCL = 4
O_TRUNC = 8

# whence values for fd_seek.
SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2

_FILETYPE_DIRECTORY = 3
_FILETYPE_REGULAR = 4

_FILESTAT = struct.Struct("<QQBxxxxxxxQQQQQ")  # dev ino type nlink size a/m/c
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


class StorageBacking:
    """Persistence hooks; the default keeps files in memory only."""

    def load(self, name: str) -> Optional[bytes]:
        return None

    def save(self, name: str, payload: bytes) -> None:
        pass

    def remove(self, name: str) -> None:
        pass

    def names(self):
        return []


class TrustedStorageBacking(StorageBacking):
    """Files persisted as per-TA trusted-storage objects."""

    PREFIX = "wasi-fs/"

    def __init__(self, api) -> None:
        self._api = api

    def load(self, name: str) -> Optional[bytes]:
        try:
            return self._api.storage_get(self.PREFIX + name)
        except TeeItemNotFound:
            return None

    def save(self, name: str, payload: bytes) -> None:
        self._api.storage_put(self.PREFIX + name, payload)

    def remove(self, name: str) -> None:
        try:
            self._api.storage_delete(self.PREFIX + name)
        except TeeItemNotFound:
            pass

    def names(self):
        return [object_id[len(self.PREFIX):]
                for object_id in self._api.storage_list()
                if object_id.startswith(self.PREFIX)]


class _OpenFile:
    __slots__ = ("name", "position", "append")

    def __init__(self, name: str, append: bool = False) -> None:
        self.name = name
        self.position = 0
        self.append = append


class WasiFilesystem:
    """A flat root directory of regular files."""

    def __init__(self, backing: Optional[StorageBacking] = None) -> None:
        self.backing = backing or StorageBacking()
        self._files: Dict[str, bytearray] = {}
        for name in self.backing.names():
            payload = self.backing.load(name)
            if payload is not None:
                self._files[name] = bytearray(payload)
        self._descriptors: Dict[int, _OpenFile] = {}
        self._next_fd = PREOPEN_FD + 1

    # -- paths ------------------------------------------------------------------

    @staticmethod
    def _normalise(path: str) -> str:
        return path.lstrip("/")

    def exists(self, path: str) -> bool:
        return self._normalise(path) in self._files

    def read_file(self, path: str) -> bytes:
        """Host-side convenience accessor."""
        return bytes(self._files[self._normalise(path)])

    def write_file(self, path: str, payload: bytes) -> None:
        """Host-side convenience accessor (also persists)."""
        name = self._normalise(path)
        self._files[name] = bytearray(payload)
        self.backing.save(name, payload)

    def listdir(self):
        return sorted(self._files)

    # -- descriptor operations -------------------------------------------------------

    def open(self, path: str, oflags: int) -> int:
        name = self._normalise(path)
        if oflags & O_DIRECTORY:
            return -errno.ENOTSUP if name else PREOPEN_FD
        exists = name in self._files
        if not exists:
            loaded = self.backing.load(name)
            if loaded is not None:
                self._files[name] = bytearray(loaded)
                exists = True
        if exists and oflags & O_EXCL:
            return -errno.EACCES
        if not exists:
            if not oflags & O_CREAT:
                return -errno.ENOENT
            self._files[name] = bytearray()
        if oflags & O_TRUNC:
            self._files[name] = bytearray()
        fd = self._next_fd
        self._next_fd += 1
        self._descriptors[fd] = _OpenFile(name)
        return fd

    def _descriptor(self, fd: int) -> Optional[_OpenFile]:
        return self._descriptors.get(fd)

    def read(self, fd: int, size: int) -> Optional[bytes]:
        handle = self._descriptor(fd)
        if handle is None:
            return None
        data = self._files.get(handle.name, bytearray())
        chunk = bytes(data[handle.position : handle.position + size])
        handle.position += len(chunk)
        return chunk

    def write(self, fd: int, payload: bytes) -> Optional[int]:
        handle = self._descriptor(fd)
        if handle is None:
            return None
        data = self._files.setdefault(handle.name, bytearray())
        end = handle.position + len(payload)
        if end > len(data):
            data.extend(bytes(end - len(data)))
        data[handle.position : end] = payload
        handle.position = end
        return len(payload)

    def seek(self, fd: int, offset: int, whence: int) -> Optional[int]:
        handle = self._descriptor(fd)
        if handle is None:
            return None
        size = len(self._files.get(handle.name, bytearray()))
        if whence == SEEK_SET:
            target = offset
        elif whence == SEEK_CUR:
            target = handle.position + offset
        elif whence == SEEK_END:
            target = size + offset
        else:
            return None
        if target < 0:
            return None
        handle.position = target
        return target

    def tell(self, fd: int) -> Optional[int]:
        handle = self._descriptor(fd)
        return None if handle is None else handle.position

    def close(self, fd: int) -> bool:
        handle = self._descriptors.pop(fd, None)
        if handle is None:
            return False
        payload = self._files.get(handle.name)
        if payload is not None:
            self.backing.save(handle.name, bytes(payload))
        return True

    def sync(self, fd: int) -> bool:
        handle = self._descriptor(fd)
        if handle is None:
            return False
        payload = self._files.get(handle.name, bytearray())
        self.backing.save(handle.name, bytes(payload))
        return True

    def unlink(self, path: str) -> bool:
        name = self._normalise(path)
        if name not in self._files:
            return False
        del self._files[name]
        self.backing.remove(name)
        return True

    def size_of_fd(self, fd: int) -> Optional[int]:
        handle = self._descriptor(fd)
        if handle is None:
            return None
        return len(self._files.get(handle.name, bytearray()))

    def size_of_path(self, path: str) -> Optional[int]:
        name = self._normalise(path)
        payload = self._files.get(name)
        return None if payload is None else len(payload)


# -- the WASI entry points over a filesystem ------------------------------------


def _memory(instance):
    return instance.memory


def _read_path(instance, path_ptr: int, path_len: int) -> str:
    return _memory(instance).read(path_ptr, path_len).decode("utf-8")


def _write_filestat(instance, address: int, filetype: int, size: int) -> None:
    _memory(instance).write(address, _FILESTAT.pack(
        0, 0, filetype, 1, size, 0, 0, 0))


class WasiFsApi:
    """File-system halves of the preview1 surface (extension mode)."""

    def __init__(self, env) -> None:
        self.env = env

    @property
    def fs(self) -> WasiFilesystem:
        return self.env.filesystem

    def path_open(self, instance, dirfd, _dirflags, path_ptr, path_len,
                  oflags, _rights_base, _rights_inheriting, _fdflags,
                  opened_fd_ptr):
        self.env.wasi_dispatch()
        if dirfd != PREOPEN_FD:
            return errno.EBADF
        path = _read_path(instance, path_ptr, path_len)
        fd = self.fs.open(path, oflags)
        if fd < 0:
            return -fd
        _memory(instance).write(opened_fd_ptr, _U32.pack(fd))
        return errno.SUCCESS

    def fd_read(self, instance, fd, iovs_ptr, iovs_len, nread_ptr):
        self.env.wasi_dispatch()
        if fd == 0:
            _memory(instance).write(nread_ptr, _U32.pack(0))
            return errno.SUCCESS
        memory = _memory(instance)
        total = 0
        for index in range(iovs_len):
            base = _U32.unpack(memory.read(iovs_ptr + 8 * index, 4))[0]
            size = _U32.unpack(memory.read(iovs_ptr + 8 * index + 4, 4))[0]
            chunk = self.fs.read(fd, size)
            if chunk is None:
                return errno.EBADF
            memory.write(base, chunk)
            total += len(chunk)
            if len(chunk) < size:
                break
        memory.write(nread_ptr, _U32.pack(total))
        return errno.SUCCESS

    def fd_write_file(self, instance, fd, iovs_ptr, iovs_len, nwritten_ptr):
        memory = _memory(instance)
        total = 0
        for index in range(iovs_len):
            base = _U32.unpack(memory.read(iovs_ptr + 8 * index, 4))[0]
            size = _U32.unpack(memory.read(iovs_ptr + 8 * index + 4, 4))[0]
            written = self.fs.write(fd, memory.read(base, size))
            if written is None:
                return errno.EBADF
            total += written
        memory.write(nwritten_ptr, _U32.pack(total))
        return errno.SUCCESS

    def fd_seek(self, instance, fd, offset, whence, newoffset_ptr):
        self.env.wasi_dispatch()
        if fd in (0, 1, 2):
            _memory(instance).write(newoffset_ptr, _U64.pack(0))
            return errno.SUCCESS
        signed = offset - (1 << 64) if offset >> 63 else offset
        position = self.fs.seek(fd, signed, whence)
        if position is None:
            return errno.EINVAL if self.fs._descriptor(fd) else errno.EBADF
        _memory(instance).write(newoffset_ptr, _U64.pack(position))
        return errno.SUCCESS

    def fd_tell(self, instance, fd, offset_ptr):
        self.env.wasi_dispatch()
        position = self.fs.tell(fd)
        if position is None:
            return errno.EBADF
        _memory(instance).write(offset_ptr, _U64.pack(position))
        return errno.SUCCESS

    def fd_close(self, instance, fd):
        self.env.wasi_dispatch()
        if fd in (0, 1, 2, PREOPEN_FD):
            return errno.SUCCESS
        return errno.SUCCESS if self.fs.close(fd) else errno.EBADF

    def fd_sync(self, instance, fd):
        self.env.wasi_dispatch()
        return errno.SUCCESS if self.fs.sync(fd) else errno.EBADF

    def fd_filestat_get(self, instance, fd, buf_ptr):
        self.env.wasi_dispatch()
        if fd == PREOPEN_FD:
            _write_filestat(instance, buf_ptr, _FILETYPE_DIRECTORY, 0)
            return errno.SUCCESS
        size = self.fs.size_of_fd(fd)
        if size is None:
            return errno.EBADF
        _write_filestat(instance, buf_ptr, _FILETYPE_REGULAR, size)
        return errno.SUCCESS

    def path_filestat_get(self, instance, dirfd, _flags, path_ptr,
                          path_len, buf_ptr):
        self.env.wasi_dispatch()
        if dirfd != PREOPEN_FD:
            return errno.EBADF
        path = _read_path(instance, path_ptr, path_len)
        size = self.fs.size_of_path(path)
        if size is None:
            return errno.ENOENT
        _write_filestat(instance, buf_ptr, _FILETYPE_REGULAR, size)
        return errno.SUCCESS

    def path_unlink_file(self, instance, dirfd, path_ptr, path_len):
        self.env.wasi_dispatch()
        if dirfd != PREOPEN_FD:
            return errno.EBADF
        path = _read_path(instance, path_ptr, path_len)
        return errno.SUCCESS if self.fs.unlink(path) else errno.ENOENT

    def fd_prestat_get(self, instance, fd, prestat_ptr):
        self.env.wasi_dispatch()
        if fd != PREOPEN_FD:
            return errno.EBADF
        # tag 0 = preopened directory; name length 1 ("/").
        _memory(instance).write(prestat_ptr, struct.pack("<II", 0, 1))
        return errno.SUCCESS

    def fd_prestat_dir_name(self, instance, fd, path_ptr, path_len):
        self.env.wasi_dispatch()
        if fd != PREOPEN_FD:
            return errno.EBADF
        if path_len < 1:
            return errno.EINVAL
        _memory(instance).write(path_ptr, b"/")
        return errno.SUCCESS

    def fd_readdir(self, instance, fd, buf_ptr, buf_len, cookie, size_ptr):
        self.env.wasi_dispatch()
        if fd != PREOPEN_FD:
            return errno.EBADF
        entries = self.fs.listdir()
        blob = bytearray()
        for index, name in enumerate(entries):
            if index < cookie:
                continue
            raw = name.encode("utf-8")
            blob += struct.pack("<QQIBxxx", index + 1, 0, len(raw),
                                _FILETYPE_REGULAR)
            blob += raw
        chunk = bytes(blob[:buf_len])
        _memory(instance).write(buf_ptr, chunk)
        _memory(instance).write(size_ptr, _U32.pack(len(chunk)))
        return errno.SUCCESS
