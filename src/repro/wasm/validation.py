"""WebAssembly module validation (spec §3 / appendix algorithm).

Validation is the foundation of the Wasm sandbox the paper relies on for
isolating mutually distrusting applications inside the single TrustZone
secure world (§III): a module that validates cannot underflow the operand
stack, branch outside its own labels, call with a mismatched signature, or
touch undeclared state. WaTZ refuses to instantiate a module that fails
this check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ValidationError
from repro.wasm import opcodes as op
from repro.wasm.module import Function, Instr, Module
from repro.wasm.types import BlockType, FuncType, ValType

_UNKNOWN = None  # Polymorphic stack slot after unreachable code.

# (opcode-range checks are cheaper as sets built once)
_I32_UNOPS = {op.I32_CLZ, op.I32_CTZ, op.I32_POPCNT, op.I32_EXTEND8_S, op.I32_EXTEND16_S}
_I64_UNOPS = {op.I64_CLZ, op.I64_CTZ, op.I64_POPCNT,
              op.I64_EXTEND8_S, op.I64_EXTEND16_S, op.I64_EXTEND32_S}
_I32_BINOPS = set(range(op.I32_ADD, op.I32_ROTR + 1))
_I64_BINOPS = set(range(op.I64_ADD, op.I64_ROTR + 1))
_I32_RELOPS = set(range(op.I32_EQ, op.I32_GE_U + 1))
_I64_RELOPS = set(range(op.I64_EQ, op.I64_GE_U + 1))
_F32_RELOPS = set(range(op.F32_EQ, op.F32_GE + 1))
_F64_RELOPS = set(range(op.F64_EQ, op.F64_GE + 1))
_F32_UNOPS = set(range(op.F32_ABS, op.F32_SQRT + 1))
_F64_UNOPS = set(range(op.F64_ABS, op.F64_SQRT + 1))
_F32_BINOPS = set(range(op.F32_ADD, op.F32_COPYSIGN + 1))
_F64_BINOPS = set(range(op.F64_ADD, op.F64_COPYSIGN + 1))

_LOAD_TYPES = {
    op.I32_LOAD: ValType.I32, op.I64_LOAD: ValType.I64,
    op.F32_LOAD: ValType.F32, op.F64_LOAD: ValType.F64,
    op.I32_LOAD8_S: ValType.I32, op.I32_LOAD8_U: ValType.I32,
    op.I32_LOAD16_S: ValType.I32, op.I32_LOAD16_U: ValType.I32,
    op.I64_LOAD8_S: ValType.I64, op.I64_LOAD8_U: ValType.I64,
    op.I64_LOAD16_S: ValType.I64, op.I64_LOAD16_U: ValType.I64,
    op.I64_LOAD32_S: ValType.I64, op.I64_LOAD32_U: ValType.I64,
}
_STORE_TYPES = {
    op.I32_STORE: ValType.I32, op.I64_STORE: ValType.I64,
    op.F32_STORE: ValType.F32, op.F64_STORE: ValType.F64,
    op.I32_STORE8: ValType.I32, op.I32_STORE16: ValType.I32,
    op.I64_STORE8: ValType.I64, op.I64_STORE16: ValType.I64,
    op.I64_STORE32: ValType.I64,
}
_CONVERSIONS = {
    op.I32_WRAP_I64: (ValType.I64, ValType.I32),
    op.I32_TRUNC_F32_S: (ValType.F32, ValType.I32),
    op.I32_TRUNC_F32_U: (ValType.F32, ValType.I32),
    op.I32_TRUNC_F64_S: (ValType.F64, ValType.I32),
    op.I32_TRUNC_F64_U: (ValType.F64, ValType.I32),
    op.I64_EXTEND_I32_S: (ValType.I32, ValType.I64),
    op.I64_EXTEND_I32_U: (ValType.I32, ValType.I64),
    op.I64_TRUNC_F32_S: (ValType.F32, ValType.I64),
    op.I64_TRUNC_F32_U: (ValType.F32, ValType.I64),
    op.I64_TRUNC_F64_S: (ValType.F64, ValType.I64),
    op.I64_TRUNC_F64_U: (ValType.F64, ValType.I64),
    op.F32_CONVERT_I32_S: (ValType.I32, ValType.F32),
    op.F32_CONVERT_I32_U: (ValType.I32, ValType.F32),
    op.F32_CONVERT_I64_S: (ValType.I64, ValType.F32),
    op.F32_CONVERT_I64_U: (ValType.I64, ValType.F32),
    op.F32_DEMOTE_F64: (ValType.F64, ValType.F32),
    op.F64_CONVERT_I32_S: (ValType.I32, ValType.F64),
    op.F64_CONVERT_I32_U: (ValType.I32, ValType.F64),
    op.F64_CONVERT_I64_S: (ValType.I64, ValType.F64),
    op.F64_CONVERT_I64_U: (ValType.I64, ValType.F64),
    op.F64_PROMOTE_F32: (ValType.F32, ValType.F64),
    op.I32_REINTERPRET_F32: (ValType.F32, ValType.I32),
    op.I64_REINTERPRET_F64: (ValType.F64, ValType.I64),
    op.F32_REINTERPRET_I32: (ValType.I32, ValType.F32),
    op.F64_REINTERPRET_I64: (ValType.I64, ValType.F64),
}


@dataclass
class _Frame:
    opcode: int
    results: Tuple[ValType, ...]
    height: int
    unreachable: bool = False


class _BodyChecker:
    """The spec-appendix validation algorithm for one function body."""

    def __init__(self, module: Module, function: Function, index: int) -> None:
        self.module = module
        self.function = function
        self.func_index = index
        signature = module.types[function.type_index]
        self.locals: List[ValType] = list(signature.params) + list(function.locals)
        self.results = signature.results
        self.values: List[Optional[ValType]] = []
        self.frames: List[_Frame] = [
            _Frame(op.BLOCK, tuple(signature.results), 0)
        ]

    # -- stack discipline -----------------------------------------------------

    def _fail(self, message: str) -> None:
        raise ValidationError(
            f"function {self.func_index}: {message}"
        )

    def push(self, valtype: Optional[ValType]) -> None:
        self.values.append(valtype)

    def pop(self, expected: Optional[ValType] = None) -> Optional[ValType]:
        frame = self.frames[-1]
        if len(self.values) == frame.height:
            if frame.unreachable:
                return expected
            self._fail("operand stack underflow")
        actual = self.values.pop()
        if expected is not None and actual is not None and actual != expected:
            self._fail(f"expected {expected.mnemonic}, found {actual.mnemonic}")
        return actual if actual is not None else expected

    def push_frame(self, opcode: int, results: Tuple[ValType, ...]) -> None:
        self.frames.append(_Frame(opcode, results, len(self.values)))

    def pop_frame(self) -> _Frame:
        frame = self.frames[-1]
        for valtype in reversed(frame.results):
            self.pop(valtype)
        if len(self.values) != frame.height and not frame.unreachable:
            self._fail("values left on stack at block end")
        del self.values[frame.height:]
        self.frames.pop()
        return frame

    def set_unreachable(self) -> None:
        frame = self.frames[-1]
        del self.values[frame.height:]
        frame.unreachable = True

    def label_types(self, depth: int) -> Tuple[ValType, ...]:
        if depth >= len(self.frames):
            self._fail(f"branch depth {depth} exceeds nesting")
        frame = self.frames[-1 - depth]
        # A branch to a loop re-enters at the top: no result values (MVP).
        if frame.opcode == op.LOOP:
            return ()
        return frame.results

    # -- per-instruction rules --------------------------------------------------

    def check(self) -> None:
        for instr in self.function.body:
            self._check_instr(instr)
        if self.frames:
            self._fail("unterminated control frames")

    def _require_memory(self) -> None:
        if not self.module.memories:
            self._fail("memory instruction without a declared memory")

    def _check_instr(self, instr: Instr) -> None:
        code = instr.opcode
        if code == op.NOP:
            return
        if code == op.UNREACHABLE:
            self.set_unreachable()
            return
        if code in (op.BLOCK, op.LOOP):
            self.push_frame(code, instr.arg.results)
            return
        if code == op.IF:
            self.pop(ValType.I32)
            self.push_frame(code, instr.arg.results)
            return
        if code == op.ELSE:
            frame = self.frames[-1]
            if frame.opcode != op.IF:
                self._fail("else outside of if")
            results = self.pop_frame().results
            self.push_frame(op.ELSE, results)
            return
        if code == op.END:
            if not self.frames:
                self._fail("end without an open frame")
            frame = self.frames[-1]
            if frame.opcode == op.IF and frame.results:
                # An if with results and no else can't produce them on the
                # false path.
                self._fail("if with results requires an else branch")
            results = self.pop_frame().results
            for valtype in results:
                self.push(valtype)
            return
        if code == op.BR:
            for valtype in reversed(self.label_types(instr.arg)):
                self.pop(valtype)
            self.set_unreachable()
            return
        if code == op.BR_IF:
            self.pop(ValType.I32)
            types = self.label_types(instr.arg)
            for valtype in reversed(types):
                self.pop(valtype)
            for valtype in types:
                self.push(valtype)
            return
        if code == op.BR_TABLE:
            depths, default = instr.arg
            self.pop(ValType.I32)
            default_types = self.label_types(default)
            for depth in depths:
                if self.label_types(depth) != default_types:
                    self._fail("br_table label types disagree")
            for valtype in reversed(default_types):
                self.pop(valtype)
            self.set_unreachable()
            return
        if code == op.RETURN:
            for valtype in reversed(self.results):
                self.pop(valtype)
            self.set_unreachable()
            return
        if code == op.CALL:
            if instr.arg >= self.module.func_count:
                self._fail(f"call to unknown function {instr.arg}")
            signature = self.module.func_type(instr.arg)
            for valtype in reversed(signature.params):
                self.pop(valtype)
            for valtype in signature.results:
                self.push(valtype)
            return
        if code == op.CALL_INDIRECT:
            if not self.module.tables:
                self._fail("call_indirect without a table")
            if instr.arg >= len(self.module.types):
                self._fail("call_indirect references unknown type")
            signature = self.module.types[instr.arg]
            self.pop(ValType.I32)
            for valtype in reversed(signature.params):
                self.pop(valtype)
            for valtype in signature.results:
                self.push(valtype)
            return
        if code == op.DROP:
            self.pop()
            return
        if code == op.SELECT:
            self.pop(ValType.I32)
            first = self.pop()
            second = self.pop(first)
            self.push(second if second is not None else first)
            return
        if code in (op.LOCAL_GET, op.LOCAL_SET, op.LOCAL_TEE):
            if instr.arg >= len(self.locals):
                self._fail(f"unknown local {instr.arg}")
            valtype = self.locals[instr.arg]
            if code == op.LOCAL_GET:
                self.push(valtype)
            elif code == op.LOCAL_SET:
                self.pop(valtype)
            else:
                self.pop(valtype)
                self.push(valtype)
            return
        if code in (op.GLOBAL_GET, op.GLOBAL_SET):
            if instr.arg >= len(self.module.globals):
                self._fail(f"unknown global {instr.arg}")
            global_decl = self.module.globals[instr.arg]
            if code == op.GLOBAL_GET:
                self.push(global_decl.type.valtype)
            else:
                if not global_decl.type.mutable:
                    self._fail("assignment to immutable global")
                self.pop(global_decl.type.valtype)
            return
        if code in _LOAD_TYPES:
            self._require_memory()
            self.pop(ValType.I32)
            self.push(_LOAD_TYPES[code])
            return
        if code in _STORE_TYPES:
            self._require_memory()
            self.pop(_STORE_TYPES[code])
            self.pop(ValType.I32)
            return
        if code == op.MEMORY_SIZE:
            self._require_memory()
            self.push(ValType.I32)
            return
        if code == op.MEMORY_GROW:
            self._require_memory()
            self.pop(ValType.I32)
            self.push(ValType.I32)
            return
        if code == op.I32_CONST:
            self.push(ValType.I32)
            return
        if code == op.I64_CONST:
            self.push(ValType.I64)
            return
        if code == op.F32_CONST:
            self.push(ValType.F32)
            return
        if code == op.F64_CONST:
            self.push(ValType.F64)
            return
        if code == op.I32_EQZ:
            self.pop(ValType.I32)
            self.push(ValType.I32)
            return
        if code == op.I64_EQZ:
            self.pop(ValType.I64)
            self.push(ValType.I32)
            return
        if code in _I32_RELOPS:
            self.pop(ValType.I32)
            self.pop(ValType.I32)
            self.push(ValType.I32)
            return
        if code in _I64_RELOPS:
            self.pop(ValType.I64)
            self.pop(ValType.I64)
            self.push(ValType.I32)
            return
        if code in _F32_RELOPS:
            self.pop(ValType.F32)
            self.pop(ValType.F32)
            self.push(ValType.I32)
            return
        if code in _F64_RELOPS:
            self.pop(ValType.F64)
            self.pop(ValType.F64)
            self.push(ValType.I32)
            return
        if code in _I32_UNOPS:
            self.pop(ValType.I32)
            self.push(ValType.I32)
            return
        if code in _I64_UNOPS:
            self.pop(ValType.I64)
            self.push(ValType.I64)
            return
        if code in _I32_BINOPS:
            self.pop(ValType.I32)
            self.pop(ValType.I32)
            self.push(ValType.I32)
            return
        if code in _I64_BINOPS:
            self.pop(ValType.I64)
            self.pop(ValType.I64)
            self.push(ValType.I64)
            return
        if code in _F32_UNOPS:
            self.pop(ValType.F32)
            self.push(ValType.F32)
            return
        if code in _F64_UNOPS:
            self.pop(ValType.F64)
            self.push(ValType.F64)
            return
        if code in _F32_BINOPS:
            self.pop(ValType.F32)
            self.pop(ValType.F32)
            self.push(ValType.F32)
            return
        if code in _F64_BINOPS:
            self.pop(ValType.F64)
            self.pop(ValType.F64)
            self.push(ValType.F64)
            return
        if code in _CONVERSIONS:
            source, destination = _CONVERSIONS[code]
            self.pop(source)
            self.push(destination)
            return
        self._fail(f"unhandled opcode {op.name(code)}")


def validate_module(module: Module) -> None:
    """Validate a decoded module; raise :class:`ValidationError` on failure."""
    for index, func_type in enumerate(module.types):
        if len(func_type.results) > 1:
            raise ValidationError(f"type {index}: multi-value results unsupported")
    for imported in module.imported_funcs:
        if imported.type_index >= len(module.types):
            raise ValidationError("import references unknown type")
    for index, function in enumerate(module.functions):
        if function.type_index >= len(module.types):
            raise ValidationError(f"function {index} references unknown type")
    for global_decl in module.globals:
        if global_decl.init_global is not None:
            raise ValidationError("imported-global initialisers unsupported")
    for export in module.exports:
        limit = {
            "func": module.func_count,
            "table": len(module.tables),
            "memory": len(module.memories),
            "global": len(module.globals),
        }[export.kind]
        if export.index >= limit:
            raise ValidationError(f"export {export.name!r} index out of range")
    for segment in module.elements:
        for func_index in segment.func_indices:
            if func_index >= module.func_count:
                raise ValidationError("element references unknown function")
    if module.start is not None:
        if module.start >= module.func_count:
            raise ValidationError("start function index out of range")
        signature = module.func_type(module.start)
        if signature.params or signature.results:
            raise ValidationError("start function must have type [] -> []")
    local_offset = len(module.imported_funcs)
    for index, function in enumerate(module.functions):
        _BodyChecker(module, function, local_offset + index).check()
