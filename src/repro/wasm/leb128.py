"""LEB128 variable-length integer encoding (Wasm binary format §5.2.2)."""

from __future__ import annotations

from typing import Tuple

from repro.errors import DecodeError


def encode_unsigned(value: int) -> bytes:
    """Encode a non-negative integer as unsigned LEB128."""
    if value < 0:
        raise ValueError("unsigned LEB128 cannot encode negatives")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def encode_signed(value: int) -> bytes:
    """Encode an integer as signed LEB128."""
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        sign_bit = byte & 0x40
        if (value == 0 and not sign_bit) or (value == -1 and sign_bit):
            out.append(byte)
            return bytes(out)
        out.append(byte | 0x80)


def decode_unsigned(data: bytes, offset: int, max_bits: int = 64) -> Tuple[int, int]:
    """Decode unsigned LEB128 at ``offset``; returns (value, next offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise DecodeError("truncated LEB128 integer")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        shift += 7
        if not byte & 0x80:
            break
        if shift >= max_bits + 7:
            raise DecodeError("LEB128 integer too long")
    if result >= 1 << max_bits:
        raise DecodeError(f"LEB128 value exceeds {max_bits} bits")
    return result, offset


def decode_signed(data: bytes, offset: int, max_bits: int = 64) -> Tuple[int, int]:
    """Decode signed LEB128 at ``offset``; returns (value, next offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise DecodeError("truncated LEB128 integer")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        shift += 7
        if not byte & 0x80:
            if byte & 0x40 and shift < max_bits + 7:
                result |= -1 << shift
            break
        if shift >= max_bits + 7:
            raise DecodeError("LEB128 integer too long")
    low = -(1 << (max_bits - 1))
    high = 1 << (max_bits - 1)
    if not low <= result < high:
        raise DecodeError(f"signed LEB128 value exceeds {max_bits} bits")
    return result, offset
