"""Static analyses feeding the AOT engine's optimisation passes.

The AOT lowering (:mod:`repro.wasm.aot`) runs a pre-pass over each decoded
function body before generating code. For every ``loop`` construct it
records

* the set of locals written anywhere in the loop region (the base fact for
  loop-invariant code motion: an expression reading none of them computes
  the same value on every iteration);
* whether the region contains calls or ``memory.grow`` (either one makes
  the memory length loop-variant, ruling out bounds-check hoisting);
* a **monotone induction pattern**, when the loop matches the canonical
  counted shape the walc compiler emits::

      i32.const C ; local.set $i          ; init (immediately before)
      block
        loop
          local.get $i
          (i32.const N | local.get $n)    ; loop-invariant bound
          i32.lt_s / lt_u / le_s / le_u
          i32.eqz
          br_if 1                         ; exit to the enclosing block
          ...body...
          local.get $i ; i32.const S ; i32.add ; local.set $i ; br <loop>
        end
      end

  with *every* write to ``$i`` inside the region being that exact
  ``+= S``-then-branch-to-loop-header step (``continue`` statements
  duplicate it mid-body) and no ``local.tee $i`` anywhere.

Soundness of the induction claim (the basis for bounds-check hoisting and
mask elimination in :mod:`repro.wasm.aot`):

* whenever the loop *body* executes, the guard has just passed, so the
  induction local is at most ``max`` (``N-1`` for ``lt``, ``N`` for
  ``le``); every step is immediately followed by an unconditional branch,
  so no memory access can observe a post-step value;
* for **unsigned** guards this bounds the raw (canonical, non-negative)
  value directly;
* for **signed** guards the raw value equals the signed value only while
  it stays below 2^31. The init constant is required and must be in
  ``[0, 2^31)``; the compiler additionally requires ``max + step < 2^31``
  (a compile-time check for constant bounds, a preflight conjunct for
  local bounds) before entering an unchecked fast path, which inductively
  pins the raw value below 2^31 for the whole loop.

Everything here is shape matching over the flat instruction list — the
decoder already resolved each ``block``/``loop``/``if`` to its matching
``end`` index (``Instr.target``), so regions are index ranges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.wasm import numerics as num
from repro.wasm import opcodes as op
from repro.wasm.module import Function, Instr

#: Opcodes that touch linear memory (loads and stores of every width).
ACCESS_OPS = frozenset((
    op.I32_LOAD, op.I64_LOAD, op.F32_LOAD, op.F64_LOAD,
    op.I32_LOAD8_U, op.I32_LOAD8_S, op.I32_LOAD16_U, op.I32_LOAD16_S,
    op.I64_LOAD8_U, op.I64_LOAD8_S, op.I64_LOAD16_U, op.I64_LOAD16_S,
    op.I64_LOAD32_U, op.I64_LOAD32_S,
    op.I32_STORE, op.I64_STORE, op.F32_STORE, op.F64_STORE,
    op.I32_STORE8, op.I32_STORE16, op.I64_STORE8, op.I64_STORE16,
    op.I64_STORE32,
))

_GUARD_RELOPS = {
    op.I32_LT_S: (True, False),
    op.I32_LT_U: (False, False),
    op.I32_LE_S: (True, True),
    op.I32_LE_U: (False, True),
}

#: Binops we constant-fold inside a guard's bound expression. walc emits
#: ``i < N - 1`` literally (CONST N; CONST 1; SUB), so a strict two-token
#: bound match would miss the stencil kernels' trip counts.
_BOUND_FOLD_OPS = {
    op.I32_ADD: lambda a, b: a + b,
    op.I32_SUB: lambda a, b: a - b,
    op.I32_MUL: lambda a, b: a * b,
}

_SIGN_BIT32 = 1 << 31


class Induction:
    """The counted-loop pattern: ``for i = C; i < N; i += S``."""

    __slots__ = ("local", "init", "step", "bound_const", "bound_local",
                 "signed", "inclusive", "symbolic_init")

    def __init__(self, local: int, init: Optional[int], step: int,
                 bound_const: Optional[int], bound_local: Optional[int],
                 signed: bool, inclusive: bool) -> None:
        self.local = local
        self.init = init
        self.step = step
        self.bound_const = bound_const
        self.bound_local = bound_local
        self.signed = signed
        self.inclusive = inclusive
        #: True when no compile-time init was recognised: the entry value
        #: is whatever the preceding code computed (``i = j + 1`` style).
        self.symbolic_init = init is None

    @property
    def max_numeric(self) -> Optional[int]:
        """Largest value the local can hold at a body access point, when
        the bound is a compile-time constant. May be negative (the loop
        then never runs and every derived claim is vacuous)."""
        if self.bound_const is None:
            return None
        bound = num.s32(self.bound_const) if self.signed else self.bound_const
        return bound if self.inclusive else bound - 1

    def max_parts(self) -> Tuple[Optional[str], Set[int]]:
        """A real-arithmetic Python expression for the access-point max
        when the bound is a local, plus the locals it reads."""
        if self.bound_local is None:
            return None, set()
        name = f"l{self.bound_local}"
        bound = f"_s32({name})" if self.signed else name
        if self.inclusive:
            return bound, {self.bound_local}
        return f"({bound} - 1)", {self.bound_local}

    @property
    def loop_lo(self) -> int:
        """Loop-wide lower bound on the raw local value."""
        return self.init if self.init is not None else 0

    @property
    def loop_hi(self) -> Optional[int]:
        """Loop-wide upper bound on the raw local value, or None if
        unknowable at compile time. Covers every point in the region —
        including the first guard evaluation, which is why a known init
        and a constant bound are both required: body points are bounded
        by ``max`` (guard just passed), the guard itself sees either the
        init or a post-step value ``<= max + step``."""
        maximum = self.max_numeric
        if maximum is None or self.init is None:
            return None
        return max(self.init, maximum + self.step)

    @property
    def versioned_hi(self) -> Optional[int]:
        """Upper bound on the raw local value, valid only inside a
        versioned fast copy of *this loop's own* dispatch (the preflight
        then includes the ``fast_path_sound`` conjunct, so a signed entry
        value is below 2^31). Unlike :attr:`loop_hi` it tolerates a
        symbolic init: body and step points are bounded by ``max + step``
        because the guard just passed, and the one point the entry value
        can exceed the claim — the first guard evaluation — computes no
        addresses and its sign-fold needs only the entry cap."""
        maximum = self.max_numeric
        if maximum is None or maximum < 0:
            return None
        hi = maximum + self.step
        return max(self.init, hi) if self.init is not None else hi

    def fast_path_sound(self) -> Tuple[bool, Optional[str]]:
        """Whether the induction claim may back an *unchecked* fast path.

        Returns ``(ok, conjunct)``: ``conjunct`` is an extra preflight
        condition string to emit (signed loops with a local bound, or a
        signed symbolic init capped at this loop's own entry), or None
        when the claim holds unconditionally / by compile-time check.
        """
        if not self.signed:
            return True, None
        if self.init is None:
            # Symbolic init (profile-gated match): sound only for a
            # constant bound, with the entry value capped below 2^31 by
            # a conjunct evaluated at this loop's own entry — a region
            # preflight further out cannot see the entry value.
            if self.bound_const is None:
                return False, None
            return (self.max_numeric + self.step < _SIGN_BIT32,
                    f"l{self.local} <= {_SIGN_BIT32 - 1}")
        if not 0 <= self.init < _SIGN_BIT32:
            return False, None
        if self.bound_const is not None:
            maximum = self.max_numeric
            return maximum + self.step < _SIGN_BIT32, None
        # Local bound: require max + step < 2^31 at loop entry.
        ceiling = _SIGN_BIT32 - self.step - (1 if self.inclusive else 0)
        return True, f"_s32(l{self.bound_local}) <= {ceiling}"


class LoopInfo:
    """Per-``loop`` facts: region extent, written locals, eligibility."""

    __slots__ = ("start", "end", "writes", "has_call", "has_grow",
                 "has_access", "induction", "versionable")

    def __init__(self, start: int, end: int) -> None:
        self.start = start          #: index of the LOOP instruction
        self.end = end              #: index of its matching END
        self.writes: Set[int] = set()
        self.has_call = False
        self.has_grow = False
        self.has_access = False
        self.induction: Optional[Induction] = None
        self.versionable = False


def analyze(func: Function,
            allow_symbolic_init: bool = False) -> Dict[int, LoopInfo]:
    """Analyse every loop in ``func``; keyed by LOOP instruction index.

    ``allow_symbolic_init`` admits signed counted loops whose entry value
    is computed (``i = j + 1``) rather than a literal constant; their
    fast paths need an extra entry-cap conjunct, so only the
    profile-guided tier (which versions such loops at their own entry)
    turns this on.
    """
    body = func.body
    loops: Dict[int, LoopInfo] = {}
    for index, instr in enumerate(body):
        if instr.opcode == op.LOOP:
            loops[index] = _analyze_loop(body, index, instr.target,
                                         allow_symbolic_init)
    return loops


def _analyze_loop(body: List[Instr], start: int, end: int,
                  allow_symbolic_init: bool = False) -> LoopInfo:
    info = LoopInfo(start, end)
    for index in range(start + 1, end):
        code = body[index].opcode
        if code in (op.LOCAL_SET, op.LOCAL_TEE):
            info.writes.add(body[index].arg)
        elif code in (op.CALL, op.CALL_INDIRECT):
            info.has_call = True
        elif code == op.MEMORY_GROW:
            info.has_grow = True
        elif code in ACCESS_OPS:
            info.has_access = True
    info.induction = _match_induction(body, start, end, info,
                                      allow_symbolic_init)
    info.versionable = (
        info.induction is not None
        and not info.has_call
        and not info.has_grow
        and info.has_access
        and info.induction.fast_path_sound()[0]
    )
    return info


def _match_induction(body: List[Instr], start: int, end: int,
                     info: LoopInfo,
                     allow_symbolic_init: bool = False
                     ) -> Optional[Induction]:
    # The loop must sit directly inside a dedicated exit block whose end
    # immediately follows ours — the shape `block { loop { .. } }` that
    # both walc and the test builder produce for counted loops.
    if start < 1 or body[start - 1].opcode != op.BLOCK \
            or body[start - 1].target != end + 1:
        return None
    if end - start < 6:
        return None
    if body[start + 1].opcode != op.LOCAL_GET:
        return None
    local = body[start + 1].arg
    bound_const = bound_local = None
    cursor = start + 2
    if body[cursor].opcode == op.I32_CONST:
        # Allow a constant-folded bound: `i < N - 1` style guards reach
        # us as CONST N; CONST 1; SUB (walc does not pre-fold).
        bound_const = body[cursor].arg
        cursor += 1
        while (cursor + 1 < end
                and body[cursor].opcode == op.I32_CONST
                and body[cursor + 1].opcode in _BOUND_FOLD_OPS):
            bound_const = _BOUND_FOLD_OPS[body[cursor + 1].opcode](
                bound_const, body[cursor].arg) & num.MASK32
            cursor += 2
    elif body[cursor].opcode == op.LOCAL_GET and body[cursor].arg != local:
        bound_local = body[cursor].arg
        cursor += 1
    else:
        return None
    if cursor + 2 >= end:
        return None
    relop = _GUARD_RELOPS.get(body[cursor].opcode)
    if relop is None:
        return None
    signed, inclusive = relop
    if body[cursor + 1].opcode != op.I32_EQZ:
        return None
    if body[cursor + 2].opcode != op.BR_IF or body[cursor + 2].arg != 1:
        return None
    # A bound read from a local must be invariant across the region.
    if bound_local is not None and bound_local in info.writes:
        return None

    # Optional init immediately before the exit block.
    init = None
    if (start >= 3 and body[start - 2].opcode == op.LOCAL_SET
            and body[start - 2].arg == local
            and body[start - 3].opcode == op.I32_CONST):
        init = body[start - 3].arg
    if signed and init is not None and not 0 <= init < _SIGN_BIT32:
        return None
    if signed and init is None \
            and not (allow_symbolic_init and bound_const is not None):
        return None

    # Every write to the induction local must be the canonical step
    # followed by an unconditional branch back to this loop's header.
    step = None
    saw_step = False
    depth = 0  # labels opened since the loop header
    index = start + 1
    while index < end:
        instr = body[index]
        code = instr.opcode
        if code == op.LOCAL_TEE and instr.arg == local:
            return None
        if code == op.LOCAL_SET and instr.arg == local:
            if (index < 3 + start
                    or body[index - 3].opcode != op.LOCAL_GET
                    or body[index - 3].arg != local
                    or body[index - 2].opcode != op.I32_CONST
                    or body[index - 1].opcode != op.I32_ADD):
                return None
            increment = body[index - 2].arg
            if not 1 <= increment < _SIGN_BIT32:
                return None
            if step is not None and step != increment:
                return None
            step = increment
            following = body[index + 1] if index + 1 < end else None
            if following is None or following.opcode != op.BR \
                    or following.arg != depth:
                return None
            saw_step = True
        if code in (op.BLOCK, op.LOOP, op.IF):
            depth += 1
        elif code == op.END:
            depth -= 1
        index += 1
    if not saw_step:
        return None
    return Induction(local, init, step, bound_const, bound_local,
                     signed, inclusive)
