"""WebAssembly binary decoder.

Parses an MVP binary into :class:`repro.wasm.module.Module`. Function
bodies are decoded into flat instruction lists with structured-control
targets (``end`` / ``else`` indices) resolved in a single fix-up pass, so
the interpreter never rescans for block boundaries.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.errors import DecodeError
from repro.wasm import opcodes as op
from repro.wasm.leb128 import decode_signed, decode_unsigned
from repro.wasm.module import (
    DataSegment,
    ElementSegment,
    Export,
    Function,
    Global,
    ImportedFunc,
    Instr,
    MemorySpec,
    Module,
    Table,
)
from repro.wasm.types import (
    EMPTY_BLOCK_TYPE,
    FUNC_TYPE_TAG,
    FUNCREF,
    BlockType,
    FuncType,
    GlobalType,
    Limits,
    ValType,
)

_MAGIC = b"\x00asm"
_VERSION = b"\x01\x00\x00\x00"

_EXPORT_KINDS = {0x00: "func", 0x01: "table", 0x02: "memory", 0x03: "global"}


class _Reader:
    """A byte cursor with spec-aligned primitive readers."""

    def __init__(self, data: bytes, offset: int = 0, end: int = None) -> None:
        self.data = data
        self.offset = offset
        self.end = len(data) if end is None else end

    @property
    def exhausted(self) -> bool:
        return self.offset >= self.end

    def byte(self) -> int:
        if self.offset >= self.end:
            raise DecodeError("unexpected end of binary")
        value = self.data[self.offset]
        self.offset += 1
        return value

    def raw(self, size: int) -> bytes:
        if self.offset + size > self.end:
            raise DecodeError("unexpected end of binary")
        value = self.data[self.offset : self.offset + size]
        self.offset += size
        return value

    def u32(self) -> int:
        value, self.offset = decode_unsigned(self.data, self.offset, 32)
        return value

    def s32(self) -> int:
        value, self.offset = decode_signed(self.data, self.offset, 32)
        return value

    def s64(self) -> int:
        value, self.offset = decode_signed(self.data, self.offset, 64)
        return value

    def f32(self) -> float:
        return struct.unpack("<f", self.raw(4))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.raw(8))[0]

    def name(self) -> str:
        size = self.u32()
        try:
            return self.raw(size).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError("malformed UTF-8 name") from exc

    def valtype(self) -> ValType:
        return ValType.from_byte(self.byte())

    def limits(self) -> Limits:
        flag = self.byte()
        if flag == 0x00:
            return Limits(self.u32())
        if flag == 0x01:
            minimum = self.u32()
            return Limits(minimum, self.u32())
        raise DecodeError(f"invalid limits flag 0x{flag:02x}")

    def blocktype(self) -> BlockType:
        byte = self.byte()
        if byte == EMPTY_BLOCK_TYPE:
            return BlockType.empty()
        return BlockType.single(ValType.from_byte(byte))


def decode_module(binary: bytes) -> Module:
    """Decode a complete Wasm binary into a :class:`Module`."""
    if len(binary) < 8:
        raise DecodeError("binary shorter than the Wasm header")
    if binary[:4] != _MAGIC:
        raise DecodeError("missing \\0asm magic")
    if binary[4:8] != _VERSION:
        raise DecodeError("unsupported Wasm version")

    module = Module(binary_size=len(binary))
    reader = _Reader(binary, 8)
    func_type_indices: List[int] = []
    last_section = 0

    while not reader.exhausted:
        section_id = reader.byte()
        size = reader.u32()
        section = _Reader(binary, reader.offset, reader.offset + size)
        reader.offset += size
        if reader.offset > len(binary):
            raise DecodeError("section size overruns the binary")
        if section_id != 0:
            if section_id <= last_section:
                raise DecodeError(f"out-of-order section id {section_id}")
            last_section = section_id

        if section_id == 0:
            name = section.name()
            module.custom_sections.append((name, bytes(section.raw(section.end - section.offset))))
        elif section_id == 1:
            _decode_types(section, module)
        elif section_id == 2:
            _decode_imports(section, module)
        elif section_id == 3:
            count = section.u32()
            func_type_indices = [section.u32() for _ in range(count)]
        elif section_id == 4:
            _decode_tables(section, module)
        elif section_id == 5:
            _decode_memories(section, module)
        elif section_id == 6:
            _decode_globals(section, module)
        elif section_id == 7:
            _decode_exports(section, module)
        elif section_id == 8:
            module.start = section.u32()
        elif section_id == 9:
            _decode_elements(section, module)
        elif section_id == 10:
            _decode_code(section, module, func_type_indices)
        elif section_id == 11:
            _decode_data(section, module)
        else:
            raise DecodeError(f"unknown section id {section_id}")

    if len(func_type_indices) != len(module.functions):
        raise DecodeError("function and code section lengths disagree")
    return module


def _decode_types(reader: _Reader, module: Module) -> None:
    count = reader.u32()
    for _ in range(count):
        if reader.byte() != FUNC_TYPE_TAG:
            raise DecodeError("function type must start with 0x60")
        params = tuple(reader.valtype() for _ in range(reader.u32()))
        results = tuple(reader.valtype() for _ in range(reader.u32()))
        if len(results) > 1:
            raise DecodeError("multi-value results are not supported (MVP)")
        module.types.append(FuncType(params, results))


def _decode_imports(reader: _Reader, module: Module) -> None:
    count = reader.u32()
    for _ in range(count):
        mod_name = reader.name()
        field = reader.name()
        kind = reader.byte()
        if kind == 0x00:
            type_index = reader.u32()
            if type_index >= len(module.types):
                raise DecodeError("import references unknown type")
            module.imported_funcs.append(ImportedFunc(mod_name, field, type_index))
        else:
            raise DecodeError(
                f"unsupported import kind 0x{kind:02x} (only functions)"
            )


def _decode_tables(reader: _Reader, module: Module) -> None:
    count = reader.u32()
    if count > 1:
        raise DecodeError("at most one table in the MVP")
    for _ in range(count):
        if reader.byte() != FUNCREF:
            raise DecodeError("table element type must be funcref")
        module.tables.append(Table(reader.limits()))


def _decode_memories(reader: _Reader, module: Module) -> None:
    count = reader.u32()
    if count > 1:
        raise DecodeError("at most one memory in the MVP")
    for _ in range(count):
        limits = reader.limits()
        limits.validate(65536)
        module.memories.append(MemorySpec(limits))


def _decode_const_expr(reader: _Reader) -> Tuple[ValType, object, object]:
    """Decode a constant initialiser: (type, value, imported-global-index)."""
    opcode = reader.byte()
    if opcode == op.I32_CONST:
        result = (ValType.I32, reader.s32() & 0xFFFFFFFF, None)
    elif opcode == op.I64_CONST:
        result = (ValType.I64, reader.s64() & 0xFFFFFFFFFFFFFFFF, None)
    elif opcode == op.F32_CONST:
        result = (ValType.F32, reader.f32(), None)
    elif opcode == op.F64_CONST:
        result = (ValType.F64, reader.f64(), None)
    elif opcode == op.GLOBAL_GET:
        result = (None, None, reader.u32())
    else:
        raise DecodeError(f"unsupported constant expression opcode 0x{opcode:02x}")
    if reader.byte() != op.END:
        raise DecodeError("constant expression must end with end")
    return result


def _decode_globals(reader: _Reader, module: Module) -> None:
    count = reader.u32()
    for _ in range(count):
        valtype = reader.valtype()
        mutable_flag = reader.byte()
        if mutable_flag not in (0x00, 0x01):
            raise DecodeError("invalid global mutability flag")
        init_type, value, init_global = _decode_const_expr(reader)
        if init_global is None and init_type != valtype:
            raise DecodeError("global initialiser type mismatch")
        module.globals.append(
            Global(GlobalType(valtype, mutable_flag == 0x01), value, init_global)
        )


def _decode_exports(reader: _Reader, module: Module) -> None:
    count = reader.u32()
    seen = set()
    for _ in range(count):
        name = reader.name()
        if name in seen:
            raise DecodeError(f"duplicate export name {name!r}")
        seen.add(name)
        kind = reader.byte()
        if kind not in _EXPORT_KINDS:
            raise DecodeError(f"invalid export kind 0x{kind:02x}")
        module.exports.append(Export(name, _EXPORT_KINDS[kind], reader.u32()))


def _decode_elements(reader: _Reader, module: Module) -> None:
    count = reader.u32()
    for _ in range(count):
        table_index = reader.u32()
        if table_index != 0:
            raise DecodeError("element segment must target table 0")
        init_type, offset, init_global = _decode_const_expr(reader)
        if init_global is not None or init_type != ValType.I32:
            raise DecodeError("element offset must be an i32 constant")
        indices = [reader.u32() for _ in range(reader.u32())]
        module.elements.append(ElementSegment(table_index, offset, indices))


def _decode_data(reader: _Reader, module: Module) -> None:
    count = reader.u32()
    for _ in range(count):
        memory_index = reader.u32()
        if memory_index != 0:
            raise DecodeError("data segment must target memory 0")
        init_type, offset, init_global = _decode_const_expr(reader)
        if init_global is not None or init_type != ValType.I32:
            raise DecodeError("data offset must be an i32 constant")
        size = reader.u32()
        module.data_segments.append(DataSegment(memory_index, offset, bytes(reader.raw(size))))


def _decode_code(reader: _Reader, module: Module, type_indices: List[int]) -> None:
    count = reader.u32()
    if count != len(type_indices):
        raise DecodeError("function and code section lengths disagree")
    for index in range(count):
        body_size = reader.u32()
        body = _Reader(reader.data, reader.offset, reader.offset + body_size)
        reader.offset += body_size
        locals_list: List[ValType] = []
        for _ in range(body.u32()):
            repeat = body.u32()
            valtype = body.valtype()
            if len(locals_list) + repeat > 1 << 20:
                raise DecodeError("too many locals")
            locals_list.extend([valtype] * repeat)
        instrs = _decode_expr(body)
        function = Function(
            type_index=type_indices[index],
            locals=locals_list,
            body=instrs,
            body_size=body_size,
        )
        module.functions.append(function)


def _decode_expr(reader: _Reader) -> List[Instr]:
    """Decode a function body and resolve structured-control targets."""
    instrs: List[Instr] = []
    # Stack of indices of open block/loop/if instructions.
    control: List[int] = []
    while True:
        opcode = reader.byte()
        if opcode in (op.BLOCK, op.LOOP, op.IF):
            instr = Instr(opcode, reader.blocktype())
            control.append(len(instrs))
            instrs.append(instr)
        elif opcode == op.ELSE:
            if not control:
                raise DecodeError("else outside of if")
            opener = instrs[control[-1]]
            if opener.opcode != op.IF or opener.else_target != -1:
                raise DecodeError("else must follow an if")
            opener.else_target = len(instrs)
            instrs.append(Instr(opcode))
        elif opcode == op.END:
            if not control:
                # Terminating end of the function body.
                if not reader.exhausted:
                    raise DecodeError("trailing bytes after function end")
                instrs.append(Instr(opcode))
                return instrs
            opener_index = control.pop()
            instrs[opener_index].target = len(instrs)
            instrs.append(Instr(opcode))
        elif opcode in (op.BR, op.BR_IF):
            instrs.append(Instr(opcode, reader.u32()))
        elif opcode == op.BR_TABLE:
            depths = tuple(reader.u32() for _ in range(reader.u32()))
            default = reader.u32()
            instrs.append(Instr(opcode, (depths, default)))
        elif opcode == op.CALL:
            instrs.append(Instr(opcode, reader.u32()))
        elif opcode == op.CALL_INDIRECT:
            type_index = reader.u32()
            if reader.byte() != 0x00:
                raise DecodeError("call_indirect table index must be 0")
            instrs.append(Instr(opcode, type_index))
        elif opcode in (
            op.LOCAL_GET, op.LOCAL_SET, op.LOCAL_TEE,
            op.GLOBAL_GET, op.GLOBAL_SET,
        ):
            instrs.append(Instr(opcode, reader.u32()))
        elif op.I32_LOAD <= opcode <= op.I64_STORE32:
            align = reader.u32()
            if align > 3:
                raise DecodeError("memory alignment too large")
            instrs.append(Instr(opcode, reader.u32()))
        elif opcode in (op.MEMORY_SIZE, op.MEMORY_GROW):
            if reader.byte() != 0x00:
                raise DecodeError("memory index must be 0")
            instrs.append(Instr(opcode))
        elif opcode == op.I32_CONST:
            instrs.append(Instr(opcode, reader.s32() & 0xFFFFFFFF))
        elif opcode == op.I64_CONST:
            instrs.append(Instr(opcode, reader.s64() & 0xFFFFFFFFFFFFFFFF))
        elif opcode == op.F32_CONST:
            instrs.append(Instr(opcode, reader.f32()))
        elif opcode == op.F64_CONST:
            instrs.append(Instr(opcode, reader.f64()))
        elif opcode in op.NAMES:
            instrs.append(Instr(opcode))
        else:
            raise DecodeError(f"unknown opcode 0x{opcode:02x}")
