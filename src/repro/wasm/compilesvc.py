"""Parallel AOT compilation service.

The profile-guided tier makes load-time compilation noticeably more
expensive (inlining, specialisation and loop versioning all re-lower
function bodies several times), which works against the paper's startup
story (Fig. 4: load time dominates). Function lowering is embarrassingly
parallel — each function compiles independently of every other — so this
module farms the per-function work out to worker *processes* and
publishes the resulting artifacts into the content-addressed
:mod:`~repro.wasm.codecache`, under the engine's
:attr:`~repro.wasm.runtime.Engine.cache_identity` (``aot@o3+<hash>`` for
a profiled build). A subsequent ``instantiate`` of the same binary with
the same engine configuration is then a pure cache hit: it re-links the
precompiled code objects and never invokes the compiler.

Determinism is load-bearing: the artifacts a worker pool publishes must
be bit-identical to what a single in-process compilation produces, or
the cache would serve different code depending on how it was warmed.
Artifacts therefore cross the process boundary in a canonical encoded
form (``marshal`` for code objects, ``pickle`` for the cold fused
bodies) and :func:`artifact_fingerprint` hashes exactly that encoding so
tests can compare arbitrary artifact sets.

Workers are plain ``multiprocessing`` pool members using the ``fork``
start method where available (the binary and profile ship once, via the
pool initializer); on platforms without ``fork`` the service silently
degrades to in-process compilation — behaviour, artifacts and cache
contents are identical either way, only wall-clock time differs.
"""

from __future__ import annotations

import hashlib
import marshal
import multiprocessing
import os
import pickle
import warnings
from typing import Optional, Tuple

from repro.wasm import codecache
from repro.wasm.decoder import decode_module
from repro.wasm.pgo import ProfileWarning
from repro.wasm.validation import validate_module

__all__ = ["precompile", "artifact_fingerprint", "encode_artifact",
           "decode_artifact"]


def _make_engine(opt_level, profile_json):
    """Build the AOT engine a service run (or one worker) compiles with.

    Profile degradation warnings already fired in the coordinating
    process; workers rebuild the same engine from the same inputs, so
    their copies of those warnings are noise and are suppressed.
    """
    from repro.wasm.aot import AotCompiler  # deferred: aot imports are heavy

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return AotCompiler(opt_level=opt_level, profile=profile_json)


def encode_artifact(artifact: tuple) -> bytes:
    """Canonical byte encoding of one per-function artifact.

    ``(code, source)`` artifacts become ``b"code:" + marshal + source``;
    ``("cold", fused_body)`` artifacts become ``b"cold:" + pickle``.
    The encoding is the wire format between workers and the coordinator
    *and* the input to :func:`artifact_fingerprint`, so both paths hash
    the same bytes.
    """
    kind = artifact[0]
    if kind == "cold":
        return b"cold:" + pickle.dumps(artifact[1], protocol=4)
    code, source = artifact
    blob = marshal.dumps(code)
    return (b"code:" + len(blob).to_bytes(8, "little") + blob
            + source.encode("utf-8"))


def decode_artifact(payload: bytes) -> tuple:
    """Inverse of :func:`encode_artifact`."""
    if payload.startswith(b"cold:"):
        return ("cold", pickle.loads(payload[5:]))
    if not payload.startswith(b"code:"):
        raise ValueError("unrecognised artifact encoding")
    size = int.from_bytes(payload[5:13], "little")
    blob = payload[13:13 + size]
    source = payload[13 + size:].decode("utf-8")
    return (marshal.loads(blob), source)


def artifact_fingerprint(artifact) -> str:
    """Stable content hash of one artifact (encoded or in-memory)."""
    if not isinstance(artifact, (bytes, bytearray)):
        artifact = encode_artifact(artifact)
    return hashlib.sha256(bytes(artifact)).hexdigest()


# -- worker side --------------------------------------------------------------

_worker_state: Optional[tuple] = None


def _init_worker(binary: bytes, opt_level, profile_json) -> None:
    global _worker_state
    engine = _make_engine(opt_level, profile_json)
    module = decode_module(binary)
    validate_module(module)
    _worker_state = (engine, module)


def _compile_remote(func_index: int) -> Tuple[int, bytes]:
    engine, module = _worker_state
    artifact = engine.compile_artifact(module, func_index)
    return func_index, encode_artifact(artifact)


# -- coordinator --------------------------------------------------------------

def _fork_pool(workers: int, binary: bytes, opt_level, profile_json):
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None
    return context.Pool(workers, initializer=_init_worker,
                        initargs=(binary, opt_level, profile_json))


def precompile(binary: bytes, *, opt_level: Optional[int] = None,
               profile=None, workers: Optional[int] = None,
               code_cache=codecache.DEFAULT, tracer=None) -> dict:
    """Compile every function of ``binary`` and publish into the cache.

    ``opt_level``/``profile`` configure the engine exactly as
    :class:`~repro.wasm.aot.AotCompiler` does (including the typed
    degradation warnings for missing/invalid/mismatched profiles).
    ``workers`` defaults to the host CPU count, capped at 8; values <= 1
    (and hosts without ``fork``) compile in-process. Returns a summary::

        {"module_key": ..., "identity": ..., "functions": N,
         "workers": W, "fingerprints": {func_index: sha256}}

    The fingerprints cover the canonical artifact encoding, so two runs
    of the service — any worker counts — over the same binary, opt level
    and profile yield byte-for-byte the same mapping.
    """
    binary = bytes(binary)
    engine = _make_engine(opt_level, profile)
    if engine.profile is not None and engine.profile.module_key:
        key = codecache.CodeCache.module_key(binary)
        if key != engine.profile.module_key:
            warnings.warn(ProfileWarning(
                "profile was recorded on a different module; "
                "precompiling at opt level 2"))
            engine = _make_engine(2, None)
            profile = None
            opt_level = 2
    if workers is None:
        workers = min(os.cpu_count() or 1, 8)

    module_key = codecache.CodeCache.module_key(binary)
    module = decode_module(binary)
    validate_module(module)

    local_base = len(module.imported_funcs)
    indices = [local_base + i for i in range(len(module.functions))]

    span = tracer.span("wasm.precompile", module_key=module_key,
                       identity=engine.cache_identity, workers=workers,
                       functions=len(indices)) if tracer is not None else None
    if span is not None:
        span.__enter__()
    try:
        encoded: dict = {}
        pool = _fork_pool(workers, binary, opt_level, profile) \
            if workers > 1 and indices else None
        if pool is not None:
            try:
                for func_index, payload in pool.imap_unordered(
                        _compile_remote, indices):
                    encoded[func_index] = payload
            finally:
                pool.close()
                pool.join()
        else:
            _init_worker(binary, opt_level, profile)
            try:
                for func_index in indices:
                    encoded[func_index] = _compile_remote(func_index)[1]
            finally:
                globals()["_worker_state"] = None

        cache = codecache.resolve(code_cache)
        if cache is not None:
            entry = cache.store(module_key, engine.cache_identity, module)
            for func_index in indices:
                cache.store_artifact(entry, func_index,
                                     decode_artifact(encoded[func_index]))
    finally:
        if span is not None:
            span.__exit__(None, None, None)

    return {
        "module_key": module_key,
        "identity": engine.cache_identity,
        "functions": len(indices),
        "workers": workers if pool is not None else 1,
        "fingerprints": {
            index: hashlib.sha256(encoded[index]).hexdigest()
            for index in sorted(encoded)
        },
    }
