"""Profile-guided optimisation support for the AOT tier (``opt_level=3``).

This module owns everything the ``aot@o3`` tier needs that is not raw
codegen:

* :class:`Profile` — the on-disk/in-trace profile format (format tag
  ``watz-pgo/1``): per-function call counts, per-loop back-edge counts,
  per-site memory alignment masks, observed-constant globals and a
  memory-grow count, all keyed so they survive the inlining transform.
  ``profile_hash`` is a stable content hash over the canonical JSON
  encoding; the AOT engine splices it into ``cache_identity`` so two
  different profiles can never share codecache artifacts.
* :class:`ProfileCollector` — the mutable counters an instrumented
  (profiling) AOT build increments at runtime.
* :func:`profile_module` — one-call helper: run a workload under the
  instrumented engine and return the finished profile, optionally
  publishing it onto a :class:`repro.obs.Tracer` as a ``wasm.profile``
  instant span (the trace is then the transport: see
  ``repro.obs.profile.profiles_from_spans``).
* The module-plan transforms: budgeted recursion-safe inlining of hot
  small callees (:func:`build_plan` / :func:`inline_into`) and
  superinstruction fusion for cold interpreter-dispatched functions
  (:func:`fuse_body`), plus :func:`make_cold_entry`, the interpreter
  closure the AOT engine links for cold functions.

Synthetic opcodes produced here (``INLINE_ENTER``/``INLINE_EXIT`` and the
``FUSED_*`` superinstructions) live above 0x100 in
:mod:`repro.wasm.opcodes`, so a decoded module can never contain them.
All transforms copy instructions — decoded modules are shared through the
codecache and must never be mutated.
"""

from __future__ import annotations

import hashlib
import json
import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import WasmError
from repro.wasm import opcodes as op
from repro.wasm.module import Function, Instr, Module
from repro.wasm.types import BlockType, F32, F64, I32, I64, ValType

#: Profile format tag; bump on incompatible layout changes.
FORMAT = "watz-pgo/1"

#: A callee is an inline candidate once the profile saw this many calls.
INLINE_MIN_CALLS = 4
#: ...and its body is at most this many decoded instructions.
INLINE_MAX_BODY = 48
#: Instruction-growth budget per caller (over its original body size).
INLINE_GROWTH_BUDGET = 384
#: A loop is "hot" once the profile saw this many back-edges.
HOT_LOOP_MIN = 32


class ProfileError(WasmError):
    """A profile payload is malformed, truncated or the wrong format."""


class ProfileWarning(UserWarning):
    """A profile could not be applied; the engine degrades to ``o2``."""


def _site(func_index: int, instr_index: int) -> str:
    """Stable key for an instruction site: ``f<func>:<body-index>``.

    Keys name sites in the *decoded* body, so a profile recorded by the
    instrumented (untransformed) build still addresses loops and memory
    accesses after inlining: spliced callee instructions carry their
    original ``f<callee>:<i>`` keys through the plan's ``sites`` map.
    """
    return f"f{func_index}:{instr_index}"


@dataclass
class Profile:
    """An execution profile of one module, content-addressable.

    ``module_key`` is the sha256 of the module binary the profile was
    recorded on (empty string when unknown, e.g. hand-built test
    profiles).  ``access_masks`` maps an access site to the OR of every
    observed ``address & (width - 1)``; a mask of 0 therefore means the
    site was *always* naturally aligned.
    """

    module_key: str = ""
    func_calls: Dict[int, int] = field(default_factory=dict)
    loop_backedges: Dict[str, int] = field(default_factory=dict)
    access_masks: Dict[str, int] = field(default_factory=dict)
    const_globals: Dict[int, float] = field(default_factory=dict)
    mem_grows: int = 0

    @property
    def is_empty(self) -> bool:
        return not (self.func_calls or self.loop_backedges
                    or self.access_masks or self.const_globals)

    def to_json(self) -> dict:
        return {
            "format": FORMAT,
            "module_key": self.module_key,
            "func_calls": {str(k): v for k, v in self.func_calls.items()},
            "loop_backedges": dict(self.loop_backedges),
            "access_masks": dict(self.access_masks),
            "const_globals": {str(k): v for k, v in self.const_globals.items()},
            "mem_grows": self.mem_grows,
        }

    def canonical_json(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True,
                          separators=(",", ":"))

    @property
    def profile_hash(self) -> str:
        """Stable content hash: equal profiles hash equal, always."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    @classmethod
    def from_json(cls, payload: object) -> "Profile":
        if not isinstance(payload, dict):
            raise ProfileError(f"profile payload must be an object, "
                               f"got {type(payload).__name__}")
        if payload.get("format") != FORMAT:
            raise ProfileError(
                f"unsupported profile format {payload.get('format')!r} "
                f"(expected {FORMAT!r})")
        try:
            func_calls = {int(k): int(v)
                          for k, v in payload.get("func_calls", {}).items()}
            loop_backedges = {str(k): int(v)
                              for k, v in payload.get("loop_backedges",
                                                      {}).items()}
            access_masks = {str(k): int(v)
                            for k, v in payload.get("access_masks",
                                                    {}).items()}
            const_globals = {}
            for k, v in payload.get("const_globals", {}).items():
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    raise ProfileError(
                        f"const_globals[{k}] must be numeric, got {v!r}")
                const_globals[int(k)] = v
            mem_grows = int(payload.get("mem_grows", 0))
            module_key = str(payload.get("module_key", ""))
        except ProfileError:
            raise
        except (TypeError, ValueError, AttributeError) as exc:
            raise ProfileError(f"malformed profile payload: {exc}") from exc
        if any(v < 0 for v in func_calls.values()) \
                or any(v < 0 for v in loop_backedges.values()) \
                or any(v < 0 for v in access_masks.values()):
            raise ProfileError("profile counters must be non-negative")
        return cls(module_key=module_key, func_calls=func_calls,
                   loop_backedges=loop_backedges, access_masks=access_masks,
                   const_globals=const_globals, mem_grows=mem_grows)

    @classmethod
    def coerce(cls, value: object) -> "Profile":
        """Accept a Profile, a JSON dict or a JSON string/bytes."""
        if isinstance(value, Profile):
            return value
        if isinstance(value, (str, bytes, bytearray)):
            try:
                value = json.loads(value)
            except (ValueError, UnicodeDecodeError) as exc:
                raise ProfileError(
                    f"profile is not valid JSON: {exc}") from exc
        if isinstance(value, dict):
            return cls.from_json(value)
        raise ProfileError(
            f"cannot coerce {type(value).__name__} into a Profile")

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.canonical_json())
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "Profile":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return cls.coerce(fh.read())
        except OSError as exc:
            raise ProfileError(f"cannot read profile {path}: {exc}") from exc


def merge_profiles(profiles: Sequence[Profile]) -> Profile:
    """Merge profiles of the *same* module: counts add, masks OR,
    const-globals survive only where every profile agrees."""
    profiles = list(profiles)
    if not profiles:
        raise ProfileError("cannot merge zero profiles")
    keys = {p.module_key for p in profiles}
    if len(keys) > 1:
        raise ProfileError(
            f"cannot merge profiles of different modules: {sorted(keys)}")
    merged = Profile(module_key=profiles[0].module_key)
    for profile in profiles:
        for k, v in profile.func_calls.items():
            merged.func_calls[k] = merged.func_calls.get(k, 0) + v
        for k, v in profile.loop_backedges.items():
            merged.loop_backedges[k] = merged.loop_backedges.get(k, 0) + v
        for k, v in profile.access_masks.items():
            merged.access_masks[k] = merged.access_masks.get(k, 0) | v
        merged.mem_grows += profile.mem_grows
    first = profiles[0].const_globals
    for index, value in first.items():
        if all(p.const_globals.get(index) == value for p in profiles[1:]):
            merged.const_globals[index] = value
    return merged


class ProfileCollector:
    """Mutable counters the instrumented AOT build increments.

    The instrumented build injects ``_pf``/``_pl``/``_pa``/``_pg``/``_pn``
    into the generated namespace; they alias the attributes below.
    """

    def __init__(self) -> None:
        self.func_calls = defaultdict(int)
        self.loop_backedges = defaultdict(int)
        self.access_masks = defaultdict(int)
        self.global_sets = defaultdict(int)
        self.mem_grows = [0]

    def finish(self, module_key: str = "", instance=None) -> Profile:
        """Freeze the counters into a :class:`Profile`.

        A mutable global that was never written during the profiled runs
        (and is not NaN, which cannot be guarded with ``==``) is recorded
        as observed-constant at its final value.
        """
        const_globals: Dict[int, float] = {}
        if instance is not None:
            for index, glob in enumerate(instance.globals):
                if self.global_sets.get(index, 0):
                    continue
                value = glob.value
                if isinstance(value, float) and math.isnan(value):
                    continue
                const_globals[index] = value
        return Profile(
            module_key=module_key,
            func_calls=dict(self.func_calls),
            loop_backedges=dict(self.loop_backedges),
            access_masks=dict(self.access_masks),
            const_globals=const_globals,
            mem_grows=self.mem_grows[0],
        )


def profile_module(binary: bytes, runs: Sequence[Tuple[str, Sequence]],
                   imports=None, tracer=None) -> Profile:
    """Run ``runs`` (``(export_name, args)`` pairs) under the
    instrumented AOT build and return the resulting profile.

    When ``tracer`` is given the finished profile is also published as a
    ``wasm.profile`` instant span — this is the trace-fed path: a later
    session can recover the profile from the span stream with
    :func:`repro.obs.profile.profiles_from_spans`.
    """
    from repro.wasm.aot import AotCompiler  # local import: aot imports pgo

    binary = bytes(binary)
    collector = ProfileCollector()
    engine = AotCompiler(profile_collector=collector)
    instance = engine.instantiate(binary, imports, code_cache=None)
    for name, args in runs:
        instance.invoke(name, *args)
    profile = collector.finish(hashlib.sha256(binary).hexdigest(), instance)
    if tracer is not None:
        tracer.instant("wasm.profile", module_key=profile.module_key,
                       profile=profile.canonical_json())
    return profile


# ---------------------------------------------------------------------------
# Module plan: inlining + cold-function fusion, computed once per
# (module, profile) pair and cached on the module object.
# ---------------------------------------------------------------------------

@dataclass
class FunctionPlan:
    """Per-function outcome of the planning pass."""

    func: Function
    #: Per-instruction site keys (see :func:`_site`); ``None`` entries are
    #: synthetic instructions introduced by inlining.
    sites: List[Optional[str]]
    #: Observed-constant globals this function's body may specialise on.
    spec_globals: Dict[int, float]
    inlined: int = 0


@dataclass
class ModulePlan:
    """The profile-driven compilation plan for one module."""

    profile_hash: str
    #: Function indices compiled cold (interpreter + superinstructions).
    cold: frozenset
    #: func_index -> fused body for cold functions.
    fused: Dict[int, List[Instr]]
    #: func_index -> FunctionPlan for hot (AOT-compiled) functions.
    hot: Dict[int, FunctionPlan]


def resolve_targets(body: List[Instr]) -> None:
    """Re-resolve ``target``/``else_target`` links after a transform.

    Mirrors the decoder's fix-up: each structured opener records the index
    of its matching ``end``; an ``if``'s ``else_target`` records the
    ``else``.  The function-closing ``end`` (empty opener stack) is left
    untouched.
    """
    stack: List[int] = []
    for index, instr in enumerate(body):
        code = instr.opcode
        if code in (op.BLOCK, op.LOOP, op.IF):
            stack.append(index)
        elif code == op.ELSE:
            opener = body[stack[-1]]
            if opener.opcode != op.IF or opener.else_target != -1:
                raise WasmError("misplaced else in transformed body")
            opener.else_target = index
        elif code == op.END:
            if stack:
                body[stack.pop()].target = index
    if stack:
        raise WasmError("unbalanced blocks in transformed body")


def _copy_instr(instr: Instr) -> Instr:
    return Instr(instr.opcode, instr.arg)


_CONST_FOR_TYPE = {
    I32: (op.I32_CONST, 0),
    I64: (op.I64_CONST, 0),
    F32: (op.F32_CONST, 0.0),
    F64: (op.F64_CONST, 0.0),
}

_LOCAL_OPS = (op.LOCAL_GET, op.LOCAL_SET, op.LOCAL_TEE)


def _body_depth_ok(body: List[Instr]) -> bool:
    """Reject candidate bodies whose RETURN sits under unbalanced
    constructs we cannot see (defensive; decoded bodies are balanced)."""
    depth = 0
    for instr in body:
        if instr.opcode in (op.BLOCK, op.LOOP, op.IF):
            depth += 1
        elif instr.opcode == op.END:
            depth -= 1
    return depth == -1  # the function-closing end


def _splice_callee(out_body: List[Instr], out_sites: List[Optional[str]],
                   module: Module, callee_index: int, callee: Function,
                   local_base: int) -> None:
    """Append the inline expansion of ``callee`` to ``out_body``.

    Layout: ``INLINE_ENTER``; parameter ``local.set``s (reverse order, so
    they pop call arguments right-to-left); typed zero-inits for callee
    locals (per entry — a spliced body re-runs on every loop iteration);
    a wrapper ``block`` with the callee's result type standing in for the
    callee's function frame (so internal branch depths need no rewrite
    and ``return`` becomes a ``br`` to it); the remapped callee body;
    ``end``; ``INLINE_EXIT``.
    """
    func_type = module.types[callee.type_index]
    nparams = len(func_type.params)

    out_body.append(Instr(op.INLINE_ENTER, callee_index))
    out_sites.append(None)
    for param in range(nparams - 1, -1, -1):
        out_body.append(Instr(op.LOCAL_SET, local_base + param))
        out_sites.append(None)
    for offset, valtype in enumerate(callee.locals):
        const_op, zero = _CONST_FOR_TYPE[valtype]
        out_body.append(Instr(const_op, zero))
        out_sites.append(None)
        out_body.append(Instr(op.LOCAL_SET, local_base + nparams + offset))
        out_sites.append(None)
    out_body.append(Instr(op.BLOCK, BlockType(tuple(func_type.results))))
    out_sites.append(None)

    # Remap the callee body.  Branch depths are unchanged: the wrapper
    # block sits exactly where the callee's function frame did.
    depth = 0
    body = callee.body
    for index, instr in enumerate(body):
        code = instr.opcode
        if code == op.END and depth == 0:
            break  # the callee's closing end — replaced by the wrapper's
        if code in (op.BLOCK, op.LOOP, op.IF):
            depth += 1
        elif code == op.END:
            depth -= 1
        if code == op.RETURN:
            out_body.append(Instr(op.BR, depth))
        elif code in _LOCAL_OPS:
            out_body.append(Instr(code, instr.arg + local_base))
        else:
            out_body.append(_copy_instr(instr))
        out_sites.append(_site(callee_index, index))

    out_body.append(Instr(op.END))
    out_sites.append(None)
    out_body.append(Instr(op.INLINE_EXIT, callee_index))
    out_sites.append(None)


def _splice_size(module: Module, callee: Function) -> int:
    func_type = module.types[callee.type_index]
    return len(callee.body) + len(func_type.params) \
        + 2 * len(callee.locals) + 3


def inline_into(module: Module, func: Function, func_index: int,
                candidates: Dict[int, Function]) -> Tuple[Function,
                                                          List[Optional[str]]]:
    """Inline every budget-permitted call to a candidate into ``func``.

    Returns a *new* Function (the input is shared via the codecache and
    never mutated) plus the parallel site-key list.  Inlining is single
    level: spliced bodies are the callees' originals, so a ``call``
    inside one stays a real call — recursion (direct or mutual) can
    therefore never unroll unboundedly, and self-calls are excluded from
    ``candidates`` outright.
    """
    out_body: List[Instr] = []
    out_sites: List[Optional[str]] = []
    locals_out = list(func.locals)
    nlocals = len(module.types[func.type_index].params) + len(func.locals)
    budget = INLINE_GROWTH_BUDGET
    inlined = 0

    for index, instr in enumerate(func.body):
        callee_index = instr.arg if instr.opcode == op.CALL else None
        callee = candidates.get(callee_index) if callee_index is not None \
            else None
        if callee is not None and callee_index != func_index:
            cost = _splice_size(module, callee)
            if cost <= budget:
                budget -= cost
                callee_type = module.types[callee.type_index]
                local_base = nlocals
                locals_out.extend(callee_type.params)
                locals_out.extend(callee.locals)
                nlocals += len(callee_type.params) + len(callee.locals)
                _splice_callee(out_body, out_sites, module, callee_index,
                               callee, local_base)
                inlined += 1
                continue
        out_body.append(_copy_instr(instr))
        out_sites.append(_site(func_index, index))

    if not inlined:
        return func, [_site(func_index, i) for i in range(len(func.body))]
    resolve_targets(out_body)
    new_func = Function(type_index=func.type_index, locals=locals_out,
                        body=out_body, body_size=func.body_size,
                        name=func.name)
    return new_func, out_sites


# ---------------------------------------------------------------------------
# Superinstruction fusion for cold interpreter-dispatched code.
# ---------------------------------------------------------------------------

_CONST_OPS = (op.I32_CONST, op.I64_CONST, op.F32_CONST, op.F64_CONST)


def _fuse_pair(a: Instr, b: Instr) -> Optional[Instr]:
    if a.opcode == op.LOCAL_GET:
        if b.opcode == op.LOCAL_GET:
            return Instr(op.FUSED_GET_GET, (a.arg, b.arg))
        if b.opcode in _CONST_OPS:
            return Instr(op.FUSED_GET_CONST, (a.arg, b.arg))
        if b.opcode == op.LOCAL_SET:
            return Instr(op.FUSED_GET_SET, (a.arg, b.arg))
    elif a.opcode in _CONST_OPS and b.opcode == op.LOCAL_SET:
        return Instr(op.FUSED_CONST_SET, (a.arg, b.arg))
    return None


def fuse_body(body: List[Instr]) -> List[Instr]:
    """Fuse adjacent instruction pairs into superinstructions.

    Only positions no branch can land on may become the *second* half of
    a pair: label continuations (``target + 1``, ``else_target + 1``,
    loop headers at ``i + 1``) are excluded.  Structured targets are
    re-indexed through the old→new position map; ``br``/``br_table``
    immediates are relative depths and survive unchanged.
    """
    forbidden = set()
    for index, instr in enumerate(body):
        if instr.opcode in (op.BLOCK, op.IF, op.LOOP):
            forbidden.add(instr.target + 1)
            if instr.else_target != -1:
                forbidden.add(instr.else_target + 1)
            if instr.opcode == op.LOOP:
                forbidden.add(index + 1)

    fused: List[Instr] = []
    new_index = [0] * (len(body) + 1)
    i = 0
    while i < len(body):
        new_index[i] = len(fused)
        if i + 1 < len(body) and (i + 1) not in forbidden:
            pair = _fuse_pair(body[i], body[i + 1])
            if pair is not None:
                new_index[i + 1] = len(fused)
                fused.append(pair)
                i += 2
                continue
        instr = body[i]
        fused.append(Instr(instr.opcode, instr.arg, instr.target,
                           instr.else_target))
        i += 1
    new_index[len(body)] = len(fused)

    for instr in fused:
        if instr.opcode in (op.BLOCK, op.LOOP, op.IF):
            instr.target = new_index[instr.target]
            if instr.else_target != -1:
                instr.else_target = new_index[instr.else_target]
    return fused


def make_cold_entry(module: Module, instance, func_index: int,
                    fused_body: List[Instr]):
    """Interpreter closure for a cold function, mirroring
    :meth:`Interpreter.compile_function` exactly (argument-count trap,
    coercion, zeroed locals, call-depth accounting) but running the fused
    body."""
    from repro.wasm.interpreter import _coerce, _run
    from repro.errors import TrapError

    func = module.functions[func_index - len(module.imported_funcs)]
    func_type = module.types[func.type_index]
    param_types = func_type.params
    local_types = func.locals
    result_arity = len(func_type.results)

    def invoke(*args):
        if len(args) != len(param_types):
            raise TrapError(f"expected {len(param_types)} arguments, "
                            f"got {len(args)}")
        locals_list = [_coerce(value, valtype)
                       for value, valtype in zip(args, param_types)]
        locals_list.extend(valtype.zero() for valtype in local_types)
        instance.enter_call()
        try:
            stack = _run(module, instance, fused_body, locals_list,
                         result_arity)
        finally:
            instance.exit_call()
        if result_arity == 0:
            return None
        return stack[-1]

    invoke.cold = True
    return invoke


# ---------------------------------------------------------------------------
# Plan construction.
# ---------------------------------------------------------------------------

def _global_spec_candidates(module: Module, body: List[Instr],
                            profile: Profile) -> Dict[int, float]:
    """Observed-constant globals this body may specialise on.

    Eligibility is per-function and conservative: the body must read the
    global, never write it, and contain no calls (a callee could write
    it mid-body, invalidating the entry guard).  Inline-spliced regions
    are fine — their instructions are fully visible to the same scan.
    NaN values cannot be equality-guarded and were already dropped at
    collection; type mismatches (a stale profile) are dropped here.
    """
    if not profile.const_globals:
        return {}
    reads = set()
    for instr in body:
        code = instr.opcode
        if code in (op.CALL, op.CALL_INDIRECT):
            return {}
        if code == op.GLOBAL_SET and instr.arg in profile.const_globals:
            return {}
        if code == op.GLOBAL_GET:
            reads.add(instr.arg)
    spec: Dict[int, float] = {}
    for index in sorted(reads):
        if index not in profile.const_globals or index >= len(module.globals):
            continue
        value = profile.const_globals[index]
        is_float = module.globals[index].type.valtype in (F32, F64)
        if is_float != isinstance(value, float):
            continue
        spec[index] = value
        if len(spec) >= 4:
            break
    return spec


def build_plan(module: Module, profile: Profile) -> ModulePlan:
    """Compute the o3 compilation plan for ``module`` under ``profile``."""
    imported = len(module.imported_funcs)
    cold = set()
    fused: Dict[int, List[Instr]] = {}
    hot: Dict[int, FunctionPlan] = {}

    candidates: Dict[int, Function] = {}
    for local_index, func in enumerate(module.functions):
        func_index = imported + local_index
        if profile.func_calls.get(func_index, 0) < INLINE_MIN_CALLS:
            continue
        if len(func.body) > INLINE_MAX_BODY:
            continue
        if not _body_depth_ok(func.body):
            continue
        candidates[func_index] = func

    for local_index, func in enumerate(module.functions):
        func_index = imported + local_index
        if profile.func_calls.get(func_index, 0) == 0 \
                and module.start != func_index:
            cold.add(func_index)
            fused[func_index] = fuse_body(func.body)
            continue
        planned_func, sites = inline_into(module, func, func_index,
                                          candidates)
        inlined = 1 if planned_func is not func else 0
        spec = _global_spec_candidates(module, planned_func.body, profile)
        hot[func_index] = FunctionPlan(func=planned_func, sites=sites,
                                       spec_globals=spec, inlined=inlined)

    return ModulePlan(profile_hash=profile.profile_hash,
                      cold=frozenset(cold), fused=fused, hot=hot)


def module_plan(module: Module, profile: Profile) -> ModulePlan:
    """Cached :func:`build_plan`: one plan per (module, profile-hash).

    Modules are shared through the codecache, so the cache lives on the
    module object itself and is keyed by profile hash — two engines with
    different profiles never see each other's plans.
    """
    plans = getattr(module, "_pgo_plans", None)
    if plans is None:
        plans = {}
        module._pgo_plans = plans
    plan = plans.get(profile.profile_hash)
    if plan is None:
        plan = build_plan(module, profile)
        plans[profile.profile_hash] = plan
    return plan
