"""WebAssembly type layer: value types, function types, limits."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import DecodeError

PAGE_SIZE = 65536


class ValType(enum.IntEnum):
    """Value types, encoded with their binary-format bytes."""

    I32 = 0x7F
    I64 = 0x7E
    F32 = 0x7D
    F64 = 0x7C

    @classmethod
    def from_byte(cls, byte: int) -> "ValType":
        try:
            return cls(byte)
        except ValueError:
            raise DecodeError(f"unknown value type 0x{byte:02x}") from None

    @property
    def mnemonic(self) -> str:
        return self.name.lower()

    @property
    def is_integer(self) -> bool:
        return self in (ValType.I32, ValType.I64)

    def zero(self):
        """The default value of this type (module-instantiation semantics)."""
        return 0 if self.is_integer else 0.0


I32 = ValType.I32
I64 = ValType.I64
F32 = ValType.F32
F64 = ValType.F64

FUNCREF = 0x70
FUNC_TYPE_TAG = 0x60
EMPTY_BLOCK_TYPE = 0x40


@dataclass(frozen=True)
class FuncType:
    """A function signature: parameter and result types."""

    params: Tuple[ValType, ...]
    results: Tuple[ValType, ...]

    def __str__(self) -> str:
        params = " ".join(t.mnemonic for t in self.params) or "()"
        results = " ".join(t.mnemonic for t in self.results) or "()"
        return f"[{params}] -> [{results}]"


@dataclass(frozen=True)
class Limits:
    """Size limits of a memory (pages) or table (elements)."""

    minimum: int
    maximum: Optional[int] = None

    def validate(self, hard_cap: int) -> None:
        if self.minimum > hard_cap:
            raise DecodeError("limits minimum exceeds the hard cap")
        if self.maximum is not None:
            if self.maximum > hard_cap:
                raise DecodeError("limits maximum exceeds the hard cap")
            if self.maximum < self.minimum:
                raise DecodeError("limits maximum below minimum")


@dataclass(frozen=True)
class GlobalType:
    """A global's value type and mutability."""

    valtype: ValType
    mutable: bool


@dataclass(frozen=True)
class BlockType:
    """A structured instruction's type: [] -> [] or [] -> [t] in the MVP."""

    results: Tuple[ValType, ...]

    @classmethod
    def empty(cls) -> "BlockType":
        return cls(())

    @classmethod
    def single(cls, valtype: ValType) -> "BlockType":
        return cls((valtype,))

    @property
    def arity(self) -> int:
        return len(self.results)
