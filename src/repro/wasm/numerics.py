"""Numeric semantics of WebAssembly, shared by both execution engines.

Integers are represented as unsigned Python ints (mod 2^32 / 2^64); floats
as Python floats, with results of f32 operations rounded through a 32-bit
round-trip. All trapping behaviours of the spec (division by zero, invalid
float-to-int truncation) raise :class:`~repro.errors.TrapError`.
"""

from __future__ import annotations

import math
import struct

from repro.errors import TrapError

MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF
_SIGN32 = 0x80000000
_SIGN64 = 0x8000000000000000

_PACK_F32 = struct.Struct("<f")
_PACK_F64 = struct.Struct("<d")
_PACK_I32 = struct.Struct("<I")
_PACK_I64 = struct.Struct("<Q")


def s32(value: int) -> int:
    """Interpret a u32 as signed."""
    return value - 0x100000000 if value & _SIGN32 else value


def s64(value: int) -> int:
    """Interpret a u64 as signed."""
    return value - 0x10000000000000000 if value & _SIGN64 else value


def f32_round(value: float) -> float:
    """Round a Python float to f32 precision."""
    return _PACK_F32.unpack(_PACK_F32.pack(value))[0]


def clz(value: int, bits: int) -> int:
    if value == 0:
        return bits
    return bits - value.bit_length()


def ctz(value: int, bits: int) -> int:
    if value == 0:
        return bits
    return (value & -value).bit_length() - 1


def popcnt(value: int) -> int:
    return bin(value).count("1")


def rotl(value: int, count: int, bits: int) -> int:
    count %= bits
    mask = (1 << bits) - 1
    return ((value << count) | (value >> (bits - count))) & mask


def rotr(value: int, count: int, bits: int) -> int:
    count %= bits
    mask = (1 << bits) - 1
    return ((value >> count) | (value << (bits - count))) & mask


def idiv_s(lhs: int, rhs: int, bits: int) -> int:
    """Signed division, truncating toward zero; traps per the spec."""
    mask = (1 << bits) - 1
    signed_lhs = lhs - (1 << bits) if lhs >> (bits - 1) else lhs
    signed_rhs = rhs - (1 << bits) if rhs >> (bits - 1) else rhs
    if signed_rhs == 0:
        raise TrapError("integer divide by zero")
    quotient = abs(signed_lhs) // abs(signed_rhs)
    if (signed_lhs < 0) != (signed_rhs < 0):
        quotient = -quotient
    if quotient == 1 << (bits - 1):
        raise TrapError("integer overflow")
    return quotient & mask


def idiv_u(lhs: int, rhs: int) -> int:
    if rhs == 0:
        raise TrapError("integer divide by zero")
    return lhs // rhs


def irem_s(lhs: int, rhs: int, bits: int) -> int:
    """Signed remainder with the sign of the dividend."""
    mask = (1 << bits) - 1
    signed_lhs = lhs - (1 << bits) if lhs >> (bits - 1) else lhs
    signed_rhs = rhs - (1 << bits) if rhs >> (bits - 1) else rhs
    if signed_rhs == 0:
        raise TrapError("integer divide by zero")
    remainder = abs(signed_lhs) % abs(signed_rhs)
    if signed_lhs < 0:
        remainder = -remainder
    return remainder & mask


def irem_u(lhs: int, rhs: int) -> int:
    if rhs == 0:
        raise TrapError("integer divide by zero")
    return lhs % rhs


def shr_s(value: int, count: int, bits: int) -> int:
    count %= bits
    signed = value - (1 << bits) if value >> (bits - 1) else value
    return (signed >> count) & ((1 << bits) - 1)


def trunc_to_int(value: float, signed: bool, bits: int) -> int:
    """f{32,64} -> i{32,64} truncation, trapping on NaN and overflow."""
    if math.isnan(value):
        raise TrapError("invalid conversion to integer (NaN)")
    if math.isinf(value):
        raise TrapError("integer overflow in truncation")
    truncated = math.trunc(value)
    if signed:
        low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        low, high = 0, (1 << bits) - 1
    if not low <= truncated <= high:
        raise TrapError("integer overflow in truncation")
    return truncated & ((1 << bits) - 1)


def fnearest(value: float) -> float:
    """Round-to-nearest, ties to even (Wasm ``nearest``)."""
    if math.isnan(value) or math.isinf(value):
        return value
    rounded = math.floor(value + 0.5)
    if rounded - value == 0.5 and rounded % 2 != 0:
        rounded -= 1
    # Preserve the sign of zero for negative inputs in (-0.5, 0].
    if rounded == 0 and math.copysign(1.0, value) < 0:
        return -0.0
    return float(rounded)


def fmin(lhs: float, rhs: float) -> float:
    """Wasm min: NaN-propagating, -0 < +0."""
    if math.isnan(lhs) or math.isnan(rhs):
        return math.nan
    if lhs == rhs == 0.0:
        return -0.0 if (math.copysign(1.0, lhs) < 0 or math.copysign(1.0, rhs) < 0) else 0.0
    return lhs if lhs < rhs else rhs


def fmax(lhs: float, rhs: float) -> float:
    """Wasm max: NaN-propagating, +0 > -0."""
    if math.isnan(lhs) or math.isnan(rhs):
        return math.nan
    if lhs == rhs == 0.0:
        return 0.0 if (math.copysign(1.0, lhs) > 0 or math.copysign(1.0, rhs) > 0) else -0.0
    return lhs if lhs > rhs else rhs


def fdiv(lhs: float, rhs: float) -> float:
    """IEEE division with Wasm's zero-divisor semantics (no Python trap).

    Shared by the interpreter and the AOT engine so both lower ``f32.div``
    and ``f64.div`` through the exact same helper.
    """
    if rhs == 0.0:
        if lhs == 0.0 or math.isnan(lhs):
            return math.nan
        sign = math.copysign(1.0, lhs) * math.copysign(1.0, rhs)
        return math.inf if sign > 0 else -math.inf
    return lhs / rhs


def ftrunc(value: float) -> float:
    if math.isnan(value) or math.isinf(value):
        return value
    result = float(math.trunc(value))
    if result == 0.0 and math.copysign(1.0, value) < 0:
        return -0.0
    return result


def fsqrt(value: float) -> float:
    if value < 0:
        return math.nan
    return math.sqrt(value)


def fceil(value: float) -> float:
    if math.isnan(value) or math.isinf(value):
        return value
    result = float(math.ceil(value))
    if result == 0.0 and math.copysign(1.0, value) < 0:
        return -0.0
    return result


def ffloor(value: float) -> float:
    if math.isnan(value) or math.isinf(value):
        return value
    return float(math.floor(value))


def i32_reinterpret_f32(value: float) -> int:
    return _PACK_I32.unpack(_PACK_F32.pack(value))[0]


def i64_reinterpret_f64(value: float) -> int:
    return _PACK_I64.unpack(_PACK_F64.pack(value))[0]


def f32_reinterpret_i32(value: int) -> float:
    return _PACK_F32.unpack(_PACK_I32.pack(value))[0]


def f64_reinterpret_i64(value: int) -> float:
    return _PACK_F64.unpack(_PACK_I64.pack(value))[0]


def extend_signed(value: int, from_bits: int, to_bits: int) -> int:
    """Sign-extend the low ``from_bits`` of ``value`` to ``to_bits``."""
    value &= (1 << from_bits) - 1
    if value >> (from_bits - 1):
        value -= 1 << from_bits
    return value & ((1 << to_bits) - 1)
