"""Decoded-module representation shared by validator, interpreter and AOT.

A decoded function body is a flat list of :class:`Instr`; the structured
instructions (``block``, ``loop``, ``if``) carry the indices of their
matching ``else``/``end`` so both execution engines can jump without
rescanning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.wasm.types import BlockType, FuncType, GlobalType, Limits, ValType


@dataclass
class Instr:
    """One decoded instruction.

    ``arg`` depends on the opcode:

    * block/loop/if: a :class:`BlockType`; ``target`` holds the matching
      ``end`` index and ``else_target`` the ``else`` index (if only);
    * br/br_if: the label depth;
    * br_table: ``(tuple_of_depths, default_depth)``;
    * call: function index; call_indirect: type index;
    * local/global ops: the variable index;
    * memory ops: the static offset;
    * consts: the literal value.
    """

    opcode: int
    arg: Union[None, int, float, BlockType, Tuple] = None
    target: int = -1
    else_target: int = -1


@dataclass
class ImportedFunc:
    module: str
    name: str
    type_index: int


@dataclass
class Function:
    """A locally defined function: signature index, locals, decoded body."""

    type_index: int
    locals: List[ValType] = field(default_factory=list)
    body: List[Instr] = field(default_factory=list)
    # Size in bytes of the encoded body; drives load-time accounting (Fig. 4).
    body_size: int = 0
    name: Optional[str] = None


@dataclass
class Table:
    limits: Limits


@dataclass
class MemorySpec:
    limits: Limits


@dataclass
class Global:
    type: GlobalType
    init: Union[int, float]
    # Index of an imported global the initialiser copies, or None.
    init_global: Optional[int] = None


@dataclass
class Export:
    name: str
    kind: str  # "func" | "table" | "memory" | "global"
    index: int


@dataclass
class ElementSegment:
    table_index: int
    offset: int
    func_indices: List[int]


@dataclass
class DataSegment:
    memory_index: int
    offset: int
    data: bytes


@dataclass
class Module:
    """A fully decoded module, ready for validation and instantiation."""

    types: List[FuncType] = field(default_factory=list)
    imported_funcs: List[ImportedFunc] = field(default_factory=list)
    functions: List[Function] = field(default_factory=list)
    tables: List[Table] = field(default_factory=list)
    memories: List[MemorySpec] = field(default_factory=list)
    globals: List[Global] = field(default_factory=list)
    exports: List[Export] = field(default_factory=list)
    elements: List[ElementSegment] = field(default_factory=list)
    data_segments: List[DataSegment] = field(default_factory=list)
    start: Optional[int] = None
    custom_sections: List[Tuple[str, bytes]] = field(default_factory=list)
    binary_size: int = 0

    @property
    def func_count(self) -> int:
        """Total function-index space (imports first, then local)."""
        return len(self.imported_funcs) + len(self.functions)

    def func_type(self, func_index: int) -> FuncType:
        """Signature of a function by its index in the joint index space."""
        imported = len(self.imported_funcs)
        if func_index < imported:
            return self.types[self.imported_funcs[func_index].type_index]
        return self.types[self.functions[func_index - imported].type_index]

    def export(self, name: str) -> Export:
        for export in self.exports:
            if export.name == name:
                return export
        raise KeyError(f"no export named {name!r}")
