"""WebAssembly MVP opcode constants (binary format §5.4)."""

from __future__ import annotations

# Control instructions.
UNREACHABLE = 0x00
NOP = 0x01
BLOCK = 0x02
LOOP = 0x03
IF = 0x04
ELSE = 0x05
END = 0x0B
BR = 0x0C
BR_IF = 0x0D
BR_TABLE = 0x0E
RETURN = 0x0F
CALL = 0x10
CALL_INDIRECT = 0x11

# Parametric instructions.
DROP = 0x1A
SELECT = 0x1B

# Variable instructions.
LOCAL_GET = 0x20
LOCAL_SET = 0x21
LOCAL_TEE = 0x22
GLOBAL_GET = 0x23
GLOBAL_SET = 0x24

# Memory instructions.
I32_LOAD = 0x28
I64_LOAD = 0x29
F32_LOAD = 0x2A
F64_LOAD = 0x2B
I32_LOAD8_S = 0x2C
I32_LOAD8_U = 0x2D
I32_LOAD16_S = 0x2E
I32_LOAD16_U = 0x2F
I64_LOAD8_S = 0x30
I64_LOAD8_U = 0x31
I64_LOAD16_S = 0x32
I64_LOAD16_U = 0x33
I64_LOAD32_S = 0x34
I64_LOAD32_U = 0x35
I32_STORE = 0x36
I64_STORE = 0x37
F32_STORE = 0x38
F64_STORE = 0x39
I32_STORE8 = 0x3A
I32_STORE16 = 0x3B
I64_STORE8 = 0x3C
I64_STORE16 = 0x3D
I64_STORE32 = 0x3E
MEMORY_SIZE = 0x3F
MEMORY_GROW = 0x40

# Constants.
I32_CONST = 0x41
I64_CONST = 0x42
F32_CONST = 0x43
F64_CONST = 0x44

# i32 comparisons.
I32_EQZ = 0x45
I32_EQ = 0x46
I32_NE = 0x47
I32_LT_S = 0x48
I32_LT_U = 0x49
I32_GT_S = 0x4A
I32_GT_U = 0x4B
I32_LE_S = 0x4C
I32_LE_U = 0x4D
I32_GE_S = 0x4E
I32_GE_U = 0x4F

# i64 comparisons.
I64_EQZ = 0x50
I64_EQ = 0x51
I64_NE = 0x52
I64_LT_S = 0x53
I64_LT_U = 0x54
I64_GT_S = 0x55
I64_GT_U = 0x56
I64_LE_S = 0x57
I64_LE_U = 0x58
I64_GE_S = 0x59
I64_GE_U = 0x5A

# f32 comparisons.
F32_EQ = 0x5B
F32_NE = 0x5C
F32_LT = 0x5D
F32_GT = 0x5E
F32_LE = 0x5F
F32_GE = 0x60

# f64 comparisons.
F64_EQ = 0x61
F64_NE = 0x62
F64_LT = 0x63
F64_GT = 0x64
F64_LE = 0x65
F64_GE = 0x66

# i32 arithmetic.
I32_CLZ = 0x67
I32_CTZ = 0x68
I32_POPCNT = 0x69
I32_ADD = 0x6A
I32_SUB = 0x6B
I32_MUL = 0x6C
I32_DIV_S = 0x6D
I32_DIV_U = 0x6E
I32_REM_S = 0x6F
I32_REM_U = 0x70
I32_AND = 0x71
I32_OR = 0x72
I32_XOR = 0x73
I32_SHL = 0x74
I32_SHR_S = 0x75
I32_SHR_U = 0x76
I32_ROTL = 0x77
I32_ROTR = 0x78

# i64 arithmetic.
I64_CLZ = 0x79
I64_CTZ = 0x7A
I64_POPCNT = 0x7B
I64_ADD = 0x7C
I64_SUB = 0x7D
I64_MUL = 0x7E
I64_DIV_S = 0x7F
I64_DIV_U = 0x80
I64_REM_S = 0x81
I64_REM_U = 0x82
I64_AND = 0x83
I64_OR = 0x84
I64_XOR = 0x85
I64_SHL = 0x86
I64_SHR_S = 0x87
I64_SHR_U = 0x88
I64_ROTL = 0x89
I64_ROTR = 0x8A

# f32 arithmetic.
F32_ABS = 0x8B
F32_NEG = 0x8C
F32_CEIL = 0x8D
F32_FLOOR = 0x8E
F32_TRUNC = 0x8F
F32_NEAREST = 0x90
F32_SQRT = 0x91
F32_ADD = 0x92
F32_SUB = 0x93
F32_MUL = 0x94
F32_DIV = 0x95
F32_MIN = 0x96
F32_MAX = 0x97
F32_COPYSIGN = 0x98

# f64 arithmetic.
F64_ABS = 0x99
F64_NEG = 0x9A
F64_CEIL = 0x9B
F64_FLOOR = 0x9C
F64_TRUNC = 0x9D
F64_NEAREST = 0x9E
F64_SQRT = 0x9F
F64_ADD = 0xA0
F64_SUB = 0xA1
F64_MUL = 0xA2
F64_DIV = 0xA3
F64_MIN = 0xA4
F64_MAX = 0xA5
F64_COPYSIGN = 0xA6

# Conversions.
I32_WRAP_I64 = 0xA7
I32_TRUNC_F32_S = 0xA8
I32_TRUNC_F32_U = 0xA9
I32_TRUNC_F64_S = 0xAA
I32_TRUNC_F64_U = 0xAB
I64_EXTEND_I32_S = 0xAC
I64_EXTEND_I32_U = 0xAD
I64_TRUNC_F32_S = 0xAE
I64_TRUNC_F32_U = 0xAF
I64_TRUNC_F64_S = 0xB0
I64_TRUNC_F64_U = 0xB1
F32_CONVERT_I32_S = 0xB2
F32_CONVERT_I32_U = 0xB3
F32_CONVERT_I64_S = 0xB4
F32_CONVERT_I64_U = 0xB5
F32_DEMOTE_F64 = 0xB6
F64_CONVERT_I32_S = 0xB7
F64_CONVERT_I32_U = 0xB8
F64_CONVERT_I64_S = 0xB9
F64_CONVERT_I64_U = 0xBA
F64_PROMOTE_F32 = 0xBB
I32_REINTERPRET_F32 = 0xBC
I64_REINTERPRET_F64 = 0xBD
F32_REINTERPRET_I32 = 0xBE
F64_REINTERPRET_I64 = 0xBF

# Sign-extension operators (merged post-MVP proposal, emitted by LLVM).
I32_EXTEND8_S = 0xC0
I32_EXTEND16_S = 0xC1
I64_EXTEND8_S = 0xC2
I64_EXTEND16_S = 0xC3
I64_EXTEND32_S = 0xC4

# Synthetic opcodes (>= 0x100) never appear in encoded modules; they are
# produced only by the profile-guided transforms in :mod:`repro.wasm.pgo`
# on *copies* of decoded bodies.  Keeping them out of the single-byte
# space means a real module can never smuggle one past the decoder.
EXTENDED_BASE = 0x100
# Inline-splice markers: the region between them is an inlined callee
# body.  ``arg`` is the inlined function's index (for diagnostics).
INLINE_ENTER = 0x100
INLINE_EXIT = 0x101

# Superinstructions fused from adjacent pairs for cold interpreter-
# dispatched code.  ``arg`` is a 2-tuple of the two original immediates.
FUSED_BASE = 0x200
FUSED_GET_GET = 0x200  # local.get a; local.get b
FUSED_GET_CONST = 0x201  # local.get a; const c
FUSED_CONST_SET = 0x202  # const c; local.set a
FUSED_GET_SET = 0x203  # local.get a; local.set b


def _build_names() -> dict:
    names = {}
    for key, value in globals().items():
        if key.isupper() and isinstance(value, int):
            names[value] = key.lower().replace("_", ".", 1)
    return names


#: Map opcode byte -> canonical text-format-ish mnemonic, for diagnostics.
NAMES = _build_names()


def name(opcode: int) -> str:
    """Human-readable mnemonic for an opcode byte."""
    return NAMES.get(opcode, f"0x{opcode:02x}")
