"""Content-addressed code cache for compiled Wasm modules.

The paper's startup breakdown (Fig. 4) is dominated by the load phase —
parsing, validation and AOT processing of the module. In the fleet steady
state (and in every benchmark repeat) the *same* module binary is
instantiated over and over, so that work is pure waste after the first
load. This cache keys it by content: ``sha256(module binary)`` plus the
engine's *cache identity* — :attr:`~repro.wasm.runtime.Engine.cache_identity`,
which folds in any option that changes generated code (the AOT engine
reports ``aot@o<opt_level>``, so an opt-level-2 artifact is never served
to an ``opt_level=0`` load) — addresses

* the decoded, validated :class:`~repro.wasm.module.Module` (both
  engines), and
* per-function AOT artifacts — the compiled top-level code object and its
  generated source (AOT engine only).

Artifacts are *code*, never *state*: the AOT artifact is the module-level
code object of the generated ``def``, which each instantiation ``exec``\\ s
into its own fresh namespace. Instances therefore share compiled code
objects but never memories, tables or globals.

The cache is a bounded LRU (never grows past ``capacity`` modules) with an
explicit bypass: pass ``code_cache=None`` to
:meth:`~repro.wasm.runtime.Engine.instantiate` (or ``code_cache=False`` to
the runtime TA's ``CMD_LOAD``) to force a full recompile, and
:meth:`CodeCache.invalidate` / :meth:`CodeCache.clear` to drop entries.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional

from repro.wasm.module import Module


class _Sentinel:
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<use the process-wide default code cache>"


#: Default argument for ``instantiate(code_cache=...)``: use the
#: process-wide cache. ``None`` means bypass.
DEFAULT = _Sentinel()


class CacheEntry:
    """Cached compilation products of one (module binary, engine) pair."""

    __slots__ = ("module", "artifacts")

    def __init__(self, module: Module) -> None:
        self.module = module
        #: func_index -> engine-specific artifact (opaque to the cache).
        self.artifacts: Dict[int, object] = {}


class CodeCache:
    """A thread-safe, bounded, content-addressed module cache."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("code cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def module_key(binary: bytes) -> str:
        """The content address of a module binary."""
        return hashlib.sha256(binary).hexdigest()

    def lookup(self, key: str, engine_name: str) -> Optional[CacheEntry]:
        """Fetch the entry for a content key, counting hit/miss."""
        with self._lock:
            entry = self._entries.get((key, engine_name))
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end((key, engine_name))
            self.hits += 1
            return entry

    def peek(self, key: str, engine_name: str) -> Optional[CacheEntry]:
        """Like :meth:`lookup` but without touching hit/miss counters.

        Used when the caller already did (and counted) the lookup for this
        load and hands the engine a decoded module plus its key."""
        with self._lock:
            entry = self._entries.get((key, engine_name))
            if entry is not None:
                self._entries.move_to_end((key, engine_name))
            return entry

    def store(self, key: str, engine_name: str, module: Module) -> CacheEntry:
        """Insert a decoded module, evicting LRU entries past capacity."""
        entry = CacheEntry(module)
        with self._lock:
            existing = self._entries.get((key, engine_name))
            if existing is not None:
                # Same content hash: the module is identical; keep the
                # entry that may already hold compiled artifacts.
                self._entries.move_to_end((key, engine_name))
                return existing
            self._entries[(key, engine_name)] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return entry

    def store_artifact(self, entry: CacheEntry, func_index: int,
                       artifact: object) -> None:
        with self._lock:
            entry.artifacts.setdefault(func_index, artifact)

    def invalidate(self, key: str, engine_name: Optional[str] = None) -> int:
        """Drop the entries for a content key; returns how many were dropped."""
        dropped = 0
        with self._lock:
            for existing in list(self._entries):
                if existing[0] == key and engine_name in (None, existing[1]):
                    del self._entries[existing]
                    dropped += 1
        return dropped

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss/eviction counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


#: The process-wide default cache, shared by every engine the way the
#: generator tables in :mod:`repro.crypto.ec` are shared: module binaries
#: are immutable content, so sharing is always sound.
DEFAULT_CACHE = CodeCache()


def resolve(code_cache) -> Optional[CodeCache]:
    """Map an ``instantiate(code_cache=...)`` argument to a cache or None."""
    if code_cache is DEFAULT:
        return DEFAULT_CACHE
    if code_cache is None or code_cache is False:
        return None
    if code_cache is True:
        return DEFAULT_CACHE
    if isinstance(code_cache, CodeCache):
        return code_cache
    raise TypeError(
        "code_cache must be a CodeCache, None/False (bypass), True or "
        "codecache.DEFAULT"
    )
