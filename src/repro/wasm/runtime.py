"""Runtime structures shared by the interpreter and the AOT engine.

An :class:`Instance` owns a linear :class:`Memory`, a funcref
:class:`Table`, globals and a function index space mixing host imports and
local functions. Engines differ only in how they turn a decoded
:class:`~repro.wasm.module.Function` into a Python callable.
"""

from __future__ import annotations

import struct
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import LinkError, TrapError, ValidationError
from repro.wasm import codecache
from repro.wasm.decoder import decode_module
from repro.wasm.module import Module
from repro.wasm.types import PAGE_SIZE, FuncType, ValType
from repro.wasm.validation import validate_module

# Bounded well below CPython's own recursion limit: one Wasm frame costs
# up to three Python frames in the interpreting engine.
MAX_CALL_DEPTH = 256


class Memory:
    """A growable linear memory backed by a single ``bytearray``.

    The backing buffer grows in place (``bytearray.extend``) so references
    captured by compiled code stay valid across ``memory.grow``.

    Besides raw byte access through ``data``, the memory exposes *typed
    planes*: ``memoryview(data).cast(fmt)`` views reinterpreting the whole
    buffer as an array of 2/4/8-byte elements. The AOT engine indexes these
    directly for accesses it proves naturally aligned, skipping the
    ``struct`` pack/unpack layer. Wasm values are little-endian, so planes
    are only available on little-endian hosts (``planes_supported``);
    callers must fall back to the struct path otherwise.

    ``bytearray.extend`` raises ``BufferError`` while any view is exported,
    so :meth:`grow` releases every plane first and notifies registered
    listeners afterwards; holders (the AOT instance namespaces) re-request
    their planes, which lazily rebuilds them over the grown buffer.
    """

    #: Plane element formats and widths; linear memory is always a whole
    #: number of 64 KiB pages, so every cast divides the buffer exactly.
    PLANE_FORMATS = {"H": 2, "I": 4, "Q": 8, "f": 4, "d": 8}

    #: Typed planes alias the raw bytes, so they are only meaningful where
    #: host element order matches Wasm's little-endian layout.
    planes_supported = sys.byteorder == "little"

    def __init__(self, min_pages: int, max_pages: Optional[int] = None,
                 hard_cap_bytes: Optional[int] = None) -> None:
        self.max_pages = max_pages
        self.hard_cap_bytes = hard_cap_bytes
        if hard_cap_bytes is not None and min_pages * PAGE_SIZE > hard_cap_bytes:
            raise TrapError("initial memory exceeds the platform heap cap")
        self.data = bytearray(min_pages * PAGE_SIZE)
        self._planes: Dict[str, memoryview] = {}
        self._plane_listeners: List[Callable[[], None]] = []

    @property
    def size_pages(self) -> int:
        return len(self.data) // PAGE_SIZE

    def plane(self, fmt: str) -> memoryview:
        """The buffer viewed as an array of ``fmt`` elements (cached)."""
        if not self.planes_supported:
            raise BufferError("typed planes need a little-endian host")
        view = self._planes.get(fmt)
        if view is None:
            if fmt not in self.PLANE_FORMATS:
                raise ValueError(f"unsupported plane format {fmt!r}")
            view = memoryview(self.data).cast(fmt)
            self._planes[fmt] = view
        return view

    def add_plane_listener(self, callback: Callable[[], None]) -> None:
        """Register a callback fired after ``grow`` remaps the buffer."""
        self._plane_listeners.append(callback)

    def _release_planes(self) -> None:
        planes, self._planes = self._planes, {}
        for view in planes.values():
            view.release()

    def grow(self, delta_pages: int) -> int:
        """Grow by ``delta_pages``; returns old size in pages, or -1."""
        old = self.size_pages
        new = old + delta_pages
        if new > 65536:
            return -1
        if self.max_pages is not None and new > self.max_pages:
            return -1
        if (self.hard_cap_bytes is not None
                and new * PAGE_SIZE > self.hard_cap_bytes):
            return -1
        # Exported memoryviews pin the buffer; drop them for the resize and
        # let listeners re-request planes over the grown buffer.
        self._release_planes()
        self.data.extend(bytes(delta_pages * PAGE_SIZE))
        for callback in self._plane_listeners:
            callback()
        return old

    # -- typed access (used by hosts and the interpreter) ---------------------

    def read(self, address: int, size: int) -> bytes:
        if address < 0 or address + size > len(self.data):
            raise TrapError("out-of-bounds memory read")
        return bytes(self.data[address : address + size])

    def write(self, address: int, payload: bytes) -> None:
        if address < 0 or address + len(payload) > len(self.data):
            raise TrapError("out-of-bounds memory write")
        self.data[address : address + len(payload)] = payload


class Table:
    """A funcref table; unset elements trap on call_indirect."""

    def __init__(self, minimum: int, maximum: Optional[int] = None) -> None:
        self.maximum = maximum
        self.elements: List[Optional[int]] = [None] * minimum

    def get(self, index: int) -> int:
        if index < 0 or index >= len(self.elements):
            raise TrapError("table index out of bounds")
        element = self.elements[index]
        if element is None:
            raise TrapError("uninitialised table element")
        return element


class GlobalInstance:
    """A mutable or immutable global cell."""

    __slots__ = ("value", "mutable", "valtype")

    def __init__(self, valtype: ValType, value, mutable: bool) -> None:
        self.valtype = valtype
        self.value = value
        self.mutable = mutable


class HostFunction:
    """An imported function provided by the embedder (e.g. the WASI layer).

    ``fn`` is called as ``fn(instance, *args)`` and must return ``None``,
    a single value, or a tuple matching the declared result arity.
    """

    def __init__(self, func_type: FuncType, fn: Callable, name: str = "") -> None:
        self.func_type = func_type
        self.fn = fn
        self.name = name


Imports = Dict[str, Dict[str, HostFunction]]


class Instance:
    """An instantiated module with its runtime state."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.memory: Optional[Memory] = None
        self.table: Optional[Table] = None
        self.globals: List[GlobalInstance] = []
        # Joint function index space; each entry is a Python callable taking
        # positional Wasm values.
        self.funcs: List[Callable] = []
        self.func_types: List[FuncType] = []
        self.call_depth = 0
        self._export_cache: Dict[str, Callable] = {}

    def enter_call(self) -> None:
        self.call_depth += 1
        if self.call_depth > MAX_CALL_DEPTH:
            self.call_depth = 0
            raise TrapError("call stack exhausted")

    def exit_call(self) -> None:
        self.call_depth -= 1

    def exported_function(self, name: str) -> Callable:
        cached = self._export_cache.get(name)
        if cached is not None:
            return cached
        export = self.module.export(name)
        if export.kind != "func":
            raise LinkError(f"export {name!r} is a {export.kind}, not a function")
        fn = self.funcs[export.index]
        self._export_cache[name] = fn
        return fn

    def invoke(self, name: str, *args):
        """Call an exported function with Python values."""
        return self.exported_function(name)(*args)


class Engine:
    """Interface implemented by the interpreter and the AOT compiler."""

    #: Human-readable engine name, used in benchmark labels.
    name = "abstract"

    #: True when :meth:`compile_function` produces an instance-independent
    #: artifact (exposed via a ``code_artifact`` attribute on the returned
    #: callable) that :meth:`link_artifact` can re-link into a fresh
    #: instance. The interpreter builds per-instance closures, so only the
    #: decoded module is cacheable for it.
    supports_code_artifacts = False

    @property
    def cache_identity(self) -> str:
        """The code-cache key component for this engine configuration.

        Must distinguish every engine option that changes the *compiled
        artifact* (not just runtime state): an AOT compiler at
        ``opt_level=2`` produces different code objects than at 0, so the
        two must never share cache entries. Engines without such options
        just use their name.
        """
        return self.name

    def compile_function(self, module: Module, instance: Instance,
                         func_index: int) -> Callable:
        raise NotImplementedError

    def link_artifact(self, module: Module, instance: Instance,
                      func_index: int, artifact: object) -> Callable:
        """Turn a cached artifact into a callable bound to ``instance``."""
        raise NotImplementedError

    # -- shared instantiation -------------------------------------------------

    def instantiate(self, module_or_binary, imports: Optional[Imports] = None,
                    memory_cap_bytes: Optional[int] = None,
                    code_cache=codecache.DEFAULT,
                    cache_key: Optional[str] = None) -> Instance:
        """Validate and instantiate a module (binary or decoded).

        ``memory_cap_bytes`` lets the embedding platform (OP-TEE's secure
        heap in this reproduction) cap the linear memory irrespective of the
        module's own limits.

        ``code_cache`` selects the content-addressed code cache:
        :data:`repro.wasm.codecache.DEFAULT` (or ``True``) uses the
        process-wide cache, ``None``/``False`` bypasses caching entirely, a
        :class:`~repro.wasm.codecache.CodeCache` uses that instance. On a
        hit, decoding, validation and per-function compilation are all
        skipped; runtime state (memory, table, globals) is always built
        fresh. ``cache_key`` supplies the content address when the caller
        already decoded the binary itself (a decoded module without a key
        cannot be content-addressed and is never cached).
        """
        cache = codecache.resolve(code_cache)
        cache_entry = None
        if isinstance(module_or_binary, (bytes, bytearray)):
            binary = bytes(module_or_binary)
            if cache is not None:
                if cache_key is None:
                    cache_key = codecache.CodeCache.module_key(binary)
                cache_entry = cache.lookup(cache_key, self.cache_identity)
            if cache_entry is not None:
                module = cache_entry.module
            else:
                module = decode_module(binary)
                validate_module(module)
                if cache is not None:
                    cache_entry = cache.store(cache_key, self.cache_identity,
                                              module)
        else:
            module = module_or_binary
            if cache is not None and cache_key is not None:
                # The caller decoded (and content-addressed) the binary
                # itself and already accounted the hit/miss for this load.
                cache_entry = cache.peek(cache_key, self.cache_identity)
                if cache_entry is None:
                    validate_module(module)
                    cache_entry = cache.store(cache_key, self.cache_identity,
                                              module)
                elif cache_entry.module is not module:
                    # Adopt the cached decode so artifacts and module stay
                    # consistent (same content hash => same module).
                    module = cache_entry.module
            else:
                validate_module(module)
        imports = imports or {}

        instance = Instance(module)

        for imported in module.imported_funcs:
            namespace = imports.get(imported.module, {})
            host = namespace.get(imported.name)
            if host is None:
                raise LinkError(
                    f"unresolved import {imported.module}.{imported.name}"
                )
            expected = module.types[imported.type_index]
            if host.func_type != expected:
                raise LinkError(
                    f"import {imported.module}.{imported.name}: "
                    f"signature {host.func_type} != declared {expected}"
                )
            instance.funcs.append(_bind_host(host, instance))
            instance.func_types.append(expected)

        if module.memories:
            limits = module.memories[0].limits
            instance.memory = Memory(
                limits.minimum, limits.maximum, hard_cap_bytes=memory_cap_bytes
            )
        if module.tables:
            limits = module.tables[0].limits
            instance.table = Table(limits.minimum, limits.maximum)

        for global_decl in module.globals:
            instance.globals.append(
                GlobalInstance(
                    global_decl.type.valtype,
                    global_decl.init,
                    global_decl.type.mutable,
                )
            )

        for segment in module.elements:
            table = instance.table
            if table is None:
                raise ValidationError("element segment without a table")
            end = segment.offset + len(segment.func_indices)
            if end > len(table.elements):
                raise TrapError("element segment out of bounds")
            for position, func_index in enumerate(segment.func_indices):
                table.elements[segment.offset + position] = func_index

        for segment in module.data_segments:
            if instance.memory is None:
                raise ValidationError("data segment without a memory")
            instance.memory.write(segment.offset, segment.data)

        local_base = len(module.imported_funcs)
        reusable = (cache_entry is not None and self.supports_code_artifacts)
        for local_index in range(len(module.functions)):
            func_index = local_base + local_index
            artifact = cache_entry.artifacts.get(func_index) \
                if reusable else None
            if artifact is not None:
                # Cache hit: re-link the compiled code object into this
                # instance's fresh namespace — no recompilation.
                fn = self.link_artifact(module, instance, func_index,
                                        artifact)
            else:
                fn = self.compile_function(module, instance, func_index)
                if reusable:
                    produced = getattr(fn, "code_artifact", None)
                    if produced is not None:
                        cache.store_artifact(cache_entry, func_index,
                                             produced)
            instance.funcs.append(fn)
            instance.func_types.append(module.func_type(func_index))

        if module.start is not None:
            instance.funcs[module.start]()
        return instance


def _bind_host(host: HostFunction, instance: Instance) -> Callable:
    def call(*args):
        result = host.fn(instance, *args)
        arity = len(host.func_type.results)
        if arity == 0:
            return None
        if arity == 1 and isinstance(result, tuple):
            return result[0]
        return result

    call.host = host  # type: ignore[attr-defined]
    return call


# Preformatted structs for typed memory access.
S_I32 = struct.Struct("<I")
S_I64 = struct.Struct("<Q")
S_F32 = struct.Struct("<f")
S_F64 = struct.Struct("<d")
S_I16 = struct.Struct("<H")
