"""The interpreting execution engine.

A classic structured-control interpreter: a value stack of Python objects,
a label stack of ``(continuation_pc, arity, stack_height, is_loop)``
records, and one dispatch loop over the decoded instruction list. This is
the slow engine; the paper reports AOT execution ~28x faster than
interpretation, an ablation reproduced in ``benchmarks/bench_ablation_aot.py``.
"""

from __future__ import annotations

import math
from typing import Callable, List

from repro.errors import TrapError
from repro.wasm import numerics as num
from repro.wasm import opcodes as op
from repro.wasm.module import Module
from repro.wasm.runtime import Engine, Instance, S_F32, S_F64, S_I16, S_I32, S_I64
from repro.wasm.types import ValType

_MASK32 = num.MASK32
_MASK64 = num.MASK64


class Interpreter(Engine):
    """Engine that interprets decoded instruction lists directly."""

    name = "interpreter"

    def compile_function(self, module: Module, instance: Instance,
                         func_index: int) -> Callable:
        func = module.functions[func_index - len(module.imported_funcs)]
        func_type = module.types[func.type_index]
        param_types = func_type.params
        result_arity = len(func_type.results)
        local_types = func.locals
        body = func.body

        def invoke(*args):
            if len(args) != len(param_types):
                raise TrapError(
                    f"expected {len(param_types)} arguments, got {len(args)}"
                )
            locals_list = [
                _coerce(value, valtype)
                for value, valtype in zip(args, param_types)
            ]
            locals_list.extend(t.zero() for t in local_types)
            instance.enter_call()
            try:
                stack = _run(module, instance, body, locals_list, result_arity)
            finally:
                instance.exit_call()
            if result_arity == 0:
                return None
            return stack[-1]

        return invoke


def _coerce(value, valtype: ValType):
    if valtype == ValType.I32:
        return int(value) & _MASK32
    if valtype == ValType.I64:
        return int(value) & _MASK64
    if valtype == ValType.F32:
        return num.f32_round(float(value))
    return float(value)


def _run(module: Module, instance: Instance, body, locals_list,
         result_arity: int) -> List:
    stack: List = []
    # (continuation_pc, arity, stack_height, is_loop); the implicit function
    # frame returns past the end of the body.
    labels = [(len(body), result_arity, 0, False)]
    funcs = instance.funcs
    func_types = instance.func_types
    globals_list = instance.globals
    memory = instance.memory
    mem = memory.data if memory is not None else None
    pc = 0
    size = len(body)

    while pc < size:
        instr = body[pc]
        code = instr.opcode

        # --- hot path: locals and constants ---
        if code == op.LOCAL_GET:
            stack.append(locals_list[instr.arg])
        elif code == op.LOCAL_SET:
            locals_list[instr.arg] = stack.pop()
        elif code == op.LOCAL_TEE:
            locals_list[instr.arg] = stack[-1]
        elif code == op.I32_CONST or code == op.I64_CONST \
                or code == op.F32_CONST or code == op.F64_CONST:
            stack.append(instr.arg)

        # --- control ---
        elif code == op.BLOCK:
            labels.append((instr.target + 1, instr.arg.arity, len(stack), False))
        elif code == op.LOOP:
            labels.append((pc + 1, 0, len(stack), True))
        elif code == op.IF:
            condition = stack.pop()
            labels.append((instr.target + 1, instr.arg.arity, len(stack), False))
            if not condition:
                if instr.else_target != -1:
                    pc = instr.else_target + 1
                else:
                    pc = instr.target  # the end pops the label
                continue
        elif code == op.ELSE:
            # Fell out of the true branch: skip to the matching end.
            pc = labels[-1][0] - 1
            continue
        elif code == op.END:
            labels.pop()
        elif code == op.BR:
            pc = _branch(stack, labels, instr.arg)
            continue
        elif code == op.BR_IF:
            if stack.pop():
                pc = _branch(stack, labels, instr.arg)
                continue
        elif code == op.BR_TABLE:
            depths, default = instr.arg
            index = stack.pop()
            depth = depths[index] if index < len(depths) else default
            pc = _branch(stack, labels, depth)
            continue
        elif code == op.RETURN:
            if result_arity:
                return stack[-result_arity:]
            return stack
        elif code == op.CALL:
            func_index = instr.arg
            arity = len(func_types[func_index].params)
            if arity:
                args = stack[-arity:]
                del stack[-arity:]
                result = funcs[func_index](*args)
            else:
                result = funcs[func_index]()
            if func_types[func_index].results:
                stack.append(result)
        elif code == op.CALL_INDIRECT:
            element = stack.pop()
            func_index = instance.table.get(element)
            expected = module.types[instr.arg]
            if func_types[func_index] != expected:
                raise TrapError("indirect call signature mismatch")
            arity = len(expected.params)
            if arity:
                args = stack[-arity:]
                del stack[-arity:]
                result = funcs[func_index](*args)
            else:
                result = funcs[func_index]()
            if expected.results:
                stack.append(result)
        elif code == op.UNREACHABLE:
            raise TrapError("unreachable executed")
        elif code == op.NOP:
            pass
        elif code == op.DROP:
            stack.pop()
        elif code == op.SELECT:
            condition = stack.pop()
            if condition:
                stack.pop()
            else:
                stack[-2] = stack[-1]
                stack.pop()

        # --- globals ---
        elif code == op.GLOBAL_GET:
            stack.append(globals_list[instr.arg].value)
        elif code == op.GLOBAL_SET:
            globals_list[instr.arg].value = stack.pop()

        # --- memory loads ---
        elif code == op.I32_LOAD:
            address = stack[-1] + instr.arg
            if address + 4 > len(mem):
                raise TrapError("out-of-bounds memory access")
            stack[-1] = S_I32.unpack_from(mem, address)[0]
        elif code == op.I64_LOAD:
            address = stack[-1] + instr.arg
            if address + 8 > len(mem):
                raise TrapError("out-of-bounds memory access")
            stack[-1] = S_I64.unpack_from(mem, address)[0]
        elif code == op.F32_LOAD:
            address = stack[-1] + instr.arg
            if address + 4 > len(mem):
                raise TrapError("out-of-bounds memory access")
            stack[-1] = S_F32.unpack_from(mem, address)[0]
        elif code == op.F64_LOAD:
            address = stack[-1] + instr.arg
            if address + 8 > len(mem):
                raise TrapError("out-of-bounds memory access")
            stack[-1] = S_F64.unpack_from(mem, address)[0]
        elif code == op.I32_LOAD8_U or code == op.I64_LOAD8_U:
            address = stack[-1] + instr.arg
            if address >= len(mem):
                raise TrapError("out-of-bounds memory access")
            stack[-1] = mem[address]
        elif code == op.I32_LOAD8_S or code == op.I64_LOAD8_S:
            address = stack[-1] + instr.arg
            if address >= len(mem):
                raise TrapError("out-of-bounds memory access")
            byte = mem[address]
            bits = 32 if code == op.I32_LOAD8_S else 64
            stack[-1] = num.extend_signed(byte, 8, bits)
        elif code == op.I32_LOAD16_U or code == op.I64_LOAD16_U:
            address = stack[-1] + instr.arg
            if address + 2 > len(mem):
                raise TrapError("out-of-bounds memory access")
            stack[-1] = S_I16.unpack_from(mem, address)[0]
        elif code == op.I32_LOAD16_S or code == op.I64_LOAD16_S:
            address = stack[-1] + instr.arg
            if address + 2 > len(mem):
                raise TrapError("out-of-bounds memory access")
            bits = 32 if code == op.I32_LOAD16_S else 64
            stack[-1] = num.extend_signed(S_I16.unpack_from(mem, address)[0], 16, bits)
        elif code == op.I64_LOAD32_U:
            address = stack[-1] + instr.arg
            if address + 4 > len(mem):
                raise TrapError("out-of-bounds memory access")
            stack[-1] = S_I32.unpack_from(mem, address)[0]
        elif code == op.I64_LOAD32_S:
            address = stack[-1] + instr.arg
            if address + 4 > len(mem):
                raise TrapError("out-of-bounds memory access")
            stack[-1] = num.extend_signed(S_I32.unpack_from(mem, address)[0], 32, 64)

        # --- memory stores ---
        elif code == op.I32_STORE:
            value = stack.pop()
            address = stack.pop() + instr.arg
            if address + 4 > len(mem):
                raise TrapError("out-of-bounds memory access")
            S_I32.pack_into(mem, address, value)
        elif code == op.I64_STORE:
            value = stack.pop()
            address = stack.pop() + instr.arg
            if address + 8 > len(mem):
                raise TrapError("out-of-bounds memory access")
            S_I64.pack_into(mem, address, value)
        elif code == op.F32_STORE:
            value = stack.pop()
            address = stack.pop() + instr.arg
            if address + 4 > len(mem):
                raise TrapError("out-of-bounds memory access")
            S_F32.pack_into(mem, address, value)
        elif code == op.F64_STORE:
            value = stack.pop()
            address = stack.pop() + instr.arg
            if address + 8 > len(mem):
                raise TrapError("out-of-bounds memory access")
            S_F64.pack_into(mem, address, value)
        elif code == op.I32_STORE8 or code == op.I64_STORE8:
            value = stack.pop()
            address = stack.pop() + instr.arg
            if address >= len(mem):
                raise TrapError("out-of-bounds memory access")
            mem[address] = value & 0xFF
        elif code == op.I32_STORE16 or code == op.I64_STORE16:
            value = stack.pop()
            address = stack.pop() + instr.arg
            if address + 2 > len(mem):
                raise TrapError("out-of-bounds memory access")
            S_I16.pack_into(mem, address, value & 0xFFFF)
        elif code == op.I64_STORE32:
            value = stack.pop()
            address = stack.pop() + instr.arg
            if address + 4 > len(mem):
                raise TrapError("out-of-bounds memory access")
            S_I32.pack_into(mem, address, value & _MASK32)
        elif code == op.MEMORY_SIZE:
            stack.append(memory.size_pages)
        elif code == op.MEMORY_GROW:
            stack[-1] = memory.grow(stack[-1]) & _MASK32

        # --- i32 comparisons ---
        elif code == op.I32_EQZ:
            stack[-1] = 1 if stack[-1] == 0 else 0
        elif code == op.I32_EQ:
            rhs = stack.pop()
            stack[-1] = 1 if stack[-1] == rhs else 0
        elif code == op.I32_NE:
            rhs = stack.pop()
            stack[-1] = 1 if stack[-1] != rhs else 0
        elif code == op.I32_LT_S:
            rhs = stack.pop()
            stack[-1] = 1 if num.s32(stack[-1]) < num.s32(rhs) else 0
        elif code == op.I32_LT_U:
            rhs = stack.pop()
            stack[-1] = 1 if stack[-1] < rhs else 0
        elif code == op.I32_GT_S:
            rhs = stack.pop()
            stack[-1] = 1 if num.s32(stack[-1]) > num.s32(rhs) else 0
        elif code == op.I32_GT_U:
            rhs = stack.pop()
            stack[-1] = 1 if stack[-1] > rhs else 0
        elif code == op.I32_LE_S:
            rhs = stack.pop()
            stack[-1] = 1 if num.s32(stack[-1]) <= num.s32(rhs) else 0
        elif code == op.I32_LE_U:
            rhs = stack.pop()
            stack[-1] = 1 if stack[-1] <= rhs else 0
        elif code == op.I32_GE_S:
            rhs = stack.pop()
            stack[-1] = 1 if num.s32(stack[-1]) >= num.s32(rhs) else 0
        elif code == op.I32_GE_U:
            rhs = stack.pop()
            stack[-1] = 1 if stack[-1] >= rhs else 0

        # --- i64 comparisons ---
        elif code == op.I64_EQZ:
            stack[-1] = 1 if stack[-1] == 0 else 0
        elif code == op.I64_EQ:
            rhs = stack.pop()
            stack[-1] = 1 if stack[-1] == rhs else 0
        elif code == op.I64_NE:
            rhs = stack.pop()
            stack[-1] = 1 if stack[-1] != rhs else 0
        elif code == op.I64_LT_S:
            rhs = stack.pop()
            stack[-1] = 1 if num.s64(stack[-1]) < num.s64(rhs) else 0
        elif code == op.I64_LT_U:
            rhs = stack.pop()
            stack[-1] = 1 if stack[-1] < rhs else 0
        elif code == op.I64_GT_S:
            rhs = stack.pop()
            stack[-1] = 1 if num.s64(stack[-1]) > num.s64(rhs) else 0
        elif code == op.I64_GT_U:
            rhs = stack.pop()
            stack[-1] = 1 if stack[-1] > rhs else 0
        elif code == op.I64_LE_S:
            rhs = stack.pop()
            stack[-1] = 1 if num.s64(stack[-1]) <= num.s64(rhs) else 0
        elif code == op.I64_LE_U:
            rhs = stack.pop()
            stack[-1] = 1 if stack[-1] <= rhs else 0
        elif code == op.I64_GE_S:
            rhs = stack.pop()
            stack[-1] = 1 if num.s64(stack[-1]) >= num.s64(rhs) else 0
        elif code == op.I64_GE_U:
            rhs = stack.pop()
            stack[-1] = 1 if stack[-1] >= rhs else 0

        # --- float comparisons (NaN-aware via Python semantics) ---
        elif code == op.F32_EQ or code == op.F64_EQ:
            rhs = stack.pop()
            stack[-1] = 1 if stack[-1] == rhs else 0
        elif code == op.F32_NE or code == op.F64_NE:
            rhs = stack.pop()
            lhs = stack[-1]
            stack[-1] = 1 if (lhs != rhs or math.isnan(lhs) or math.isnan(rhs)) else 0
        elif code == op.F32_LT or code == op.F64_LT:
            rhs = stack.pop()
            stack[-1] = 1 if stack[-1] < rhs else 0
        elif code == op.F32_GT or code == op.F64_GT:
            rhs = stack.pop()
            stack[-1] = 1 if stack[-1] > rhs else 0
        elif code == op.F32_LE or code == op.F64_LE:
            rhs = stack.pop()
            stack[-1] = 1 if stack[-1] <= rhs else 0
        elif code == op.F32_GE or code == op.F64_GE:
            rhs = stack.pop()
            stack[-1] = 1 if stack[-1] >= rhs else 0

        # --- i32 arithmetic ---
        elif code == op.I32_ADD:
            rhs = stack.pop()
            stack[-1] = (stack[-1] + rhs) & _MASK32
        elif code == op.I32_SUB:
            rhs = stack.pop()
            stack[-1] = (stack[-1] - rhs) & _MASK32
        elif code == op.I32_MUL:
            rhs = stack.pop()
            stack[-1] = (stack[-1] * rhs) & _MASK32
        elif code == op.I32_DIV_S:
            rhs = stack.pop()
            stack[-1] = num.idiv_s(stack[-1], rhs, 32)
        elif code == op.I32_DIV_U:
            rhs = stack.pop()
            stack[-1] = num.idiv_u(stack[-1], rhs)
        elif code == op.I32_REM_S:
            rhs = stack.pop()
            stack[-1] = num.irem_s(stack[-1], rhs, 32)
        elif code == op.I32_REM_U:
            rhs = stack.pop()
            stack[-1] = num.irem_u(stack[-1], rhs)
        elif code == op.I32_AND:
            rhs = stack.pop()
            stack[-1] &= rhs
        elif code == op.I32_OR:
            rhs = stack.pop()
            stack[-1] |= rhs
        elif code == op.I32_XOR:
            rhs = stack.pop()
            stack[-1] ^= rhs
        elif code == op.I32_SHL:
            rhs = stack.pop()
            stack[-1] = (stack[-1] << (rhs % 32)) & _MASK32
        elif code == op.I32_SHR_U:
            rhs = stack.pop()
            stack[-1] >>= rhs % 32
        elif code == op.I32_SHR_S:
            rhs = stack.pop()
            stack[-1] = num.shr_s(stack[-1], rhs, 32)
        elif code == op.I32_ROTL:
            rhs = stack.pop()
            stack[-1] = num.rotl(stack[-1], rhs, 32)
        elif code == op.I32_ROTR:
            rhs = stack.pop()
            stack[-1] = num.rotr(stack[-1], rhs, 32)
        elif code == op.I32_CLZ:
            stack[-1] = num.clz(stack[-1], 32)
        elif code == op.I32_CTZ:
            stack[-1] = num.ctz(stack[-1], 32)
        elif code == op.I32_POPCNT:
            stack[-1] = num.popcnt(stack[-1])

        # --- i64 arithmetic ---
        elif code == op.I64_ADD:
            rhs = stack.pop()
            stack[-1] = (stack[-1] + rhs) & _MASK64
        elif code == op.I64_SUB:
            rhs = stack.pop()
            stack[-1] = (stack[-1] - rhs) & _MASK64
        elif code == op.I64_MUL:
            rhs = stack.pop()
            stack[-1] = (stack[-1] * rhs) & _MASK64
        elif code == op.I64_DIV_S:
            rhs = stack.pop()
            stack[-1] = num.idiv_s(stack[-1], rhs, 64)
        elif code == op.I64_DIV_U:
            rhs = stack.pop()
            stack[-1] = num.idiv_u(stack[-1], rhs)
        elif code == op.I64_REM_S:
            rhs = stack.pop()
            stack[-1] = num.irem_s(stack[-1], rhs, 64)
        elif code == op.I64_REM_U:
            rhs = stack.pop()
            stack[-1] = num.irem_u(stack[-1], rhs)
        elif code == op.I64_AND:
            rhs = stack.pop()
            stack[-1] &= rhs
        elif code == op.I64_OR:
            rhs = stack.pop()
            stack[-1] |= rhs
        elif code == op.I64_XOR:
            rhs = stack.pop()
            stack[-1] ^= rhs
        elif code == op.I64_SHL:
            rhs = stack.pop()
            stack[-1] = (stack[-1] << (rhs % 64)) & _MASK64
        elif code == op.I64_SHR_U:
            rhs = stack.pop()
            stack[-1] >>= rhs % 64
        elif code == op.I64_SHR_S:
            rhs = stack.pop()
            stack[-1] = num.shr_s(stack[-1], rhs, 64)
        elif code == op.I64_ROTL:
            rhs = stack.pop()
            stack[-1] = num.rotl(stack[-1], rhs, 64)
        elif code == op.I64_ROTR:
            rhs = stack.pop()
            stack[-1] = num.rotr(stack[-1], rhs, 64)
        elif code == op.I64_CLZ:
            stack[-1] = num.clz(stack[-1], 64)
        elif code == op.I64_CTZ:
            stack[-1] = num.ctz(stack[-1], 64)
        elif code == op.I64_POPCNT:
            stack[-1] = num.popcnt(stack[-1])

        # --- f64 arithmetic ---
        elif code == op.F64_ADD:
            rhs = stack.pop()
            stack[-1] += rhs
        elif code == op.F64_SUB:
            rhs = stack.pop()
            stack[-1] -= rhs
        elif code == op.F64_MUL:
            rhs = stack.pop()
            stack[-1] *= rhs
        elif code == op.F64_DIV:
            rhs = stack.pop()
            stack[-1] = _fdiv(stack[-1], rhs)
        elif code == op.F64_MIN:
            rhs = stack.pop()
            stack[-1] = num.fmin(stack[-1], rhs)
        elif code == op.F64_MAX:
            rhs = stack.pop()
            stack[-1] = num.fmax(stack[-1], rhs)
        elif code == op.F64_COPYSIGN:
            rhs = stack.pop()
            stack[-1] = math.copysign(stack[-1], rhs)
        elif code == op.F64_ABS:
            stack[-1] = abs(stack[-1])
        elif code == op.F64_NEG:
            stack[-1] = -stack[-1]
        elif code == op.F64_CEIL:
            stack[-1] = num.fceil(stack[-1])
        elif code == op.F64_FLOOR:
            stack[-1] = num.ffloor(stack[-1])
        elif code == op.F64_TRUNC:
            stack[-1] = num.ftrunc(stack[-1])
        elif code == op.F64_NEAREST:
            stack[-1] = num.fnearest(stack[-1])
        elif code == op.F64_SQRT:
            stack[-1] = num.fsqrt(stack[-1])

        # --- f32 arithmetic (round every result to f32) ---
        elif code == op.F32_ADD:
            rhs = stack.pop()
            stack[-1] = num.f32_round(stack[-1] + rhs)
        elif code == op.F32_SUB:
            rhs = stack.pop()
            stack[-1] = num.f32_round(stack[-1] - rhs)
        elif code == op.F32_MUL:
            rhs = stack.pop()
            stack[-1] = num.f32_round(stack[-1] * rhs)
        elif code == op.F32_DIV:
            rhs = stack.pop()
            stack[-1] = num.f32_round(_fdiv(stack[-1], rhs))
        elif code == op.F32_MIN:
            rhs = stack.pop()
            stack[-1] = num.fmin(stack[-1], rhs)
        elif code == op.F32_MAX:
            rhs = stack.pop()
            stack[-1] = num.fmax(stack[-1], rhs)
        elif code == op.F32_COPYSIGN:
            rhs = stack.pop()
            stack[-1] = math.copysign(stack[-1], rhs)
        elif code == op.F32_ABS:
            stack[-1] = abs(stack[-1])
        elif code == op.F32_NEG:
            stack[-1] = -stack[-1]
        elif code == op.F32_CEIL:
            stack[-1] = num.fceil(stack[-1])
        elif code == op.F32_FLOOR:
            stack[-1] = num.ffloor(stack[-1])
        elif code == op.F32_TRUNC:
            stack[-1] = num.ftrunc(stack[-1])
        elif code == op.F32_NEAREST:
            stack[-1] = num.fnearest(stack[-1])
        elif code == op.F32_SQRT:
            stack[-1] = num.f32_round(num.fsqrt(stack[-1]))

        # --- conversions ---
        elif code == op.I32_WRAP_I64:
            stack[-1] &= _MASK32
        elif code == op.I64_EXTEND_I32_U:
            pass  # already an unsigned int
        elif code == op.I64_EXTEND_I32_S:
            stack[-1] = num.s32(stack[-1]) & _MASK64
        elif code == op.I32_TRUNC_F32_S or code == op.I32_TRUNC_F64_S:
            stack[-1] = num.trunc_to_int(stack[-1], True, 32)
        elif code == op.I32_TRUNC_F32_U or code == op.I32_TRUNC_F64_U:
            stack[-1] = num.trunc_to_int(stack[-1], False, 32)
        elif code == op.I64_TRUNC_F32_S or code == op.I64_TRUNC_F64_S:
            stack[-1] = num.trunc_to_int(stack[-1], True, 64)
        elif code == op.I64_TRUNC_F32_U or code == op.I64_TRUNC_F64_U:
            stack[-1] = num.trunc_to_int(stack[-1], False, 64)
        elif code == op.F32_CONVERT_I32_S:
            stack[-1] = num.f32_round(float(num.s32(stack[-1])))
        elif code == op.F32_CONVERT_I32_U or code == op.F32_CONVERT_I64_U:
            stack[-1] = num.f32_round(float(stack[-1]))
        elif code == op.F32_CONVERT_I64_S:
            stack[-1] = num.f32_round(float(num.s64(stack[-1])))
        elif code == op.F64_CONVERT_I32_S:
            stack[-1] = float(num.s32(stack[-1]))
        elif code == op.F64_CONVERT_I32_U or code == op.F64_CONVERT_I64_U:
            stack[-1] = float(stack[-1])
        elif code == op.F64_CONVERT_I64_S:
            stack[-1] = float(num.s64(stack[-1]))
        elif code == op.F32_DEMOTE_F64:
            stack[-1] = num.f32_round(stack[-1])
        elif code == op.F64_PROMOTE_F32:
            pass
        elif code == op.I32_REINTERPRET_F32:
            stack[-1] = num.i32_reinterpret_f32(stack[-1])
        elif code == op.I64_REINTERPRET_F64:
            stack[-1] = num.i64_reinterpret_f64(stack[-1])
        elif code == op.F32_REINTERPRET_I32:
            stack[-1] = num.f32_reinterpret_i32(stack[-1])
        elif code == op.F64_REINTERPRET_I64:
            stack[-1] = num.f64_reinterpret_i64(stack[-1])
        elif code == op.I32_EXTEND8_S:
            stack[-1] = num.extend_signed(stack[-1], 8, 32)
        elif code == op.I32_EXTEND16_S:
            stack[-1] = num.extend_signed(stack[-1], 16, 32)
        elif code == op.I64_EXTEND8_S:
            stack[-1] = num.extend_signed(stack[-1], 8, 64)
        elif code == op.I64_EXTEND16_S:
            stack[-1] = num.extend_signed(stack[-1], 16, 64)
        elif code == op.I64_EXTEND32_S:
            stack[-1] = num.extend_signed(stack[-1], 32, 64)

        # --- superinstructions (cold profile-guided bodies only; real
        # modules never decode to these, so a plain body pays nothing
        # for this tail position) ---
        elif code >= op.FUSED_BASE:
            a, b = instr.arg
            if code == op.FUSED_GET_GET:
                stack.append(locals_list[a])
                stack.append(locals_list[b])
            elif code == op.FUSED_GET_CONST:
                stack.append(locals_list[a])
                stack.append(b)
            elif code == op.FUSED_CONST_SET:
                locals_list[b] = a
            else:  # FUSED_GET_SET
                locals_list[b] = locals_list[a]
        else:
            raise TrapError(f"unimplemented opcode {op.name(code)}")

        pc += 1

    return stack


def _branch(stack: List, labels: List, depth: int) -> int:
    """Unwind to the label ``depth`` levels out; returns the new pc."""
    index = len(labels) - 1 - depth
    continuation, arity, height, is_loop = labels[index]
    if arity:
        kept = stack[-arity:]
        del stack[height:]
        stack.extend(kept)
    else:
        del stack[height:]
    if is_loop:
        del labels[index + 1 :]
    else:
        del labels[index:]
    return continuation


#: Backwards-compatible alias: the helper moved to ``numerics`` so the
#: AOT engine shares it without importing the interpreter internals.
_fdiv = num.fdiv
