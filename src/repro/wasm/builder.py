"""Programmatic construction of WebAssembly binaries.

The paper compiles its workloads with WASI-SDK (Clang); offline we author
modules either through :mod:`repro.walc` (which drives this builder) or
directly in tests. The builder emits spec-conformant MVP binaries that the
decoder, validator and both execution engines then consume — giving full
encode/decode round-trip coverage.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import WasmError
from repro.wasm import opcodes as op
from repro.wasm.leb128 import encode_signed, encode_unsigned
from repro.wasm.types import (
    EMPTY_BLOCK_TYPE,
    FUNC_TYPE_TAG,
    FUNCREF,
    ValType,
)

_MAGIC = b"\x00asm"
_VERSION = b"\x01\x00\x00\x00"

# Section identifiers.
_SEC_TYPE = 1
_SEC_IMPORT = 2
_SEC_FUNCTION = 3
_SEC_TABLE = 4
_SEC_MEMORY = 5
_SEC_GLOBAL = 6
_SEC_EXPORT = 7
_SEC_START = 8
_SEC_ELEMENT = 9
_SEC_CODE = 10
_SEC_DATA = 11

# Immediate-encoding categories, keyed by opcode.
_IMM_BLOCKTYPE = {op.BLOCK, op.LOOP, op.IF}
_IMM_INDEX = {
    op.BR, op.BR_IF, op.CALL,
    op.LOCAL_GET, op.LOCAL_SET, op.LOCAL_TEE,
    op.GLOBAL_GET, op.GLOBAL_SET,
}
_IMM_MEMORY = set(range(op.I32_LOAD, op.I64_STORE32 + 1))
_NATURAL_ALIGN = {
    op.I32_LOAD: 2, op.I64_LOAD: 3, op.F32_LOAD: 2, op.F64_LOAD: 3,
    op.I32_LOAD8_S: 0, op.I32_LOAD8_U: 0, op.I32_LOAD16_S: 1, op.I32_LOAD16_U: 1,
    op.I64_LOAD8_S: 0, op.I64_LOAD8_U: 0, op.I64_LOAD16_S: 1, op.I64_LOAD16_U: 1,
    op.I64_LOAD32_S: 2, op.I64_LOAD32_U: 2,
    op.I32_STORE: 2, op.I64_STORE: 3, op.F32_STORE: 2, op.F64_STORE: 3,
    op.I32_STORE8: 0, op.I32_STORE16: 1,
    op.I64_STORE8: 0, op.I64_STORE16: 1, op.I64_STORE32: 2,
}


def _encode_name(name: str) -> bytes:
    raw = name.encode("utf-8")
    return encode_unsigned(len(raw)) + raw


def _encode_valtypes(types: Sequence[ValType]) -> bytes:
    return encode_unsigned(len(types)) + bytes(int(t) for t in types)


def _encode_limits(minimum: int, maximum: Optional[int]) -> bytes:
    if maximum is None:
        return b"\x00" + encode_unsigned(minimum)
    return b"\x01" + encode_unsigned(minimum) + encode_unsigned(maximum)


class FunctionBuilder:
    """Accumulates the encoded body of one function."""

    def __init__(self, module: "ModuleBuilder", index: int, type_index: int) -> None:
        self._module = module
        self.index = index
        self.type_index = type_index
        self.locals: List[ValType] = []
        self._body = bytearray()
        self._depth = 0

    def add_local(self, valtype: ValType) -> int:
        """Declare one extra local; returns its index (params included)."""
        param_count = len(self._module.types[self.type_index][0])
        self.locals.append(valtype)
        return param_count + len(self.locals) - 1

    # -- low-level emission -------------------------------------------------

    def emit(self, opcode: int, *immediates) -> "FunctionBuilder":
        """Append one instruction, encoding immediates by opcode category."""
        body = self._body
        body.append(opcode)
        if opcode in _IMM_BLOCKTYPE:
            block_type = immediates[0] if immediates else None
            if block_type is None:
                body.append(EMPTY_BLOCK_TYPE)
            else:
                body.append(int(block_type))
            self._depth += 1
        elif opcode == op.END:
            self._depth -= 1
            if self._depth < 0:
                raise WasmError("unbalanced end in function body")
        elif opcode == op.ELSE:
            pass
        elif opcode in _IMM_INDEX:
            body.extend(encode_unsigned(immediates[0]))
        elif opcode == op.BR_TABLE:
            depths, default = immediates
            body.extend(encode_unsigned(len(depths)))
            for depth in depths:
                body.extend(encode_unsigned(depth))
            body.extend(encode_unsigned(default))
        elif opcode == op.CALL_INDIRECT:
            body.extend(encode_unsigned(immediates[0]))
            body.append(0x00)  # table index (MVP: always 0)
        elif opcode in _IMM_MEMORY:
            offset = immediates[0] if immediates else 0
            body.extend(encode_unsigned(_NATURAL_ALIGN[opcode]))
            body.extend(encode_unsigned(offset))
        elif opcode in (op.MEMORY_SIZE, op.MEMORY_GROW):
            body.append(0x00)
        elif opcode == op.I32_CONST:
            body.extend(encode_signed(_wrap_signed(immediates[0], 32)))
        elif opcode == op.I64_CONST:
            body.extend(encode_signed(_wrap_signed(immediates[0], 64)))
        elif opcode == op.F32_CONST:
            body.extend(struct.pack("<f", immediates[0]))
        elif opcode == op.F64_CONST:
            body.extend(struct.pack("<d", immediates[0]))
        return self

    # -- structured-control helpers -----------------------------------------

    def block(self, result: Optional[ValType] = None) -> "FunctionBuilder":
        return self.emit(op.BLOCK, result)

    def loop(self, result: Optional[ValType] = None) -> "FunctionBuilder":
        return self.emit(op.LOOP, result)

    def if_(self, result: Optional[ValType] = None) -> "FunctionBuilder":
        return self.emit(op.IF, result)

    def else_(self) -> "FunctionBuilder":
        return self.emit(op.ELSE)

    def end(self) -> "FunctionBuilder":
        return self.emit(op.END)

    # -- frequent-instruction sugar ------------------------------------------

    def i32_const(self, value: int) -> "FunctionBuilder":
        return self.emit(op.I32_CONST, value)

    def i64_const(self, value: int) -> "FunctionBuilder":
        return self.emit(op.I64_CONST, value)

    def f32_const(self, value: float) -> "FunctionBuilder":
        return self.emit(op.F32_CONST, value)

    def f64_const(self, value: float) -> "FunctionBuilder":
        return self.emit(op.F64_CONST, value)

    def local_get(self, index: int) -> "FunctionBuilder":
        return self.emit(op.LOCAL_GET, index)

    def local_set(self, index: int) -> "FunctionBuilder":
        return self.emit(op.LOCAL_SET, index)

    def local_tee(self, index: int) -> "FunctionBuilder":
        return self.emit(op.LOCAL_TEE, index)

    def global_get(self, index: int) -> "FunctionBuilder":
        return self.emit(op.GLOBAL_GET, index)

    def global_set(self, index: int) -> "FunctionBuilder":
        return self.emit(op.GLOBAL_SET, index)

    def call(self, func_index: int) -> "FunctionBuilder":
        return self.emit(op.CALL, func_index)

    def br(self, depth: int) -> "FunctionBuilder":
        return self.emit(op.BR, depth)

    def br_if(self, depth: int) -> "FunctionBuilder":
        return self.emit(op.BR_IF, depth)

    def ret(self) -> "FunctionBuilder":
        return self.emit(op.RETURN)

    # -- assembly -----------------------------------------------------------

    def encoded(self) -> bytes:
        """Encode locals declaration + body (with the terminating ``end``)."""
        if self._depth != 0:
            raise WasmError(
                f"function {self.index}: {self._depth} unterminated block(s)"
            )
        groups: List[Tuple[int, ValType]] = []
        for valtype in self.locals:
            if groups and groups[-1][1] == valtype:
                groups[-1] = (groups[-1][0] + 1, valtype)
            else:
                groups.append((1, valtype))
        out = bytearray(encode_unsigned(len(groups)))
        for count, valtype in groups:
            out.extend(encode_unsigned(count))
            out.append(int(valtype))
        out.extend(self._body)
        out.append(op.END)
        return bytes(out)


def _wrap_signed(value: int, bits: int) -> int:
    mask = (1 << bits) - 1
    value &= mask
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


class ModuleBuilder:
    """Builds a complete Wasm binary module."""

    def __init__(self) -> None:
        self.types: List[Tuple[Tuple[ValType, ...], Tuple[ValType, ...]]] = []
        self._imports: List[Tuple[str, str, int]] = []
        self._functions: List[FunctionBuilder] = []
        self._table: Optional[Tuple[int, Optional[int]]] = None
        self._memory: Optional[Tuple[int, Optional[int]]] = None
        self._globals: List[Tuple[ValType, bool, Union[int, float]]] = []
        self._exports: List[Tuple[str, int, int]] = []
        self._start: Optional[int] = None
        self._elements: List[Tuple[int, List[int]]] = []
        self._data: List[Tuple[int, bytes]] = []
        self._imports_frozen = False

    # -- declarations ---------------------------------------------------------

    def add_type(
        self,
        params: Sequence[ValType] = (),
        results: Sequence[ValType] = (),
    ) -> int:
        """Intern a function type and return its index."""
        signature = (tuple(params), tuple(results))
        try:
            return self.types.index(signature)
        except ValueError:
            self.types.append(signature)
            return len(self.types) - 1

    def import_function(self, module: str, name: str, type_index: int) -> int:
        """Declare a function import; returns its function index."""
        if self._imports_frozen:
            raise WasmError("imports must be declared before local functions")
        self._imports.append((module, name, type_index))
        return len(self._imports) - 1

    def add_function(self, type_index: int) -> FunctionBuilder:
        """Begin a new local function; returns its body builder."""
        self._imports_frozen = True
        index = len(self._imports) + len(self._functions)
        builder = FunctionBuilder(self, index, type_index)
        self._functions.append(builder)
        return builder

    def add_table(self, minimum: int, maximum: Optional[int] = None) -> int:
        self._table = (minimum, maximum)
        return 0

    def add_memory(self, min_pages: int, max_pages: Optional[int] = None) -> int:
        self._memory = (min_pages, max_pages)
        return 0

    def add_global(
        self,
        valtype: ValType,
        mutable: bool,
        init: Union[int, float],
    ) -> int:
        self._globals.append((valtype, mutable, init))
        return len(self._globals) - 1

    def export_function(self, name: str, func_index: int) -> None:
        self._exports.append((name, 0x00, func_index))

    def export_table(self, name: str, index: int = 0) -> None:
        self._exports.append((name, 0x01, index))

    def export_memory(self, name: str, index: int = 0) -> None:
        self._exports.append((name, 0x02, index))

    def export_global(self, name: str, index: int) -> None:
        self._exports.append((name, 0x03, index))

    def set_start(self, func_index: int) -> None:
        self._start = func_index

    def add_element(self, offset: int, func_indices: Sequence[int]) -> None:
        self._elements.append((offset, list(func_indices)))

    def add_data(self, offset: int, data: bytes) -> None:
        self._data.append((offset, bytes(data)))

    # -- emission -------------------------------------------------------------

    @staticmethod
    def _section(section_id: int, payload: bytes) -> bytes:
        return bytes([section_id]) + encode_unsigned(len(payload)) + payload

    def build(self) -> bytes:
        """Assemble and return the final binary."""
        out = bytearray(_MAGIC + _VERSION)

        payload = encode_unsigned(len(self.types))
        for params, results in self.types:
            payload += (
                bytes([FUNC_TYPE_TAG])
                + _encode_valtypes(params)
                + _encode_valtypes(results)
            )
        out += self._section(_SEC_TYPE, payload)

        if self._imports:
            payload = encode_unsigned(len(self._imports))
            for module, name, type_index in self._imports:
                payload += (
                    _encode_name(module)
                    + _encode_name(name)
                    + b"\x00"
                    + encode_unsigned(type_index)
                )
            out += self._section(_SEC_IMPORT, payload)

        if self._functions:
            payload = encode_unsigned(len(self._functions))
            for function in self._functions:
                payload += encode_unsigned(function.type_index)
            out += self._section(_SEC_FUNCTION, payload)

        if self._table is not None:
            payload = encode_unsigned(1) + bytes([FUNCREF]) + _encode_limits(*self._table)
            out += self._section(_SEC_TABLE, payload)

        if self._memory is not None:
            payload = encode_unsigned(1) + _encode_limits(*self._memory)
            out += self._section(_SEC_MEMORY, payload)

        if self._globals:
            payload = encode_unsigned(len(self._globals))
            for valtype, mutable, init in self._globals:
                payload += bytes([int(valtype), 0x01 if mutable else 0x00])
                payload += _encode_const_expr(valtype, init)
            out += self._section(_SEC_GLOBAL, payload)

        if self._exports:
            payload = encode_unsigned(len(self._exports))
            for name, kind, index in self._exports:
                payload += _encode_name(name) + bytes([kind]) + encode_unsigned(index)
            out += self._section(_SEC_EXPORT, payload)

        if self._start is not None:
            out += self._section(_SEC_START, encode_unsigned(self._start))

        if self._elements:
            payload = encode_unsigned(len(self._elements))
            for offset, indices in self._elements:
                payload += encode_unsigned(0)
                payload += bytes([op.I32_CONST]) + encode_signed(offset) + bytes([op.END])
                payload += encode_unsigned(len(indices))
                for func_index in indices:
                    payload += encode_unsigned(func_index)
            out += self._section(_SEC_ELEMENT, payload)

        if self._functions:
            payload = encode_unsigned(len(self._functions))
            for function in self._functions:
                body = function.encoded()
                payload += encode_unsigned(len(body)) + body
            out += self._section(_SEC_CODE, payload)

        if self._data:
            payload = encode_unsigned(len(self._data))
            for offset, data in self._data:
                payload += encode_unsigned(0)
                payload += bytes([op.I32_CONST]) + encode_signed(offset) + bytes([op.END])
                payload += encode_unsigned(len(data)) + data
            out += self._section(_SEC_DATA, payload)

        return bytes(out)


def _encode_const_expr(valtype: ValType, init: Union[int, float]) -> bytes:
    if valtype == ValType.I32:
        return bytes([op.I32_CONST]) + encode_signed(_wrap_signed(int(init), 32)) + bytes([op.END])
    if valtype == ValType.I64:
        return bytes([op.I64_CONST]) + encode_signed(_wrap_signed(int(init), 64)) + bytes([op.END])
    if valtype == ValType.F32:
        return bytes([op.F32_CONST]) + struct.pack("<f", init) + bytes([op.END])
    return bytes([op.F64_CONST]) + struct.pack("<d", init) + bytes([op.END])
