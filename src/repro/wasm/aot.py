"""The ahead-of-time execution engine: Wasm -> Python source.

WaTZ executes AOT-compiled Wasm (paper §III, "Execution modes"): WAMR's
LLVM back end lowers bytecode to ARM64 before loading, and the runtime only
needs executable pages. Our analog lowers each Wasm function to Python
source once at instantiation time, removing the per-instruction dispatch of
the interpreter; the measured speed-up is the subject of the A1 ablation
(the paper reports ~28x).

Compilation strategy:

* the operand stack is resolved statically; the value at stack height
  ``h`` canonically lives in the Python local ``s{h}``;
* **expression fusion**: pure, non-trapping operations (constants, local
  and global reads, integer/float arithmetic, comparisons, conversions)
  are deferred as expression strings and fused into the statement that
  consumes them — a store, a local write, a call argument, a branch
  condition — so a Wasm address computation or FP chain becomes one
  Python expression instead of a statement per instruction. Deferred
  expressions are *spilled* into their canonical ``s{h}`` variables at
  every point where their value could change (writes to the locals,
  globals or memory they read) and at all control-flow boundaries.
  Trapping operations (loads, stores, integer division, float-to-int
  truncation, indirect calls) are never deferred, preserving the spec's
  trap ordering;
* structured control lowers to ``while True:`` capsules; a branch sets the
  target label id in ``_br`` and breaks, and every construct's epilogue
  either consumes the branch or keeps unwinding;
* branches to the function frame compile to direct ``return`` statements;
* dead code after an unconditional transfer is skipped entirely.
"""

from __future__ import annotations

import math
import re
import warnings
from contextlib import contextmanager
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import TrapError, WasmError
from repro.wasm import aotopt
from repro.wasm import codecache
from repro.wasm import numerics as num
from repro.wasm import opcodes as op
from repro.wasm import pgo
from repro.wasm.interpreter import _fdiv
from repro.wasm.module import Function, Module
from repro.wasm.pgo import Profile, ProfileError, ProfileWarning
from repro.wasm.runtime import (Engine, Instance, Memory, S_F32, S_F64, S_I16,
                                S_I32, S_I64)
from repro.wasm.types import ValType

_MASK32 = "0xFFFFFFFF"
_MASK64 = "0xFFFFFFFFFFFFFFFF"

#: Expressions larger than this many fused operations are spilled to a
#: variable; keeps generated lines (and CPython's expression stack) sane.
_MAX_FUSED_OPS = 16

# ---------------------------------------------------------------------------
# Optimisation-level knob (mirrors repro.crypto.ec.use_fast_paths).
#
# Level 0 is the original lowering, kept byte-identical as the reference
# codegen; level 1 adds the value-range / purity passes (mask elimination,
# signed-compare elision, loop-invariant code motion); level 2 — the default
# — additionally emits typed-memory-plane accesses and loop versioning with
# hoisted bounds checks. The interpreter remains the semantic oracle at
# every level: results and trap type/ordering/messages are identical.
# ---------------------------------------------------------------------------

#: The opt level used when an :class:`AotCompiler` is built without one.
#: Level 3 is the profile-guided tier: it additionally needs a
#: :class:`repro.wasm.pgo.Profile` and degrades to 2 without one.
DEFAULT_OPT_LEVEL = 2

_OPT_LEVELS = (0, 1, 2, 3)


def default_opt_level() -> int:
    """The process-wide default AOT optimisation level."""
    return DEFAULT_OPT_LEVEL


def set_default_opt_level(level: int) -> int:
    """Set the default opt level; returns the previous one."""
    global DEFAULT_OPT_LEVEL
    if level not in _OPT_LEVELS:
        raise WasmError(f"unknown aot opt level: {level!r}")
    previous = DEFAULT_OPT_LEVEL
    DEFAULT_OPT_LEVEL = level
    return previous


@contextmanager
def reference_codegen() -> Iterator[None]:
    """Force the reference (opt level 0) lowering within the block.

    The differential tests run every program through this and through the
    default level and require identical results and traps.
    """
    previous = set_default_opt_level(0)
    try:
        yield
    finally:
        set_default_opt_level(previous)


def _trap(message: str):
    raise TrapError(message)


# Pure (non-trapping) binary operators: opcode -> template over {a}, {b}.
_BINOPS: Dict[int, str] = {
    op.I32_ADD: "({a} + {b}) & " + _MASK32,
    op.I32_SUB: "({a} - {b}) & " + _MASK32,
    op.I32_MUL: "({a} * {b}) & " + _MASK32,
    op.I32_AND: "{a} & {b}",
    op.I32_OR: "{a} | {b}",
    op.I32_XOR: "{a} ^ {b}",
    op.I32_SHL: "({a} << ({b} % 32)) & " + _MASK32,
    op.I32_SHR_U: "{a} >> ({b} % 32)",
    op.I32_SHR_S: "_shrs({a}, {b}, 32)",
    op.I32_ROTL: "_rotl({a}, {b}, 32)",
    op.I32_ROTR: "_rotr({a}, {b}, 32)",
    op.I64_ADD: "({a} + {b}) & " + _MASK64,
    op.I64_SUB: "({a} - {b}) & " + _MASK64,
    op.I64_MUL: "({a} * {b}) & " + _MASK64,
    op.I64_AND: "{a} & {b}",
    op.I64_OR: "{a} | {b}",
    op.I64_XOR: "{a} ^ {b}",
    op.I64_SHL: "({a} << ({b} % 64)) & " + _MASK64,
    op.I64_SHR_U: "{a} >> ({b} % 64)",
    op.I64_SHR_S: "_shrs({a}, {b}, 64)",
    op.I64_ROTL: "_rotl({a}, {b}, 64)",
    op.I64_ROTR: "_rotr({a}, {b}, 64)",
    op.F64_ADD: "{a} + {b}",
    op.F64_SUB: "{a} - {b}",
    op.F64_MUL: "{a} * {b}",
    op.F64_DIV: "_fdiv({a}, {b})",
    op.F64_MIN: "_fmin({a}, {b})",
    op.F64_MAX: "_fmax({a}, {b})",
    op.F64_COPYSIGN: "_copysign({a}, {b})",
    op.F32_ADD: "_f32r({a} + {b})",
    op.F32_SUB: "_f32r({a} - {b})",
    op.F32_MUL: "_f32r({a} * {b})",
    op.F32_DIV: "_f32r(_fdiv({a}, {b}))",
    op.F32_MIN: "_fmin({a}, {b})",
    op.F32_MAX: "_fmax({a}, {b})",
    op.F32_COPYSIGN: "_copysign({a}, {b})",
}

# Trapping binary operators (division family): always materialised.
_TRAPPING_BINOPS: Dict[int, str] = {
    op.I32_DIV_S: "_divs({a}, {b}, 32)",
    op.I32_DIV_U: "_divu({a}, {b})",
    op.I32_REM_S: "_rems({a}, {b}, 32)",
    op.I32_REM_U: "_remu({a}, {b})",
    op.I64_DIV_S: "_divs({a}, {b}, 64)",
    op.I64_DIV_U: "_divu({a}, {b})",
    op.I64_REM_S: "_rems({a}, {b}, 64)",
    op.I64_REM_U: "_remu({a}, {b})",
}

# Comparison operators producing i32 booleans (pure).
_RELOPS: Dict[int, str] = {
    op.I32_EQ: "{a} == {b}",
    op.I32_NE: "{a} != {b}",
    op.I32_LT_S: "_s32({a}) < _s32({b})",
    op.I32_LT_U: "{a} < {b}",
    op.I32_GT_S: "_s32({a}) > _s32({b})",
    op.I32_GT_U: "{a} > {b}",
    op.I32_LE_S: "_s32({a}) <= _s32({b})",
    op.I32_LE_U: "{a} <= {b}",
    op.I32_GE_S: "_s32({a}) >= _s32({b})",
    op.I32_GE_U: "{a} >= {b}",
    op.I64_EQ: "{a} == {b}",
    op.I64_NE: "{a} != {b}",
    op.I64_LT_S: "_s64({a}) < _s64({b})",
    op.I64_LT_U: "{a} < {b}",
    op.I64_GT_S: "_s64({a}) > _s64({b})",
    op.I64_GT_U: "{a} > {b}",
    op.I64_LE_S: "_s64({a}) <= _s64({b})",
    op.I64_LE_U: "{a} <= {b}",
    op.I64_GE_S: "_s64({a}) >= _s64({b})",
    op.I64_GE_U: "{a} >= {b}",
    op.F32_EQ: "{a} == {b}",
    op.F64_EQ: "{a} == {b}",
    op.F32_NE: "{a} != {b} or _isnan({a}) or _isnan({b})",
    op.F64_NE: "{a} != {b} or _isnan({a}) or _isnan({b})",
    op.F32_LT: "{a} < {b}",
    op.F64_LT: "{a} < {b}",
    op.F32_GT: "{a} > {b}",
    op.F64_GT: "{a} > {b}",
    op.F32_LE: "{a} <= {b}",
    op.F64_LE: "{a} <= {b}",
    op.F32_GE: "{a} >= {b}",
    op.F64_GE: "{a} >= {b}",
}

# NaN-reading comparisons re-evaluate {a}/{b}; those must stay variables.
_MULTI_USE_RELOPS = {op.F32_NE, op.F64_NE}

# Signed comparisons: operands that are literals fold through _s32/_s64 at
# compile time (loop bounds are almost always constants).
_SIGNED_RELOPS = {
    op.I32_LT_S: 32, op.I32_GT_S: 32, op.I32_LE_S: 32, op.I32_GE_S: 32,
    op.I64_LT_S: 64, op.I64_GT_S: 64, op.I64_LE_S: 64, op.I64_GE_S: 64,
}

# Integer binops whose literal-literal results fold at compile time.
_FOLDABLE_BINOPS = {
    op.I32_ADD, op.I32_SUB, op.I32_MUL, op.I32_AND, op.I32_OR, op.I32_XOR,
    op.I32_SHL, op.I32_SHR_U, op.I32_SHR_S, op.I32_ROTL, op.I32_ROTR,
    op.I64_ADD, op.I64_SUB, op.I64_MUL, op.I64_AND, op.I64_OR, op.I64_XOR,
    op.I64_SHL, op.I64_SHR_U, op.I64_SHR_S, op.I64_ROTL, op.I64_ROTR,
}

_FOLD_NAMESPACE = {
    "_shrs": num.shr_s, "_rotl": num.rotl, "_rotr": num.rotr,
    "_s32": num.s32, "_s64": num.s64,
}

# Pure unary operators: opcode -> template over {a}.
_UNOPS: Dict[int, str] = {
    op.I32_CLZ: "_clz({a}, 32)",
    op.I32_CTZ: "_ctz({a}, 32)",
    op.I32_POPCNT: "_popcnt({a})",
    op.I64_CLZ: "_clz({a}, 64)",
    op.I64_CTZ: "_ctz({a}, 64)",
    op.I64_POPCNT: "_popcnt({a})",
    op.F64_ABS: "abs({a})",
    op.F64_NEG: "-({a})",
    op.F64_CEIL: "_fceil({a})",
    op.F64_FLOOR: "_ffloor({a})",
    op.F64_TRUNC: "_ftrunc({a})",
    op.F64_NEAREST: "_fnearest({a})",
    op.F64_SQRT: "_fsqrt({a})",
    op.F32_ABS: "abs({a})",
    op.F32_NEG: "-({a})",
    op.F32_CEIL: "_fceil({a})",
    op.F32_FLOOR: "_ffloor({a})",
    op.F32_TRUNC: "_ftrunc({a})",
    op.F32_NEAREST: "_fnearest({a})",
    op.F32_SQRT: "_f32r(_fsqrt({a}))",
    op.I32_WRAP_I64: "{a} & " + _MASK32,
    op.I64_EXTEND_I32_U: "{a}",
    op.I64_EXTEND_I32_S: "_s32({a}) & " + _MASK64,
    op.F32_CONVERT_I32_S: "_f32r(float(_s32({a})))",
    op.F32_CONVERT_I32_U: "_f32r(float({a}))",
    op.F32_CONVERT_I64_S: "_f32r(float(_s64({a})))",
    op.F32_CONVERT_I64_U: "_f32r(float({a}))",
    op.F32_DEMOTE_F64: "_f32r({a})",
    op.F64_CONVERT_I32_S: "float(_s32({a}))",
    op.F64_CONVERT_I32_U: "float({a})",
    op.F64_CONVERT_I64_S: "float(_s64({a}))",
    op.F64_CONVERT_I64_U: "float({a})",
    op.F64_PROMOTE_F32: "{a}",
    op.I32_REINTERPRET_F32: "_ri32f32({a})",
    op.I64_REINTERPRET_F64: "_ri64f64({a})",
    op.F32_REINTERPRET_I32: "_rf32i32({a})",
    op.F64_REINTERPRET_I64: "_rf64i64({a})",
    op.I32_EXTEND8_S: "_ext({a}, 8, 32)",
    op.I32_EXTEND16_S: "_ext({a}, 16, 32)",
    op.I64_EXTEND8_S: "_ext({a}, 8, 64)",
    op.I64_EXTEND16_S: "_ext({a}, 16, 64)",
    op.I64_EXTEND32_S: "_ext({a}, 32, 64)",
}

# Trapping unary operators (float-to-int truncation): materialised.
_TRAPPING_UNOPS: Dict[int, str] = {
    op.I32_TRUNC_F32_S: "_trunc({a}, True, 32)",
    op.I32_TRUNC_F32_U: "_trunc({a}, False, 32)",
    op.I32_TRUNC_F64_S: "_trunc({a}, True, 32)",
    op.I32_TRUNC_F64_U: "_trunc({a}, False, 32)",
    op.I64_TRUNC_F32_S: "_trunc({a}, True, 64)",
    op.I64_TRUNC_F32_U: "_trunc({a}, False, 64)",
    op.I64_TRUNC_F64_S: "_trunc({a}, True, 64)",
    op.I64_TRUNC_F64_U: "_trunc({a}, False, 64)",
}

_LOADS: Dict[int, tuple] = {
    op.I32_LOAD: (4, "_upI32({m}, {a})[0]"),
    op.I64_LOAD: (8, "_upI64({m}, {a})[0]"),
    op.F32_LOAD: (4, "_upF32({m}, {a})[0]"),
    op.F64_LOAD: (8, "_upF64({m}, {a})[0]"),
    op.I32_LOAD8_U: (1, "{m}[{a}]"),
    op.I64_LOAD8_U: (1, "{m}[{a}]"),
    op.I32_LOAD8_S: (1, "_ext({m}[{a}], 8, 32)"),
    op.I64_LOAD8_S: (1, "_ext({m}[{a}], 8, 64)"),
    op.I32_LOAD16_U: (2, "_upI16({m}, {a})[0]"),
    op.I64_LOAD16_U: (2, "_upI16({m}, {a})[0]"),
    op.I32_LOAD16_S: (2, "_ext(_upI16({m}, {a})[0], 16, 32)"),
    op.I64_LOAD16_S: (2, "_ext(_upI16({m}, {a})[0], 16, 64)"),
    op.I64_LOAD32_U: (4, "_upI32({m}, {a})[0]"),
    op.I64_LOAD32_S: (4, "_ext(_upI32({m}, {a})[0], 32, 64)"),
}

_STORES: Dict[int, tuple] = {
    op.I32_STORE: (4, "_pkI32({m}, {a}, {v})"),
    op.I64_STORE: (8, "_pkI64({m}, {a}, {v})"),
    op.F32_STORE: (4, "_pkF32({m}, {a}, {v})"),
    op.F64_STORE: (8, "_pkF64({m}, {a}, {v})"),
    op.I32_STORE8: (1, "{m}[{a}] = ({v}) & 0xFF"),
    op.I64_STORE8: (1, "{m}[{a}] = ({v}) & 0xFF"),
    op.I32_STORE16: (2, "_pkI16({m}, {a}, ({v}) & 0xFFFF)"),
    op.I64_STORE16: (2, "_pkI16({m}, {a}, ({v}) & 0xFFFF)"),
    op.I64_STORE32: (4, "_pkI32({m}, {a}, ({v}) & " + _MASK32 + ")"),
}

# Typed-memory-plane templates: when the compiler proves an access aligned
# to its width (every affine coefficient and the constant offset divisible
# by the width), it indexes a `memoryview(..).cast(fmt)` plane directly
# instead of going through struct pack/unpack. ``{i}`` is the *element*
# index (byte address // width). 8-bit accesses already index the
# bytearray directly and need no plane.
_PLANE_LOADS: Dict[int, str] = {
    op.I32_LOAD: "_pI[{i}]",
    op.I64_LOAD: "_pQ[{i}]",
    op.F32_LOAD: "_pF[{i}]",
    op.F64_LOAD: "_pD[{i}]",
    op.I32_LOAD16_U: "_pH[{i}]",
    op.I64_LOAD16_U: "_pH[{i}]",
    op.I32_LOAD16_S: "_ext(_pH[{i}], 16, 32)",
    op.I64_LOAD16_S: "_ext(_pH[{i}], 16, 64)",
    op.I64_LOAD32_U: "_pI[{i}]",
    op.I64_LOAD32_S: "_ext(_pI[{i}], 32, 64)",
}

_PLANE_STORES: Dict[int, str] = {
    op.I32_STORE: "_pI[{i}] = {v}",
    op.I64_STORE: "_pQ[{i}] = {v}",
    op.F32_STORE: "_pF[{i}] = {v}",
    op.F64_STORE: "_pD[{i}] = {v}",
    op.I32_STORE16: "_pH[{i}] = ({v}) & 0xFFFF",
    op.I64_STORE16: "_pH[{i}] = ({v}) & 0xFFFF",
    op.I64_STORE32: "_pI[{i}] = ({v}) & " + _MASK32,
}

#: The plane names the instance namespace must provide, by format code.
_PLANE_NAMES = {"H": "_pH", "I": "_pI", "Q": "_pQ", "f": "_pF", "d": "_pD"}

# Scalar-promotion templates (opt level 3, hot versioned loops): a
# loop-invariant plane cell every access in the loop provably either hits
# or misses is carried in a Python local for the loop's duration. The
# float32 plane is excluded: an f32 value round-trips through the plane
# with payload canonicalisation a Python local would skip, so promoting
# it could change NaN bit patterns; the other planes are bit-exact.
# Loads map to a wrapper over ``{x}`` (the promoted variable); stores map
# to the value-side of the plane store template over ``{v}``.
_PROMO_LOADS: Dict[int, tuple] = {
    op.I32_LOAD: ("_pI", "{x}"),
    op.I64_LOAD: ("_pQ", "{x}"),
    op.F64_LOAD: ("_pD", "{x}"),
    op.I32_LOAD16_U: ("_pH", "{x}"),
    op.I64_LOAD16_U: ("_pH", "{x}"),
    op.I32_LOAD16_S: ("_pH", "_ext({x}, 16, 32)"),
    op.I64_LOAD16_S: ("_pH", "_ext({x}, 16, 64)"),
    op.I64_LOAD32_U: ("_pI", "{x}"),
    op.I64_LOAD32_S: ("_pI", "_ext({x}, 32, 64)"),
}

_PROMO_STORES: Dict[int, tuple] = {
    op.I32_STORE: ("_pI", "{v}"),
    op.I64_STORE: ("_pQ", "{v}"),
    op.F64_STORE: ("_pD", "{v}"),
    op.I32_STORE16: ("_pH", "({v}) & 0xFFFF"),
    op.I64_STORE16: ("_pH", "({v}) & 0xFFFF"),
    op.I64_STORE32: ("_pI", "({v}) & " + _MASK32),
}

#: Opcodes that may trap (or re-enter the runtime) mid-loop; a loop
#: containing one is excluded from scalar promotion, so a promoted cell
#: can never be stale at a trap point.
_PROMO_BARRIERS = frozenset((op.CALL, op.CALL_INDIRECT, op.UNREACHABLE,
                             op.MEMORY_GROW, op.INLINE_ENTER))

#: Proven result ranges of zero-extending loads.
_LOAD_RANGES: Dict[int, tuple] = {
    op.I32_LOAD8_U: (0, 0xFF),
    op.I64_LOAD8_U: (0, 0xFF),
    op.I32_LOAD16_U: (0, 0xFFFF),
    op.I64_LOAD16_U: (0, 0xFFFF),
    op.I32_LOAD: (0, 0xFFFFFFFF),
    op.I64_LOAD32_U: (0, 0xFFFFFFFF),
}

# Integer binops the range pass understands (kind, bit width).
_RANGE_BINOPS: Dict[int, tuple] = {
    op.I32_ADD: ("add", 32), op.I64_ADD: ("add", 64),
    op.I32_SUB: ("sub", 32), op.I64_SUB: ("sub", 64),
    op.I32_MUL: ("mul", 32), op.I64_MUL: ("mul", 64),
    op.I32_AND: ("and", 32), op.I64_AND: ("and", 64),
    op.I32_OR: ("or", 32), op.I64_OR: ("or", 64),
    op.I32_XOR: ("xor", 32), op.I64_XOR: ("xor", 64),
    op.I32_SHL: ("shl", 32), op.I64_SHL: ("shl", 64),
    op.I32_SHR_U: ("shru", 32), op.I64_SHR_U: ("shru", 64),
}

_EMPTY: FrozenSet[int] = frozenset()
_NO_TEMPS: FrozenSet[str] = frozenset()


class _Value:
    """One compile-time stack slot: a deferred expression or a variable.

    Beyond the purity facts the spiller needs, each slot optionally carries
    the optimiser's value metadata:

    * ``lo``/``hi`` — a proven inclusive range of the (canonical,
      non-negative) integer value; ``None`` when unknown. The passes use
      it to drop ``& MASK``s on values already in range and to elide
      ``_s32``/``_s64`` on signed compares of values below the sign bit.
    * ``affine`` — the *real-arithmetic* (unwrapped) form of the value as
      ``{local_index: coefficient, -1: constant}`` with all coefficients
      non-negative, or ``None``. ``expr`` may wrap (masks); ``affine``
      never does — versioned loops bound it symbolically for the hoisted
      preflight check and rebuild addresses from it mask-free.
    * ``temps`` — generated variable names the expression references
      (``t``/``s``/``h`` vars); an expression is only hoistable to a loop
      preheader when every such name was itself hoisted there.
    """

    __slots__ = ("expr", "locals_read", "reads_global", "reads_memory",
                 "ops", "is_var", "bool_expr", "lo", "hi", "affine", "temps")

    def __init__(self, expr: str, locals_read: FrozenSet[int] = _EMPTY,
                 reads_global: bool = False, reads_memory: bool = False,
                 ops: int = 1, is_var: bool = False,
                 bool_expr: Optional[str] = None,
                 lo: Optional[int] = None, hi: Optional[int] = None,
                 affine: Optional[Dict[int, int]] = None,
                 temps: FrozenSet[str] = _NO_TEMPS) -> None:
        self.expr = expr
        self.locals_read = locals_read
        self.reads_global = reads_global
        self.reads_memory = reads_memory
        self.ops = ops
        self.is_var = is_var
        # For i32 booleans produced by comparisons/eqz: the raw Python
        # condition, so branches can test it without the 1/0 round trip.
        self.bool_expr = bool_expr
        self.lo = lo
        self.hi = hi
        self.affine = affine
        self.temps = temps

    @classmethod
    def var(cls, name: str) -> "_Value":
        return cls(name, ops=0, is_var=True, temps=frozenset((name,)))

    @classmethod
    def var_like(cls, name: str, value: "_Value") -> "_Value":
        """A variable slot that keeps ``value``'s range/affine metadata.

        The range still holds (the variable holds the same value). The
        affine form stays usable as a *bound*: materialisation captured
        the locals at some loop point, and the preflight substitutes each
        local's loop-wide maximum, which dominates any captured value.
        """
        return cls(name, ops=0, is_var=True, lo=value.lo, hi=value.hi,
                   affine=value.affine, temps=frozenset((name,)))

    @property
    def paren(self) -> str:
        """The expression, parenthesised unless it is atomic."""
        if self.is_var or self.expr.isidentifier() or _is_literal(self.expr):
            return self.expr
        return f"({self.expr})"

    @property
    def condition(self) -> str:
        """The truth-test form for if/br_if/select."""
        return self.bool_expr if self.bool_expr is not None else self.expr

    @property
    def literal(self) -> Optional[int]:
        """The integer value when this is a literal constant."""
        if _is_literal(self.expr):
            return int(self.expr)
        return None


def _is_literal(expr: str) -> bool:
    return expr.isdigit() or (expr.startswith("-") and expr[1:].isdigit())


class _Emitter:
    """Accumulates generated source with explicit indentation control."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, line: str) -> None:
        # Single-space indentation maximises nesting headroom in the
        # tokenizer for deeply nested Wasm control flow.
        self.lines.append(" " * self.indent + line)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _Frame:
    """One open structured construct during compilation."""

    __slots__ = ("kind", "label", "entry_height", "arity", "top_level")

    def __init__(self, kind: int, label: int, entry_height: int,
                 arity: int, top_level: bool) -> None:
        self.kind = kind
        self.label = label
        self.entry_height = entry_height
        self.arity = arity
        self.top_level = top_level


class _LoopCtx:
    """Optimiser state for one loop currently being compiled."""

    __slots__ = ("index", "info", "frame", "emitter", "insert_at", "indent",
                 "hoisted", "ind_local", "ind_lo", "ind_hi")

    def __init__(self, index: int, info: aotopt.LoopInfo, frame: _Frame,
                 emitter: _Emitter, insert_at: int, indent: int) -> None:
        self.index = index
        self.info = info
        self.frame = frame
        self.emitter = emitter
        #: Line index in ``emitter`` where preheader statements land.
        self.insert_at = insert_at
        self.indent = indent
        #: expr -> hoisted variable name (dedup within this preheader).
        self.hoisted: Dict[str, str] = {}
        induction = info.induction
        self.ind_local = induction.local if induction else None
        self.ind_lo: int = 0
        self.ind_hi: Optional[int] = None
        if induction is not None and induction.loop_hi is not None \
                and (not induction.signed or induction.fast_path_sound()[0]):
            self.ind_hi = induction.loop_hi
            # The init is a lower bound only when the masked step add can
            # never wrap past 2^32 (it always holds for sound signed
            # loops; unsigned loops need the explicit ceiling check).
            if induction.max_numeric + induction.step <= num.MASK32:
                self.ind_lo = induction.loop_lo


class _FastCtx:
    """Collects preflight requirements while probing a versioned loop."""

    __slots__ = ("root", "reqs", "numeric", "failed")

    def __init__(self, root: aotopt.LoopInfo) -> None:
        self.root = root
        self.reqs: List[str] = []
        #: Max over fully-constant address bounds: one combined check.
        self.numeric: Optional[int] = None
        self.failed = False

    def require(self, condition: str) -> None:
        if condition not in self.reqs:
            self.reqs.append(condition)

    def require_numeric(self, bound: int) -> None:
        if self.numeric is None or bound > self.numeric:
            self.numeric = bound

    def conditions(self) -> List[str]:
        conditions = []
        if self.numeric is not None:
            conditions.append(f"{self.numeric} <= _ml")
        return conditions + self.reqs


#: Preflight checks beyond this count cost more than they save.
_MAX_PREFLIGHT = 8


class _PromoScope:
    """One loop's active scalar promotions (opt level 3, fast copies).

    ``mapping`` binds ``(plane_name, element_index_expr)`` keys to the
    Python locals carrying the cells; preloads are inserted into the
    loop's preheader when the scope closes, and writebacks are emitted on
    every exit path (loop end, branches out, returns).
    """

    __slots__ = ("frame", "ctx", "mapping")

    def __init__(self, frame: _Frame, ctx: _LoopCtx,
                 mapping: Dict[tuple, str]) -> None:
        self.frame = frame
        self.ctx = ctx
        self.mapping = mapping

    def items_sorted(self) -> List[tuple]:
        return sorted(self.mapping.items())


class _AccessRecord:
    """One memory access observed while probing a hot versioned loop."""

    __slots__ = ("open_loops", "pkey", "lo", "hi", "invariant_in",
                 "is_store", "code")

    def __init__(self, open_loops: tuple, pkey: Optional[tuple],
                 lo: int, hi: Optional[int], invariant_in: frozenset,
                 is_store: bool, code: int) -> None:
        self.open_loops = open_loops
        self.pkey = pkey
        self.lo = lo
        self.hi = hi
        self.invariant_in = invariant_in
        self.is_store = is_store
        self.code = code


def _const_source(value) -> str:
    """Python source for a profiled constant (int or finite/inf float)."""
    if isinstance(value, float):
        if math.isinf(value):
            sign = "-" if value < 0 else ""
            return f"float('{sign}inf')"
        return repr(value)
    return str(value)


# -- counted-loop shape conversion (opt level 3) -----------------------------
#
# A profile-compiled body rewrites counted-loop capsules
#
#     while True:  # loop L{n}          _fr{k} = range(l{v}, STOP[, STEP])
#      while True:                      for l{v} in _fr{k}:
#       pass                               BODY          (dedented once)
#       if not (l{v} < STOP):     ==>   else:
#        GUARD-EXIT                        if _fr{k}:
#       BODY                                l{v} = l{v} + STEP
#       l{v} = l{v} + STEP                 GUARD-EXIT    (sans `break`)
#       continue
#       break
#      <exact epilogue>
#
# into Python `for` loops over a `range`, eliminating the explicit guard
# test and increment per iteration. The rewrite is Python-to-Python and
# semantics-exact: `range(start, stop, step)` iterates precisely while
# `v < stop` with `v += step` on unbounded ints, a `break` inside BODY
# (every `_br = K; break` exit, which skips the `else`) leaves `l{v}` at
# its current value exactly as breaking the capsule did, and the `else`
# clause reconstructs the first-failing induction value (`last + step`
# when the range was non-empty, the untouched entry value otherwise)
# before running the guard's original branch transfer. Conversion bails
# — leaving the capsule untouched — whenever the shape is not exact: a
# masked increment, a non-plain comparison (sign wrappers), any second
# write to the induction local or to a local bound, or any `continue`
# owned by the capsule other than the final backedge (a conditional
# `br_if 0` re-entry must keep capsule form, since `continue` in a `for`
# would run the increment the branch is required to skip).

_FOR_HEAD = re.compile(r"while True:  # loop L(\d+)$")
_FOR_GUARD = re.compile(r"if not \((l\d+) (<|<=) (l\d+|h\d+|-?\d+)\):$")
_FOR_STEP = re.compile(r"(l\d+) = (l\d+) \+ (\d+)$")


def _indent_of(line: str) -> int:
    return len(line) - len(line.lstrip(" "))


def _capsule_owns_a_continue(body: List[str], base_indent: int) -> bool:
    """Does any `continue` in ``body`` belong to the enclosing capsule
    (rather than to a loop construct opened inside ``body``)?"""
    loop_stack: List[int] = []
    for line in body:
        stripped = line.strip()
        indent = _indent_of(line)
        while loop_stack and indent <= loop_stack[-1]:
            loop_stack.pop()
        if stripped == "continue" and not loop_stack:
            return True
        if stripped.startswith("while ") or stripped.startswith("for "):
            loop_stack.append(indent)
    return False


def _try_forify_at(lines: List[str], i: int, counter: List[int]
                   ) -> Optional[List[str]]:
    """Attempt the counted-loop rewrite on the capsule headed at ``i``."""
    head = lines[i]
    ind = _indent_of(head)
    if not _FOR_HEAD.match(head[ind:]):
        return None
    n = len(lines)
    if i + 4 >= n or lines[i + 1] != " " * (ind + 1) + "while True:" \
            or lines[i + 2] != " " * (ind + 2) + "pass":
        return None
    guard_line = lines[i + 3]
    if _indent_of(guard_line) != ind + 2:
        return None
    guard = _FOR_GUARD.match(guard_line[ind + 2:])
    if guard is None:
        return None
    var, relop, bound = guard.group(1), guard.group(2), guard.group(3)
    label = _FOR_HEAD.match(head[ind:]).group(1)

    # Guard suite: the branch transfer out of the loop, one level deep.
    j = i + 4
    while j < n and _indent_of(lines[j]) >= ind + 3:
        if _indent_of(lines[j]) != ind + 3:
            return None
        j += 1
    guard_suite = [line[ind + 3:] for line in lines[i + 4:j]]
    if not guard_suite or not (guard_suite[-1] == "break"
                               or guard_suite[-1].startswith("return")):
        return None

    # Capsule body runs to the epilogue (first dedent to ind+1).
    k = j
    while k < n and _indent_of(lines[k]) >= ind + 2:
        k += 1
    if k - j < 3 or lines[k - 1] != " " * (ind + 2) + "break" \
            or lines[k - 2] != " " * (ind + 2) + "continue" \
            or _indent_of(lines[k - 3]) != ind + 2:
        return None
    step_match = _FOR_STEP.match(lines[k - 3][ind + 2:])
    if step_match is None or step_match.group(1) != var \
            or step_match.group(2) != var:
        return None
    step = int(step_match.group(3))
    if step <= 0:
        return None

    epilogue = [
        " " * (ind + 1) + "if _br >= 0:",
        " " * (ind + 2) + f"if _br == {label}:",
        " " * (ind + 3) + "_br = -1",
        " " * (ind + 3) + "continue",
        " " * (ind + 2) + "break",
        " " * (ind + 1) + "break",
    ]
    if lines[k:k + 6] != epilogue:
        return None

    body = lines[j:k - 3]
    for line in body:
        stripped = line.strip()
        if stripped == f"_br = {label}":
            return None  # a nested frame branches back to this loop
        if stripped.startswith(f"{var} = ") \
                or stripped.startswith(f"for {var} "):
            return None  # second write to the induction local
        if bound.startswith("l") and (
                stripped.startswith(f"{bound} = ")
                or stripped.startswith(f"for {bound} ")):
            return None  # the bound is not loop-invariant
    if _capsule_owns_a_continue(body, ind + 2):
        return None  # conditional backedge: must keep capsule form

    if relop == "<":
        stop = bound
    elif bound.lstrip("-").isdigit():
        stop = str(int(bound) + 1)
    else:
        stop = f"{bound} + 1"
    name = f"_fr{counter[0]}"
    counter[0] += 1
    step_suffix = f", {step}" if step != 1 else ""
    pad = " " * ind
    replacement = [
        f"{pad}{name} = range({var}, {stop}{step_suffix})",
        f"{pad}for {var} in {name}:",
    ]
    if body:
        replacement.extend(line[1:] for line in body)  # dedent one level
    else:
        replacement.append(f"{pad} pass")
    replacement.append(f"{pad}else:")
    replacement.append(f"{pad} if {name}:")
    replacement.append(f"{pad}  {var} = {var} + {step}")
    exit_lines = guard_suite[:-1] if guard_suite[-1] == "break" \
        else guard_suite
    replacement.extend(f"{pad} {line}" for line in exit_lines)
    return lines[:i] + replacement + lines[k + 6:]


def _forify(lines: List[str], counter: List[int]) -> List[str]:
    """Rewrite every convertible counted-loop capsule in ``lines``."""
    i = 0
    while i < len(lines):
        rewritten = _try_forify_at(lines, i, counter)
        if rewritten is not None:
            lines = rewritten
            # Re-scan from the same spot: the loop's own body may hold
            # further (now dedented) capsules.
            continue
        i += 1
    return lines


class _FunctionCompiler:
    """Compiles one decoded function body into Python source."""

    def __init__(self, module: Module, func: Function, func_index: int,
                 opt_level: int = 0, use_planes: bool = False,
                 profile: Optional[Profile] = None,
                 sites: Optional[List[Optional[str]]] = None,
                 spec_globals: Optional[Dict[int, float]] = None,
                 const_globals: Optional[Dict[int, float]] = None,
                 collector: bool = False) -> None:
        self.module = module
        self.func = func
        self.func_index = func_index
        self.func_type = module.types[func.type_index]
        self.out = _Emitter()
        self.frames: List[_Frame] = []
        self.next_label = 0
        self.next_temp = 0
        self.next_hoist = 0
        self.stack: List[_Value] = []
        self.opt = opt_level
        self._planes_flag = use_planes
        self.use_planes = use_planes and opt_level >= 2
        self.local_types: List[ValType] = \
            list(self.func_type.params) + list(func.locals)
        self.analysis: Dict[int, aotopt.LoopInfo] = \
            aotopt.analyze(func, allow_symbolic_init=profile is not None) \
            if opt_level >= 1 else {}
        self.loop_ctxs: List[_LoopCtx] = []
        self.fast: Optional[_FastCtx] = None
        #: Depth of versioned-region recompilation (no nested versioning).
        self.version_depth = 0
        #: Loops whose version probe failed; compiled plainly thereafter.
        self.no_version: set = set()
        # -- opt level 3 (profile-guided) state ------------------------------
        #: The driving profile; None in every tier below 3 and in the
        #: guarded deopt body (which must be the exact o2 lowering).
        self.profile = profile
        #: Per-instruction profile site keys (post-inlining); None falls
        #: back to ``f<index>:<i>`` over the compiled body.
        self.sites = sites
        #: Observed-constant globals to specialise on (plan level: emits
        #: the entry guard plus specialised and deopt bodies).
        self.spec_globals = spec_globals or {}
        #: Active constant-global substitutions inside the specialised
        #: body clone.
        self.const_globals = const_globals
        #: True when compiling the instrumented (profiling) build.
        self.collector = collector
        #: True while compiling the fast copy of a profile-hot versioned
        #: region: in-bounds-proven loads defer like pure expressions.
        self.hot_fast = False
        self._recording = False
        self._access_log: List[_AccessRecord] = []
        self._last_meta: Optional[tuple] = None
        #: loop body index -> {promo key: None} while recompiling a fast
        #: copy with scalar promotion.
        self.promotions_plan: Optional[Dict[int, Dict[tuple, str]]] = None
        self.promo_scopes: List[_PromoScope] = []
        self.next_promo = 0
        self._promotable_loops: Dict[int, bool] = {}
        #: Unique `_fr{n}` range names for the counted-loop rewrite.
        self._for_counter = [0]

    # -- stack management ---------------------------------------------------------
    #
    # Naming discipline: mid-stream materialisations always get a *fresh*
    # temporary (t{n}) so a deferred expression can never observe its
    # referenced variable being recycled. Canonical position names (s{i})
    # are written only at control-flow boundaries by `_spill_all`, in
    # ascending position order — an entry can only reference position
    # names of positions <= its own (values are consumed linearly), so
    # the ascending pass reads every old value before overwriting it.

    def _push(self, expr: str, locals_read: FrozenSet[int] = _EMPTY,
              reads_global: bool = False, reads_memory: bool = False,
              ops: int = 1, bool_expr: Optional[str] = None,
              lo: Optional[int] = None, hi: Optional[int] = None,
              affine: Optional[Dict[int, int]] = None,
              temps: FrozenSet[str] = _NO_TEMPS) -> None:
        value = _Value(expr, locals_read, reads_global, reads_memory, ops,
                       bool_expr=bool_expr, lo=lo, hi=hi, affine=affine,
                       temps=temps)
        self._push_value(value)

    def _push_value(self, value: _Value) -> None:
        if self.opt >= 1 and self._try_hoist(value):
            return
        self.stack.append(value)
        if value.ops > _MAX_FUSED_OPS:
            self._materialize(len(self.stack) - 1)

    def _try_hoist(self, value: _Value) -> bool:
        """Loop-invariant code motion: move ``value`` to the preheader.

        Eligible when a loop is open, the expression is pure (deferred
        expressions always are), big enough to be worth a variable, reads
        no state the loop region writes, and references only variables
        that were themselves hoisted to an enclosing preheader.
        """
        if not self.loop_ctxs or value.is_var or value.bool_expr is not None:
            return False
        if value.ops < 2 or value.reads_global or value.reads_memory:
            return False
        ctx = self.loop_ctxs[-1]
        if value.locals_read & ctx.info.writes:
            return False
        if value.temps:
            hoisted_names = set()
            for open_ctx in self.loop_ctxs:
                hoisted_names.update(open_ctx.hoisted.values())
            if not value.temps <= hoisted_names:
                return False
        name = ctx.hoisted.get(value.expr)
        if name is None:
            name = f"h{self.next_hoist}"
            self.next_hoist += 1
            ctx.hoisted[value.expr] = name
            line = " " * ctx.indent + f"{name} = {value.expr}"
            ctx.emitter.lines.insert(ctx.insert_at, line)
            ctx.insert_at += 1
        self.stack.append(_Value.var_like(name, value))
        return True

    def _push_var(self, expr: str, lo: Optional[int] = None,
                  hi: Optional[int] = None,
                  affine: Optional[Dict[int, int]] = None) -> None:
        """Materialise ``expr`` into a fresh temporary immediately."""
        name = f"t{self.next_temp}"
        self.next_temp += 1
        self.out.emit(f"{name} = {expr}")
        self.stack.append(
            _Value(name, ops=0, is_var=True, lo=lo, hi=hi, affine=affine,
                   temps=frozenset((name,))))

    def _pop(self) -> _Value:
        return self.stack.pop()

    def _materialize(self, position: int) -> None:
        """Evaluate a deferred entry now, into a fresh temporary."""
        value = self.stack[position]
        if value.is_var:
            return
        name = f"t{self.next_temp}"
        self.next_temp += 1
        self.out.emit(f"{name} = {value.expr}")
        self.stack[position] = _Value.var_like(name, value)

    def _spill(self, position: int) -> None:
        """Place a stack entry into its canonical boundary variable."""
        value = self.stack[position]
        name = f"s{position}"
        if value.is_var and value.expr == name:
            return
        self.out.emit(f"{name} = {value.expr}")
        self.stack[position] = _Value.var_like(name, value)

    def _spill_all(self) -> None:
        for position in range(len(self.stack)):
            self._spill(position)

    def _spill_local_readers(self, local_index: int) -> None:
        for position, value in enumerate(self.stack):
            if local_index in value.locals_read:
                self._materialize(position)

    def _spill_global_readers(self) -> None:
        for position, value in enumerate(self.stack):
            if value.reads_global:
                self._materialize(position)

    def _spill_memory_readers(self) -> None:
        for position, value in enumerate(self.stack):
            if value.reads_memory:
                self._materialize(position)

    def _spill_call_clobbered(self) -> None:
        """A call may write globals and memory (not our locals)."""
        for position, value in enumerate(self.stack):
            if value.reads_global or value.reads_memory:
                self._materialize(position)

    def _reset_stack(self, height: int) -> None:
        """Canonical var entries s0..s{height-1} (control-join state)."""
        self.stack = [_Value.var(f"s{i}") for i in range(height)]

    # -- helpers ----------------------------------------------------------------

    def _result_expr(self) -> str:
        if len(self.func_type.results) == 0:
            return "None"
        return self.stack[-1].expr if self.stack else "None"

    def _emit_branch(self, depth: int) -> None:
        """Emit the transfer for ``br depth``; stack entries are vars."""
        self._emit_promo_writebacks(depth)
        height = len(self.stack)
        if depth >= len(self.frames):
            # Branch to the function frame: a return.
            if len(self.func_type.results) == 0:
                self.out.emit("return None")
            else:
                self.out.emit(f"return s{height - 1}")
            return
        frame = self.frames[-1 - depth]
        arity = 0 if frame.kind == op.LOOP else frame.arity
        base = frame.entry_height
        source_base = height - arity
        for position in range(arity):
            if source_base + position != base + position:
                self.out.emit(f"s{base + position} = s{source_base + position}")
        if depth == 0 and frame.kind != op.LOOP:
            self.out.emit("break")
        elif depth == 0:
            # Back edge to the innermost loop: at this point the
            # innermost Python `while` is that loop's body capsule, whose
            # body *is* the loop body — `continue` restarts it directly,
            # skipping the _br unwind machinery.
            self.out.emit("continue")
        else:
            self.out.emit(f"_br = {frame.label}")
            self.out.emit("break")

    def _emit_epilogue(self, frame: _Frame) -> None:
        """Post-capsule branch bookkeeping for a construct."""
        if frame.kind == op.LOOP:
            self.out.emit("if _br >= 0:")
            self.out.indent += 1
            self.out.emit(f"if _br == {frame.label}:")
            self.out.indent += 1
            self.out.emit("_br = -1")
            self.out.emit("continue")
            self.out.indent -= 1
            self.out.emit("break")
            self.out.indent -= 1
            self.out.emit("break")
            self.out.indent -= 1  # close outer while
            if not frame.top_level:
                self.out.emit("if _br >= 0:")
                self.out.indent += 1
                self.out.emit("break")
                self.out.indent -= 1
        else:
            self.out.indent -= 1  # close capsule while
            self.out.emit("if _br >= 0:")
            self.out.indent += 1
            if frame.top_level:
                self.out.emit("_br = -1")
            else:
                self.out.emit(f"if _br != {frame.label}: break")
                self.out.emit("_br = -1")
            self.out.indent -= 1

    # -- main pass ---------------------------------------------------------------

    def compile(self) -> str:
        func_type = self.func_type
        params = [f"l{i}" for i in range(len(func_type.params))]
        name = f"_wasm_f{self.func_index}"
        self.out.emit(f"def {name}({', '.join(params)}):")
        self.out.indent += 1
        self.out.emit("_inst.enter_call()")
        self.out.emit("try:")
        self.out.indent += 1
        for offset, valtype in enumerate(self.func.locals):
            index = len(params) + offset
            zero = "0" if valtype.is_integer else "0.0"
            self.out.emit(f"l{index} = {zero}")
        self.out.emit("_br = -1")
        if self.collector:
            self.out.emit(f"_pf[{self.func_index}] += 1")
        if self.spec_globals:
            self._compile_specialized()
        else:
            self._compile_range(0, len(self.func.body))
            if self.profile is not None:
                self.out.lines = _forify(self.out.lines, self._for_counter)
        self.out.indent -= 1
        self.out.emit("finally:")
        self.out.indent += 1
        self.out.emit("_inst.exit_call()")
        self.out.indent -= 1
        self.out.indent -= 1
        return self.out.source()

    def _compile_specialized(self) -> None:
        """Guarded global specialisation: one entry test selects between
        the body specialised on the profiled global values and a deopt
        body that is the exact o2 lowering.

        The guard re-reads the globals on every call, so a profile that
        mispredicts (the global changed since profiling) only costs the
        specialised path — never correctness.
        """
        guard = " and ".join(
            f"_g[{index}].value == {_const_source(value)}"
            for index, value in sorted(self.spec_globals.items()))
        self.out.emit(f"if {guard}:")
        for const_globals in (dict(self.spec_globals), None):
            clone = _FunctionCompiler(
                self.module, self.func, self.func_index,
                opt_level=self.opt, use_planes=self._planes_flag,
                profile=self.profile if const_globals is not None else None,
                sites=self.sites if const_globals is not None else None,
                const_globals=const_globals)
            clone.out.indent = self.out.indent + 1
            clone.out.emit("pass")
            clone._compile_range(0, len(clone.func.body))
            if const_globals is not None:
                # The specialised arm gets the loop-shape rewrite; the
                # deopt arm below stays the exact o2 lowering.
                clone.out.lines = _forify(clone.out.lines,
                                          self._for_counter)
            self.out.lines.extend(clone.out.lines)
            if const_globals is not None:
                self.out.emit("else:")

    # -- profile plumbing --------------------------------------------------------

    def _site_key(self, index: int) -> Optional[str]:
        """Profile key of the instruction at ``index`` of the compiled
        body (None for instructions synthesised by inlining)."""
        if self.sites is not None:
            return self.sites[index]
        return f"f{self.func_index}:{index}"

    def _region_hot(self, start: int, stop: int) -> bool:
        """Does the profile mark any loop in ``[start, stop)`` hot?"""
        if self.profile is None:
            return False
        body = self.func.body
        backedges = self.profile.loop_backedges
        for index in range(start, stop):
            if body[index].opcode == op.LOOP:
                key = self._site_key(index)
                if key is not None \
                        and backedges.get(key, 0) >= pgo.HOT_LOOP_MIN:
                    return True
        return False

    def _site_aligned(self, index: int) -> bool:
        """Did the profile observe this access site as always aligned?"""
        if self.profile is None:
            return False
        key = self._site_key(index)
        return key is not None \
            and self.profile.access_masks.get(key) == 0

    def _pop_loop_ctx(self, frame: _Frame) -> None:
        if self.loop_ctxs and self.loop_ctxs[-1].frame is frame:
            self.loop_ctxs.pop()

    def _compile_range(self, start: int, stop: int) -> None:
        """Compile the instruction range ``[start, stop)``.

        The whole function body is one range; a versioned loop compiles
        its own ``[loop, end]`` sub-range twice (fast probe + safe copy)
        through the same machinery.
        """
        module = self.module
        body = self.func.body
        out = self.out
        dead = False
        dead_depth = 0
        skip_until = -1

        for index in range(start, stop):
            if index < skip_until:
                continue
            instr = body[index]
            code = instr.opcode
            out = self.out

            if dead:
                if code in (op.BLOCK, op.LOOP, op.IF):
                    dead_depth += 1
                elif code == op.ELSE and dead_depth == 0:
                    frame = self.frames[-1]
                    out.indent -= 1
                    out.emit("else:")
                    out.indent += 1
                    out.emit("pass")
                    self._reset_stack(frame.entry_height)
                    dead = False
                elif code == op.END:
                    if dead_depth:
                        dead_depth -= 1
                    elif not self.frames:
                        dead = False
                    else:
                        frame = self.frames.pop()
                        # The fall-through exit is dead, but the loop can
                        # still run (branch exits wrote back already):
                        # preloads must land in the preheader regardless.
                        self._close_promo_scope(frame, live=False)
                        self._pop_loop_ctx(frame)
                        if frame.kind == op.IF:
                            out.indent -= 1  # close if/else suite
                        self._reset_stack(frame.entry_height + frame.arity)
                        dead = False
                        if frame.kind == op.LOOP:
                            out.emit("break")
                            out.indent -= 1
                            self._emit_epilogue(frame)
                        else:
                            out.emit("break")
                            self._emit_epilogue(frame)
                continue

            if code == op.NOP:
                continue

            if code == op.BLOCK:
                self._spill_all()
                frame = _Frame(code, self.next_label, len(self.stack),
                               instr.arg.arity, not self.frames)
                self.next_label += 1
                self.frames.append(frame)
                out.emit(f"while True:  # block L{frame.label}")
                out.indent += 1
                out.emit("pass")
            elif code == op.LOOP:
                if self._can_version(index):
                    skip_until = self._compile_versioned_loop(index)
                    continue
                self._spill_all()
                frame = _Frame(code, self.next_label, len(self.stack),
                               instr.arg.arity, not self.frames)
                self.next_label += 1
                self.frames.append(frame)
                if self.opt >= 1:
                    info = self.analysis.get(index)
                    if info is not None:
                        ctx = _LoopCtx(index, info, frame, out,
                                       len(out.lines), out.indent)
                        induction = info.induction
                        if (ctx.ind_hi is None and induction is not None
                                and induction.symbolic_init
                                and self.profile is not None
                                and self.fast is not None
                                and self.fast.root.start == index):
                            # Versioned root with a computed entry value:
                            # the preflight just established the entry
                            # cap, so the fast copy may claim the
                            # region-wide bound (see versioned_hi).
                            ctx.ind_hi = induction.versioned_hi
                        self.loop_ctxs.append(ctx)
                self._open_promo_scope(index, frame)
                out.emit(f"while True:  # loop L{frame.label}")
                out.indent += 1
                out.emit("while True:")
                out.indent += 1
                out.emit("pass")
                if self.collector:
                    out.emit(f"_pl[{self._site_key(index)!r}] += 1")
            elif code == op.IF:
                condition = self._pop()
                self._spill_all()
                frame = _Frame(code, self.next_label, len(self.stack),
                               instr.arg.arity, not self.frames)
                self.next_label += 1
                self.frames.append(frame)
                out.emit(f"while True:  # if L{frame.label}")
                out.indent += 1
                out.emit(f"if {condition.condition}:")
                out.indent += 1
                out.emit("pass")
            elif code == op.ELSE:
                frame = self.frames[-1]
                self._spill_all()
                out.indent -= 1
                out.emit("else:")
                out.indent += 1
                out.emit("pass")
                self._reset_stack(frame.entry_height)
            elif code == op.END:
                self._spill_all()
                if not self.frames:
                    out.emit(f"return {self._result_expr()}")
                    continue
                frame = self.frames.pop()
                self._close_promo_scope(frame, live=True)
                self._pop_loop_ctx(frame)
                if frame.kind == op.IF:
                    out.indent -= 1  # close if (or else) suite
                self._reset_stack(frame.entry_height + frame.arity)
                if frame.kind == op.LOOP:
                    out.emit("break")
                    out.indent -= 1
                    self._emit_epilogue(frame)
                else:
                    out.emit("break")
                    self._emit_epilogue(frame)
            elif code == op.BR:
                self._spill_all()
                self._emit_branch(instr.arg)
                dead = True
            elif code == op.BR_IF:
                condition = self._pop()
                self._spill_all()
                out.emit(f"if {condition.condition}:")
                out.indent += 1
                self._emit_branch(instr.arg)
                out.indent -= 1
            elif code == op.BR_TABLE:
                depths, default = instr.arg
                selector = self._pop()
                self._spill_all()
                if depths:
                    out.emit(f"_i = {selector.expr}")
                    for position, depth in enumerate(depths):
                        keyword = "if" if position == 0 else "elif"
                        out.emit(f"{keyword} _i == {position}:")
                        out.indent += 1
                        self._emit_branch(depth)
                        out.indent -= 1
                    out.emit("else:")
                    out.indent += 1
                    self._emit_branch(default)
                    out.indent -= 1
                else:
                    self._emit_branch(default)
                dead = True
            elif code == op.RETURN:
                self._emit_promo_writebacks(None)
                out.emit(f"return {self._result_expr()}")
                dead = True
            elif code == op.UNREACHABLE:
                out.emit('_trap("unreachable executed")')
                dead = True
            elif code == op.INLINE_ENTER:
                # Inline splice entry: mirror the real call path exactly —
                # depth accounting *outside* the try, so an exhausted-
                # stack trap does not run the matching exit.
                self._spill_all()
                out.emit("_inst.enter_call()")
                out.emit("try:")
                out.indent += 1
                out.emit("pass")
            elif code == op.INLINE_EXIT:
                self._spill_all()
                out.indent -= 1
                out.emit("finally:")
                out.indent += 1
                out.emit("_inst.exit_call()")
                out.indent -= 1
            elif code == op.CALL:
                signature = module.func_type(instr.arg)
                nparams = len(signature.params)
                arguments = self.stack[len(self.stack) - nparams:] \
                    if nparams else []
                del self.stack[len(self.stack) - nparams:]
                self._spill_call_clobbered()
                argument_list = ", ".join(a.expr for a in arguments)
                if signature.results:
                    self._push_var(f"_f[{instr.arg}]({argument_list})")
                else:
                    out.emit(f"_f[{instr.arg}]({argument_list})")
            elif code == op.CALL_INDIRECT:
                signature = module.types[instr.arg]
                element = self._pop()
                nparams = len(signature.params)
                arguments = self.stack[len(self.stack) - nparams:] \
                    if nparams else []
                del self.stack[len(self.stack) - nparams:]
                self._spill_call_clobbered()
                out.emit(f"_fi = _tbl.get({element.expr})")
                out.emit(f"if _ft[_fi] != _sig{instr.arg}:")
                out.indent += 1
                out.emit('_trap("indirect call signature mismatch")')
                out.indent -= 1
                argument_list = ", ".join(a.expr for a in arguments)
                if signature.results:
                    self._push_var(f"_f[_fi]({argument_list})")
                else:
                    out.emit(f"_f[_fi]({argument_list})")
            elif code == op.DROP:
                self._pop()  # deferred expressions are pure: discard
            elif code == op.SELECT:
                condition = self._pop()
                self._spill(len(self.stack) - 2)
                self._spill(len(self.stack) - 1)
                top = len(self.stack)
                out.emit(f"if not ({condition.condition}):")
                out.indent += 1
                out.emit(f"s{top - 2} = s{top - 1}")
                out.indent -= 1
                self._pop()
            elif code == op.LOCAL_GET:
                self._push_local(instr.arg)
            elif code == op.LOCAL_SET:
                value = self._pop()
                self._spill_local_readers(instr.arg)
                out.emit(f"l{instr.arg} = {value.expr}")
            elif code == op.LOCAL_TEE:
                value = self._pop()
                self._spill_local_readers(instr.arg)
                out.emit(f"l{instr.arg} = {value.expr}")
                self._push_local(instr.arg)
            elif code == op.GLOBAL_GET:
                spec = self.const_globals
                if spec is not None and instr.arg in spec:
                    # Specialised body: the entry guard proved the global
                    # still holds the profiled value — fold it in as a
                    # literal (ranges/affine included for i32).
                    value = spec[instr.arg]
                    if isinstance(value, int) and value >= 0:
                        is32 = self.module.globals[instr.arg].type.valtype \
                            == ValType.I32
                        self._push(str(value), ops=0, lo=value, hi=value,
                                   affine={-1: value} if is32 else None)
                    else:
                        self._push(_const_source(value), ops=0)
                else:
                    self._push(f"_g[{instr.arg}].value", reads_global=True,
                               ops=1)
            elif code == op.GLOBAL_SET:
                value = self._pop()
                self._spill_global_readers()
                out.emit(f"_g[{instr.arg}].value = {value.expr}")
                if self.collector:
                    out.emit(f"_pg[{instr.arg}] += 1")
            elif code in (op.I32_CONST, op.I64_CONST):
                literal = instr.arg
                if literal >= 0:
                    affine = {-1: literal} if code == op.I32_CONST else None
                    self._push(str(literal), ops=0, lo=literal, hi=literal,
                               affine=affine)
                else:
                    self._push(str(literal), ops=0)
            elif code in (op.F32_CONST, op.F64_CONST):
                value = instr.arg
                if math.isnan(value):
                    self._push("float('nan')", ops=0)
                elif math.isinf(value):
                    sign = "-" if value < 0 else ""
                    self._push(f"float('{sign}inf')", ops=0)
                else:
                    self._push(repr(value), ops=0)
            elif code in _LOADS:
                width, template = _LOADS[code]
                address = self._pop()
                offset = instr.arg or 0
                lo, hi = _LOAD_RANGES.get(code, (None, None))
                if self.fast is not None:
                    access = self._fast_access(address, offset, width)
                    if access is not None:
                        addr, plane = access
                        if self._recording:
                            self._record_access(code, address, plane, False)
                        if plane is not None and code in _PROMO_LOADS:
                            promo = self._promo_lookup(
                                (_PROMO_LOADS[code][0], plane))
                            if promo is not None:
                                self._push(
                                    _PROMO_LOADS[code][1].format(x=promo),
                                    reads_memory=True, ops=2, lo=lo, hi=hi,
                                    temps=frozenset((promo,)))
                                continue
                        if plane is not None and code in _PLANE_LOADS:
                            expr = _PLANE_LOADS[code].format(i=plane)
                        else:
                            expr = template.format(m="_m", a=addr)
                        if self.hot_fast:
                            # Hot fast copy: the load provably cannot trap,
                            # so it defers and fuses like a pure expression
                            # (spilled on any store/grow as usual).
                            self._push(expr, locals_read=address.locals_read,
                                       reads_memory=True,
                                       ops=address.ops + 2, lo=lo, hi=hi,
                                       temps=address.temps)
                        else:
                            self._push_var(expr, lo=lo, hi=hi)
                        continue
                offset_text = f" + {instr.arg}" if instr.arg else ""
                out.emit(f"_a = {address.paren}{offset_text}")
                out.emit(f"if _a + {width} > len(_m): "
                         "_trap('out-of-bounds memory access')")
                if self.collector and width in (2, 4, 8) \
                        and code in _PLANE_LOADS:
                    out.emit(f"_pa[{self._site_key(index)!r}] |= "
                             f"_a & {width - 1}")
                shift = self._plane_shift(code, _PLANE_LOADS, address,
                                          offset, width)
                if shift is not None:
                    self._push_var(
                        _PLANE_LOADS[code].format(i=f"_a >> {shift}"),
                        lo=lo, hi=hi)
                elif self.use_planes and width in (2, 4, 8) \
                        and code in _PLANE_LOADS and self._site_aligned(index):
                    # Profile-guided plane specialisation: the site was
                    # always aligned when profiled; guard per access and
                    # deopt to the struct path on a misprediction.
                    plane_shift = width.bit_length() - 1
                    fast_expr = _PLANE_LOADS[code].format(
                        i=f"_a >> {plane_shift}")
                    self._push_var(
                        f"({fast_expr}) if not _a & {width - 1} "
                        f"else ({template.format(m='_m', a='_a')})",
                        lo=lo, hi=hi)
                else:
                    self._push_var(template.format(m="_m", a="_a"),
                                   lo=lo, hi=hi)
            elif code in _STORES:
                width, template = _STORES[code]
                value = self._pop()
                address = self._pop()
                self._spill_memory_readers()
                offset = instr.arg or 0
                if self.fast is not None:
                    access = self._fast_access(address, offset, width)
                    if access is not None:
                        addr, plane = access
                        if self._recording:
                            self._record_access(code, address, plane, True)
                        if plane is not None and code in _PROMO_STORES:
                            promo = self._promo_lookup(
                                (_PROMO_STORES[code][0], plane))
                            if promo is not None:
                                out.emit(f"{promo} = " + _PROMO_STORES[code][1]
                                         .format(v=value.expr))
                                continue
                        if plane is not None and code in _PLANE_STORES:
                            out.emit(_PLANE_STORES[code].format(
                                i=plane, v=value.expr))
                        else:
                            out.emit(template.format(m="_m", a=addr,
                                                     v=value.expr))
                        continue
                offset_text = f" + {instr.arg}" if instr.arg else ""
                out.emit(f"_a = {address.paren}{offset_text}")
                out.emit(f"if _a + {width} > len(_m): "
                         "_trap('out-of-bounds memory access')")
                if self.collector and width in (2, 4, 8) \
                        and code in _PLANE_STORES:
                    out.emit(f"_pa[{self._site_key(index)!r}] |= "
                             f"_a & {width - 1}")
                shift = self._plane_shift(code, _PLANE_STORES, address,
                                          offset, width)
                if shift is not None:
                    out.emit(_PLANE_STORES[code].format(i=f"_a >> {shift}",
                                                        v=value.expr))
                elif self.use_planes and width in (2, 4, 8) \
                        and code in _PLANE_STORES \
                        and self._site_aligned(index):
                    plane_shift = width.bit_length() - 1
                    out.emit(f"if not _a & {width - 1}:")
                    out.indent += 1
                    out.emit(_PLANE_STORES[code].format(
                        i=f"_a >> {plane_shift}", v=value.expr))
                    out.indent -= 1
                    out.emit("else:")
                    out.indent += 1
                    out.emit(template.format(m="_m", a="_a", v=value.expr))
                    out.indent -= 1
                else:
                    out.emit(template.format(m="_m", a="_a", v=value.expr))
            elif code == op.MEMORY_SIZE:
                self._push("_mem.size_pages", reads_memory=True, ops=1)
            elif code == op.MEMORY_GROW:
                value = self._pop()
                self._spill_memory_readers()
                if self.collector:
                    out.emit("_pn[0] += 1")
                self._push_var(f"_mem.grow({value.expr}) & {_MASK32}")
            elif code in (op.I32_EQZ, op.I64_EQZ):
                operand = self._pop()
                if operand.bool_expr is not None:
                    raw = f"not ({operand.bool_expr})"
                elif operand.literal is not None:
                    raw = "True" if operand.literal == 0 else "False"
                else:
                    raw = f"{operand.paren} == 0"
                self._push(
                    f"1 if {raw} else 0",
                    locals_read=operand.locals_read,
                    reads_global=operand.reads_global,
                    reads_memory=operand.reads_memory,
                    ops=operand.ops + 2,
                    bool_expr=raw,
                    lo=0, hi=1, temps=operand.temps,
                )
            elif code in _BINOPS:
                rhs = self._pop()
                lhs = self._pop()
                if (code in _FOLDABLE_BINOPS and lhs.literal is not None
                        and rhs.literal is not None):
                    folded = eval(  # compile-time, pure integer arithmetic
                        _BINOPS[code].format(a=lhs.expr, b=rhs.expr),
                        dict(_FOLD_NAMESPACE),
                    )
                    if self.opt >= 1 and folded >= 0:
                        self._push(str(folded), ops=0, lo=folded, hi=folded,
                                   affine={-1: folded}
                                   if _RANGE_BINOPS.get(code, ("", 0))[1] == 32
                                   else None)
                    else:
                        self._push(str(folded), ops=0)
                    continue
                if self.opt >= 1 and code in _RANGE_BINOPS:
                    self._push_value(self._range_binop(code, lhs, rhs))
                    continue
                self._push(
                    _BINOPS[code].format(a=lhs.paren, b=rhs.paren),
                    locals_read=lhs.locals_read | rhs.locals_read,
                    reads_global=lhs.reads_global or rhs.reads_global,
                    reads_memory=lhs.reads_memory or rhs.reads_memory,
                    ops=lhs.ops + rhs.ops + 1,
                    temps=lhs.temps | rhs.temps,
                )
            elif code in _TRAPPING_BINOPS:
                rhs = self._pop()
                lhs = self._pop()
                self._push_var(
                    _TRAPPING_BINOPS[code].format(a=lhs.expr, b=rhs.expr))
            elif code in _RELOPS:
                rhs = self._pop()
                lhs = self._pop()
                if code in _MULTI_USE_RELOPS:
                    # The template reads each operand more than once:
                    # materialise both into fresh temporaries first.
                    self.stack.append(lhs)
                    self._materialize(len(self.stack) - 1)
                    self.stack.append(rhs)
                    self._materialize(len(self.stack) - 1)
                    rhs = self._pop()
                    lhs = self._pop()
                if code in _SIGNED_RELOPS:
                    bits = _SIGNED_RELOPS[code]
                    sign_bit = 1 << (bits - 1)
                    raw = _RELOPS[code].format(a=lhs.paren, b=rhs.paren)
                    # Fold _sNN(literal) operands into signed literals, and
                    # elide _sNN entirely on values proven below the sign
                    # bit (their signed and raw readings coincide).
                    for operand in (lhs, rhs):
                        literal = operand.literal
                        if literal is not None:
                            signed = num.s32(literal) if bits == 32 \
                                else num.s64(literal)
                            raw = raw.replace(
                                f"_s{bits}({operand.paren})", str(signed), 1)
                        elif (self.opt >= 1 and operand.hi is not None
                                and operand.hi < sign_bit):
                            raw = raw.replace(
                                f"_s{bits}({operand.paren})",
                                operand.paren, 1)
                else:
                    raw = _RELOPS[code].format(a=lhs.paren, b=rhs.paren)
                self._push(
                    f"1 if {raw} else 0",
                    locals_read=lhs.locals_read | rhs.locals_read,
                    reads_global=lhs.reads_global or rhs.reads_global,
                    reads_memory=lhs.reads_memory or rhs.reads_memory,
                    ops=lhs.ops + rhs.ops + 2,
                    bool_expr=raw,
                    lo=0, hi=1, temps=lhs.temps | rhs.temps,
                )
            elif code in _UNOPS:
                operand = self._pop()
                template = _UNOPS[code]
                if template == "{a}":
                    self.stack.append(operand)
                    continue
                if self.opt >= 1 and operand.hi is not None:
                    # Conversions that are identities on proven-in-range
                    # values: the wrap/sign-extension cannot fire.
                    if (code == op.I32_WRAP_I64
                            and operand.hi <= num.MASK32) or \
                       (code == op.I64_EXTEND_I32_S
                            and operand.hi < (1 << 31)):
                        self.stack.append(operand)
                        continue
                self._push(
                    template.format(a=operand.paren),
                    locals_read=operand.locals_read,
                    reads_global=operand.reads_global,
                    reads_memory=operand.reads_memory,
                    ops=operand.ops + 1,
                    temps=operand.temps,
                )
            elif code in _TRAPPING_UNOPS:
                operand = self._pop()
                self._push_var(_TRAPPING_UNOPS[code].format(a=operand.expr))
            else:
                raise WasmError(f"AOT: unimplemented opcode {op.name(code)}")

    # -- optimisation passes ------------------------------------------------------

    def _push_local(self, local: int) -> None:
        """local.get / the re-read half of local.tee, with metadata."""
        lo = hi = None
        affine = None
        if self.opt >= 1 and self.local_types[local] == ValType.I32:
            affine = {local: 1}
            for ctx in reversed(self.loop_ctxs):
                if ctx.ind_local == local and ctx.ind_hi is not None:
                    lo, hi = ctx.ind_lo, ctx.ind_hi
                    break
        self._push(f"l{local}", locals_read=frozenset((local,)), ops=1,
                   lo=lo, hi=hi, affine=affine)

    def _range_binop(self, code: int, lhs: _Value, rhs: _Value) -> _Value:
        """An integer binop through the value-range lattice.

        Emits the mask-free form whenever the result provably fits the
        type's range (the ``& MASK`` would be the identity); tracks the
        real-arithmetic affine form for i32 address computations.
        """
        kind, bits = _RANGE_BINOPS[code]
        mask = num.MASK32 if bits == 32 else num.MASK64
        is32 = bits == 32
        a_lo, a_hi = (lhs.lo, lhs.hi) if lhs.hi is not None else (0, mask)
        b_lo, b_hi = (rhs.lo, rhs.hi) if rhs.hi is not None else (0, mask)
        expr = None
        lo = hi = None
        affine = None
        if kind == "add":
            if a_hi + b_hi <= mask:
                expr = f"{lhs.paren} + {rhs.paren}"
                lo, hi = a_lo + b_lo, a_hi + b_hi
            if is32 and lhs.affine is not None and rhs.affine is not None:
                affine = dict(lhs.affine)
                for key, coeff in rhs.affine.items():
                    affine[key] = affine.get(key, 0) + coeff
        elif kind == "sub":
            if a_lo >= b_hi:
                expr = f"{lhs.paren} - {rhs.paren}"
                lo, hi = a_lo - b_hi, a_hi - b_lo
                # Borrow-free subtraction of a constant keeps the value
                # affine (only the constant term may go negative).
                if is32 and rhs.literal is not None \
                        and lhs.affine is not None:
                    affine = dict(lhs.affine)
                    affine[-1] = affine.get(-1, 0) - rhs.literal
        elif kind == "mul":
            if a_hi * b_hi <= mask:
                expr = f"{lhs.paren} * {rhs.paren}"
                lo, hi = a_lo * b_lo, a_hi * b_hi
            if is32:
                if rhs.literal is not None and lhs.affine is not None:
                    affine = {key: coeff * rhs.literal
                              for key, coeff in lhs.affine.items()}
                elif lhs.literal is not None and rhs.affine is not None:
                    affine = {key: coeff * lhs.literal
                              for key, coeff in rhs.affine.items()}
        elif kind == "and":
            literal = rhs.literal if rhs.literal is not None else lhs.literal
            other = lhs if rhs.literal is not None else rhs
            other_hi = a_hi if other is lhs else b_hi
            if literal is not None and (literal + 1) & literal == 0 \
                    and other_hi <= literal:
                return other  # the mask is the identity: drop it
            lo, hi = 0, min(a_hi, b_hi)
        elif kind in ("or", "xor"):
            lo = 0
            hi = (1 << max(a_hi.bit_length(), b_hi.bit_length())) - 1
        elif kind == "shl":
            if rhs.literal is not None:
                count = rhs.literal % bits
                if a_hi << count <= mask:
                    expr = f"{lhs.paren} << {count}"
                    lo, hi = a_lo << count, a_hi << count
                if is32 and lhs.affine is not None:
                    affine = {key: coeff << count
                              for key, coeff in lhs.affine.items()}
        elif kind == "shru":
            if rhs.literal is not None:
                count = rhs.literal % bits
                expr = f"{lhs.paren} >> {count}"
                lo, hi = a_lo >> count, a_hi >> count
        if expr is None:
            expr = _BINOPS[code].format(a=lhs.paren, b=rhs.paren)
        return _Value(
            expr,
            locals_read=lhs.locals_read | rhs.locals_read,
            reads_global=lhs.reads_global or rhs.reads_global,
            reads_memory=lhs.reads_memory or rhs.reads_memory,
            ops=lhs.ops + rhs.ops + 1,
            lo=lo, hi=hi, affine=affine,
            temps=lhs.temps | rhs.temps,
        )

    def _plane_shift(self, code: int, table: Dict[int, str], address: _Value,
                     offset: int, width: int) -> Optional[int]:
        """The plane shift when the access is provably width-aligned.

        An affine address with every coefficient and the total constant
        offset divisible by the width is aligned — masking preserves that
        (2^32 is a multiple of every plane width), so the proof needs no
        wrap analysis.
        """
        if not self.use_planes or code not in table or width not in (2, 4, 8):
            return None
        if address.affine is None:
            return None
        constant = address.affine.get(-1, 0) + offset
        if constant % width:
            return None
        for key, coeff in address.affine.items():
            if key >= 0 and coeff % width:
                return None
        return width.bit_length() - 1

    # -- scalar promotion (opt level 3, hot versioned loops) ---------------------

    def _promo_lookup(self, key: tuple) -> Optional[str]:
        for scope in reversed(self.promo_scopes):
            var = scope.mapping.get(key)
            if var is not None:
                return var
        return None

    def _loop_promotable(self, index: int) -> bool:
        """A loop qualifies for promotion only when nothing in its body
        can trap or re-enter the runtime: every iteration that starts
        also finishes (or leaves through a branch, where writebacks are
        emitted), so the carried cell is never stale at an observable
        point."""
        cached = self._promotable_loops.get(index)
        if cached is not None:
            return cached
        info = self.analysis.get(index)
        ok = info is not None
        if ok:
            body = self.func.body
            for i in range(index, info.end + 1):
                code = body[i].opcode
                if code in _TRAPPING_BINOPS or code in _TRAPPING_UNOPS \
                        or code in _PROMO_BARRIERS:
                    ok = False
                    break
        self._promotable_loops[index] = ok
        return ok

    def _record_access(self, code: int, address: _Value,
                       plane: Optional[str], is_store: bool) -> None:
        """Log one probed access for the promotion planner."""
        lo, hi, effective = self._last_meta
        root_start = self.fast.root.start
        open_loops = tuple(ctx.index for ctx in self.loop_ctxs
                           if ctx.index >= root_start)
        invariant: set = set()
        if address.is_var:
            # A materialised address is loop-invariant exactly where it
            # was hoisted: from its defining preheader inward.
            position = None
            for p, ctx in enumerate(self.loop_ctxs):
                if address.expr in ctx.hoisted.values():
                    position = p
                    break
            if position is not None:
                invariant = {self.loop_ctxs[q].index
                             for q in range(position, len(self.loop_ctxs))
                             if self.loop_ctxs[q].index >= root_start}
        else:
            read_locals = {key for key, coeff in effective.items()
                           if key >= 0 and coeff}
            for ctx in self.loop_ctxs:
                if ctx.index >= root_start \
                        and not (read_locals & ctx.info.writes):
                    invariant.add(ctx.index)
        table = _PROMO_STORES if is_store else _PROMO_LOADS
        pkey = (table[code][0], plane) \
            if plane is not None and code in table else None
        self._access_log.append(_AccessRecord(
            open_loops, pkey, lo, hi, frozenset(invariant), is_store, code))

    def _plan_promotions(self) -> Dict[int, Dict[tuple, str]]:
        """Pick the promotable cells per loop from the probe's log.

        A key (plane, element-index expression) is promotable in loop L
        when: its index is loop-invariant in L; every access under the
        key is rewritable (in the promo tables); every byte range is
        statically bounded; and every *other* access in L is provably
        disjoint from the key's byte span. Textually identical accesses
        are the same cell and get rewritten instead.
        """
        records = self._access_log
        promo: Dict[int, Dict[tuple, str]] = {}
        loops = sorted({loop for record in records
                        for loop in record.open_loops})
        for loop in loops:
            if not self._loop_promotable(loop):
                continue
            in_loop = [r for r in records if loop in r.open_loops]
            by_key: Dict[tuple, List[_AccessRecord]] = {}
            for record in in_loop:
                if record.pkey is not None:
                    by_key.setdefault(record.pkey, []).append(record)
            for key, group in sorted(by_key.items()):
                if not any(r.is_store for r in group):
                    continue  # no store: nothing to carry
                if not all(loop in r.invariant_in for r in group):
                    continue
                if any(r.hi is None for r in group):
                    continue
                key_lo = min(r.lo for r in group)
                key_hi = max(r.hi for r in group)
                disjoint = True
                for other in in_loop:
                    if other.pkey == key:
                        continue
                    if other.hi is None or not (other.hi < key_lo
                                                or other.lo > key_hi):
                        disjoint = False
                        break
                if disjoint:
                    promo.setdefault(loop, {})[key] = ""
        return promo

    def _open_promo_scope(self, index: int, frame: _Frame) -> None:
        """Activate the planned promotions for the loop at ``index``."""
        if not self.promotions_plan:
            return
        plan = self.promotions_plan.get(index)
        if not plan or not self.loop_ctxs \
                or self.loop_ctxs[-1].index != index:
            return
        mapping: Dict[tuple, str] = {}
        for key in sorted(plan):
            if self._promo_lookup(key) is not None:
                continue  # an enclosing loop already carries this cell
            name = f"pv{self.next_promo}"
            self.next_promo += 1
            mapping[key] = name
        if mapping:
            self.promo_scopes.append(
                _PromoScope(frame, self.loop_ctxs[-1], mapping))

    def _close_promo_scope(self, frame: _Frame, live: bool) -> None:
        """On loop end: insert preloads into the preheader (after every
        hoist) and, on the live fall-through path, write the cells back."""
        if not self.promo_scopes or self.promo_scopes[-1].frame is not frame:
            return
        scope = self.promo_scopes.pop()
        ctx = scope.ctx
        for (plane, index_expr), name in scope.items_sorted():
            line = " " * ctx.indent + f"{name} = {plane}[{index_expr}]"
            ctx.emitter.lines.insert(ctx.insert_at, line)
            ctx.insert_at += 1
        if live:
            for (plane, index_expr), name in scope.items_sorted():
                self.out.emit(f"{plane}[{index_expr}] = {name}")

    def _emit_promo_writebacks(self, depth: Optional[int]) -> None:
        """Write back every promoted cell whose loop a branch leaves.

        ``depth`` is the branch depth (None: return / function frame). A
        back edge (branch *to* a loop frame) stays inside that loop, so
        its scope survives; everything strictly inside the target is
        written back.
        """
        if not self.promo_scopes:
            return
        if depth is None or depth >= len(self.frames):
            exited = set(self.frames)
        else:
            target = len(self.frames) - 1 - depth
            if self.frames[target].kind == op.LOOP:
                exited = set(self.frames[target + 1:])
            else:
                exited = set(self.frames[target:])
        for scope in reversed(self.promo_scopes):
            if scope.frame in exited:
                for (plane, index_expr), name in scope.items_sorted():
                    self.out.emit(f"{plane}[{index_expr}] = {name}")

    # -- loop versioning ----------------------------------------------------------

    def _can_version(self, index: int) -> bool:
        if self.opt < 2 or self.version_depth > 0 \
                or index in self.no_version:
            return False
        info = self.analysis.get(index)
        return (info is not None and info.versionable
                and self.func.body[index].arg.arity == 0)

    def _fast_bound(self, local: int) -> Optional[tuple]:
        """``(numeric, symbolic)`` loop-wide max of a local read by an
        address inside the versioned region, or None when unboundable.

        A local the region never writes is its own (runtime) bound. A
        local written inside the region is only boundable when it is the
        induction variable of a loop the access is structurally inside
        (its ctx is still open): there the guard has passed, so the value
        is at most the guard bound.
        """
        fast = self.fast
        if local not in fast.root.writes:
            return None, f"l{local}"
        for ctx in reversed(self.loop_ctxs):
            induction = ctx.info.induction
            if induction is None or induction.local != local \
                    or ctx.index < fast.root.start:
                continue
            ok, conjunct = induction.fast_path_sound()
            if not ok:
                return None
            if induction.symbolic_init and induction.signed \
                    and ctx.index != fast.root.start:
                # The entry-cap conjunct only means anything at the
                # loop's own entry; this region's preflight runs before
                # the nested loop's entry value is even computed.
                return None
            if conjunct:
                fast.require(conjunct)
            if induction.max_numeric is not None:
                return max(induction.max_numeric, 0), None
            part, reads = induction.max_parts()
            if reads & fast.root.writes:
                return None
            return None, part
        return None

    def _fast_access(self, address: _Value, offset: int,
                     width: int) -> Optional[tuple]:
        """Hoist one access's bounds check into the loop preflight.

        Returns ``(address_expr, plane_index_expr_or_None)`` and records
        the requirement ``max_address + width <= _ml``, or None (probe
        failure) when the address cannot be bounded at loop entry.
        """
        fast = self.fast
        if address.affine is None:
            fast.failed = True
            return None
        effective = dict(address.affine)
        effective[-1] = effective.get(-1, 0) + offset
        numeric = effective[-1] + width
        symbolic: List[str] = []
        for local, coeff in sorted(effective.items()):
            if local < 0 or coeff == 0:
                continue
            bound = self._fast_bound(local)
            if bound is None:
                fast.failed = True
                return None
            bound_numeric, bound_symbolic = bound
            if bound_numeric is not None:
                numeric += coeff * bound_numeric
            elif coeff == 1:
                symbolic.append(bound_symbolic)
            else:
                symbolic.append(f"{coeff} * {bound_symbolic}")
        if symbolic:
            fast.require(" + ".join(symbolic + [str(numeric)]) + " <= _ml")
        else:
            fast.require_numeric(numeric)
        if self._recording:
            # Byte span for the promotion planner: the constant term is
            # the minimum (coefficients and locals are non-negative); the
            # preflight bound is the maximum when fully numeric.
            self._last_meta = (effective.get(-1, 0),
                               None if symbolic else numeric - 1,
                               effective)
        # The emitted address: a materialised variable is its own (proven
        # unwrapped) value; a deferred expression is rebuilt mask-free
        # from the affine form.
        if address.is_var:
            addr = f"{address.expr} + {offset}" if offset else address.expr
        else:
            addr = _affine_expr(effective, 1)
        plane = None
        if self.use_planes and width in (2, 4, 8) \
                and effective.get(-1, 0) % width == 0 \
                and all(coeff % width == 0
                        for key, coeff in effective.items() if key >= 0):
            shift = width.bit_length() - 1
            if address.is_var:
                base = f"({addr})" if offset else addr
                plane = f"{base} >> {shift}"
            else:
                plane = _affine_expr(effective, width)
        return addr, plane

    def _compile_versioned_loop(self, index: int) -> int:
        """Emit a fast/safe versioned pair for the loop at ``index``.

        The fast copy elides every per-access bounds check (and computes
        addresses mask-free, through planes when aligned) under a single
        preflight conjunction evaluated at loop entry; the safe copy is
        the plain lowering, taken whenever the preflight cannot prove the
        whole iteration space in bounds — including every program that
        would trap, which therefore traps with the byte-identical message
        at the identical point.
        """
        info = self.analysis[index]
        stop = info.end + 1
        self._spill_all()
        height = len(self.stack)
        frames_len = len(self.frames)
        snapshot = (self.next_label, self.next_temp, self.next_hoist)
        outer = self.out

        self.version_depth += 1
        hot = self._region_hot(index, stop)
        fast = _FastCtx(info)
        _ok, conjunct = info.induction.fast_path_sound()
        if conjunct:
            fast.require(conjunct)
        self.fast = fast
        self.hot_fast = hot
        if hot:
            self._recording = True
            self._access_log = []
        fast_out = _Emitter()
        fast_out.indent = outer.indent + 1
        self.out = fast_out
        self._compile_range(index, stop)
        self._recording = False
        self.fast = None
        fast_counters = (self.next_label, self.next_temp, self.next_hoist)

        del self.frames[frames_len:]
        self._reset_stack(height)
        self.next_label, self.next_temp, self.next_hoist = snapshot

        conditions = fast.conditions()
        if fast.failed or not conditions or len(conditions) > _MAX_PREFLIGHT:
            # Probe failed: compile this loop in place, unversioned —
            # but let its inner loops try their own versions.
            self.no_version.add(index)
            self.version_depth -= 1
            self.hot_fast = False
            self.out = outer
            self._compile_range(index, stop)
            return stop

        if hot:
            promotions = self._plan_promotions()
            if promotions:
                # Recompile the fast copy with scalar promotion active.
                # State evolution is identical to the probe (promoted
                # accesses still register their preflight requirements
                # and hoists; only the access statements change), so the
                # emitted preheaders and conditions line up.
                fast = _FastCtx(info)
                if conjunct:
                    fast.require(conjunct)
                self.fast = fast
                self.promotions_plan = promotions
                fast_out = _Emitter()
                fast_out.indent = outer.indent + 1
                self.out = fast_out
                self._compile_range(index, stop)
                self.fast = None
                self.promotions_plan = None
                self.promo_scopes = []
                fast_counters = (self.next_label, self.next_temp,
                                 self.next_hoist)
                del self.frames[frames_len:]
                self._reset_stack(height)
                self.next_label, self.next_temp, self.next_hoist = snapshot
                conditions = fast.conditions()
        self.hot_fast = False

        safe_out = _Emitter()
        safe_out.indent = outer.indent + 1
        self.out = safe_out
        self._compile_range(index, stop)
        self.version_depth -= 1
        self.out = outer

        self.next_label = max(fast_counters[0], self.next_label)
        self.next_temp = max(fast_counters[1], self.next_temp)
        self.next_hoist = max(fast_counters[2], self.next_hoist)

        outer.emit("_ml = len(_m)")
        outer.emit(f"if {' and '.join(conditions)}:")
        outer.lines.extend(fast_out.lines)
        outer.emit("else:")
        outer.lines.extend(safe_out.lines)

        del self.frames[frames_len:]
        self._reset_stack(height)
        return stop


def _affine_expr(affine: Dict[int, int], scale: int) -> str:
    """Rebuild an affine form as real-arithmetic source, divided by
    ``scale`` (1 for byte addresses; the access width for plane indices,
    only called when every term is divisible)."""
    terms = []
    for local, coeff in sorted(affine.items()):
        if local < 0 or coeff == 0:
            continue
        scaled = coeff // scale
        terms.append(f"l{local}" if scaled == 1 else f"l{local} * {scaled}")
    constant = affine.get(-1, 0) // scale
    if constant or not terms:
        terms.append(str(constant))
    return " + ".join(terms)


class AotCompiler(Engine):
    """Engine that compiles functions to Python closures at load time."""

    name = "aot"

    #: The Wasm -> Python lowering and CPython bytecode compilation depend
    #: only on the module content, so the resulting top-level code object
    #: (plus its source) is a reusable artifact; only the ``exec`` into a
    #: per-instance namespace is instance-specific.
    supports_code_artifacts = True

    def __init__(self, opt_level: Optional[int] = None,
                 tracer: Optional[object] = None,
                 profile: Optional[object] = None,
                 profile_collector: Optional[object] = None) -> None:
        level = DEFAULT_OPT_LEVEL if opt_level is None else opt_level
        if level not in _OPT_LEVELS:
            raise WasmError(f"unknown aot opt level: {level!r}")
        self.tracer = tracer
        self.collector = profile_collector
        self.profile: Optional[Profile] = None
        if profile_collector is not None:
            # Instrumented (profiling) build: the reference lowering plus
            # counter updates. Its artifacts depend on external mutable
            # state, so they are never shared through the codecache.
            self.opt_level = 0
            self.supports_code_artifacts = False
            return
        if level >= 3:
            parsed: Optional[Profile] = None
            if profile is not None:
                try:
                    parsed = Profile.coerce(profile)
                except ProfileError as exc:
                    warnings.warn(ProfileWarning(
                        f"invalid profile ({exc}); "
                        "degrading aot opt level 3 -> 2"))
            else:
                warnings.warn(ProfileWarning(
                    "aot opt level 3 requires a profile; degrading to 2"))
            if parsed is not None and parsed.is_empty:
                warnings.warn(ProfileWarning(
                    "empty profile; degrading aot opt level 3 -> 2"))
                parsed = None
            if parsed is None:
                level = 2
            else:
                self.profile = parsed
        self.opt_level = level

    @property
    def cache_identity(self) -> str:
        """Cache key component: the opt level changes the artifact — and
        at level 3 so does the profile, so its content hash is part of
        the identity (two profiles never share artifacts)."""
        if self.collector is not None:
            return f"{self.name}@profile"
        if self.profile is not None:
            return f"{self.name}@o3+{self.profile.profile_hash[:16]}"
        return f"{self.name}@o{self.opt_level}"

    def instantiate(self, module_or_binary, imports=None,
                    memory_cap_bytes=None, code_cache=codecache.DEFAULT,
                    cache_key=None):
        """At level 3, refuse to apply a profile recorded on a different
        module: degrade (with a typed warning) to a plain o2 engine, which
        shares o2's cache identity and is behaviourally exact."""
        if self.profile is not None and self.profile.module_key \
                and isinstance(module_or_binary, (bytes, bytearray)):
            key = cache_key \
                or codecache.CodeCache.module_key(bytes(module_or_binary))
            if key != self.profile.module_key:
                warnings.warn(ProfileWarning(
                    "profile was recorded on a different module; "
                    "degrading this load to opt level 2"))
                fallback = AotCompiler(opt_level=2, tracer=self.tracer)
                return fallback.instantiate(
                    module_or_binary, imports,
                    memory_cap_bytes=memory_cap_bytes,
                    code_cache=code_cache, cache_key=cache_key)
        return super().instantiate(
            module_or_binary, imports, memory_cap_bytes=memory_cap_bytes,
            code_cache=code_cache, cache_key=cache_key)

    def _plan(self, module: Module) -> Optional[pgo.ModulePlan]:
        if self.profile is None:
            return None
        return pgo.module_plan(module, self.profile)

    def _make_compiler(self, module: Module,
                       func_index: int) -> _FunctionCompiler:
        plan = self._plan(module)
        if plan is not None:
            fplan = plan.hot[func_index]
            func, sites = fplan.func, fplan.sites
            spec = fplan.spec_globals or None
        else:
            func = module.functions[func_index - len(module.imported_funcs)]
            sites, spec = None, None
        return _FunctionCompiler(
            module, func, func_index, opt_level=self.opt_level,
            use_planes=Memory.planes_supported, profile=self.profile,
            sites=sites, spec_globals=spec,
            collector=self.collector is not None)

    def compile_artifact(self, module: Module, func_index: int) -> tuple:
        """Lower one function to a (code object, source) artifact — or,
        at level 3, a ("cold", fused_body) artifact for functions the
        profile never saw called."""
        plan = self._plan(module)
        if plan is not None and func_index in plan.cold:
            return ("cold", plan.fused[func_index])
        tracer = self.tracer
        if tracer is None:
            compiler = self._make_compiler(module, func_index)
            source = compiler.compile()
            code = compile(source, f"<wasm-aot f{func_index}>", "exec")
            return (code, source)
        with tracer.span("aot.compile", func=func_index,
                         opt=self.opt_level):
            with tracer.span("aot.analyze"):
                compiler = self._make_compiler(module, func_index)
            with tracer.span("aot.codegen"):
                source = compiler.compile()
            with tracer.span("aot.pycompile"):
                code = compile(source, f"<wasm-aot f{func_index}>", "exec")
        return (code, source)

    def link_artifact(self, module: Module, instance: Instance,
                      func_index: int, artifact: object) -> Callable:
        """Bind a compiled artifact to an instance's fresh namespace."""
        if artifact[0] == "cold":
            # Cold function: an interpreter closure over the fused body.
            # A mispredicting profile (the function does get called) only
            # costs dispatch speed, never correctness.
            namespace = self._namespace(module, instance)
            entry = pgo.make_cold_entry(module, instance, func_index,
                                        artifact[1])
            namespace["_f"].append(entry)
            return entry
        code, source = artifact
        namespace = self._namespace(module, instance)
        exec(code, namespace)
        compiled = namespace[f"_wasm_f{func_index}"]
        compiled.__wasm_source__ = source  # aid debugging and tests
        # Internal Wasm->Wasm calls skip the coercing wrapper: values
        # produced inside the sandbox are already canonical.
        namespace["_f"].append(compiled)
        func = module.functions[func_index - len(module.imported_funcs)]
        param_types = module.types[func.type_index].params
        return _wrap_entry(compiled, param_types)

    def compile_function(self, module: Module, instance: Instance,
                         func_index: int) -> Callable:
        artifact = self.compile_artifact(module, func_index)
        entry = self.link_artifact(module, instance, func_index, artifact)
        entry.code_artifact = artifact
        return entry

    def _namespace(self, module: Module, instance: Instance) -> dict:
        cached = getattr(instance, "_aot_namespace", None)
        if cached is not None:
            return cached
        namespace = {
            "_inst": instance,
            # The fast call table: host bindings as-is (they are ordinary
            # Python callables), local functions appended *unwrapped* as
            # they are compiled. instance.funcs keeps the wrapped entry
            # points for the embedder.
            "_f": list(instance.funcs),
            "_ft": instance.func_types,
            "_g": instance.globals,
            "_mem": instance.memory,
            "_m": instance.memory.data if instance.memory else b"",
            "_tbl": instance.table,
            "_trap": _trap,
            "_s32": num.s32,
            "_s64": num.s64,
            "_f32r": num.f32_round,
            "_clz": num.clz,
            "_ctz": num.ctz,
            "_popcnt": num.popcnt,
            "_rotl": num.rotl,
            "_rotr": num.rotr,
            "_divs": num.idiv_s,
            "_divu": num.idiv_u,
            "_rems": num.irem_s,
            "_remu": num.irem_u,
            "_shrs": num.shr_s,
            "_trunc": num.trunc_to_int,
            "_ext": num.extend_signed,
            "_fdiv": _fdiv,
            "_fmin": num.fmin,
            "_fmax": num.fmax,
            "_fceil": num.fceil,
            "_ffloor": num.ffloor,
            "_ftrunc": num.ftrunc,
            "_fnearest": num.fnearest,
            "_fsqrt": num.fsqrt,
            "_copysign": math.copysign,
            "_isnan": math.isnan,
            "_ri32f32": num.i32_reinterpret_f32,
            "_ri64f64": num.i64_reinterpret_f64,
            "_rf32i32": num.f32_reinterpret_i32,
            "_rf64i64": num.f64_reinterpret_i64,
            "_upI16": S_I16.unpack_from,
            "_upI32": S_I32.unpack_from,
            "_upI64": S_I64.unpack_from,
            "_upF32": S_F32.unpack_from,
            "_upF64": S_F64.unpack_from,
            "_pkI16": S_I16.pack_into,
            "_pkI32": S_I32.pack_into,
            "_pkI64": S_I64.pack_into,
            "_pkF32": S_F32.pack_into,
            "_pkF64": S_F64.pack_into,
        }
        memory = instance.memory
        if memory is not None and memory.planes_supported:
            # Typed planes over the linear memory. `memory.grow` swaps
            # the backing buffer, so the namespace re-requests them on
            # every grow; generated code reads the names per access.
            def _refresh_planes(space=namespace, memory=memory) -> None:
                for fmt, plane_name in _PLANE_NAMES.items():
                    space[plane_name] = memory.plane(fmt)
            _refresh_planes()
            memory.add_plane_listener(_refresh_planes)
        for type_index, func_type in enumerate(module.types):
            namespace[f"_sig{type_index}"] = func_type
        if self.collector is not None:
            # Instrumented build: counter names alias the collector's
            # mutable dicts, so every profiled instance accumulates into
            # the same profile.
            namespace["_pf"] = self.collector.func_calls
            namespace["_pl"] = self.collector.loop_backedges
            namespace["_pa"] = self.collector.access_masks
            namespace["_pg"] = self.collector.global_sets
            namespace["_pn"] = self.collector.mem_grows
        instance._aot_namespace = namespace  # type: ignore[attr-defined]
        return namespace


def _wrap_entry(compiled: Callable, param_types) -> Callable:
    """Coerce host-supplied arguments once at the public boundary."""
    from repro.wasm.interpreter import _coerce

    def entry(*args):
        if len(args) != len(param_types):
            raise TrapError(
                f"expected {len(param_types)} arguments, got {len(args)}"
            )
        return compiled(*(
            _coerce(value, valtype)
            for value, valtype in zip(args, param_types)
        ))

    entry.__wasm_source__ = compiled.__wasm_source__
    entry.compiled = compiled
    return entry
