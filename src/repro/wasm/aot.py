"""The ahead-of-time execution engine: Wasm -> Python source.

WaTZ executes AOT-compiled Wasm (paper §III, "Execution modes"): WAMR's
LLVM back end lowers bytecode to ARM64 before loading, and the runtime only
needs executable pages. Our analog lowers each Wasm function to Python
source once at instantiation time, removing the per-instruction dispatch of
the interpreter; the measured speed-up is the subject of the A1 ablation
(the paper reports ~28x).

Compilation strategy:

* the operand stack is resolved statically; the value at stack height
  ``h`` canonically lives in the Python local ``s{h}``;
* **expression fusion**: pure, non-trapping operations (constants, local
  and global reads, integer/float arithmetic, comparisons, conversions)
  are deferred as expression strings and fused into the statement that
  consumes them — a store, a local write, a call argument, a branch
  condition — so a Wasm address computation or FP chain becomes one
  Python expression instead of a statement per instruction. Deferred
  expressions are *spilled* into their canonical ``s{h}`` variables at
  every point where their value could change (writes to the locals,
  globals or memory they read) and at all control-flow boundaries.
  Trapping operations (loads, stores, integer division, float-to-int
  truncation, indirect calls) are never deferred, preserving the spec's
  trap ordering;
* structured control lowers to ``while True:`` capsules; a branch sets the
  target label id in ``_br`` and breaks, and every construct's epilogue
  either consumes the branch or keeps unwinding;
* branches to the function frame compile to direct ``return`` statements;
* dead code after an unconditional transfer is skipped entirely.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, FrozenSet, List, Optional

from repro.errors import TrapError, WasmError
from repro.wasm import numerics as num
from repro.wasm import opcodes as op
from repro.wasm.interpreter import _fdiv
from repro.wasm.module import Function, Module
from repro.wasm.runtime import Engine, Instance, S_F32, S_F64, S_I16, S_I32, S_I64
from repro.wasm.types import ValType

_MASK32 = "0xFFFFFFFF"
_MASK64 = "0xFFFFFFFFFFFFFFFF"

#: Expressions larger than this many fused operations are spilled to a
#: variable; keeps generated lines (and CPython's expression stack) sane.
_MAX_FUSED_OPS = 16


def _trap(message: str):
    raise TrapError(message)


# Pure (non-trapping) binary operators: opcode -> template over {a}, {b}.
_BINOPS: Dict[int, str] = {
    op.I32_ADD: "({a} + {b}) & " + _MASK32,
    op.I32_SUB: "({a} - {b}) & " + _MASK32,
    op.I32_MUL: "({a} * {b}) & " + _MASK32,
    op.I32_AND: "{a} & {b}",
    op.I32_OR: "{a} | {b}",
    op.I32_XOR: "{a} ^ {b}",
    op.I32_SHL: "({a} << ({b} % 32)) & " + _MASK32,
    op.I32_SHR_U: "{a} >> ({b} % 32)",
    op.I32_SHR_S: "_shrs({a}, {b}, 32)",
    op.I32_ROTL: "_rotl({a}, {b}, 32)",
    op.I32_ROTR: "_rotr({a}, {b}, 32)",
    op.I64_ADD: "({a} + {b}) & " + _MASK64,
    op.I64_SUB: "({a} - {b}) & " + _MASK64,
    op.I64_MUL: "({a} * {b}) & " + _MASK64,
    op.I64_AND: "{a} & {b}",
    op.I64_OR: "{a} | {b}",
    op.I64_XOR: "{a} ^ {b}",
    op.I64_SHL: "({a} << ({b} % 64)) & " + _MASK64,
    op.I64_SHR_U: "{a} >> ({b} % 64)",
    op.I64_SHR_S: "_shrs({a}, {b}, 64)",
    op.I64_ROTL: "_rotl({a}, {b}, 64)",
    op.I64_ROTR: "_rotr({a}, {b}, 64)",
    op.F64_ADD: "{a} + {b}",
    op.F64_SUB: "{a} - {b}",
    op.F64_MUL: "{a} * {b}",
    op.F64_DIV: "_fdiv({a}, {b})",
    op.F64_MIN: "_fmin({a}, {b})",
    op.F64_MAX: "_fmax({a}, {b})",
    op.F64_COPYSIGN: "_copysign({a}, {b})",
    op.F32_ADD: "_f32r({a} + {b})",
    op.F32_SUB: "_f32r({a} - {b})",
    op.F32_MUL: "_f32r({a} * {b})",
    op.F32_DIV: "_f32r(_fdiv({a}, {b}))",
    op.F32_MIN: "_fmin({a}, {b})",
    op.F32_MAX: "_fmax({a}, {b})",
    op.F32_COPYSIGN: "_copysign({a}, {b})",
}

# Trapping binary operators (division family): always materialised.
_TRAPPING_BINOPS: Dict[int, str] = {
    op.I32_DIV_S: "_divs({a}, {b}, 32)",
    op.I32_DIV_U: "_divu({a}, {b})",
    op.I32_REM_S: "_rems({a}, {b}, 32)",
    op.I32_REM_U: "_remu({a}, {b})",
    op.I64_DIV_S: "_divs({a}, {b}, 64)",
    op.I64_DIV_U: "_divu({a}, {b})",
    op.I64_REM_S: "_rems({a}, {b}, 64)",
    op.I64_REM_U: "_remu({a}, {b})",
}

# Comparison operators producing i32 booleans (pure).
_RELOPS: Dict[int, str] = {
    op.I32_EQ: "{a} == {b}",
    op.I32_NE: "{a} != {b}",
    op.I32_LT_S: "_s32({a}) < _s32({b})",
    op.I32_LT_U: "{a} < {b}",
    op.I32_GT_S: "_s32({a}) > _s32({b})",
    op.I32_GT_U: "{a} > {b}",
    op.I32_LE_S: "_s32({a}) <= _s32({b})",
    op.I32_LE_U: "{a} <= {b}",
    op.I32_GE_S: "_s32({a}) >= _s32({b})",
    op.I32_GE_U: "{a} >= {b}",
    op.I64_EQ: "{a} == {b}",
    op.I64_NE: "{a} != {b}",
    op.I64_LT_S: "_s64({a}) < _s64({b})",
    op.I64_LT_U: "{a} < {b}",
    op.I64_GT_S: "_s64({a}) > _s64({b})",
    op.I64_GT_U: "{a} > {b}",
    op.I64_LE_S: "_s64({a}) <= _s64({b})",
    op.I64_LE_U: "{a} <= {b}",
    op.I64_GE_S: "_s64({a}) >= _s64({b})",
    op.I64_GE_U: "{a} >= {b}",
    op.F32_EQ: "{a} == {b}",
    op.F64_EQ: "{a} == {b}",
    op.F32_NE: "{a} != {b} or _isnan({a}) or _isnan({b})",
    op.F64_NE: "{a} != {b} or _isnan({a}) or _isnan({b})",
    op.F32_LT: "{a} < {b}",
    op.F64_LT: "{a} < {b}",
    op.F32_GT: "{a} > {b}",
    op.F64_GT: "{a} > {b}",
    op.F32_LE: "{a} <= {b}",
    op.F64_LE: "{a} <= {b}",
    op.F32_GE: "{a} >= {b}",
    op.F64_GE: "{a} >= {b}",
}

# NaN-reading comparisons re-evaluate {a}/{b}; those must stay variables.
_MULTI_USE_RELOPS = {op.F32_NE, op.F64_NE}

# Signed comparisons: operands that are literals fold through _s32/_s64 at
# compile time (loop bounds are almost always constants).
_SIGNED_RELOPS = {
    op.I32_LT_S: 32, op.I32_GT_S: 32, op.I32_LE_S: 32, op.I32_GE_S: 32,
    op.I64_LT_S: 64, op.I64_GT_S: 64, op.I64_LE_S: 64, op.I64_GE_S: 64,
}

# Integer binops whose literal-literal results fold at compile time.
_FOLDABLE_BINOPS = {
    op.I32_ADD, op.I32_SUB, op.I32_MUL, op.I32_AND, op.I32_OR, op.I32_XOR,
    op.I32_SHL, op.I32_SHR_U, op.I32_SHR_S, op.I32_ROTL, op.I32_ROTR,
    op.I64_ADD, op.I64_SUB, op.I64_MUL, op.I64_AND, op.I64_OR, op.I64_XOR,
    op.I64_SHL, op.I64_SHR_U, op.I64_SHR_S, op.I64_ROTL, op.I64_ROTR,
}

_FOLD_NAMESPACE = {
    "_shrs": num.shr_s, "_rotl": num.rotl, "_rotr": num.rotr,
    "_s32": num.s32, "_s64": num.s64,
}

# Pure unary operators: opcode -> template over {a}.
_UNOPS: Dict[int, str] = {
    op.I32_CLZ: "_clz({a}, 32)",
    op.I32_CTZ: "_ctz({a}, 32)",
    op.I32_POPCNT: "_popcnt({a})",
    op.I64_CLZ: "_clz({a}, 64)",
    op.I64_CTZ: "_ctz({a}, 64)",
    op.I64_POPCNT: "_popcnt({a})",
    op.F64_ABS: "abs({a})",
    op.F64_NEG: "-({a})",
    op.F64_CEIL: "_fceil({a})",
    op.F64_FLOOR: "_ffloor({a})",
    op.F64_TRUNC: "_ftrunc({a})",
    op.F64_NEAREST: "_fnearest({a})",
    op.F64_SQRT: "_fsqrt({a})",
    op.F32_ABS: "abs({a})",
    op.F32_NEG: "-({a})",
    op.F32_CEIL: "_fceil({a})",
    op.F32_FLOOR: "_ffloor({a})",
    op.F32_TRUNC: "_ftrunc({a})",
    op.F32_NEAREST: "_fnearest({a})",
    op.F32_SQRT: "_f32r(_fsqrt({a}))",
    op.I32_WRAP_I64: "{a} & " + _MASK32,
    op.I64_EXTEND_I32_U: "{a}",
    op.I64_EXTEND_I32_S: "_s32({a}) & " + _MASK64,
    op.F32_CONVERT_I32_S: "_f32r(float(_s32({a})))",
    op.F32_CONVERT_I32_U: "_f32r(float({a}))",
    op.F32_CONVERT_I64_S: "_f32r(float(_s64({a})))",
    op.F32_CONVERT_I64_U: "_f32r(float({a}))",
    op.F32_DEMOTE_F64: "_f32r({a})",
    op.F64_CONVERT_I32_S: "float(_s32({a}))",
    op.F64_CONVERT_I32_U: "float({a})",
    op.F64_CONVERT_I64_S: "float(_s64({a}))",
    op.F64_CONVERT_I64_U: "float({a})",
    op.F64_PROMOTE_F32: "{a}",
    op.I32_REINTERPRET_F32: "_ri32f32({a})",
    op.I64_REINTERPRET_F64: "_ri64f64({a})",
    op.F32_REINTERPRET_I32: "_rf32i32({a})",
    op.F64_REINTERPRET_I64: "_rf64i64({a})",
    op.I32_EXTEND8_S: "_ext({a}, 8, 32)",
    op.I32_EXTEND16_S: "_ext({a}, 16, 32)",
    op.I64_EXTEND8_S: "_ext({a}, 8, 64)",
    op.I64_EXTEND16_S: "_ext({a}, 16, 64)",
    op.I64_EXTEND32_S: "_ext({a}, 32, 64)",
}

# Trapping unary operators (float-to-int truncation): materialised.
_TRAPPING_UNOPS: Dict[int, str] = {
    op.I32_TRUNC_F32_S: "_trunc({a}, True, 32)",
    op.I32_TRUNC_F32_U: "_trunc({a}, False, 32)",
    op.I32_TRUNC_F64_S: "_trunc({a}, True, 32)",
    op.I32_TRUNC_F64_U: "_trunc({a}, False, 32)",
    op.I64_TRUNC_F32_S: "_trunc({a}, True, 64)",
    op.I64_TRUNC_F32_U: "_trunc({a}, False, 64)",
    op.I64_TRUNC_F64_S: "_trunc({a}, True, 64)",
    op.I64_TRUNC_F64_U: "_trunc({a}, False, 64)",
}

_LOADS: Dict[int, tuple] = {
    op.I32_LOAD: (4, "_upI32({m}, {a})[0]"),
    op.I64_LOAD: (8, "_upI64({m}, {a})[0]"),
    op.F32_LOAD: (4, "_upF32({m}, {a})[0]"),
    op.F64_LOAD: (8, "_upF64({m}, {a})[0]"),
    op.I32_LOAD8_U: (1, "{m}[{a}]"),
    op.I64_LOAD8_U: (1, "{m}[{a}]"),
    op.I32_LOAD8_S: (1, "_ext({m}[{a}], 8, 32)"),
    op.I64_LOAD8_S: (1, "_ext({m}[{a}], 8, 64)"),
    op.I32_LOAD16_U: (2, "_upI16({m}, {a})[0]"),
    op.I64_LOAD16_U: (2, "_upI16({m}, {a})[0]"),
    op.I32_LOAD16_S: (2, "_ext(_upI16({m}, {a})[0], 16, 32)"),
    op.I64_LOAD16_S: (2, "_ext(_upI16({m}, {a})[0], 16, 64)"),
    op.I64_LOAD32_U: (4, "_upI32({m}, {a})[0]"),
    op.I64_LOAD32_S: (4, "_ext(_upI32({m}, {a})[0], 32, 64)"),
}

_STORES: Dict[int, tuple] = {
    op.I32_STORE: (4, "_pkI32({m}, {a}, {v})"),
    op.I64_STORE: (8, "_pkI64({m}, {a}, {v})"),
    op.F32_STORE: (4, "_pkF32({m}, {a}, {v})"),
    op.F64_STORE: (8, "_pkF64({m}, {a}, {v})"),
    op.I32_STORE8: (1, "{m}[{a}] = ({v}) & 0xFF"),
    op.I64_STORE8: (1, "{m}[{a}] = ({v}) & 0xFF"),
    op.I32_STORE16: (2, "_pkI16({m}, {a}, ({v}) & 0xFFFF)"),
    op.I64_STORE16: (2, "_pkI16({m}, {a}, ({v}) & 0xFFFF)"),
    op.I64_STORE32: (4, "_pkI32({m}, {a}, ({v}) & " + _MASK32 + ")"),
}

_EMPTY: FrozenSet[int] = frozenset()


class _Value:
    """One compile-time stack slot: a deferred expression or a variable."""

    __slots__ = ("expr", "locals_read", "reads_global", "reads_memory",
                 "ops", "is_var", "bool_expr")

    def __init__(self, expr: str, locals_read: FrozenSet[int] = _EMPTY,
                 reads_global: bool = False, reads_memory: bool = False,
                 ops: int = 1, is_var: bool = False,
                 bool_expr: Optional[str] = None) -> None:
        self.expr = expr
        self.locals_read = locals_read
        self.reads_global = reads_global
        self.reads_memory = reads_memory
        self.ops = ops
        self.is_var = is_var
        # For i32 booleans produced by comparisons/eqz: the raw Python
        # condition, so branches can test it without the 1/0 round trip.
        self.bool_expr = bool_expr

    @classmethod
    def var(cls, name: str) -> "_Value":
        return cls(name, ops=0, is_var=True)

    @property
    def paren(self) -> str:
        """The expression, parenthesised unless it is atomic."""
        if self.is_var or self.expr.isidentifier() or _is_literal(self.expr):
            return self.expr
        return f"({self.expr})"

    @property
    def condition(self) -> str:
        """The truth-test form for if/br_if/select."""
        return self.bool_expr if self.bool_expr is not None else self.expr

    @property
    def literal(self) -> Optional[int]:
        """The integer value when this is a literal constant."""
        if _is_literal(self.expr):
            return int(self.expr)
        return None


def _is_literal(expr: str) -> bool:
    return expr.isdigit() or (expr.startswith("-") and expr[1:].isdigit())


class _Emitter:
    """Accumulates generated source with explicit indentation control."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, line: str) -> None:
        # Single-space indentation maximises nesting headroom in the
        # tokenizer for deeply nested Wasm control flow.
        self.lines.append(" " * self.indent + line)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _Frame:
    """One open structured construct during compilation."""

    __slots__ = ("kind", "label", "entry_height", "arity", "top_level")

    def __init__(self, kind: int, label: int, entry_height: int,
                 arity: int, top_level: bool) -> None:
        self.kind = kind
        self.label = label
        self.entry_height = entry_height
        self.arity = arity
        self.top_level = top_level


class _FunctionCompiler:
    """Compiles one decoded function body into Python source."""

    def __init__(self, module: Module, func: Function, func_index: int) -> None:
        self.module = module
        self.func = func
        self.func_index = func_index
        self.func_type = module.types[func.type_index]
        self.out = _Emitter()
        self.frames: List[_Frame] = []
        self.next_label = 0
        self.next_temp = 0
        self.stack: List[_Value] = []

    # -- stack management ---------------------------------------------------------
    #
    # Naming discipline: mid-stream materialisations always get a *fresh*
    # temporary (t{n}) so a deferred expression can never observe its
    # referenced variable being recycled. Canonical position names (s{i})
    # are written only at control-flow boundaries by `_spill_all`, in
    # ascending position order — an entry can only reference position
    # names of positions <= its own (values are consumed linearly), so
    # the ascending pass reads every old value before overwriting it.

    def _push(self, expr: str, locals_read: FrozenSet[int] = _EMPTY,
              reads_global: bool = False, reads_memory: bool = False,
              ops: int = 1, bool_expr: Optional[str] = None) -> None:
        self.stack.append(
            _Value(expr, locals_read, reads_global, reads_memory, ops,
                   bool_expr=bool_expr))
        if ops > _MAX_FUSED_OPS:
            self._materialize(len(self.stack) - 1)

    def _push_var(self, expr: str) -> None:
        """Materialise ``expr`` into a fresh temporary immediately."""
        name = f"t{self.next_temp}"
        self.next_temp += 1
        self.out.emit(f"{name} = {expr}")
        self.stack.append(_Value.var(name))

    def _pop(self) -> _Value:
        return self.stack.pop()

    def _materialize(self, position: int) -> None:
        """Evaluate a deferred entry now, into a fresh temporary."""
        value = self.stack[position]
        if value.is_var:
            return
        name = f"t{self.next_temp}"
        self.next_temp += 1
        self.out.emit(f"{name} = {value.expr}")
        self.stack[position] = _Value.var(name)

    def _spill(self, position: int) -> None:
        """Place a stack entry into its canonical boundary variable."""
        value = self.stack[position]
        name = f"s{position}"
        if value.is_var and value.expr == name:
            return
        self.out.emit(f"{name} = {value.expr}")
        self.stack[position] = _Value.var(name)

    def _spill_all(self) -> None:
        for position in range(len(self.stack)):
            self._spill(position)

    def _spill_local_readers(self, local_index: int) -> None:
        for position, value in enumerate(self.stack):
            if local_index in value.locals_read:
                self._materialize(position)

    def _spill_global_readers(self) -> None:
        for position, value in enumerate(self.stack):
            if value.reads_global:
                self._materialize(position)

    def _spill_memory_readers(self) -> None:
        for position, value in enumerate(self.stack):
            if value.reads_memory:
                self._materialize(position)

    def _spill_call_clobbered(self) -> None:
        """A call may write globals and memory (not our locals)."""
        for position, value in enumerate(self.stack):
            if value.reads_global or value.reads_memory:
                self._materialize(position)

    def _reset_stack(self, height: int) -> None:
        """Canonical var entries s0..s{height-1} (control-join state)."""
        self.stack = [_Value.var(f"s{i}") for i in range(height)]

    # -- helpers ----------------------------------------------------------------

    def _result_expr(self) -> str:
        if len(self.func_type.results) == 0:
            return "None"
        return self.stack[-1].expr if self.stack else "None"

    def _emit_branch(self, depth: int) -> None:
        """Emit the transfer for ``br depth``; stack entries are vars."""
        height = len(self.stack)
        if depth >= len(self.frames):
            # Branch to the function frame: a return.
            if len(self.func_type.results) == 0:
                self.out.emit("return None")
            else:
                self.out.emit(f"return s{height - 1}")
            return
        frame = self.frames[-1 - depth]
        arity = 0 if frame.kind == op.LOOP else frame.arity
        base = frame.entry_height
        source_base = height - arity
        for position in range(arity):
            if source_base + position != base + position:
                self.out.emit(f"s{base + position} = s{source_base + position}")
        if depth == 0 and frame.kind != op.LOOP:
            self.out.emit("break")
        elif depth == 0:
            # Back edge to the innermost loop: at this point the
            # innermost Python `while` is that loop's body capsule, whose
            # body *is* the loop body — `continue` restarts it directly,
            # skipping the _br unwind machinery.
            self.out.emit("continue")
        else:
            self.out.emit(f"_br = {frame.label}")
            self.out.emit("break")

    def _emit_epilogue(self, frame: _Frame) -> None:
        """Post-capsule branch bookkeeping for a construct."""
        if frame.kind == op.LOOP:
            self.out.emit("if _br >= 0:")
            self.out.indent += 1
            self.out.emit(f"if _br == {frame.label}:")
            self.out.indent += 1
            self.out.emit("_br = -1")
            self.out.emit("continue")
            self.out.indent -= 1
            self.out.emit("break")
            self.out.indent -= 1
            self.out.emit("break")
            self.out.indent -= 1  # close outer while
            if not frame.top_level:
                self.out.emit("if _br >= 0:")
                self.out.indent += 1
                self.out.emit("break")
                self.out.indent -= 1
        else:
            self.out.indent -= 1  # close capsule while
            self.out.emit("if _br >= 0:")
            self.out.indent += 1
            if frame.top_level:
                self.out.emit("_br = -1")
            else:
                self.out.emit(f"if _br != {frame.label}: break")
                self.out.emit("_br = -1")
            self.out.indent -= 1

    # -- main pass ---------------------------------------------------------------

    def compile(self) -> str:
        func_type = self.func_type
        params = [f"l{i}" for i in range(len(func_type.params))]
        name = f"_wasm_f{self.func_index}"
        self.out.emit(f"def {name}({', '.join(params)}):")
        self.out.indent += 1
        self.out.emit("_inst.enter_call()")
        self.out.emit("try:")
        self.out.indent += 1
        for offset, valtype in enumerate(self.func.locals):
            index = len(params) + offset
            zero = "0" if valtype.is_integer else "0.0"
            self.out.emit(f"l{index} = {zero}")
        self.out.emit("_br = -1")
        self._compile_body()
        self.out.indent -= 1
        self.out.emit("finally:")
        self.out.indent += 1
        self.out.emit("_inst.exit_call()")
        self.out.indent -= 1
        self.out.indent -= 1
        return self.out.source()

    def _compile_body(self) -> None:
        module = self.module
        out = self.out
        dead = False
        dead_depth = 0

        for instr in self.func.body:
            code = instr.opcode

            if dead:
                if code in (op.BLOCK, op.LOOP, op.IF):
                    dead_depth += 1
                elif code == op.ELSE and dead_depth == 0:
                    frame = self.frames[-1]
                    out.indent -= 1
                    out.emit("else:")
                    out.indent += 1
                    out.emit("pass")
                    self._reset_stack(frame.entry_height)
                    dead = False
                elif code == op.END:
                    if dead_depth:
                        dead_depth -= 1
                    elif not self.frames:
                        dead = False
                    else:
                        frame = self.frames.pop()
                        if frame.kind == op.IF:
                            out.indent -= 1  # close if/else suite
                        self._reset_stack(frame.entry_height + frame.arity)
                        dead = False
                        if frame.kind == op.LOOP:
                            out.emit("break")
                            out.indent -= 1
                            self._emit_epilogue(frame)
                        else:
                            out.emit("break")
                            self._emit_epilogue(frame)
                continue

            if code == op.NOP:
                continue

            if code == op.BLOCK:
                self._spill_all()
                frame = _Frame(code, self.next_label, len(self.stack),
                               instr.arg.arity, not self.frames)
                self.next_label += 1
                self.frames.append(frame)
                out.emit(f"while True:  # block L{frame.label}")
                out.indent += 1
                out.emit("pass")
            elif code == op.LOOP:
                self._spill_all()
                frame = _Frame(code, self.next_label, len(self.stack),
                               instr.arg.arity, not self.frames)
                self.next_label += 1
                self.frames.append(frame)
                out.emit(f"while True:  # loop L{frame.label}")
                out.indent += 1
                out.emit("while True:")
                out.indent += 1
                out.emit("pass")
            elif code == op.IF:
                condition = self._pop()
                self._spill_all()
                frame = _Frame(code, self.next_label, len(self.stack),
                               instr.arg.arity, not self.frames)
                self.next_label += 1
                self.frames.append(frame)
                out.emit(f"while True:  # if L{frame.label}")
                out.indent += 1
                out.emit(f"if {condition.condition}:")
                out.indent += 1
                out.emit("pass")
            elif code == op.ELSE:
                frame = self.frames[-1]
                self._spill_all()
                out.indent -= 1
                out.emit("else:")
                out.indent += 1
                out.emit("pass")
                self._reset_stack(frame.entry_height)
            elif code == op.END:
                self._spill_all()
                if not self.frames:
                    out.emit(f"return {self._result_expr()}")
                    continue
                frame = self.frames.pop()
                if frame.kind == op.IF:
                    out.indent -= 1  # close if (or else) suite
                self._reset_stack(frame.entry_height + frame.arity)
                if frame.kind == op.LOOP:
                    out.emit("break")
                    out.indent -= 1
                    self._emit_epilogue(frame)
                else:
                    out.emit("break")
                    self._emit_epilogue(frame)
            elif code == op.BR:
                self._spill_all()
                self._emit_branch(instr.arg)
                dead = True
            elif code == op.BR_IF:
                condition = self._pop()
                self._spill_all()
                out.emit(f"if {condition.condition}:")
                out.indent += 1
                self._emit_branch(instr.arg)
                out.indent -= 1
            elif code == op.BR_TABLE:
                depths, default = instr.arg
                selector = self._pop()
                self._spill_all()
                if depths:
                    out.emit(f"_i = {selector.expr}")
                    for position, depth in enumerate(depths):
                        keyword = "if" if position == 0 else "elif"
                        out.emit(f"{keyword} _i == {position}:")
                        out.indent += 1
                        self._emit_branch(depth)
                        out.indent -= 1
                    out.emit("else:")
                    out.indent += 1
                    self._emit_branch(default)
                    out.indent -= 1
                else:
                    self._emit_branch(default)
                dead = True
            elif code == op.RETURN:
                out.emit(f"return {self._result_expr()}")
                dead = True
            elif code == op.UNREACHABLE:
                out.emit('_trap("unreachable executed")')
                dead = True
            elif code == op.CALL:
                signature = module.func_type(instr.arg)
                nparams = len(signature.params)
                arguments = self.stack[len(self.stack) - nparams:] \
                    if nparams else []
                del self.stack[len(self.stack) - nparams:]
                self._spill_call_clobbered()
                argument_list = ", ".join(a.expr for a in arguments)
                if signature.results:
                    self._push_var(f"_f[{instr.arg}]({argument_list})")
                else:
                    out.emit(f"_f[{instr.arg}]({argument_list})")
            elif code == op.CALL_INDIRECT:
                signature = module.types[instr.arg]
                element = self._pop()
                nparams = len(signature.params)
                arguments = self.stack[len(self.stack) - nparams:] \
                    if nparams else []
                del self.stack[len(self.stack) - nparams:]
                self._spill_call_clobbered()
                out.emit(f"_fi = _tbl.get({element.expr})")
                out.emit(f"if _ft[_fi] != _sig{instr.arg}:")
                out.indent += 1
                out.emit('_trap("indirect call signature mismatch")')
                out.indent -= 1
                argument_list = ", ".join(a.expr for a in arguments)
                if signature.results:
                    self._push_var(f"_f[_fi]({argument_list})")
                else:
                    out.emit(f"_f[_fi]({argument_list})")
            elif code == op.DROP:
                self._pop()  # deferred expressions are pure: discard
            elif code == op.SELECT:
                condition = self._pop()
                self._spill(len(self.stack) - 2)
                self._spill(len(self.stack) - 1)
                top = len(self.stack)
                out.emit(f"if not ({condition.condition}):")
                out.indent += 1
                out.emit(f"s{top - 2} = s{top - 1}")
                out.indent -= 1
                self._pop()
            elif code == op.LOCAL_GET:
                self._push(f"l{instr.arg}",
                           locals_read=frozenset((instr.arg,)), ops=1)
            elif code == op.LOCAL_SET:
                value = self._pop()
                self._spill_local_readers(instr.arg)
                out.emit(f"l{instr.arg} = {value.expr}")
            elif code == op.LOCAL_TEE:
                value = self._pop()
                self._spill_local_readers(instr.arg)
                out.emit(f"l{instr.arg} = {value.expr}")
                self._push(f"l{instr.arg}",
                           locals_read=frozenset((instr.arg,)), ops=1)
            elif code == op.GLOBAL_GET:
                self._push(f"_g[{instr.arg}].value", reads_global=True, ops=1)
            elif code == op.GLOBAL_SET:
                value = self._pop()
                self._spill_global_readers()
                out.emit(f"_g[{instr.arg}].value = {value.expr}")
            elif code in (op.I32_CONST, op.I64_CONST):
                self._push(str(instr.arg), ops=0)
            elif code in (op.F32_CONST, op.F64_CONST):
                value = instr.arg
                if math.isnan(value):
                    self._push("float('nan')", ops=0)
                elif math.isinf(value):
                    sign = "-" if value < 0 else ""
                    self._push(f"float('{sign}inf')", ops=0)
                else:
                    self._push(repr(value), ops=0)
            elif code in _LOADS:
                width, template = _LOADS[code]
                address = self._pop()
                offset = f" + {instr.arg}" if instr.arg else ""
                out.emit(f"_a = {address.paren}{offset}")
                out.emit(f"if _a + {width} > len(_m): "
                         "_trap('out-of-bounds memory access')")
                self._push_var(template.format(m="_m", a="_a"))
            elif code in _STORES:
                width, template = _STORES[code]
                value = self._pop()
                address = self._pop()
                self._spill_memory_readers()
                offset = f" + {instr.arg}" if instr.arg else ""
                out.emit(f"_a = {address.paren}{offset}")
                out.emit(f"if _a + {width} > len(_m): "
                         "_trap('out-of-bounds memory access')")
                out.emit(template.format(m="_m", a="_a", v=value.expr))
            elif code == op.MEMORY_SIZE:
                self._push("_mem.size_pages", reads_memory=True, ops=1)
            elif code == op.MEMORY_GROW:
                value = self._pop()
                self._spill_memory_readers()
                self._push_var(f"_mem.grow({value.expr}) & {_MASK32}")
            elif code in (op.I32_EQZ, op.I64_EQZ):
                operand = self._pop()
                if operand.bool_expr is not None:
                    raw = f"not ({operand.bool_expr})"
                elif operand.literal is not None:
                    raw = "True" if operand.literal == 0 else "False"
                else:
                    raw = f"{operand.paren} == 0"
                self._push(
                    f"1 if {raw} else 0",
                    locals_read=operand.locals_read,
                    reads_global=operand.reads_global,
                    reads_memory=operand.reads_memory,
                    ops=operand.ops + 2,
                    bool_expr=raw,
                )
            elif code in _BINOPS:
                rhs = self._pop()
                lhs = self._pop()
                if (code in _FOLDABLE_BINOPS and lhs.literal is not None
                        and rhs.literal is not None):
                    folded = eval(  # compile-time, pure integer arithmetic
                        _BINOPS[code].format(a=lhs.expr, b=rhs.expr),
                        dict(_FOLD_NAMESPACE),
                    )
                    self._push(str(folded), ops=0)
                    continue
                self._push(
                    _BINOPS[code].format(a=lhs.paren, b=rhs.paren),
                    locals_read=lhs.locals_read | rhs.locals_read,
                    reads_global=lhs.reads_global or rhs.reads_global,
                    reads_memory=lhs.reads_memory or rhs.reads_memory,
                    ops=lhs.ops + rhs.ops + 1,
                )
            elif code in _TRAPPING_BINOPS:
                rhs = self._pop()
                lhs = self._pop()
                self._push_var(
                    _TRAPPING_BINOPS[code].format(a=lhs.expr, b=rhs.expr))
            elif code in _RELOPS:
                rhs = self._pop()
                lhs = self._pop()
                if code in _MULTI_USE_RELOPS:
                    # The template reads each operand more than once:
                    # materialise both into fresh temporaries first.
                    self.stack.append(lhs)
                    self._materialize(len(self.stack) - 1)
                    self.stack.append(rhs)
                    self._materialize(len(self.stack) - 1)
                    rhs = self._pop()
                    lhs = self._pop()
                if code in _SIGNED_RELOPS:
                    bits = _SIGNED_RELOPS[code]
                    raw = _RELOPS[code].format(a=lhs.paren, b=rhs.paren)
                    # Fold _sNN(literal) operands into signed literals.
                    for operand in (lhs, rhs):
                        literal = operand.literal
                        if literal is not None:
                            signed = num.s32(literal) if bits == 32 \
                                else num.s64(literal)
                            raw = raw.replace(
                                f"_s{bits}({operand.paren})", str(signed), 1)
                else:
                    raw = _RELOPS[code].format(a=lhs.paren, b=rhs.paren)
                self._push(
                    f"1 if {raw} else 0",
                    locals_read=lhs.locals_read | rhs.locals_read,
                    reads_global=lhs.reads_global or rhs.reads_global,
                    reads_memory=lhs.reads_memory or rhs.reads_memory,
                    ops=lhs.ops + rhs.ops + 2,
                    bool_expr=raw,
                )
            elif code in _UNOPS:
                operand = self._pop()
                template = _UNOPS[code]
                expression = template.format(a=operand.paren)
                if template == "{a}":
                    self.stack.append(operand)
                else:
                    self._push(
                        expression,
                        locals_read=operand.locals_read,
                        reads_global=operand.reads_global,
                        reads_memory=operand.reads_memory,
                        ops=operand.ops + 1,
                    )
            elif code in _TRAPPING_UNOPS:
                operand = self._pop()
                self._push_var(_TRAPPING_UNOPS[code].format(a=operand.expr))
            else:
                raise WasmError(f"AOT: unimplemented opcode {op.name(code)}")


class AotCompiler(Engine):
    """Engine that compiles functions to Python closures at load time."""

    name = "aot"

    #: The Wasm -> Python lowering and CPython bytecode compilation depend
    #: only on the module content, so the resulting top-level code object
    #: (plus its source) is a reusable artifact; only the ``exec`` into a
    #: per-instance namespace is instance-specific.
    supports_code_artifacts = True

    def compile_artifact(self, module: Module, func_index: int) -> tuple:
        """Lower one function to a (code object, source) artifact."""
        func = module.functions[func_index - len(module.imported_funcs)]
        compiler = _FunctionCompiler(module, func, func_index)
        source = compiler.compile()
        code = compile(source, f"<wasm-aot f{func_index}>", "exec")
        return (code, source)

    def link_artifact(self, module: Module, instance: Instance,
                      func_index: int, artifact: object) -> Callable:
        """Bind a compiled artifact to an instance's fresh namespace."""
        code, source = artifact
        namespace = self._namespace(module, instance)
        exec(code, namespace)
        compiled = namespace[f"_wasm_f{func_index}"]
        compiled.__wasm_source__ = source  # aid debugging and tests
        # Internal Wasm->Wasm calls skip the coercing wrapper: values
        # produced inside the sandbox are already canonical.
        namespace["_f"].append(compiled)
        func = module.functions[func_index - len(module.imported_funcs)]
        param_types = module.types[func.type_index].params
        return _wrap_entry(compiled, param_types)

    def compile_function(self, module: Module, instance: Instance,
                         func_index: int) -> Callable:
        artifact = self.compile_artifact(module, func_index)
        entry = self.link_artifact(module, instance, func_index, artifact)
        entry.code_artifact = artifact
        return entry

    def _namespace(self, module: Module, instance: Instance) -> dict:
        cached = getattr(instance, "_aot_namespace", None)
        if cached is not None:
            return cached
        namespace = {
            "_inst": instance,
            # The fast call table: host bindings as-is (they are ordinary
            # Python callables), local functions appended *unwrapped* as
            # they are compiled. instance.funcs keeps the wrapped entry
            # points for the embedder.
            "_f": list(instance.funcs),
            "_ft": instance.func_types,
            "_g": instance.globals,
            "_mem": instance.memory,
            "_m": instance.memory.data if instance.memory else b"",
            "_tbl": instance.table,
            "_trap": _trap,
            "_s32": num.s32,
            "_s64": num.s64,
            "_f32r": num.f32_round,
            "_clz": num.clz,
            "_ctz": num.ctz,
            "_popcnt": num.popcnt,
            "_rotl": num.rotl,
            "_rotr": num.rotr,
            "_divs": num.idiv_s,
            "_divu": num.idiv_u,
            "_rems": num.irem_s,
            "_remu": num.irem_u,
            "_shrs": num.shr_s,
            "_trunc": num.trunc_to_int,
            "_ext": num.extend_signed,
            "_fdiv": _fdiv,
            "_fmin": num.fmin,
            "_fmax": num.fmax,
            "_fceil": num.fceil,
            "_ffloor": num.ffloor,
            "_ftrunc": num.ftrunc,
            "_fnearest": num.fnearest,
            "_fsqrt": num.fsqrt,
            "_copysign": math.copysign,
            "_isnan": math.isnan,
            "_ri32f32": num.i32_reinterpret_f32,
            "_ri64f64": num.i64_reinterpret_f64,
            "_rf32i32": num.f32_reinterpret_i32,
            "_rf64i64": num.f64_reinterpret_i64,
            "_upI16": S_I16.unpack_from,
            "_upI32": S_I32.unpack_from,
            "_upI64": S_I64.unpack_from,
            "_upF32": S_F32.unpack_from,
            "_upF64": S_F64.unpack_from,
            "_pkI16": S_I16.pack_into,
            "_pkI32": S_I32.pack_into,
            "_pkI64": S_I64.pack_into,
            "_pkF32": S_F32.pack_into,
            "_pkF64": S_F64.pack_into,
        }
        for type_index, func_type in enumerate(module.types):
            namespace[f"_sig{type_index}"] = func_type
        instance._aot_namespace = namespace  # type: ignore[attr-defined]
        return namespace


def _wrap_entry(compiled: Callable, param_types) -> Callable:
    """Coerce host-supplied arguments once at the public boundary."""
    from repro.wasm.interpreter import _coerce

    def entry(*args):
        if len(args) != len(param_types):
            raise TrapError(
                f"expected {len(param_types)} arguments, got {len(args)}"
            )
        return compiled(*(
            _coerce(value, valtype)
            for value, valtype in zip(args, param_types)
        ))

    entry.__wasm_source__ = compiled.__wasm_source__
    entry.compiled = compiled
    return entry
